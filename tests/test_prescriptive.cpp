// Tests for the prescriptive pillar: control plumbing, cooling optimization,
// DVFS governors, placement policies, power capping, auto-tuning, and
// anomaly response — each verified against the live simulated facility.
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/prescriptive/autotune.hpp"
#include "analytics/prescriptive/controller.hpp"
#include "analytics/prescriptive/cooling.hpp"
#include "analytics/prescriptive/dvfs.hpp"
#include "analytics/prescriptive/placement.hpp"
#include "analytics/prescriptive/powercap.hpp"
#include "analytics/prescriptive/recommend.hpp"
#include "analytics/prescriptive/response.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

namespace oda::analytics {
namespace {

struct Rig {
  explicit Rig(sim::ClusterParams params) {
    cluster = std::make_unique<sim::ClusterSimulation>(params);
    store = std::make_unique<telemetry::TimeSeriesStore>();
    collector =
        std::make_unique<telemetry::Collector>(*cluster, store.get(), nullptr);
    collector->add_all_sensors(60);
    loop = std::make_unique<ControlLoop>(*cluster, *store);
  }

  void run_for(Duration d) {
    const TimePoint end = cluster->now() + d;
    while (cluster->now() < end) {
      cluster->step();
      collector->collect();
      loop->tick();
    }
  }

  /// Submits one steady 1-node job per node.
  void steady_load(double cpu_util = 0.9, double mem_bw = 0.3,
                   double mem_boundedness = 0.2) {
    cluster->set_workload_enabled(false);
    for (std::size_t i = 0; i < cluster->node_count(); ++i) {
      sim::JobSpec spec;
      spec.id = 5000 + i;
      spec.user = "steady";
      spec.nodes_requested = 1;
      sim::JobPhase phase;
      phase.nominal_duration = 200 * kHour;
      phase.cpu_util = cpu_util;
      phase.mem_bw_util = mem_bw;
      phase.mem_boundedness = mem_boundedness;
      spec.phases = {phase};
      spec.walltime_requested = 400 * kHour;
      cluster->scheduler().submit(spec);
    }
  }

  std::unique_ptr<sim::ClusterSimulation> cluster;
  std::unique_ptr<telemetry::TimeSeriesStore> store;
  std::unique_ptr<telemetry::Collector> collector;
  std::unique_ptr<ControlLoop> loop;
};

sim::ClusterParams small_cluster(std::uint64_t seed = 3) {
  sim::ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 4;
  params.seed = seed;
  return params;
}

// ------------------------------------------------------------- control loop

TEST(ControlLoop, ActuateRecordsAudit) {
  Rig rig(small_cluster());
  std::vector<Actuation> log;
  actuate(*rig.cluster, log, "test", "facility/supply_setpoint", 35.0, "probe");
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].knob, "facility/supply_setpoint");
  EXPECT_DOUBLE_EQ(log[0].new_value, 35.0);
  EXPECT_DOUBLE_EQ(rig.cluster->knobs().get("facility/supply_setpoint"), 35.0);
  // No-op changes are not logged.
  actuate(*rig.cluster, log, "test", "facility/supply_setpoint", 35.0, "same");
  EXPECT_EQ(log.size(), 1u);
}

TEST(ControlLoop, ClampsToKnobRange) {
  Rig rig(small_cluster());
  std::vector<Actuation> log;
  actuate(*rig.cluster, log, "test", "facility/supply_setpoint", 500.0, "over");
  EXPECT_LE(rig.cluster->knobs().get("facility/supply_setpoint"), 45.0);
}

TEST(ControlLoop, PeriodGating) {
  class CountingController : public Controller {
   public:
    const char* name() const override { return "counter"; }
    Duration period() const override { return 60; }
    void act(sim::ClusterSimulation&, const telemetry::TimeSeriesStore&,
             std::vector<Actuation>&) override {
      ++calls;
    }
    int calls = 0;
  };
  Rig rig(small_cluster());
  auto counter = std::make_shared<CountingController>();
  rig.loop->add(counter);
  rig.run_for(10 * kMinute);  // dt=15s, period=60s -> every 4th step
  EXPECT_EQ(counter->calls, 10);
}

// ----------------------------------------------------------------- cooling

TEST(Cooling, SetpointOptimizerReducesFacilityPower) {
  // Start from a deliberately bad (cold) setpoint in chiller conditions;
  // the optimizer should walk the setpoint up and cut facility power.
  auto params = small_cluster(11);
  params.facility.supply_setpoint_c = 19.0;
  // Warm *constant* weather: a probing optimizer needs the outdoor
  // conditions held still or COP variability swamps the per-move signal
  // (the same control-of-variables the E1 bench applies).
  params.weather.mean_temp_c = 26.0;
  params.weather.seasonal_amplitude = 0.0;
  params.weather.diurnal_amplitude = 0.0;
  params.weather.front_stddev = 0.0;

  // Baseline without control.
  Rig baseline(params);
  baseline.steady_load();
  baseline.run_for(36 * kHour);

  Rig controlled(params);
  controlled.steady_load();
  CoolingSetpointOptimizer::Params op;
  op.period = kHour;  // faster moves for the test
  controlled.loop->add(std::make_shared<CoolingSetpointOptimizer>(op));
  controlled.run_for(36 * kHour);

  EXPECT_GT(controlled.cluster->knobs().get("facility/supply_setpoint"), 20.0);
  EXPECT_LT(controlled.cluster->facility_energy_j(),
            baseline.cluster->facility_energy_j());
}

TEST(Cooling, ModeSwitcherFollowsWetbulb) {
  auto params = small_cluster(13);
  params.facility.supply_setpoint_c = 28.0;
  params.weather.mean_temp_c = 26.0;     // wet-bulb straddles the free limit:
  params.weather.diurnal_amplitude = 8.0;  // nights free-cool, afternoons not
  params.weather.seasonal_amplitude = 1.0;
  params.weather.front_stddev = 1.0;
  Rig rig(params);
  rig.steady_load();
  auto switcher = std::make_shared<CoolingModeSwitcher>();
  rig.loop->add(switcher);
  rig.run_for(3 * kDay);
  EXPECT_GE(switcher->switches(), 2u);  // at least one full day cycle
}

TEST(Cooling, OptimizerBacksOffWhenNodesHot) {
  auto params = small_cluster(17);
  params.facility.supply_setpoint_c = 44.0;  // near max: nodes run very hot
  params.node.fan_target_temp_c = 95.0;      // lazy fans to force heat
  Rig rig(params);
  rig.steady_load(1.0, 0.3);
  CoolingSetpointOptimizer::Params op;
  op.period = kHour;
  op.cpu_temp_limit_c = 80.0;
  rig.loop->add(std::make_shared<CoolingSetpointOptimizer>(op));
  rig.run_for(12 * kHour);
  EXPECT_LT(rig.cluster->knobs().get("facility/supply_setpoint"), 44.0);
}

// -------------------------------------------------------------------- DVFS

TEST(Dvfs, EnergyModeDownclocksMemoryBound) {
  Rig rig(small_cluster(19));
  rig.steady_load(/*cpu=*/0.6, /*mem_bw=*/0.9, /*mem_boundedness=*/0.8);
  DvfsGovernor::Params gp;
  gp.mode = DvfsGovernor::Mode::kEnergy;
  rig.loop->add(std::make_shared<DvfsGovernor>(gp));
  rig.run_for(2 * kHour);
  for (std::size_t i = 0; i < rig.cluster->node_count(); ++i) {
    EXPECT_NEAR(rig.cluster->knobs().get(rig.cluster->node(i).path() +
                                         "/freq_setpoint"),
                gp.energy_freq_ghz, 1e-9);
  }
}

TEST(Dvfs, EnergyModeKeepsComputeBoundAtNominal) {
  Rig rig(small_cluster(23));
  rig.steady_load(/*cpu=*/0.95, /*mem_bw=*/0.2, /*mem_boundedness=*/0.1);
  DvfsGovernor::Params gp;
  gp.mode = DvfsGovernor::Mode::kEnergy;
  rig.loop->add(std::make_shared<DvfsGovernor>(gp));
  rig.run_for(2 * kHour);
  for (std::size_t i = 0; i < rig.cluster->node_count(); ++i) {
    EXPECT_NEAR(rig.cluster->knobs().get(rig.cluster->node(i).path() +
                                         "/freq_setpoint"),
                rig.cluster->node(i).params().freq_nominal_ghz, 1e-9);
  }
}

TEST(Dvfs, ThermalGovernorLimitsTemperature) {
  auto params = small_cluster(29);
  params.facility.supply_setpoint_c = 43.0;  // hot loop: thermal stress
  params.node.fan_target_temp_c = 90.0;      // weak fan response
  Rig uncontrolled(params);
  uncontrolled.steady_load(1.0, 0.3);
  uncontrolled.run_for(6 * kHour);
  double max_temp_uncontrolled = 0.0;
  for (std::size_t i = 0; i < uncontrolled.cluster->node_count(); ++i) {
    max_temp_uncontrolled = std::max(max_temp_uncontrolled,
                                     uncontrolled.cluster->node(i).cpu_temp_c());
  }

  Rig governed(params);
  governed.steady_load(1.0, 0.3);
  DvfsGovernor::Params gp;
  gp.mode = DvfsGovernor::Mode::kThermalReactive;
  gp.temp_limit_c = 78.0;
  governed.loop->add(std::make_shared<DvfsGovernor>(gp));
  governed.run_for(6 * kHour);
  for (std::size_t i = 0; i < governed.cluster->node_count(); ++i) {
    EXPECT_LT(governed.cluster->node(i).cpu_temp_c(), 80.5);
  }
  EXPECT_GT(max_temp_uncontrolled, 80.5);  // the governor made the difference
}

// -------------------------------------------------------------- placement

TEST(Placement, ThermalAwareSpreadsAcrossRacks) {
  Rig rig(small_cluster(31));
  rig.cluster->set_workload_enabled(false);
  rig.cluster->scheduler().set_placement(make_thermal_placement(*rig.cluster));
  // Four 2-node jobs: thermal-aware placement should alternate racks.
  for (int j = 0; j < 2; ++j) {
    sim::JobSpec spec;
    spec.id = 100 + j;
    spec.user = "u";
    spec.nodes_requested = 2;
    sim::JobPhase phase;
    phase.nominal_duration = 10 * kHour;
    phase.cpu_util = 1.0;
    spec.phases = {phase};
    spec.walltime_requested = 20 * kHour;
    rig.cluster->scheduler().submit(spec);
    rig.run_for(kHour);  // let rack power differentiate between placements
  }
  // Each rack should hold exactly one job's nodes.
  std::size_t rack0 = 0, rack1 = 0;
  for (const auto& job : rig.cluster->scheduler().running()) {
    for (std::size_t n : job.nodes) {
      (rig.cluster->rack_of(n) == 0 ? rack0 : rack1) += 1;
    }
  }
  EXPECT_EQ(rack0, 2u);
  EXPECT_EQ(rack1, 2u);
}

TEST(Placement, PackConcentratesButStaysRackLocal) {
  PackPlacement pack(4);
  std::vector<bool> busy(8, false);
  busy[0] = true;  // rack 0 partially used
  // A job that fits the partially-used rack goes there (packing).
  sim::JobSpec small;
  small.nodes_requested = 3;
  const auto local = pack.place(small, busy);
  ASSERT_TRUE(local.has_value());
  for (std::size_t n : *local) EXPECT_LT(n, 4u);
  // A job too big for rack 0 is placed whole in rack 1 rather than split —
  // locality beats packing (cross-rack splits cost network contention).
  sim::JobSpec big;
  big.nodes_requested = 4;
  const auto whole = pack.place(big, busy);
  ASSERT_TRUE(whole.has_value());
  for (std::size_t n : *whole) EXPECT_GE(n, 4u);
  // When no single rack fits, the job spills across racks.
  sim::JobSpec huge;
  huge.nodes_requested = 7;
  const auto spilled = pack.place(huge, busy);
  ASSERT_TRUE(spilled.has_value());
  EXPECT_EQ(spilled->size(), 7u);
}

TEST(Placement, ReturnsNulloptWhenFull) {
  sim::JobSpec spec;
  spec.nodes_requested = 2;
  std::vector<bool> busy(4, true);
  PackPlacement pack(4);
  EXPECT_FALSE(pack.place(spec, busy).has_value());
  ThermalAwarePlacement thermal([](std::size_t) { return 0.0; }, 1, 4);
  EXPECT_FALSE(thermal.place(spec, busy).has_value());
}

// --------------------------------------------------------------- powercap

TEST(PowerCap, EnforcesCapByShedding) {
  auto params = small_cluster(37);
  Rig rig(params);
  rig.steady_load(1.0, 0.3);
  rig.run_for(kHour);
  const double unconstrained = rig.cluster->facility().facility_power_w();

  auto governed_params = small_cluster(37);
  Rig governed(governed_params);
  governed.steady_load(1.0, 0.3);
  PowerCapGovernor::Params pp;
  pp.cap_w = unconstrained * 0.85;  // force a binding cap
  pp.period = 2 * kMinute;
  auto governor = std::make_shared<PowerCapGovernor>(pp);
  governed.loop->add(governor);
  governed.run_for(8 * kHour);
  // Once settled, power stays near/below the cap.
  EXPECT_LT(governed.cluster->facility().facility_power_w(), pp.cap_w * 1.02);
  // And at least one node was actually downclocked.
  bool any_shed = false;
  for (std::size_t i = 0; i < governed.cluster->node_count(); ++i) {
    if (governed.cluster->knobs().get(governed.cluster->node(i).path() +
                                      "/freq_setpoint") <
        governed.cluster->node(i).params().freq_nominal_ghz - 1e-9) {
      any_shed = true;
    }
  }
  EXPECT_TRUE(any_shed);
}

TEST(PowerCap, RestoresWhenHeadroom) {
  auto params = small_cluster(41);
  Rig rig(params);
  rig.cluster->set_workload_enabled(false);  // idle machine
  // Pre-shed every node, then let the governor restore.
  for (std::size_t i = 0; i < rig.cluster->node_count(); ++i) {
    rig.cluster->knobs().set(rig.cluster->node(i).path() + "/freq_setpoint", 1.2);
  }
  PowerCapGovernor::Params pp;
  pp.cap_w = 1e9;  // never binding
  pp.period = 2 * kMinute;
  rig.loop->add(std::make_shared<PowerCapGovernor>(pp));
  rig.run_for(2 * kHour);
  for (std::size_t i = 0; i < rig.cluster->node_count(); ++i) {
    EXPECT_NEAR(rig.cluster->knobs().get(rig.cluster->node(i).path() +
                                         "/freq_setpoint"),
                rig.cluster->node(i).params().freq_nominal_ghz, 1e-9);
  }
}

// --------------------------------------------------------------- autotune

TEST(AutoTune, AllStrategiesImproveOnDefault) {
  const std::vector<TunableParam> space{
      {"tile_size", 8.0, 256.0, {}},
      {"threads", 1.0, 64.0, {}},
      {"blocking", 0.0, 1.0, {}},
  };
  const auto surface = synthetic_app_surface(space, 120.0, /*seed=*/5, 0.005);
  AutoTuner::Params tp;
  tp.budget = 120;
  AutoTuner tuner(space, surface, tp);
  for (const auto& result : tuner.tune_all()) {
    EXPECT_GT(result.improvement, -0.05) << result.strategy;
    EXPECT_GT(result.evaluations, 1u);
    EXPECT_EQ(result.best_config.size(), space.size());
  }
  // The best strategy should find a clearly better configuration.
  const auto results = tuner.tune_all();
  EXPECT_GT(results.front().improvement, 0.05);
}

TEST(AutoTune, RespectsBounds) {
  const std::vector<TunableParam> space{{"x", 0.0, 1.0, {}}};
  const auto surface = synthetic_app_surface(space, 10.0, 7);
  AutoTuner tuner(space, surface);
  for (const auto& r : tuner.tune_all()) {
    EXPECT_GE(r.best_config[0], 0.0);
    EXPECT_LE(r.best_config[0], 1.0);
  }
}

TEST(AutoTune, SurfaceDeterministicPerConfig) {
  const std::vector<TunableParam> space{{"x", 0.0, 1.0, {}}};
  const auto surface = synthetic_app_surface(space, 10.0, 9);
  const std::vector<double> config{0.42};
  EXPECT_DOUBLE_EQ(surface(config), surface(config));
}

// --------------------------------------------------------------- response

TEST(Response, AutomaticFanFailureHandling) {
  Rig rig(small_cluster(43));
  auto policy = ResponsePolicy::standard(ResponseMode::kAutomatic);
  std::vector<Actuation> log;
  const auto action = policy.respond(
      {"fan-failure", rig.cluster->node(0).path(), 0.9}, *rig.cluster, log);
  EXPECT_TRUE(action.executed);
  EXPECT_FALSE(log.empty());
  EXPECT_NEAR(rig.cluster->knobs().get(rig.cluster->node(0).path() +
                                       "/freq_setpoint"),
              rig.cluster->node(0).params().freq_min_ghz, 1e-9);
}

TEST(Response, RecommendModeDoesNotActuate) {
  Rig rig(small_cluster(47));
  auto policy = ResponsePolicy::standard(ResponseMode::kRecommend);
  std::vector<Actuation> log;
  const double before = rig.cluster->knobs().get("facility/pump_speed");
  const auto action =
      policy.respond({"pump-degradation", "facility/cooling/pump", 0.7},
                     *rig.cluster, log);
  EXPECT_FALSE(action.executed);
  EXPECT_TRUE(log.empty());
  EXPECT_DOUBLE_EQ(rig.cluster->knobs().get("facility/pump_speed"), before);
}

TEST(Response, UnknownConditionFallsBack) {
  Rig rig(small_cluster(53));
  auto policy = ResponsePolicy::standard(ResponseMode::kAutomatic);
  std::vector<Actuation> log;
  const auto action =
      policy.respond({"alien-invasion", "facility", 1.0}, *rig.cluster, log);
  EXPECT_FALSE(action.executed);
  EXPECT_NE(action.action.find("no handler"), std::string::npos);
}


// ---------------------------------------------------------- recommendations

TEST(Recommend, MemoryBoundJobGetsLocalityAdvice) {
  JobProfile p;
  p.cpu_util = 0.6;
  p.mem_bw_util = 0.9;
  p.boundedness = Boundedness::kMemory;
  const auto recs = recommend(p);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].category, "memory");
  EXPECT_NE(recs[0].advice.find("locality"), std::string::npos);
}

TEST(Recommend, ImbalanceAndOverRequestStack) {
  JobProfile p;
  p.cpu_util = 0.8;
  p.boundedness = Boundedness::kCompute;
  p.cpu_util_stddev = 0.3;
  p.walltime_request_ratio = 6.0;
  const auto recs = recommend(p);
  ASSERT_GE(recs.size(), 2u);
  EXPECT_EQ(recs[0].category, "imbalance");   // priority 1 before priority 3
  EXPECT_EQ(recs.back().category, "sizing");
}

TEST(Recommend, IdleAllocationFlagged) {
  JobProfile p;  // all utilizations zero
  const auto recs = recommend(p);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].category, "sizing");
}

TEST(Recommend, EndToEndOnLiveJob) {
  Rig rig(small_cluster(59));
  rig.cluster->set_workload_enabled(false);
  sim::JobSpec spec;
  spec.id = 1;
  spec.user = "dev";
  spec.nodes_requested = 2;
  sim::JobPhase phase;
  phase.nominal_duration = 2 * kHour;
  phase.cpu_util = 0.6;
  phase.mem_bw_util = 0.92;
  phase.mem_boundedness = 0.8;
  spec.phases = {phase};
  spec.walltime_requested = 12 * kHour;  // 6x over-request
  rig.cluster->scheduler().submit(spec);
  rig.run_for(2 * kHour + 10 * kMinute);
  ASSERT_FALSE(rig.cluster->scheduler().completed().empty());
  const auto& record = rig.cluster->scheduler().completed().front();
  std::vector<std::string> prefixes;
  for (std::size_t i = 0; i < rig.cluster->node_count(); ++i) {
    prefixes.push_back(rig.cluster->node(i).path());
  }
  const auto recs = recommend_for_job(*rig.store, record, prefixes);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].category, "memory");
  bool sizing = false;
  for (const auto& r : recs) sizing |= r.category == "sizing";
  EXPECT_TRUE(sizing);  // the 6x walltime over-request
  const auto report = render_recommendations(record, recs);
  EXPECT_NE(report.find("RECOMMENDATIONS"), std::string::npos);
}

}  // namespace
}  // namespace oda::analytics
