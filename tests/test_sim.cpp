// Tests for the data-center simulator: weather, workload, node physics,
// network contention, scheduler invariants, facility plant, fault injection,
// and whole-cluster integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "sim/cluster.hpp"

namespace oda::sim {
namespace {

// ---------------------------------------------------------------- weather

TEST(Weather, DiurnalCycleVisible) {
  Weather w({}, Rng(1));
  double t_day = 0.0, t_night = 0.0;
  w.step(15 * kHour, 0);  // afternoon
  t_day = w.drybulb_c();
  w.step(3 * kHour, 0);  // night
  t_night = w.drybulb_c();
  EXPECT_GT(t_day, t_night);
}

TEST(Weather, WetbulbBelowDrybulb) {
  Weather w({}, Rng(2));
  for (TimePoint t = 0; t < 2 * kDay; t += kHour) {
    w.step(t, kHour);
    EXPECT_LT(w.wetbulb_c(), w.drybulb_c());
  }
}

TEST(Weather, SensorsExported) {
  Weather w({}, Rng(3));
  std::vector<SensorDef> sensors;
  w.enumerate_sensors(sensors);
  ASSERT_EQ(sensors.size(), 2u);
  EXPECT_EQ(sensors[0].path, "weather/drybulb_temp");
}

// --------------------------------------------------------------- workload

TEST(Workload, DeterministicForSeed) {
  WorkloadParams params;
  WorkloadGenerator a(params), b(params);
  const auto ta = a.generate_trace(50);
  const auto tb = b.generate_trace(50);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].user, tb[i].user);
    EXPECT_EQ(ta[i].nominal_duration(), tb[i].nominal_duration());
  }
}

TEST(Workload, RespectsSizeAndDurationLimits) {
  WorkloadParams params;
  params.max_nodes_per_job = 8;
  WorkloadGenerator gen(params);
  for (const auto& job : gen.generate_trace(300)) {
    EXPECT_GE(job.nodes_requested, 1u);
    EXPECT_LE(job.nodes_requested, 8u);
    EXPECT_GE(job.nominal_duration(), params.min_duration);
    EXPECT_LE(job.nominal_duration(), params.max_duration);
    EXPECT_GT(job.walltime_requested, job.nominal_duration());
  }
}

TEST(Workload, MinerFractionRespected) {
  WorkloadParams params;
  params.miner_fraction = 0.2;
  WorkloadGenerator gen(params);
  std::size_t miners = 0;
  const auto trace = gen.generate_trace(1000);
  for (const auto& job : trace) {
    if (job.job_class == JobClass::kCryptoMiner) ++miners;
  }
  EXPECT_NEAR(static_cast<double>(miners) / 1000.0, 0.2, 0.05);
}

TEST(Workload, MinerSignatureSinglePhaseHighCpu) {
  Rng rng(5);
  const auto phases =
      WorkloadGenerator::make_phases(JobClass::kCryptoMiner, kHour, rng);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_GT(phases[0].cpu_util, 0.9);
  EXPECT_LT(phases[0].mem_bw_util, 0.2);
}

TEST(Workload, RegularJobsHavePhaseStructure) {
  Rng rng(7);
  const auto phases =
      WorkloadGenerator::make_phases(JobClass::kComputeBound, 2 * kHour, rng);
  EXPECT_GE(phases.size(), 2u);
  Duration total = 0;
  for (const auto& p : phases) total += p.nominal_duration;
  EXPECT_EQ(total, 2 * kHour);
}

TEST(Workload, ArrivalRateFollowsDiurnalPattern) {
  WorkloadParams params;
  params.peak_arrival_rate_per_hour = 60.0;
  WorkloadGenerator gen(params);
  std::size_t afternoon = 0, night = 0;
  for (int day = 0; day < 20; ++day) {
    const TimePoint base = day * kDay;
    afternoon += gen.generate(base + 14 * kHour, kHour).size();
    night += gen.generate(base + 3 * kHour, kHour).size();
  }
  EXPECT_GT(afternoon, night);
}

// ------------------------------------------------------------------- node

NodeDemand busy_demand(double cpu = 0.9, double mem = 0.3) {
  NodeDemand d;
  d.busy = true;
  d.cpu_util = cpu;
  d.mem_bw_util = mem;
  d.mem_boundedness = 0.2;
  return d;
}

TEST(Node, PowerIncreasesWithUtilization) {
  Node idle("n0", {});
  Node busy("n1", {});
  for (int i = 0; i < 100; ++i) {
    idle.step({}, 25.0, 15);
    busy.step(busy_demand(), 25.0, 15);
  }
  EXPECT_GT(busy.power_w(), idle.power_w() + 50.0);
}

TEST(Node, TemperatureRisesUnderLoad) {
  Node node("n0", {});
  for (int i = 0; i < 50; ++i) node.step({}, 25.0, 15);
  const double idle_temp = node.cpu_temp_c();
  for (int i = 0; i < 400; ++i) node.step(busy_demand(), 25.0, 15);
  EXPECT_GT(node.cpu_temp_c(), idle_temp + 10.0);
}

TEST(Node, DvfsReducesPowerAndProgress) {
  NodeParams params;
  Node fast("f", params), slow("s", params);
  std::vector<KnobDef> knobs;
  slow.enumerate_knobs(knobs);
  knobs[0].set(params.freq_min_ghz);
  for (int i = 0; i < 200; ++i) {
    fast.step(busy_demand(), 25.0, 15);
    slow.step(busy_demand(), 25.0, 15);
  }
  EXPECT_LT(slow.power_w(), fast.power_w());
  EXPECT_LT(slow.progress_rate(), fast.progress_rate());
}

TEST(Node, MemoryBoundJobLessFrequencySensitive) {
  NodeParams params;
  Node a("a", params), b("b", params);
  std::vector<KnobDef> ka, kb;
  a.enumerate_knobs(ka);
  b.enumerate_knobs(kb);
  ka[0].set(params.freq_min_ghz);
  kb[0].set(params.freq_min_ghz);
  NodeDemand compute = busy_demand();
  compute.mem_boundedness = 0.0;
  NodeDemand memory = busy_demand();
  memory.mem_boundedness = 0.9;
  a.step(compute, 25.0, 15);
  b.step(memory, 25.0, 15);
  EXPECT_LT(a.progress_rate(), b.progress_rate());
}

TEST(Node, ThrottlesAtLimit) {
  NodeParams params;
  params.throttle_temp_c = 60.0;  // force easy throttling
  Node node("n", params);
  for (int i = 0; i < 500; ++i) node.step(busy_demand(1.0, 0.2), 45.0, 15);
  EXPECT_TRUE(node.throttled());
  EXPECT_DOUBLE_EQ(node.frequency_ghz(), params.freq_min_ghz);
}

TEST(Node, FanFailureRaisesTemperature) {
  Node healthy("h", {}), failed("f", {});
  failed.set_fan_failed(true);
  for (int i = 0; i < 400; ++i) {
    healthy.step(busy_demand(), 30.0, 15);
    failed.step(busy_demand(), 30.0, 15);
  }
  EXPECT_GT(failed.cpu_temp_c(), healthy.cpu_temp_c() + 5.0);
}

TEST(Node, HotterInletRaisesLeakagePower) {
  Node cool("c", {}), warm("w", {});
  for (int i = 0; i < 400; ++i) {
    cool.step(busy_demand(), 22.0, 15);
    warm.step(busy_demand(), 45.0, 15);
  }
  EXPECT_GT(warm.power_w(), cool.power_w());
}

TEST(Node, EnergyAccumulates) {
  Node node("n", {});
  node.step(busy_demand(), 25.0, 100);
  EXPECT_NEAR(node.energy_j(), node.power_w() * 100.0, 1e-6);
}

// ---------------------------------------------------------------- network

TEST(Network, IntraRackTrafficNoContention) {
  Network net({2, 4, 100.0, 100.0});
  net.begin_step();
  net.add_job_traffic(1, {0, 1, 2, 3}, 90.0);  // all in rack 0
  net.finalize_step();
  EXPECT_DOUBLE_EQ(net.contention(1), 1.0);
  EXPECT_DOUBLE_EQ(net.uplink_utilization(0), 0.0);
}

TEST(Network, CrossRackOversubscriptionSlowsJob) {
  Network net({2, 4, 100.0, 50.0});  // skinny uplinks
  net.begin_step();
  net.add_job_traffic(1, {0, 1, 4, 5}, 80.0);  // spans both racks
  net.finalize_step();
  EXPECT_LT(net.contention(1), 1.0);
  EXPECT_GT(net.uplink_utilization(0), 1.0);
}

TEST(Network, VictimJobSlowedByAggressor) {
  Network net({2, 8, 100.0, 200.0});
  net.begin_step();
  net.add_job_traffic(1, {0, 8}, 30.0);              // modest cross-rack job
  net.add_job_traffic(2, {1, 2, 3, 9, 10, 11}, 95.0);  // heavy neighbour
  net.finalize_step();
  EXPECT_LT(net.contention(1), 1.0);  // slowed by shared uplink load
}

TEST(Network, DegradationReducesCapacity) {
  Network net({2, 4, 100.0, 400.0});
  net.begin_step();
  net.add_job_traffic(1, {0, 4}, 90.0);
  net.finalize_step();
  const double before = net.contention(1);
  net.set_uplink_degradation(0, 0.1);
  net.begin_step();
  net.add_job_traffic(1, {0, 4}, 90.0);
  net.finalize_step();
  EXPECT_LT(net.contention(1), before);
}

// -------------------------------------------------------------- scheduler

JobSpec make_job(std::uint64_t id, std::size_t nodes, Duration duration,
                 TimePoint submit = 0, Duration walltime = 0) {
  JobSpec spec;
  spec.id = id;
  spec.user = "u";
  spec.submit_time = submit;
  spec.nodes_requested = nodes;
  JobPhase phase;
  phase.nominal_duration = duration;
  phase.cpu_util = 0.9;
  spec.phases = {phase};
  spec.walltime_requested = walltime ? walltime : duration * 2;
  return spec;
}

TEST(Scheduler, StartsJobWhenNodesFree) {
  Scheduler sched(4, {});
  sched.submit(make_job(1, 2, kHour));
  sched.schedule(0);
  ASSERT_EQ(sched.running().size(), 1u);
  EXPECT_EQ(sched.free_node_count(), 2u);
}

TEST(Scheduler, NoDoubleAllocation) {
  Scheduler sched(4, {});
  sched.submit(make_job(1, 3, kHour));
  sched.submit(make_job(2, 3, kHour));
  sched.schedule(0);
  EXPECT_EQ(sched.running().size(), 1u);  // second job does not fit
  std::set<std::size_t> used;
  for (const auto& job : sched.running()) {
    for (std::size_t n : job.nodes) EXPECT_TRUE(used.insert(n).second);
  }
}

TEST(Scheduler, JobFinishesAfterProgress) {
  Scheduler sched(2, {});
  sched.submit(make_job(1, 1, 100));
  sched.schedule(0);
  sched.advance_job(1, 100.0, 5000.0);
  const auto reaped = sched.reap(100, 1e9);
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_EQ(reaped[0].outcome, JobOutcome::kFinished);
  EXPECT_DOUBLE_EQ(reaped[0].energy_j, 5000.0);
  EXPECT_EQ(sched.free_node_count(), 2u);
}

TEST(Scheduler, WalltimeKill) {
  Scheduler sched(1, {});
  auto job = make_job(1, 1, 10 * kHour, 0, kHour);  // runs longer than request
  sched.submit(job);
  sched.schedule(0);
  sched.advance_job(1, 60.0, 0.0);
  const auto reaped = sched.reap(kHour + 1, 1e9);
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_EQ(reaped[0].outcome, JobOutcome::kKilledWalltime);
}

TEST(Scheduler, OomKill) {
  Scheduler sched(1, {});
  auto job = make_job(1, 1, 10 * kHour);
  job.job_class = JobClass::kMemoryLeak;
  sched.submit(job);
  sched.schedule(0);
  // After ~3 hours the leak (1.5 GB/min) exceeds a 64 GB node.
  const auto reaped = sched.reap(3 * kHour, 64.0);
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_EQ(reaped[0].outcome, JobOutcome::kFailedOom);
}

TEST(Scheduler, FcfsBlocksBehindBigJob) {
  SchedulerParams params;
  params.discipline = QueueDiscipline::kFcfs;
  Scheduler sched(4, params);
  sched.submit(make_job(1, 3, kHour));   // running
  sched.schedule(0);
  sched.submit(make_job(2, 2, kHour));   // head, cannot fit (only 1 free)
  sched.submit(make_job(3, 1, kMinute)); // would fit but FCFS blocks it
  sched.schedule(0);
  EXPECT_EQ(sched.running().size(), 1u);
}

TEST(Scheduler, BackfillRunsSmallJob) {
  SchedulerParams params;
  params.discipline = QueueDiscipline::kEasyBackfill;
  Scheduler sched(4, params);
  sched.submit(make_job(1, 3, kHour, 0, kHour));
  sched.schedule(0);
  sched.submit(make_job(2, 2, kHour, 0, kHour));     // head reservation
  sched.submit(make_job(3, 1, kMinute, 0, 2 * kMinute));  // backfillable
  sched.schedule(0);
  EXPECT_EQ(sched.running().size(), 2u);  // big + backfilled small
}

TEST(Scheduler, BackfillNeverDelaysHead) {
  SchedulerParams params;
  params.discipline = QueueDiscipline::kEasyBackfill;
  Scheduler sched(4, params);
  sched.submit(make_job(1, 3, kHour, 0, kHour));
  sched.schedule(0);
  sched.submit(make_job(2, 2, kHour, 0, kHour));
  // This job's walltime exceeds the head's reservation window: must wait.
  sched.submit(make_job(3, 1, 3 * kHour, 0, 3 * kHour));
  sched.schedule(0);
  EXPECT_EQ(sched.running().size(), 1u);
}

TEST(Scheduler, RejectsOversizedJob) {
  Scheduler sched(2, {});
  EXPECT_THROW(sched.submit(make_job(1, 5, kHour)), ContractError);
}

// --------------------------------------------------------------- facility

TEST(Facility, PueAboveOne) {
  Facility f({});
  for (int i = 0; i < 100; ++i) f.step(15000.0, 10.0, 15);
  EXPECT_GT(f.pue(), 1.0);
  EXPECT_LT(f.pue(), 2.0);
}

TEST(Facility, FreeCoolingWhenCold) {
  Facility f({});
  for (int i = 0; i < 100; ++i) f.step(15000.0, 5.0, 15);
  EXPECT_TRUE(f.free_cooling_active());
  EXPECT_DOUBLE_EQ(f.chiller_power_w(), 0.0);
}

TEST(Facility, ChillerWhenHot) {
  Facility f({});
  for (int i = 0; i < 100; ++i) f.step(15000.0, 35.0, 15);
  EXPECT_FALSE(f.free_cooling_active());
  EXPECT_GT(f.chiller_power_w(), 0.0);
}

TEST(Facility, HigherSetpointImprovesCop) {
  Facility cold({}), warm({});
  cold.set_supply_setpoint_c(20.0);
  warm.set_supply_setpoint_c(40.0);
  cold.set_cooling_mode(CoolingMode::kChillerOnly);
  warm.set_cooling_mode(CoolingMode::kChillerOnly);
  for (int i = 0; i < 100; ++i) {
    cold.step(15000.0, 18.0, 15);
    warm.step(15000.0, 18.0, 15);
  }
  EXPECT_GT(warm.chiller_cop(), cold.chiller_cop());
  EXPECT_LT(warm.chiller_power_w(), cold.chiller_power_w());
}

TEST(Facility, SupplyTempApproachesSetpoint) {
  Facility f({});
  f.set_supply_setpoint_c(25.0);
  for (int i = 0; i < 1000; ++i) f.step(15000.0, 5.0, 15);
  EXPECT_NEAR(f.supply_temp_c(), 25.0, 0.5);
}

TEST(Facility, PumpDegradationCostsPower) {
  Facility healthy({}), degraded({});
  degraded.set_pump_degradation(1.5);
  healthy.step(15000.0, 10.0, 15);
  degraded.step(15000.0, 10.0, 15);
  EXPECT_GT(degraded.pump_power_w(), healthy.pump_power_w());
}

TEST(Facility, KnobsClampToRange) {
  Facility f({});
  std::vector<KnobDef> knobs;
  f.enumerate_knobs(knobs);
  KnobRegistry registry;
  for (auto& k : knobs) registry.add(std::move(k));
  registry.set("facility/supply_setpoint", 999.0);
  EXPECT_LE(registry.get("facility/supply_setpoint"), f.params().supply_max_c);
}

// ----------------------------------------------------------------- faults

TEST(Faults, StuckSensorFreezesValue) {
  FaultInjector inj;
  inj.schedule({FaultKind::kSensorStuck, "s", 100, 200, 0.0});
  Rng rng(1);
  const double frozen = inj.apply_sensor_faults("s", 5.0, 100, rng);
  EXPECT_DOUBLE_EQ(frozen, 5.0);
  EXPECT_DOUBLE_EQ(inj.apply_sensor_faults("s", 77.0, 150, rng), 5.0);
  EXPECT_DOUBLE_EQ(inj.apply_sensor_faults("s", 77.0, 250, rng), 77.0);
}

TEST(Faults, DriftGrowsOverTime) {
  FaultInjector inj;
  inj.schedule({FaultKind::kSensorDrift, "s", 0, 10 * kHour, 2.0});  // 2/h
  Rng rng(1);
  EXPECT_NEAR(inj.apply_sensor_faults("s", 10.0, 2 * kHour, rng), 14.0, 1e-9);
}

TEST(Faults, OtherSensorsUnaffected) {
  FaultInjector inj;
  inj.schedule({FaultKind::kSensorNoise, "a", 0, kHour, 10.0});
  Rng rng(1);
  EXPECT_DOUBLE_EQ(inj.apply_sensor_faults("b", 3.0, 100, rng), 3.0);
}

TEST(Faults, ComponentHookFiredOnWindow) {
  FaultInjector inj;
  int activations = 0, deactivations = 0;
  inj.set_component_hook([&](const FaultEvent&, bool on) {
    on ? ++activations : ++deactivations;
  });
  inj.schedule({FaultKind::kFanFailure, "rack00/node00", 100, 200, 1.0});
  inj.step(0, 50);
  EXPECT_EQ(activations, 0);
  inj.step(50, 150);
  EXPECT_EQ(activations, 1);
  inj.step(150, 180);
  EXPECT_EQ(activations, 1);  // not re-fired
  inj.step(180, 250);
  EXPECT_EQ(deactivations, 1);
}

TEST(Faults, GroundTruthQuery) {
  FaultInjector inj;
  inj.schedule({FaultKind::kFanFailure, "rack00/node03", 100, 200, 1.0});
  EXPECT_TRUE(inj.any_active_at(150, "rack00/node03"));
  EXPECT_FALSE(inj.any_active_at(50, "rack00/node03"));
  EXPECT_FALSE(inj.any_active_at(150, "rack01"));
}

// ---------------------------------------------------------------- cluster

TEST(Cluster, RunsAndAccumulatesEnergy) {
  ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 4;
  ClusterSimulation cluster(params);
  cluster.run_for(kHour);
  EXPECT_EQ(cluster.now(), kHour);
  EXPECT_GT(cluster.it_power_w(), 0.0);
  EXPECT_GT(cluster.facility_energy_j(), cluster.it_energy_j());
}

TEST(Cluster, DeterministicForSeed) {
  ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 4;
  ClusterSimulation a(params), b(params);
  a.run_for(2 * kHour);
  b.run_for(2 * kHour);
  EXPECT_DOUBLE_EQ(a.it_power_w(), b.it_power_w());
  EXPECT_EQ(a.scheduler().completed().size(), b.scheduler().completed().size());
}

TEST(Cluster, SensorReadMatchesDirectState) {
  ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 4;
  ClusterSimulation cluster(params);
  cluster.run_for(30 * kMinute);
  EXPECT_DOUBLE_EQ(cluster.read_sensor("cluster/it_power"), cluster.it_power_w());
  EXPECT_DOUBLE_EQ(cluster.read_sensor("rack00/node00/power"),
                   cluster.node(0).power_w());
}

TEST(Cluster, UnknownSensorThrows) {
  ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 2;
  ClusterSimulation cluster(params);
  EXPECT_THROW(cluster.read_sensor("no/such/sensor"), ContractError);
  EXPECT_FALSE(cluster.has_sensor("no/such/sensor"));
  EXPECT_TRUE(cluster.has_sensor("facility/pue"));
}

TEST(Cluster, KnobChangesPropagate) {
  ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 2;
  ClusterSimulation cluster(params);
  cluster.knobs().set("facility/supply_setpoint", 40.0);
  cluster.run_for(2 * kHour);
  EXPECT_NEAR(cluster.facility().supply_temp_c(), 40.0, 2.0);
}

TEST(Cluster, RackInletTracksLoadCoupling) {
  ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 4;
  params.workload.peak_arrival_rate_per_hour = 0.0;  // idle machine
  ClusterSimulation cluster(params);
  cluster.run_for(kHour);
  const double idle_inlet = cluster.rack_inlet_temp_c(0);
  // Manually saturate rack 0 with jobs.
  cluster.set_workload_enabled(false);
  JobSpec spec;
  spec.id = 9999;
  spec.user = "u";
  spec.nodes_requested = 4;
  JobPhase phase;
  phase.nominal_duration = 4 * kHour;
  phase.cpu_util = 1.0;
  spec.phases = {phase};
  spec.walltime_requested = 8 * kHour;
  cluster.scheduler().submit(spec);
  cluster.run_for(kHour);
  EXPECT_GT(cluster.rack_inlet_temp_c(0), idle_inlet + 1.0);
}

TEST(Cluster, FanFailureFaultPropagatesToTelemetry) {
  ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 2;
  params.workload.peak_arrival_rate_per_hour = 0.0;
  ClusterSimulation cluster(params);
  cluster.set_workload_enabled(false);
  // Keep node 0 busy so the fan matters.
  JobSpec spec;
  spec.id = 1;
  spec.user = "u";
  spec.nodes_requested = 1;
  JobPhase phase;
  phase.nominal_duration = 6 * kHour;
  phase.cpu_util = 1.0;
  spec.phases = {phase};
  spec.walltime_requested = 12 * kHour;
  cluster.scheduler().submit(spec);
  cluster.run_for(kHour);
  const double before = cluster.read_sensor("rack00/node00/cpu_temp");
  cluster.faults().schedule({FaultKind::kFanFailure, "rack00/node00",
                             cluster.now(), cluster.now() + 6 * kHour, 1.0});
  cluster.run_for(kHour);
  EXPECT_GT(cluster.read_sensor("rack00/node00/cpu_temp"), before + 3.0);
}

TEST(Cluster, JobsCompleteOverDay) {
  ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 8;
  params.workload.peak_arrival_rate_per_hour = 30.0;
  params.workload.max_duration = 2 * kHour;
  ClusterSimulation cluster(params);
  cluster.run_for(kDay);
  EXPECT_GT(cluster.scheduler().completed().size(), 20u);
  // Energy accounted on completed jobs.
  for (const auto& r : cluster.scheduler().completed()) {
    if (r.outcome == JobOutcome::kFinished) {
      EXPECT_GT(r.energy_j, 0.0);
    }
  }
}

}  // namespace
}  // namespace oda::sim
