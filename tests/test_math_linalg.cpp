// Unit + property tests for the linear-algebra and regression kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "math/matrix.hpp"
#include "math/regression.hpp"

namespace oda::math {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(m(2, 0), ContractError);
}

TEST(Matrix, MultiplyKnown) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, IdentityIsNeutral) {
  Rng rng(1);
  Matrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1, 1);
  }
  EXPECT_LT((a * Matrix::identity(4)).max_abs_diff(a), 1e-12);
}

TEST(Matrix, TransposeInvolution) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_LT(a.transpose().transpose().max_abs_diff(a), 1e-15);
}

TEST(Matrix, MatVec) {
  Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> v{1.0, 1.0};
  const auto out = a * std::span<const double>(v);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(LuSolve, RecoverSolution) {
  Matrix a{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
  const auto x = lu_solve(a, {8, -11, -3});
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
  EXPECT_NEAR(x[2], -1.0, 1e-10);
}

TEST(LuSolve, SingularThrows) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(lu_solve(a, {1, 2}), ContractError);
}

TEST(Cholesky, FactorReconstructs) {
  Matrix a{{4, 2, 0}, {2, 5, 1}, {0, 1, 3}};
  const Matrix l = cholesky(a);
  EXPECT_LT((l * l.transpose()).max_abs_diff(a), 1e-10);
}

TEST(Cholesky, NotPositiveDefiniteThrows) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(a), ContractError);
}

TEST(CholeskySolve, MatchesLu) {
  Matrix a{{6, 2, 1}, {2, 5, 2}, {1, 2, 4}};
  const std::vector<double> b{1, 2, 3};
  const auto x1 = cholesky_solve(a, b);
  const auto x2 = lu_solve(a, b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(Qr, LeastSquaresExactSystem) {
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  // b generated from x = (2, -1): residual-free after projection of an
  // exactly consistent system.
  const std::vector<double> b{2, -1, 1};
  const auto x = qr_decompose(a).solve(b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], -1.0, 1e-10);
}

TEST(Qr, ResidualOrthogonalToColumns) {
  Rng rng(3);
  Matrix a(20, 3);
  std::vector<double> b(20);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
    b[r] = rng.normal();
  }
  const auto x = qr_decompose(a).solve(b);
  // r = b - A x must be orthogonal to every column of A.
  std::vector<double> res = b;
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 3; ++c) res[r] -= a(r, c) * x[c];
  }
  for (std::size_t c = 0; c < 3; ++c) {
    double dot = 0.0;
    for (std::size_t r = 0; r < 20; ++r) dot += a(r, c) * res[r];
    EXPECT_NEAR(dot, 0.0, 1e-9);
  }
}

TEST(JacobiEigen, DiagonalMatrix) {
  Matrix a{{3, 0}, {0, 1}};
  const auto eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(JacobiEigen, EigenEquationHolds) {
  Rng rng(5);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r; c < n; ++c) {
      a(r, c) = a(c, r) = rng.normal();
    }
  }
  const auto eig = jacobi_eigen(a);
  for (std::size_t k = 0; k < n; ++k) {
    const auto v = eig.vectors.col(k);
    const auto av = a * std::span<const double>(v);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], eig.values[k] * v[i], 1e-8);
    }
  }
  // Eigenvalues sorted descending.
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_GE(eig.values[k - 1], eig.values[k]);
  }
}

TEST(JacobiEigen, TraceEqualsEigenSum) {
  Rng rng(7);
  Matrix a(5, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = r; c < 5; ++c) a(r, c) = a(c, r) = rng.uniform(-2, 2);
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < 5; ++i) trace += a(i, i);
  const auto eig = jacobi_eigen(a);
  double sum = 0.0;
  for (double v : eig.values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-9);
}

// ------------------------------------------------------------- regression

TEST(Ols, RecoversKnownCoefficients) {
  Rng rng(11);
  Matrix x(200, 2);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform(-5, 5);
    x(i, 1) = rng.uniform(-5, 5);
    y[i] = 3.0 + 2.0 * x(i, 0) - 1.5 * x(i, 1) + rng.normal(0.0, 0.01);
  }
  const auto model = fit_ols(x, y);
  EXPECT_NEAR(model.intercept, 3.0, 0.01);
  EXPECT_NEAR(model.coefficients[0], 2.0, 0.01);
  EXPECT_NEAR(model.coefficients[1], -1.5, 0.01);
  EXPECT_GT(model.r_squared, 0.999);
}

TEST(Ridge, ShrinksTowardZero) {
  Rng rng(13);
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    y[i] = 4.0 * x(i, 0) + rng.normal(0.0, 0.1);
  }
  const auto free = fit_ridge(x, y, 0.0);
  const auto strong = fit_ridge(x, y, 1000.0);
  EXPECT_NEAR(free.coefficients[0], 4.0, 0.1);
  EXPECT_LT(std::abs(strong.coefficients[0]), std::abs(free.coefficients[0]));
}

TEST(Trend, KnownLine) {
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) y.push_back(2.0 + 0.5 * i);
  const auto t = fit_trend(y);
  EXPECT_NEAR(t.slope, 0.5, 1e-10);
  EXPECT_NEAR(t.intercept, 2.0, 1e-10);
  EXPECT_NEAR(t.r_squared, 1.0, 1e-10);
}

TEST(Trend, ConstantSeries) {
  std::vector<double> y(20, 7.0);
  const auto t = fit_trend(y);
  EXPECT_NEAR(t.slope, 0.0, 1e-12);
  EXPECT_NEAR(t.intercept, 7.0, 1e-12);
}

TEST(Polynomial, FitsQuadratic) {
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    const double t = static_cast<double>(i);
    y.push_back(1.0 - 2.0 * t + 0.5 * t * t);
  }
  const auto coeffs = fit_polynomial(y, 2);
  ASSERT_EQ(coeffs.size(), 3u);
  EXPECT_NEAR(coeffs[0], 1.0, 1e-6);
  EXPECT_NEAR(coeffs[1], -2.0, 1e-6);
  EXPECT_NEAR(coeffs[2], 0.5, 1e-6);
  EXPECT_NEAR(eval_polynomial(coeffs, 10.0), 1.0 - 20.0 + 50.0, 1e-6);
}

TEST(TheilSen, RobustAgainstOutliers) {
  Rng rng(17);
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) y.push_back(1.0 + 0.3 * i + rng.normal(0.0, 0.05));
  // Corrupt 20% of the points badly.
  for (int i = 0; i < 20; ++i) y[static_cast<std::size_t>(rng.uniform_int(0, 99))] += 500.0;
  const auto robust = fit_theil_sen(y);
  const auto ls = fit_trend(y);
  EXPECT_NEAR(robust.slope, 0.3, 0.05);
  // The LS fit is dragged much further from the truth.
  EXPECT_GT(std::abs(ls.intercept - 1.0), std::abs(robust.intercept - 1.0));
}

TEST(TheilSen, SubsamplingPathConsistent) {
  Rng rng(19);
  std::vector<double> y;
  for (int i = 0; i < 600; ++i) y.push_back(5.0 - 0.2 * i + rng.normal(0.0, 0.1));
  const auto t = fit_theil_sen(y, /*max_pairs=*/2000);  // forces subsampling
  EXPECT_NEAR(t.slope, -0.2, 0.02);
}

}  // namespace
}  // namespace oda::math
