// Property, fault-injection, and crash-equivalence tests for the durable
// write-ahead log (src/telemetry/wal.*):
//
//  * codec round-trips of edge values — NaN payloads, infinities, -0.0,
//    denormals, the full int64 TimePoint range — must replay bit-exactly;
//  * every single-byte mutation of a valid segment is rejected or cleanly
//    truncated to a record-aligned prefix, never mis-parsed or crashed on;
//  * FaultFs storage faults (torn writes, flipped CRC bytes, short reads,
//    ENOSPC, fsync failure) degrade the Wal to in-memory-only mode with
//    exact sample conservation (accepted == committed + lost) and flip the
//    oda_wal_degraded gauge the health check reads;
//  * a store rebuilt by replay is bit-identical to one fed the same stream
//    through the normal ingest path (the test_store_equiv surface);
//  * a TSan-visible race test: concurrent appenders plus a flusher.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "telemetry/series_id.hpp"
#include "telemetry/store.hpp"
#include "telemetry/wal.hpp"

namespace oda::telemetry {
namespace {

/// Fresh scratch directory under /tmp, unique per test, removed on setup so
/// reruns never see a previous run's segments.
std::string scratch_dir(const std::string& name) {
  const std::string dir = "/tmp/oda_test_wal_" + name;
  std::string cmd = "rm -rf " + dir;
  (void)std::system(cmd.c_str());
  return dir;
}

bool bits_equal(double a, double b) {
  std::uint64_t ab = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ab, &a, 8);
  std::memcpy(&bb, &b, 8);
  return ab == bb;
}

bool same_reading(const IdReading& a, const IdReading& b) {
  return a.id.value == b.id.value && a.sample.time == b.sample.time &&
         bits_equal(a.sample.value, b.sample.value);
}

/// Interns `n` test-local series paths. Each test uses a distinct prefix so
/// the process-wide interner never aliases two tests' series.
std::vector<SeriesId> make_ids(const std::string& prefix, std::size_t n) {
  std::vector<SeriesId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(
        SeriesInterner::global().intern(prefix + "/s" + std::to_string(i)));
  }
  return ids;
}

/// Writes `readings` through a fresh Wal (recover -> start -> append ->
/// flush -> stop). Returns false if anything degraded along the way.
bool write_wal(const std::string& dir, std::span<const IdReading> readings,
               WalFs* fs = nullptr, std::size_t segment_max = 4u << 20) {
  Wal wal(WalOptions{.dir = dir, .segment_max_bytes = segment_max}, fs);
  std::vector<IdReading> recovered;
  wal.recover(recovered);
  if (!wal.start()) return false;
  const bool appended = wal.append(readings);
  const bool flushed = wal.flush();
  wal.stop();
  return appended && flushed && !wal.degraded();
}

std::vector<IdReading> recover_wal(const std::string& dir,
                                   WalRecoveryStats* stats = nullptr,
                                   WalFs* fs = nullptr) {
  Wal wal(WalOptions{.dir = dir}, fs);
  std::vector<IdReading> out;
  const WalRecoveryStats s = wal.recover(out);
  if (stats != nullptr) *stats = s;
  return out;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!wal_enabled()) GTEST_SKIP() << "ODA_WAL=OFF";
  }
};

// ----------------------------------------------------------- codec round-trip

TEST_F(WalTest, RoundTripsEdgeValuesBitExactly) {
  const std::string dir = scratch_dir("edge");
  const auto ids = make_ids("walt/edge", 6);

  const double quiet_nan = std::numeric_limits<double>::quiet_NaN();
  const double sig_nan = std::numeric_limits<double>::signaling_NaN();
  const double denorm = std::numeric_limits<double>::denorm_min();
  const double inf = std::numeric_limits<double>::infinity();
  constexpr TimePoint kTimeMin = std::numeric_limits<TimePoint>::min();
  constexpr TimePoint kTimeMax = std::numeric_limits<TimePoint>::max();

  const std::vector<IdReading> readings = {
      {ids[0], {0, quiet_nan}},
      {ids[1], {kTimeMax, sig_nan}},
      {ids[2], {kTimeMin, -0.0}},
      {ids[3], {-1, denorm}},
      {ids[4], {1, inf}},
      {ids[5], {kTimeMax, -inf}},
      // Delta swings across the whole int64 range (max -> min -> max).
      {ids[0], {kTimeMin, 1.0}},
      {ids[0], {kTimeMax, -denorm}},
      {ids[1], {42, std::numeric_limits<double>::max()}},
      {ids[1], {41, std::numeric_limits<double>::lowest()}},
  };
  ASSERT_TRUE(write_wal(dir, readings));

  WalRecoveryStats stats;
  const auto recovered = recover_wal(dir, &stats);
  EXPECT_FALSE(stats.tail_truncated);
  ASSERT_EQ(recovered.size(), readings.size());
  for (std::size_t i = 0; i < readings.size(); ++i) {
    EXPECT_TRUE(same_reading(recovered[i], readings[i])) << "reading " << i;
  }
}

TEST_F(WalTest, RotatesSegmentsAndReplaysInOrder) {
  const std::string dir = scratch_dir("rotate");
  const auto ids = make_ids("walt/rotate", 4);
  std::vector<IdReading> readings;
  for (int i = 0; i < 500; ++i) {
    readings.push_back(
        {ids[static_cast<std::size_t>(i) % 4], {i, i * 0.5}});
  }
  // Tiny segment cap + small batches: rotation happens between group
  // commits, so one giant append would still land in a single segment.
  {
    Wal wal(WalOptions{.dir = dir, .segment_max_bytes = 256});
    std::vector<IdReading> rec;
    wal.recover(rec);
    ASSERT_TRUE(wal.start());
    for (std::size_t i = 0; i < readings.size(); i += 10) {
      const std::size_t n = std::min<std::size_t>(10, readings.size() - i);
      ASSERT_TRUE(wal.append(
          std::span<const IdReading>(readings.data() + i, n)));
      ASSERT_TRUE(wal.flush());  // one commit per batch -> many rotations
    }
    wal.stop();
    ASSERT_FALSE(wal.degraded());
  }

  WalRecoveryStats stats;
  const auto recovered = recover_wal(dir, &stats);
  EXPECT_GT(stats.segments_scanned, 1u) << "rotation never happened";
  ASSERT_EQ(recovered.size(), readings.size());
  for (std::size_t i = 0; i < readings.size(); ++i) {
    ASSERT_TRUE(same_reading(recovered[i], readings[i])) << "reading " << i;
  }
}

TEST_F(WalTest, ReplayedStoreIsBitIdenticalToDirectIngest) {
  const std::string dir = scratch_dir("equiv");
  const auto ids = make_ids("walt/equiv", 8);
  std::vector<IdReading> readings;
  for (int i = 0; i < 1000; ++i) {
    const double v = (i % 31 == 0) ? std::nan("") : std::sin(i * 0.1) * 1e6;
    readings.push_back({ids[static_cast<std::size_t>(i) % 8], {i / 8, v}});
  }

  // Reference: the same stream through the plain ingest path, no WAL.
  TimeSeriesStore reference(1 << 10);
  for (const auto& r : readings) reference.insert(r.id, r.sample);

  // Live: WAL attached during ingest, then a fresh store rebuilt by replay.
  {
    TimeSeriesStore live(1 << 10);
    Wal wal(WalOptions{.dir = dir});
    wal.recover_into(live);
    live.set_wal(&wal);
    ASSERT_TRUE(wal.start());
    live.insert_batch(std::span<const IdReading>(readings));
    live.set_wal(nullptr);
    ASSERT_TRUE(wal.flush());
    wal.stop();
    EXPECT_EQ(wal.accepted_samples(), readings.size());
    EXPECT_EQ(wal.committed_samples(), readings.size());
    EXPECT_EQ(wal.lost_samples(), 0u);
  }
  TimeSeriesStore replayed(1 << 10);
  Wal wal2(WalOptions{.dir = dir});
  const WalRecoveryStats stats = wal2.recover_into(replayed);
  EXPECT_EQ(stats.samples_replayed, readings.size());
  EXPECT_FALSE(stats.tail_truncated);

  for (const SeriesId id : ids) {
    const std::string& path = SeriesInterner::global().path(id);
    const SeriesSlice want = reference.query_all(path);
    const SeriesSlice got = replayed.query_all(path);
    ASSERT_EQ(got.times, want.times) << path;
    ASSERT_EQ(got.values.size(), want.values.size()) << path;
    EXPECT_EQ(std::memcmp(got.values.data(), want.values.data(),
                          want.values.size() * sizeof(double)),
              0)
        << path << ": replayed values are not bit-identical";
  }
}

// --------------------------------------------------------- mutation property

TEST_F(WalTest, EverySingleByteMutationTruncatesCleanly) {
  const std::string dir = scratch_dir("mutate");
  const auto ids = make_ids("walt/mutate", 3);
  std::vector<IdReading> readings;
  for (int i = 0; i < 24; ++i) {
    readings.push_back({ids[static_cast<std::size_t>(i) % 3],
                        {i, (i % 7 == 0) ? std::nan("") : i * 1.25}});
  }
  ASSERT_TRUE(write_wal(dir, readings));

  // Baseline: the pristine segment bytes and the decoded sample sequence.
  PosixWalFs posix;
  const auto files = posix.list(dir);
  ASSERT_EQ(files.size(), 1u);
  const std::string seg = dir + "/" + files[0];
  std::string pristine;
  ASSERT_TRUE(posix.read_file(seg, pristine));
  const auto baseline = recover_wal(dir);
  ASSERT_EQ(baseline.size(), readings.size());

  const std::uint8_t masks[] = {0x01, 0x80, 0xFF};
  for (std::size_t off = 0; off < pristine.size(); ++off) {
    for (const std::uint8_t mask : masks) {
      std::string mutated = pristine;
      mutated[off] = static_cast<char>(mutated[off] ^ mask);
      {
        std::ofstream f(seg, std::ios::binary | std::ios::trunc);
        f.write(mutated.data(),
                static_cast<std::streamsize>(mutated.size()));
      }
      WalRecoveryStats stats;
      const auto recovered = recover_wal(dir, &stats);
      // The recovered stream must be an exact prefix of the baseline:
      // corruption may only ever shorten the data, never alter it.
      ASSERT_LT(recovered.size(), baseline.size())
          << "offset " << off << " mask " << int(mask)
          << ": mutation went undetected";
      for (std::size_t i = 0; i < recovered.size(); ++i) {
        ASSERT_TRUE(same_reading(recovered[i], baseline[i]))
            << "offset " << off << " mask " << int(mask) << " reading " << i
            << ": mutated segment mis-parsed (not a prefix)";
      }
      EXPECT_TRUE(stats.tail_truncated || stats.truncated_segments > 0)
          << "offset " << off << " mask " << int(mask);
      EXPECT_FALSE(stats.truncate_reason.empty());
    }
  }
}

TEST_F(WalTest, TornTailIsTruncatedAndEarlierRecordsSurvive) {
  const std::string dir = scratch_dir("torn");
  const auto ids = make_ids("walt/torn", 2);
  std::vector<IdReading> readings;
  for (int i = 0; i < 40; ++i) {
    readings.push_back({ids[static_cast<std::size_t>(i) % 2], {i, i * 2.0}});
  }
  ASSERT_TRUE(write_wal(dir, readings));

  PosixWalFs posix;
  const auto files = posix.list(dir);
  ASSERT_EQ(files.size(), 1u);
  const std::string seg = dir + "/" + files[0];
  const std::int64_t size = posix.file_size(seg);
  ASSERT_GT(size, 16);
  // Chop mid-record: everything decodable before the cut must survive,
  // everything after must be accounted as truncated.
  ASSERT_TRUE(posix.truncate_file(seg, static_cast<std::uint64_t>(size) - 5));

  WalRecoveryStats stats;
  const auto recovered = recover_wal(dir, &stats);
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_EQ(stats.truncate_reason, "short_record");
  EXPECT_GT(stats.truncated_bytes, 0u);
  ASSERT_LE(recovered.size(), readings.size());
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    ASSERT_TRUE(same_reading(recovered[i], readings[i]));
  }
}

// ----------------------------------------------------------- fault injection

TEST_F(WalTest, TornWriteDegradesWithExactConservation) {
  const std::string dir = scratch_dir("fault_torn");
  const auto ids = make_ids("walt/fault_torn", 2);
  PosixWalFs posix;
  FaultFs faults(posix);

  Wal wal(WalOptions{.dir = dir}, &faults);
  std::vector<IdReading> recovered;
  wal.recover(recovered);
  ASSERT_TRUE(wal.start());

  std::vector<IdReading> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back({ids[static_cast<std::size_t>(i) % 2], {i, i * 1.0}});
  }
  ASSERT_TRUE(wal.append(std::span<const IdReading>(batch)));
  ASSERT_TRUE(wal.flush());

  // Arm a torn write: next commit writes a partial record then fails.
  faults.fail_next_append_after(7);
  wal.append(std::span<const IdReading>(batch));
  wal.flush();  // forces the commit; returns false once degraded
  EXPECT_TRUE(wal.degraded());
  EXPECT_EQ(faults.appends_failed(), 1u);

  // Further appends are refused and counted lost, never blocking.
  EXPECT_FALSE(wal.append(std::span<const IdReading>(batch)));
  wal.stop();
  EXPECT_EQ(wal.accepted_samples(), 3 * batch.size());
  EXPECT_EQ(wal.committed_samples() + wal.lost_samples(),
            wal.accepted_samples());
  EXPECT_EQ(wal.committed_samples(), batch.size());

  // Recovery after the torn commit: the first (fsynced) batch survives
  // bit-exactly; the torn tail is rolled back or truncated.
  WalRecoveryStats stats;
  const auto replay = recover_wal(dir, &stats);
  ASSERT_EQ(replay.size(), batch.size());
  for (std::size_t i = 0; i < replay.size(); ++i) {
    ASSERT_TRUE(same_reading(replay[i], batch[i]));
  }
}

TEST_F(WalTest, SilentCorruptionIsCaughtByCrcOnRecovery) {
  const std::string dir = scratch_dir("fault_crc");
  const auto ids = make_ids("walt/fault_crc", 1);
  PosixWalFs posix;
  FaultFs faults(posix);

  Wal wal(WalOptions{.dir = dir}, &faults);
  std::vector<IdReading> recovered;
  wal.recover(recovered);
  ASSERT_TRUE(wal.start());
  std::vector<IdReading> batch = {{ids[0], {1, 1.0}}, {ids[0], {2, 2.0}}};
  ASSERT_TRUE(wal.append(std::span<const IdReading>(batch)));
  ASSERT_TRUE(wal.flush());

  // Flip a byte inside the NEXT commit's buffer after the CRC was computed:
  // the write "succeeds" (silent media corruption), so the Wal stays
  // healthy — only recovery can catch it.
  faults.corrupt_next_append(/*offset=*/30, /*mask=*/0x40);
  std::vector<IdReading> batch2 = {{ids[0], {3, 3.0}}, {ids[0], {4, 4.0}}};
  ASSERT_TRUE(wal.append(std::span<const IdReading>(batch2)));
  ASSERT_TRUE(wal.flush());
  EXPECT_FALSE(wal.degraded());
  wal.stop();

  WalRecoveryStats stats;
  const auto replay = recover_wal(dir, &stats);
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_EQ(stats.truncate_reason, "crc_mismatch");
  // The fsynced first commit survives; the corrupted one is gone entirely.
  ASSERT_EQ(replay.size(), batch.size());
  for (std::size_t i = 0; i < replay.size(); ++i) {
    ASSERT_TRUE(same_reading(replay[i], batch[i]));
  }
}

TEST_F(WalTest, EnospcDegradesAndFlipsTheHealthGauge) {
  const std::string dir = scratch_dir("fault_enospc");
  const auto ids = make_ids("walt/fault_enospc", 1);
  PosixWalFs posix;
  FaultFs faults(posix);

  Wal wal(WalOptions{.dir = dir}, &faults);
  std::vector<IdReading> recovered;
  wal.recover(recovered);
  ASSERT_TRUE(wal.start());
  std::vector<IdReading> batch;
  for (int i = 0; i < 64; ++i) batch.push_back({ids[0], {i, i * 1.0}});
  ASSERT_TRUE(wal.append(std::span<const IdReading>(batch)));
  ASSERT_TRUE(wal.flush());

  // Exhaust the disk: the next commit hits ENOSPC mid-write.
  faults.set_space_budget(10);
  wal.append(std::span<const IdReading>(batch));
  wal.flush();
  EXPECT_TRUE(wal.degraded());
  wal.stop();
  EXPECT_EQ(wal.committed_samples() + wal.lost_samples(),
            wal.accepted_samples());

  // The degradation is observable: gauge raised, health check failing.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.total("oda_wal_degraded"), 1.0);
  const obs::PipelineHealthReport report = obs::assess_pipeline_health(snap);
  bool found = false;
  for (const auto& check : report.checks) {
    if (check.name == "wal.degraded") {
      found = true;
      EXPECT_FALSE(check.ok) << check.detail;
    }
  }
  EXPECT_TRUE(found) << "health report has no wal.degraded check";
  // Reset the process-wide gauge so later tests (and suites sharing the
  // registry) see a healthy WAL again.
  // Note: enter_degraded set it to 1; a fresh Wal never clears it because
  // degradation is per-Wal-instance, so the test restores it explicitly.
  obs::MetricsRegistry::global().gauge("oda_wal_degraded", "").set(0.0);
}

TEST_F(WalTest, FsyncFailureDegradesButKeepsWrittenPrefix) {
  const std::string dir = scratch_dir("fault_fsync");
  const auto ids = make_ids("walt/fault_fsync", 1);
  PosixWalFs posix;
  FaultFs faults(posix);

  Wal wal(WalOptions{.dir = dir}, &faults);
  std::vector<IdReading> recovered;
  wal.recover(recovered);
  ASSERT_TRUE(wal.start());
  std::vector<IdReading> batch = {{ids[0], {1, 1.0}}};
  ASSERT_TRUE(wal.append(std::span<const IdReading>(batch)));
  ASSERT_TRUE(wal.flush());

  faults.fail_fsync(1);
  wal.append(std::span<const IdReading>(batch));
  wal.flush();
  EXPECT_TRUE(wal.degraded());
  EXPECT_EQ(faults.fsyncs_failed(), 1u);
  wal.stop();
  EXPECT_EQ(wal.committed_samples() + wal.lost_samples(),
            wal.accepted_samples());
  obs::MetricsRegistry::global().gauge("oda_wal_degraded", "").set(0.0);
}

TEST_F(WalTest, ShortReadsTruncateInsteadOfCrashing) {
  const std::string dir = scratch_dir("fault_short");
  const auto ids = make_ids("walt/fault_short", 2);
  std::vector<IdReading> readings;
  for (int i = 0; i < 32; ++i) {
    readings.push_back({ids[static_cast<std::size_t>(i) % 2], {i, i * 3.0}});
  }
  ASSERT_TRUE(write_wal(dir, readings));

  PosixWalFs posix;
  FaultFs faults(posix);
  faults.set_short_read(20);  // every read returns at most 20 bytes
  WalRecoveryStats stats;
  const auto replay = recover_wal(dir, &stats, &faults);
  EXPECT_TRUE(stats.tail_truncated);
  // 20 bytes = magic + a partial record header: nothing decodable.
  EXPECT_TRUE(replay.empty());
  for (std::size_t i = 0; i < replay.size(); ++i) {
    ASSERT_TRUE(same_reading(replay[i], readings[i]));
  }
}

// -------------------------------------------------------------- concurrency

TEST_F(WalTest, ConcurrentAppendersConserveEverySample) {
  const std::string dir = scratch_dir("race");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;

  Wal wal(WalOptions{.dir = dir, .queue_capacity = 4});
  std::vector<IdReading> recovered;
  wal.recover(recovered);
  ASSERT_TRUE(wal.start());

  // Disjoint series per thread: the global interleaving is unspecified, but
  // each thread's per-series sample order must survive replay.
  std::vector<std::vector<SeriesId>> ids;
  for (int t = 0; t < kThreads; ++t) {
    ids.push_back(make_ids("walt/race_t" + std::to_string(t), 2));
  }
  std::atomic<bool> flusher_stop{false};
  std::thread flusher([&] {
    while (!flusher_stop.load(std::memory_order_acquire)) {
      wal.flush();
    }
  });
  std::vector<std::thread> appenders;
  for (int t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const IdReading r{ids[static_cast<std::size_t>(t)]
                             [static_cast<std::size_t>(i) % 2],
                          {i, t * 1000.0 + i}};
        ASSERT_TRUE(wal.append(std::span<const IdReading>(&r, 1)));
      }
    });
  }
  for (auto& th : appenders) th.join();
  flusher_stop.store(true, std::memory_order_release);
  flusher.join();
  ASSERT_TRUE(wal.flush());
  wal.stop();

  const std::size_t total = std::size_t{kThreads} * kPerThread;
  EXPECT_EQ(wal.accepted_samples(), total);
  EXPECT_EQ(wal.committed_samples(), total);
  EXPECT_EQ(wal.lost_samples(), 0u);

  const auto replay = recover_wal(dir);
  ASSERT_EQ(replay.size(), total);
  // Per-thread, per-series timestamps must be strictly increasing in replay
  // order (each appender wrote them that way).
  std::map<std::uint32_t, TimePoint> last_time;
  std::map<std::uint32_t, std::size_t> count;
  for (const auto& r : replay) {
    const auto it = last_time.find(r.id.value);
    if (it != last_time.end()) {
      EXPECT_LT(it->second, r.sample.time) << "series " << r.id.value;
    }
    last_time[r.id.value] = r.sample.time;
    ++count[r.id.value];
  }
  for (const auto& [sid, n] : count) {
    EXPECT_EQ(n, std::size_t{kPerThread} / 2) << "series " << sid;
  }
}

// ------------------------------------------------------------------- crc32c

TEST_F(WalTest, Crc32cMatchesKnownVectors) {
  // RFC 3720 test vector: crc32c("123456789") == 0xE3069283.
  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(digits, 9), 0xE3069283u);
  // Seed chaining: crc(a+b) == crc(b, seed=crc(a)).
  EXPECT_EQ(crc32c(digits + 4, 5, crc32c(digits, 4)), crc32c(digits, 9));
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

}  // namespace
}  // namespace oda::telemetry
