// Second property-test suite: physical-model monotonicity laws, telemetry
// thread-safety under concurrent load, seasonal-forecast structure, and
// workload-generator invariants — parameterized over the relevant input
// families.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "analytics/predictive/forecaster.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/store.hpp"

namespace oda {
namespace {

// ----------------------------------------- node physics monotonicity laws

class NodeUtilProperty : public ::testing::TestWithParam<double> {};

TEST_P(NodeUtilProperty, PowerMonotoneInUtilization) {
  const double util = GetParam();
  const auto settle = [](double u) {
    sim::Node node("n", {});
    sim::NodeDemand demand;
    demand.busy = true;
    demand.cpu_util = u;
    demand.mem_bw_util = 0.2;
    for (int i = 0; i < 600; ++i) node.step(demand, 25.0, 15);
    return node.power_w();
  };
  // Power at this utilization strictly exceeds power one notch below.
  EXPECT_GT(settle(util), settle(std::max(0.0, util - 0.2)) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Utils, NodeUtilProperty,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9),
                         [](const auto& suite_info) {
                           return "util" + std::to_string(static_cast<int>(
                                               suite_info.param * 100));
                         });

class NodeFreqProperty : public ::testing::TestWithParam<double> {};

TEST_P(NodeFreqProperty, ProgressAndPowerMonotoneInFrequency) {
  const double freq = GetParam();
  const auto settle = [](double f) {
    sim::NodeParams params;
    sim::Node node("n", params);
    std::vector<sim::KnobDef> knobs;
    node.enumerate_knobs(knobs);
    knobs[0].set(f);
    sim::NodeDemand demand;
    demand.busy = true;
    demand.cpu_util = 0.9;
    demand.mem_boundedness = 0.2;
    for (int i = 0; i < 600; ++i) node.step(demand, 25.0, 15);
    return std::pair<double, double>(node.power_w(), node.progress_rate());
  };
  const auto [p_hi, r_hi] = settle(freq);
  const auto [p_lo, r_lo] = settle(freq - 0.4);
  EXPECT_GT(p_hi, p_lo);
  EXPECT_GT(r_hi, r_lo);
}

INSTANTIATE_TEST_SUITE_P(Freqs, NodeFreqProperty,
                         ::testing::Values(1.8, 2.2, 2.6, 3.0),
                         [](const auto& suite_info) {
                           return "f" + std::to_string(static_cast<int>(
                                            suite_info.param * 10));
                         });

// ---------------------------------------------- facility monotonicity laws

class FacilitySetpointProperty : public ::testing::TestWithParam<double> {};

TEST_P(FacilitySetpointProperty, ChillerPowerFallsWithSetpoint) {
  const double setpoint = GetParam();
  // Hot wet-bulb (34 C) keeps the condenser above the evaporator across the
  // whole setpoint sweep, so the COP-vs-lift law is actually in play (at low
  // wet-bulb the lift clamps and chiller power saturates).
  const auto chiller_power = [](double sp) {
    sim::Facility facility({});
    facility.set_cooling_mode(sim::CoolingMode::kChillerOnly);
    facility.set_supply_setpoint_c(sp);
    for (int i = 0; i < 400; ++i) facility.step(15000.0, 34.0, 15);
    return facility.chiller_power_w();
  };
  EXPECT_LT(chiller_power(setpoint), chiller_power(setpoint - 4.0));
}

INSTANTIATE_TEST_SUITE_P(Setpoints, FacilitySetpointProperty,
                         ::testing::Values(26.0, 30.0, 34.0, 38.0),
                         [](const auto& suite_info) {
                           return "sp" + std::to_string(static_cast<int>(
                                             suite_info.param));
                         });

TEST(FacilityProperty, CoolingPowerScalesWithHeat) {
  sim::Facility a({}), b({});
  a.set_cooling_mode(sim::CoolingMode::kChillerOnly);
  b.set_cooling_mode(sim::CoolingMode::kChillerOnly);
  for (int i = 0; i < 200; ++i) {
    a.step(10000.0, 20.0, 15);
    b.step(20000.0, 20.0, 15);
  }
  EXPECT_NEAR(b.chiller_power_w() / a.chiller_power_w(), 2.0, 0.05);
}

// ----------------------------------------------- store concurrency safety

TEST(StoreConcurrency, ParallelWritersAndReadersStayConsistent) {
  telemetry::TimeSeriesStore store(1 << 14);
  constexpr int kWriters = 4;
  constexpr int kSamplesPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> read_errors{0};

  std::thread reader([&] {
    while (!stop.load()) {
      for (int w = 0; w < kWriters; ++w) {
        const std::string path = "w" + std::to_string(w);
        const auto slice = store.query_all(path);
        // Values are the timestamps: any retained sample must satisfy that.
        for (std::size_t i = 0; i < slice.size(); ++i) {
          if (slice.values[i] != static_cast<double>(slice.times[i])) {
            ++read_errors;
          }
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      const std::string path = "w" + std::to_string(w);
      for (int i = 0; i < kSamplesPerWriter; ++i) {
        store.insert(path, {i, static_cast<double>(i)});
      }
    });
  }
  for (auto& t : writers) t.join();
  stop = true;
  reader.join();

  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(store.total_inserted(),
            static_cast<std::uint64_t>(kWriters) * kSamplesPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    const auto slice = store.query_all("w" + std::to_string(w));
    // Retained window is the tail and strictly ordered.
    for (std::size_t i = 1; i < slice.size(); ++i) {
      EXPECT_EQ(slice.times[i], slice.times[i - 1] + 1);
    }
  }
}

TEST(BusConcurrency, ParallelPublishersDeliverEverything) {
  telemetry::MessageBus bus;
  std::atomic<std::uint64_t> received{0};
  bus.subscribe("*", [&](const telemetry::Reading&) { ++received; });
  constexpr int kPublishers = 4;
  constexpr int kEach = 10000;
  std::vector<std::thread> pubs;
  for (int p = 0; p < kPublishers; ++p) {
    pubs.emplace_back([&bus, p] {
      for (int i = 0; i < kEach; ++i) {
        bus.publish("topic" + std::to_string(p), i, 1.0);
      }
    });
  }
  for (auto& t : pubs) t.join();
  EXPECT_EQ(received.load(), static_cast<std::uint64_t>(kPublishers) * kEach);
}

// ------------------------------------------ seasonal forecast periodicity

class SeasonProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SeasonProperty, HoltWintersForecastRepeatsWithPeriod) {
  const std::size_t period = GetParam();
  std::vector<double> xs;
  for (std::size_t i = 0; i < period * 12; ++i) {
    xs.push_back(50.0 + 10.0 * std::sin(2.0 * M_PI * static_cast<double>(i) /
                                        static_cast<double>(period)));
  }
  analytics::HoltWintersForecaster hw(period);
  hw.fit(xs);
  const auto fc = hw.forecast(2 * period);
  for (std::size_t h = 0; h < period; ++h) {
    EXPECT_NEAR(fc[h], fc[h + period], 1.0) << "period " << period;
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, SeasonProperty,
                         ::testing::Values(8, 12, 24, 96));

// ----------------------------------------------- workload trace invariants

class TraceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceProperty, TraceWellFormed) {
  sim::WorkloadParams wp;
  wp.seed = GetParam();
  sim::WorkloadGenerator gen(wp);
  const auto trace = gen.generate_trace(200);
  ASSERT_EQ(trace.size(), 200u);
  std::set<std::uint64_t> ids;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& job = trace[i];
    EXPECT_TRUE(ids.insert(job.id).second);  // unique ids
    if (i > 0) {
      EXPECT_GE(job.submit_time, trace[i - 1].submit_time);
    }
    EXPECT_FALSE(job.phases.empty());
    EXPECT_FALSE(job.user.empty());
    Duration total = 0;
    for (const auto& phase : job.phases) {
      EXPECT_GT(phase.nominal_duration, 0);
      EXPECT_GE(phase.cpu_util, 0.0);
      EXPECT_LE(phase.cpu_util, 1.0);
      EXPECT_GE(phase.mem_boundedness, 0.0);
      EXPECT_LE(phase.mem_boundedness, 1.0);
      total += phase.nominal_duration;
    }
    EXPECT_EQ(total, job.nominal_duration());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceProperty,
                         ::testing::Values(1, 7, 42, 1337));

// ------------------------------------------------- cluster scaling property

class ClusterSizeProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ClusterSizeProperty, SensorCountMatchesGeometry) {
  const auto [racks, nodes_per_rack] = GetParam();
  sim::ClusterParams params;
  params.racks = racks;
  params.nodes_per_rack = nodes_per_rack;
  params.gpu_node_fraction = 0.0;  // uniform nodes: exact sensor arithmetic
  sim::ClusterSimulation cluster(params);
  // weather(2) + facility(11) + network(racks+1) + scheduler(6)
  // + nodes(10 each, no gpu) + cluster it_power(1) + per-rack power+inlet(2).
  const std::size_t expected = 2 + 11 + (racks + 1) + 6 +
                               racks * nodes_per_rack * 10 + 1 + 2 * racks;
  EXPECT_EQ(cluster.sensors().size(), expected);
  // One frequency knob per node + three facility knobs.
  EXPECT_EQ(cluster.knobs().paths().size(), racks * nodes_per_rack + 3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ClusterSizeProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 2},
                      std::pair<std::size_t, std::size_t>{2, 4},
                      std::pair<std::size_t, std::size_t>{3, 16}),
    [](const auto& suite_info) {
      return std::to_string(suite_info.param.first) + "x" +
             std::to_string(suite_info.param.second);
    });

}  // namespace
}  // namespace oda
