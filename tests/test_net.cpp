// The live introspection plane, end to end: the incremental HTTP/1.1
// parser (always compiled, exercised byte-by-byte / pipelined / malformed),
// the epoll HttpServer's connection policies (keep-alive, pipelining,
// oversized-header rejection, slow-loris idle eviction, connection-cap
// shedding, graceful stop), the ObsServer's endpoint routing, and the
// SelfScrape loop feeding the registry back into a TimeSeriesStore. The
// socket tests skip themselves under ODA_NET=OFF, where net_enabled() is
// false and the server compiles to inert stubs — the parser tests still
// run, since net/http.hpp is deliberately ungated.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/http.hpp"
#include "net/obs_server.hpp"
#include "net/reactor.hpp"
#include "net/self_scrape.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "telemetry/store.hpp"

namespace oda::net {
namespace {

using ParseStatus = oda::net::ParseStatus;

// ----------------------------------------------------------- test client

/// Blocking loopback client for the socket tests: connect, send raw bytes,
/// read one Content-Length-framed response (or everything until EOF).
int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Appends received bytes to `out` until `done(out)` says the message is
/// complete, the peer closes, or `timeout_s` elapses. Returns false only on
/// timeout/error — EOF with a satisfied predicate is success.
template <typename DonePredicate>
bool recv_until(int fd, std::string& out, DonePredicate done,
                double timeout_s = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  char buf[4096];
  while (!done(out)) {
    const auto remaining = deadline - std::chrono::steady_clock::now();
    const int remaining_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
            .count());
    if (remaining_ms <= 0) return false;
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, remaining_ms);
    if (pr <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) return false;
    if (n == 0) return done(out);  // EOF: fine iff the message is complete
    out.append(buf, static_cast<std::size_t>(n));
  }
  return true;
}

/// True once `text` holds at least one full Content-Length-framed response.
bool has_full_response(const std::string& text) {
  const std::size_t header_end = text.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  const std::size_t cl = text.find("Content-Length: ");
  if (cl == std::string::npos || cl > header_end) return false;
  const std::size_t len = static_cast<std::size_t>(
      std::strtoul(text.c_str() + cl + 16, nullptr, 10));
  return text.size() >= header_end + 4 + len;
}

/// Sends one request and reads one framed response.
std::string round_trip(int fd, const std::string& request,
                       double timeout_s = 5.0) {
  if (!send_all(fd, request)) return "";
  std::string out;
  if (!recv_until(fd, out, has_full_response, timeout_s)) return "";
  return out;
}

int response_code(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0) {
    return -1;
  }
  return std::atoi(response.c_str() + 9);
}

// ------------------------------------------------------ parser: happy path

TEST(HttpParser, SimpleGetParsesEveryField) {
  HttpParser p;
  const std::string req =
      "GET /profile?seconds=2&raw HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Accept: text/plain\r\n"
      "\r\n";
  ASSERT_EQ(p.feed(req.data(), req.size()), ParseStatus::kComplete);
  const HttpRequest& r = p.request();
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/profile?seconds=2&raw");
  EXPECT_EQ(r.path, "/profile");
  EXPECT_EQ(r.query, "seconds=2&raw");
  EXPECT_EQ(r.version_minor, 1);
  EXPECT_TRUE(r.keep_alive);
  ASSERT_NE(r.header("host"), nullptr);
  EXPECT_EQ(*r.header("host"), "localhost");
  EXPECT_EQ(r.header("x-missing"), nullptr);
  EXPECT_EQ(r.query_param("seconds"), "2");
  EXPECT_EQ(r.query_param("raw"), "");
  EXPECT_EQ(r.query_param("absent"), "");
}

TEST(HttpParser, ByteByByteFeedCompletesOnce) {
  HttpParser p;
  const std::string req = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  for (std::size_t i = 0; i + 1 < req.size(); ++i) {
    ASSERT_EQ(p.feed(&req[i], 1), ParseStatus::kNeedMore)
        << "completed early at byte " << i;
  }
  ASSERT_EQ(p.feed(&req[req.size() - 1], 1), ParseStatus::kComplete);
  EXPECT_EQ(p.request().path, "/metrics");
}

TEST(HttpParser, PipelinedRequestsComeOutInOrder) {
  HttpParser p;
  const std::string two =
      "GET /first HTTP/1.1\r\n\r\n"
      "GET /second HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(p.feed(two.data(), two.size()), ParseStatus::kComplete);
  EXPECT_EQ(p.request().path, "/first");
  EXPECT_GT(p.buffered(), p.request().target.size());
  ASSERT_EQ(p.next(), ParseStatus::kComplete);
  EXPECT_EQ(p.request().path, "/second");
  EXPECT_FALSE(p.request().keep_alive);
  EXPECT_EQ(p.next(), ParseStatus::kNeedMore);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(HttpParser, BodyWithinLimitIsRetained) {
  HttpParser::Limits limits;
  limits.max_body_bytes = 64;
  HttpParser p(limits);
  const std::string req =
      "PUT /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  ASSERT_EQ(p.feed(req.data(), req.size()), ParseStatus::kComplete);
  EXPECT_EQ(p.request().body, "hello");
}

// --------------------------------------------------- parser: error paths

TEST(HttpParser, MalformedRequestLineIs400) {
  HttpParser p;
  const std::string req = "NOT-A-REQUEST\r\n\r\n";
  ASSERT_EQ(p.feed(req.data(), req.size()), ParseStatus::kError);
  EXPECT_EQ(p.error_code(), 400);
}

TEST(HttpParser, LowercaseMethodTokenIs400) {
  HttpParser p;
  const std::string req = "get / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(p.feed(req.data(), req.size()), ParseStatus::kError);
  EXPECT_EQ(p.error_code(), 400);
}

TEST(HttpParser, OversizedHeadersAre431) {
  HttpParser::Limits limits;
  limits.max_header_bytes = 64;
  HttpParser p(limits);
  std::string req = "GET / HTTP/1.1\r\nX-Pad: ";
  req.append(128, 'a');
  req += "\r\n\r\n";
  ASSERT_EQ(p.feed(req.data(), req.size()), ParseStatus::kError);
  EXPECT_EQ(p.error_code(), 431);
}

TEST(HttpParser, OversizedHeadersDetectedBeforeTerminator) {
  // The parser must refuse an unbounded header section without waiting for
  // the (never-arriving) blank line — that is the memory-bound guarantee.
  HttpParser::Limits limits;
  limits.max_header_bytes = 64;
  HttpParser p(limits);
  std::string flood(1024, 'a');
  flood.insert(0, "GET / HTTP/1.1\r\nX-Pad: ");
  ASSERT_EQ(p.feed(flood.data(), flood.size()), ParseStatus::kError);
  EXPECT_EQ(p.error_code(), 431);
}

TEST(HttpParser, DefaultLimitsRefuseAnyBodyWith413) {
  HttpParser p;
  const std::string req =
      "POST /metrics HTTP/1.1\r\nContent-Length: 10\r\n\r\n";
  ASSERT_EQ(p.feed(req.data(), req.size()), ParseStatus::kError);
  EXPECT_EQ(p.error_code(), 413);
}

TEST(HttpParser, UnsupportedVersionIs505) {
  HttpParser p;
  const std::string req = "GET / HTTP/2.0\r\n\r\n";
  ASSERT_EQ(p.feed(req.data(), req.size()), ParseStatus::kError);
  EXPECT_EQ(p.error_code(), 505);
}

TEST(HttpParser, ChunkedTransferIs501) {
  HttpParser p;
  const std::string req =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  ASSERT_EQ(p.feed(req.data(), req.size()), ParseStatus::kError);
  EXPECT_EQ(p.error_code(), 501);
}

// ------------------------------------------------ parser: keep-alive rules

TEST(HttpParser, KeepAliveResolution) {
  struct Case {
    const char* request;
    bool expect_keep_alive;
  };
  const Case cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n", true},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: foo, close\r\n\r\n", false},
  };
  for (const Case& c : cases) {
    HttpParser p;
    ASSERT_EQ(p.feed(c.request, std::strlen(c.request)),
              ParseStatus::kComplete)
        << c.request;
    EXPECT_EQ(p.request().keep_alive, c.expect_keep_alive) << c.request;
  }
}

// ------------------------------------------------------- response writer

TEST(HttpResponseWriter, SerializeFramesAndConnectionHeader) {
  HttpResponse resp;
  resp.code = 200;
  resp.body = "hello";
  const std::string keep = serialize_response(resp, /*keep_alive=*/true);
  EXPECT_NE(keep.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(keep.substr(keep.size() - 5), "hello");

  resp.code = 503;
  const std::string close = serialize_response(resp, /*keep_alive=*/false);
  EXPECT_NE(close.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(close.find("Connection: close\r\n"), std::string::npos);
}

TEST(HttpResponseWriter, ReasonPhrases) {
  EXPECT_STREQ(reason_phrase(200), "OK");
  EXPECT_STREQ(reason_phrase(404), "Not Found");
  EXPECT_STREQ(reason_phrase(431), "Request Header Fields Too Large");
  EXPECT_STREQ(reason_phrase(299), "Unknown");
}

// --------------------------------------------------- server: socket tests

HttpServerOptions quick_server_options() {
  HttpServerOptions opts;
  opts.port = 0;  // ephemeral
  opts.drain_timeout_s = 2.0;
  return opts;
}

TEST(HttpServerSocket, ServesKeepAliveRequestsOnOneConnection) {
  if (!net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  HttpServer server(quick_server_options());
  server.set_handler([](const HttpRequest& req, const Responder& r) {
    HttpResponse resp;
    resp.body = "echo:" + req.path;
    r.send(std::move(resp));
  });
  ASSERT_TRUE(server.start());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);

  const std::string first = round_trip(fd, "GET /a HTTP/1.1\r\n\r\n");
  EXPECT_EQ(response_code(first), 200);
  EXPECT_NE(first.find("echo:/a"), std::string::npos);

  // Same connection, second request: keep-alive actually kept it alive.
  const std::string second = round_trip(fd, "GET /b HTTP/1.1\r\n\r\n");
  EXPECT_EQ(response_code(second), 200);
  EXPECT_NE(second.find("echo:/b"), std::string::npos);

  ::close(fd);
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.stats().requests, 2u);
}

TEST(HttpServerSocket, PipelinedRequestsGetBothResponsesInOrder) {
  if (!net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  HttpServer server(quick_server_options());
  server.set_handler([](const HttpRequest& req, const Responder& r) {
    HttpResponse resp;
    resp.body = "echo:" + req.path;
    r.send(std::move(resp));
  });
  ASSERT_TRUE(server.start());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);

  ASSERT_TRUE(send_all(fd,
                       "GET /one HTTP/1.1\r\n\r\n"
                       "GET /two HTTP/1.1\r\nConnection: close\r\n\r\n"));
  std::string out;
  ASSERT_TRUE(recv_until(fd, out, [](const std::string& text) {
    return text.find("echo:/one") != std::string::npos &&
           text.find("echo:/two") != std::string::npos;
  }));
  EXPECT_LT(out.find("echo:/one"), out.find("echo:/two"));
  ::close(fd);
  server.stop();
}

TEST(HttpServerSocket, MalformedRequestDraws400AndClose) {
  if (!net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  HttpServer server(quick_server_options());
  server.set_handler([](const HttpRequest&, const Responder& r) {
    r.send(HttpResponse{});
  });
  ASSERT_TRUE(server.start());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string resp = round_trip(fd, "BOGUS\r\n\r\n");
  EXPECT_EQ(response_code(resp), 400);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);
  // The server closes after an error response: the next read is EOF.
  std::string rest;
  EXPECT_TRUE(recv_until(
      fd, rest, [](const std::string&) { return false; }, 2.0) == false ||
              rest.empty());
  ::close(fd);
  server.stop();
}

TEST(HttpServerSocket, OversizedHeadersDraw431) {
  if (!net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  HttpServerOptions opts = quick_server_options();
  opts.max_header_bytes = 256;
  HttpServer server(opts);
  server.set_handler([](const HttpRequest&, const Responder& r) {
    r.send(HttpResponse{});
  });
  ASSERT_TRUE(server.start());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  std::string req = "GET / HTTP/1.1\r\nX-Pad: ";
  req.append(1024, 'a');
  req += "\r\n\r\n";
  const std::string resp = round_trip(fd, req);
  EXPECT_EQ(response_code(resp), 431);
  ::close(fd);
  server.stop();
}

TEST(HttpServerSocket, SlowLorisConnectionsAreEvicted) {
  if (!net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  HttpServerOptions opts = quick_server_options();
  opts.idle_timeout_s = 0.2;
  HttpServer server(opts);
  server.set_handler([](const HttpRequest&, const Responder& r) {
    r.send(HttpResponse{});
  });
  ASSERT_TRUE(server.start());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  // A slow-loris client: part of a request, then silence. The idle sweeper
  // must cut the connection — observed here as EOF on the client side.
  ASSERT_TRUE(send_all(fd, "GET /slow HTTP/1.1\r\nX-Dri"));
  std::string out;
  const bool got_eof = [&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    char buf[256];
    while (std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, 200) <= 0) continue;
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return true;  // evicted
      if (n < 0) return true;   // reset also counts as eviction
    }
    return false;
  }();
  EXPECT_TRUE(got_eof) << "idle connection was not evicted";
  EXPECT_GE(server.stats().idle_closed, 1u);
  ::close(fd);
  server.stop();
}

TEST(HttpServerSocket, ConnectionCapShedsWith503) {
  if (!net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  HttpServerOptions opts = quick_server_options();
  opts.max_connections = 2;
  HttpServer server(opts);
  server.set_handler([](const HttpRequest&, const Responder& r) {
    r.send(HttpResponse{});
  });
  ASSERT_TRUE(server.start());

  // Fill the cap with two live connections (a round trip each guarantees
  // the server has registered them before the third arrives).
  const int fd1 = connect_loopback(server.port());
  const int fd2 = connect_loopback(server.port());
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  EXPECT_EQ(response_code(round_trip(fd1, "GET / HTTP/1.1\r\n\r\n")), 200);
  EXPECT_EQ(response_code(round_trip(fd2, "GET / HTTP/1.1\r\n\r\n")), 200);

  const int fd3 = connect_loopback(server.port());
  ASSERT_GE(fd3, 0);
  std::string shed;
  ASSERT_TRUE(recv_until(fd3, shed, has_full_response));
  EXPECT_EQ(response_code(shed), 503);
  EXPECT_NE(shed.find("Connection: close"), std::string::npos);
  EXPECT_GE(server.stats().shed, 1u);

  ::close(fd1);
  ::close(fd2);
  ::close(fd3);
  server.stop();
}

TEST(HttpServerSocket, StopWithIdleConnectionReturnsPromptly) {
  if (!net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  HttpServer server(quick_server_options());
  server.set_handler([](const HttpRequest&, const Responder& r) {
    r.send(HttpResponse{});
  });
  ASSERT_TRUE(server.start());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  EXPECT_EQ(response_code(round_trip(fd, "GET / HTTP/1.1\r\n\r\n")), 200);

  const auto t0 = std::chrono::steady_clock::now();
  server.stop();  // must not wait out drain_timeout_s on an idle conn
  const double stop_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(stop_s, 1.5);
  ::close(fd);
}

// ----------------------------------------------------------- obs server

TEST(ObsServerSocket, EndpointsAnswerWithExpectedCodes) {
  if (!net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  // Touch a metric so /metrics has at least one family.
  obs::MetricsRegistry::global()
      .counter("oda_test_net_touch_total", "test marker")
      .inc();

  telemetry::TimeSeriesStore store(1 << 10);
  SelfScrape scraper(store);
  ASSERT_GT(scraper.scrape_once(7), 0u);

  ObsServerOptions opts;
  opts.http.port = 0;
  ObsServer obs_http(opts);
  obs_http.set_store(&store);
  ASSERT_TRUE(obs_http.start());
  const std::uint16_t port = obs_http.port();

  struct Probe {
    const char* target;
    int expect_code;
    const char* expect_substring;
  };
  const Probe probes[] = {
      {"/metrics", 200, "oda_http_requests_total"},
      {"/metrics.json", 200, "\"families\""},
      {"/trace", 200, nullptr},
      {"/flight", 200, "traceEvents"},
      {"/varz", 200, "\"net\": true"},
      {"/selfscrape", 200, "oda/"},
      {"/", 200, "/metrics"},
      {"/unknown", 404, nullptr},
  };
  for (const Probe& probe : probes) {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0) << probe.target;
    const std::string resp = round_trip(
        fd, std::string("GET ") + probe.target + " HTTP/1.1\r\n\r\n");
    EXPECT_EQ(response_code(resp), probe.expect_code) << probe.target;
    if (probe.expect_substring != nullptr) {
      EXPECT_NE(resp.find(probe.expect_substring), std::string::npos)
          << probe.target << " body lacks " << probe.expect_substring;
    }
    ::close(fd);
  }

  // /healthz renders the report with either verdict code.
  {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    const std::string resp =
        round_trip(fd, "GET /healthz HTTP/1.1\r\n\r\n");
    const int code = response_code(resp);
    EXPECT_TRUE(code == 200 || code == 503) << resp;
    ::close(fd);
  }

  // Non-GET methods are refused with 405 + Allow.
  {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    const std::string resp =
        round_trip(fd, "DELETE /metrics HTTP/1.1\r\n\r\n");
    EXPECT_EQ(response_code(resp), 405);
    EXPECT_NE(resp.find("Allow: GET"), std::string::npos);
    ::close(fd);
  }

  // /profile rejects garbage before touching the profiler.
  {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    const std::string resp =
        round_trip(fd, "GET /profile?seconds=bogus HTTP/1.1\r\n\r\n");
    EXPECT_EQ(response_code(resp), 400);
    ::close(fd);
  }

  obs_http.stop();
  EXPECT_FALSE(obs_http.running());
}

// ----------------------------------------------------------- self-scrape

TEST(SelfScrape, IngestsRegistryIntoStoreUnderPrefix) {
  if (!net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Counter& marker =
      registry.counter("oda_test_selfscrape_marker_total", "test marker");
  marker.inc(3);

  telemetry::TimeSeriesStore store(1 << 10);
  SelfScrape scraper(store);
  const std::size_t first = scraper.scrape_once(100);
  ASSERT_GT(first, 0u);
  EXPECT_EQ(scraper.passes(), 1u);
  EXPECT_EQ(scraper.samples_ingested(), first);

  const std::vector<std::string> series = store.match("oda/*");
  ASSERT_FALSE(series.empty());
  const std::string marker_path = "oda/oda_test_selfscrape_marker_total";
  EXPECT_EQ(store.sample_count(marker_path), 1u);
  {
    const telemetry::SeriesSlice slice = store.query_all(marker_path);
    ASSERT_EQ(slice.times.size(), 1u);
    EXPECT_EQ(slice.times.back(), 100);
    EXPECT_GE(slice.values.back(), 3.0);
  }

  // A second pass appends, monotonically in time.
  marker.inc();
  const std::size_t second = scraper.scrape_once(200);
  EXPECT_GE(second, first);
  const telemetry::SeriesSlice slice = store.query_all(marker_path);
  ASSERT_EQ(slice.times.size(), 2u);
  EXPECT_EQ(slice.times.back(), 200);
  EXPECT_GT(slice.values.back(), slice.values.front());
}

TEST(SelfScrape, HistogramsIngestSumAndCount) {
  if (!net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry
      .histogram("oda_test_selfscrape_hist_seconds", "test histogram",
                 {{"k", "v"}})
      .observe(0.5);

  telemetry::TimeSeriesStore store(1 << 10);
  SelfScrape scraper(store);
  ASSERT_GT(scraper.scrape_once(1), 0u);
  EXPECT_EQ(
      store.sample_count("oda/oda_test_selfscrape_hist_seconds_sum{k=v}"),
      1u);
  EXPECT_EQ(
      store.sample_count("oda/oda_test_selfscrape_hist_seconds_count{k=v}"),
      1u);
}

TEST(SelfScrape, BackgroundThreadScrapesPeriodically) {
  if (!net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  telemetry::TimeSeriesStore store(1 << 10);
  SelfScrapeOptions opts;
  opts.period_s = 0.05;
  SelfScrape scraper(store, opts);
  std::atomic<TimePoint> clock{0};
  ASSERT_TRUE(scraper.start(
      [&clock] { return clock.fetch_add(1, std::memory_order_relaxed); }));
  EXPECT_FALSE(scraper.start([] { return TimePoint{0}; }))
      << "second start() while running must be refused";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (scraper.passes() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  scraper.stop();
  EXPECT_GE(scraper.passes(), 2u);
  EXPECT_FALSE(store.match("oda/*").empty());
}

// -------------------------------------------------- ODA_NET=OFF behavior

TEST(NetGate, StubsAreInertWhenCompiledOut) {
  if (net_enabled()) GTEST_SKIP() << "ODA_NET=ON build";
  HttpServer server{HttpServerOptions{}};
  EXPECT_FALSE(server.start());
  EXPECT_FALSE(server.running());
  server.stop();  // must not hang or crash

  telemetry::TimeSeriesStore store(1 << 10);
  SelfScrape scraper(store);
  EXPECT_EQ(scraper.scrape_once(1), 0u);
  EXPECT_FALSE(scraper.start([] { return TimePoint{0}; }));
  EXPECT_TRUE(store.match("oda/*").empty());

  ObsServer obs_http;
  EXPECT_FALSE(obs_http.start());
  obs_http.stop();
}

}  // namespace
}  // namespace oda::net
