// Coverage for corners not exercised elsewhere: knob registry contracts,
// logging sinks, table alignment, queue wraparound, facility pump law,
// network sensors, and guard rails on model misuse.
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/predictive/whatif.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/spsc_queue.hpp"
#include "common/table.hpp"
#include "math/ar_model.hpp"
#include "sim/cluster.hpp"

namespace oda {
namespace {

// ------------------------------------------------------------ knob registry

TEST(KnobRegistry, DuplicateAndUnknownThrow) {
  sim::KnobRegistry reg;
  sim::KnobDef knob;
  knob.path = "k";
  knob.min_value = 0.0;
  knob.max_value = 1.0;
  double value = 0.5;
  knob.get = [&value] { return value; };
  knob.set = [&value](double v) { value = v; };
  reg.add(knob);
  EXPECT_THROW(reg.add(knob), ContractError);
  EXPECT_THROW(reg.get("nope"), ContractError);
  EXPECT_EQ(reg.paths().size(), 1u);
  reg.set("k", 5.0);  // clamped
  EXPECT_DOUBLE_EQ(reg.get("k"), 1.0);
  reg.set("k", -3.0);
  EXPECT_DOUBLE_EQ(reg.get("k"), 0.0);
}

// ----------------------------------------------------------------- logging

TEST(Log, SinkReceivesFilteredMessages) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  Log::set_sink([&](LogLevel level, const std::string& msg) {
    captured.emplace_back(level, msg);
  });
  Log::set_level(LogLevel::kWarn);
  ODA_LOG_DEBUG << "dropped " << 1;
  ODA_LOG_WARN << "kept " << 2;
  ODA_LOG_ERROR << "kept " << 3;
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kWarn);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "kept 2");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(Log, ThreadIdIsStableAndNonzero) {
  const std::size_t id = Log::thread_id();
  EXPECT_GT(id, 0u);
  EXPECT_EQ(Log::thread_id(), id);  // stable within a thread
}

TEST(CaptureSink, CapturesLevelsAndMessages) {
  CaptureSink sink;
  Log::set_level(LogLevel::kWarn);
  ODA_LOG_DEBUG << "below threshold";
  ODA_LOG_WARN << "slow subscriber " << 7;
  ODA_LOG_ERROR << "boom";
  ASSERT_EQ(sink.size(), 2u);
  const auto lines = sink.lines();
  EXPECT_EQ(lines[0], "[WARN] slow subscriber 7");
  EXPECT_EQ(lines[1], "[ERROR] boom");
  EXPECT_TRUE(sink.contains("slow subscriber"));
  EXPECT_FALSE(sink.contains("below threshold"));
  EXPECT_EQ(sink.count(LogLevel::kWarn), 1u);
  EXPECT_EQ(sink.count(LogLevel::kError), 1u);
  EXPECT_EQ(sink.count(LogLevel::kDebug), 0u);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(CaptureSink, RingKeepsOnlyMostRecent) {
  CaptureSink sink(/*capacity=*/3);
  Log::set_level(LogLevel::kWarn);
  for (int i = 0; i < 5; ++i) {
    ODA_LOG_WARN << "line " << i;
  }
  ASSERT_EQ(sink.size(), 3u);
  const auto lines = sink.lines();
  EXPECT_EQ(lines.front(), "[WARN] line 2");  // oldest retained
  EXPECT_EQ(lines.back(), "[WARN] line 4");
  EXPECT_FALSE(sink.contains("line 0"));
}

TEST(CaptureSink, RestoresDefaultSinkOnDestruction) {
  std::vector<std::string> outer;
  { CaptureSink sink; }
  // After destruction the custom sink below must receive writes again.
  Log::set_sink([&outer](LogLevel, const std::string& msg) {
    outer.push_back(msg);
  });
  Log::set_level(LogLevel::kWarn);
  ODA_LOG_WARN << "after capture";
  Log::set_sink(nullptr);
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer[0], "after capture");
}

// ------------------------------------------------------------------- table

TEST(TextTable, AlignmentModes) {
  TextTable t({"l", "r", "c"});
  t.set_align(1, Align::kRight);
  t.set_align(2, Align::kCenter);
  t.add_row({"a", "b", "c"});
  t.add_row({"longer", "row", "xx"});
  const auto out = t.render();
  // Column widths: "longer"=6, "row"=3, "xx"=2. Right-aligned "b" pads in
  // front; centered "c" pads both sides.
  EXPECT_NE(out.find("| a      |   b | c  |"), std::string::npos) << out;
}

TEST(TextTable, SeparatorAndTitle) {
  TextTable t({"x"});
  t.set_title("TITLE");
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const auto out = t.render();
  EXPECT_NE(out.find("TITLE"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);  // two rows + separator marker
}

// ---------------------------------------------------------- queue wrap-around

TEST(SpscQueue, SurvivesManyWrapArounds) {
  SpscQueue<int> q(8);
  int popped = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(round * 5 + i));
    for (int i = 0; i < 5; ++i) {
      const auto v = q.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, popped++);
    }
  }
  EXPECT_TRUE(q.empty_approx());
}

// ---------------------------------------------------------------- facility

TEST(Facility, PumpPowerFollowsAffinityLaw) {
  sim::Facility f({});
  std::vector<sim::KnobDef> knobs;
  f.enumerate_knobs(knobs);
  const auto pump_knob = [&]() -> sim::KnobDef& {
    for (auto& k : knobs) {
      if (k.path == "facility/pump_speed") return k;
    }
    throw ContractError("pump knob missing");
  };
  pump_knob().set(1.0);
  f.step(10000.0, 10.0, 15);
  const double p1 = f.pump_power_w();
  pump_knob().set(0.5);
  f.step(10000.0, 10.0, 15);
  const double p_half = f.pump_power_w();
  EXPECT_NEAR(p_half / p1, 0.125, 0.01);  // cube law
}

TEST(Facility, ForcedFreeCoolingTracksWetbulbFloor) {
  sim::Facility f({});
  f.set_cooling_mode(sim::CoolingMode::kFreeOnly);
  f.set_supply_setpoint_c(20.0);
  // Hot wet-bulb: the tower cannot reach 20 C; supply floats up to
  // wetbulb + approach.
  for (int i = 0; i < 2000; ++i) f.step(10000.0, 28.0, 15);
  EXPECT_NEAR(f.supply_temp_c(), 28.0 + f.params().tower_approach_k, 0.5);
}

// ----------------------------------------------------------------- network

TEST(Network, SensorsEnumerate) {
  sim::Network net({3, 4, 100.0, 400.0});
  std::vector<sim::SensorDef> sensors;
  net.enumerate_sensors(sensors);
  EXPECT_EQ(sensors.size(), 4u);  // 3 uplinks + total traffic
  EXPECT_EQ(sensors[0].path, "network/rack00/uplink_util");
  EXPECT_DOUBLE_EQ(sensors[3].read(), 0.0);
}

// ------------------------------------------------------------- guard rails

TEST(GuardRails, ArModelRejectsTinyHistory) {
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_THROW(math::ArModel::fit_yule_walker(tiny, 4), ContractError);
  std::vector<double> xs(100, 0.0);
  const auto model = math::ArModel::fit_yule_walker(
      std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8}, 2);
  EXPECT_THROW(model.predict_next(std::vector<double>{1.0}), ContractError);
  (void)xs;
}

TEST(GuardRails, WhatIfRespectsMaxSimTime) {
  // A job that can never finish (progress never reaches an impossible
  // nominal duration is not constructible; instead give a machine smaller
  // than needed to drain the queue within the cap).
  sim::JobSpec spec;
  spec.id = 1;
  spec.user = "u";
  spec.nodes_requested = 1;
  sim::JobPhase phase;
  phase.nominal_duration = 10 * kDay;
  spec.phases = {phase};
  spec.walltime_requested = 20 * kDay;
  analytics::WhatIfParams params;
  params.node_count = 1;
  params.max_sim_time = kDay;  // cap below the job runtime
  params.step = kHour;
  const auto result =
      analytics::simulate_policy(std::vector<sim::JobSpec>{spec}, params);
  EXPECT_EQ(result.jobs_completed, 0u);
  EXPECT_LE(result.makespan, kDay + kHour);
}

TEST(GuardRails, ClusterRejectsBadGeometry) {
  sim::ClusterParams params;
  params.racks = 0;
  EXPECT_THROW(sim::ClusterSimulation{params}, ContractError);
  params.racks = 1;
  params.dt = 0;
  EXPECT_THROW(sim::ClusterSimulation{params}, ContractError);
}

TEST(GuardRails, FaultWindowMustBeNonEmpty) {
  sim::FaultInjector inj;
  EXPECT_THROW(inj.schedule({sim::FaultKind::kFanFailure, "x", 100, 100, 1.0}),
               ContractError);
}

}  // namespace
}  // namespace oda
