// Annotated-synchronization-layer tests (common/sync.hpp): the RAII
// wrappers and CondVar behave like the std primitives they replace, the
// uniform wait accounting charges contended acquisitions only, and the
// guarded-state bugs surfaced during the annotation pass stay fixed —
// re-entrant health-bus subscribers, breaker-state observation during a
// parallel pass, and FaultInjector moves under a live stuck fault.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "sim/cluster.hpp"
#include "sim/faults.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/health.hpp"
#include "telemetry/store.hpp"

namespace oda {
namespace {

// ------------------------------------------------------------- primitives

TEST(SyncMutex, MutexLockSerializesCriticalSections) {
  Mutex mu;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SyncCondVar, WaitNotifyHandshake) {
  Mutex mu;
  CondVar cv;
  int stage = 0;
  std::thread worker([&] {
    MutexLock lock(mu);
    while (stage != 1) cv.wait(mu);
    stage = 2;
    cv.notify_all();
  });
  {
    MutexLock lock(mu);
    stage = 1;
    cv.notify_all();
    while (stage != 2) cv.wait(mu);
  }
  worker.join();
  MutexLock lock(mu);
  EXPECT_EQ(stage, 2);
}

TEST(SyncWriterLock, AcquireIsFreeWhenUncontended) {
  SharedMutex mu;
  double waited_s = -1.0;
  {
    WriterLock lock(mu);
    waited_s = lock.waited_s();
  }
  EXPECT_DOUBLE_EQ(waited_s, 0.0);
}

TEST(SyncWriterLock, AcquireAccountsContendedWait) {
  SharedMutex mu(LockRankId::kUnranked);
  contention::reset();
  std::atomic<bool> holding{false};
  std::thread holder([&] {
    WriterLock lock(mu);
    holding.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  while (!holding.load(std::memory_order_acquire)) std::this_thread::yield();
  double waited_s = 0.0;
  {
    WriterLock lock(mu);
    waited_s = lock.waited_s();
  }
  holder.join();
  EXPECT_GT(waited_s, 0.0);
  // The same wait must have landed in the per-rank contention table.
  const contention::Snapshot snap =
      contention::snapshot(LockRankId::kUnranked);
  EXPECT_GE(snap.contended, 1u);
  EXPECT_GT(snap.wait_seconds, 0.0);
}

TEST(SyncReaderLock, ReadersOverlapWritersExclude) {
  SharedMutex mu;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      ReaderLock lock(mu);
      const int now = concurrent_readers.fetch_add(
                          1, std::memory_order_acq_rel) + 1;
      int seen = max_concurrent.load(std::memory_order_relaxed);
      while (now > seen &&
             !max_concurrent.compare_exchange_weak(
                 seen, now, std::memory_order_relaxed,
                 std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent_readers.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_GT(max_concurrent.load(std::memory_order_relaxed), 1);
  // A writer after the readers drained sees an exclusive section.
  WriterLock lock(mu);
  EXPECT_EQ(concurrent_readers.load(std::memory_order_relaxed), 0);
}

}  // namespace
}  // namespace oda

namespace oda::telemetry {
namespace {

// ----------------------------------------------- regression: health re-entry

// The tracker used to publish "_health/*" transitions while holding its own
// mutex; a subscriber that queried the tracker from the callback
// self-deadlocked (and the publish inverted the bus -> health lock order).
// Transitions are now queued under the lock and flushed after release.
TEST(SensorHealthReentrant, SubscriberMayQueryTrackerDuringTransition) {
  MessageBus bus;
  HealthPolicy policy;
  policy.flatline_run = 0;
  policy.out_of_range_run = 0;
  policy.staleness = 0;
  SensorHealthTracker tracker(policy, &bus);
  std::vector<SensorState> observed;
  bus.subscribe("_health/*", [&](const Reading& r) {
    // Re-enter the tracker from the delivery callback: state() takes the
    // tracker mutex, quarantined() walks every series under it.
    observed.push_back(tracker.state("hx/reentrant"));
    EXPECT_FALSE(tracker.quarantined().empty());
    EXPECT_EQ(r.path, "_health/hx/reentrant");
  });
  const SeriesId id = SeriesInterner::global().intern("hx/reentrant");
  for (int i = 0; i < 4; ++i) {
    tracker.record_failure(id, "hx/reentrant", 15 * (i + 1),
                           ReadOutcome::kDropout);
  }
  ASSERT_EQ(observed.size(), 1u);
  // The queued publish is flushed after the transition is committed, so the
  // re-entrant query sees the post-transition state.
  EXPECT_EQ(observed.front(), SensorState::kQuarantined);
}

// step()'s staleness sweep publishes through the same deferred queue.
TEST(SensorHealthReentrant, StalenessSweepFlushesAfterUnlock) {
  MessageBus bus;
  HealthPolicy policy;
  policy.flatline_run = 0;
  policy.out_of_range_run = 0;
  policy.staleness = 60;
  SensorHealthTracker tracker(policy, &bus);
  int deliveries = 0;
  bus.subscribe("_health/*", [&](const Reading&) {
    ++deliveries;
    EXPECT_EQ(tracker.counts().quarantined, 1u);  // re-entrant query
  });
  const SeriesId id = SeriesInterner::global().intern("hx/stale");
  tracker.record_success(id, "hx/stale", 15, 1.0);
  tracker.step(1000);  // way past staleness: quarantine + publish
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(tracker.state("hx/stale"), SensorState::kQuarantined);
}

// -------------------------------------- regression: breaker observability

// breaker_state() races with a parallel collect pass transitioning the
// breaker; the state field is atomic so observers get tear-free values.
TEST(CollectorBreaker, StateObservableDuringParallelPass) {
  sim::ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 4;
  params.dt = 15;
  params.seed = 7;
  sim::ClusterSimulation cluster(params);
  cluster.faults().schedule(
      {sim::FaultKind::kSensorDropout, "facility/pue", 15, 600, 1.0});
  TimeSeriesStore store;
  ThreadPool pool(2);
  Collector collector(cluster, &store, nullptr, &pool);
  RetryPolicy retry;
  retry.max_attempts = 2;
  collector.set_retry_policy(retry);
  BreakerPolicy breaker;
  breaker.failure_threshold = 2;
  breaker.open_cooldown = 60;
  collector.set_breaker_policy(breaker);
  collector.add_all_sensors(15);

  std::atomic<bool> stop{false};
  std::atomic<bool> saw_open{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const BreakerState s = collector.breaker_state("facility/pue");
      if (s == BreakerState::kOpen) saw_open.store(true, std::memory_order_relaxed);
      ASSERT_TRUE(s == BreakerState::kClosed || s == BreakerState::kOpen ||
                  s == BreakerState::kHalfOpen);
    }
  });
  while (cluster.now() < 600) {
    cluster.step();
    collector.collect();
  }
  stop.store(true, std::memory_order_release);
  observer.join();
  EXPECT_TRUE(saw_open.load(std::memory_order_relaxed));
  EXPECT_EQ(collector.samples_expected(),
            collector.samples_collected() + collector.gaps_total());
}

// ------------------------------------------------- regression: store ingest

// Contended single-shard batch ingest: the timed WriterLock path must keep
// exact conservation (and the per-shard wait gauge only ever accumulates).
TEST(StoreContention, ContendedBatchIngestStaysExact) {
  TimeSeriesStore store(1 << 12, /*shards=*/1);
  constexpr int kThreads = 4;
  constexpr int kBatches = 50;
  constexpr int kBatch = 64;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      const SeriesId id = SeriesInterner::global().intern(
          "contend/s" + std::to_string(t));
      std::vector<IdReading> batch(kBatch);
      for (int b = 0; b < kBatches; ++b) {
        for (int i = 0; i < kBatch; ++i) {
          batch[static_cast<std::size_t>(i)] =
              {id, {static_cast<TimePoint>(b * kBatch + i),
                    static_cast<double>(i)}};
        }
        store.insert_batch(std::span<const IdReading>(batch));
      }
    });
  }
  for (auto& th : writers) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(store.sample_count("contend/s" + std::to_string(t)),
              static_cast<std::size_t>(kBatches) * kBatch);
  }
  EXPECT_EQ(store.total_inserted(),
            static_cast<std::uint64_t>(kThreads) * kBatches * kBatch);
}

}  // namespace
}  // namespace oda::telemetry

namespace oda::sim {
namespace {

// ------------------------------------------------ regression: injector move

// Moving a FaultInjector used to steal the stuck-fault state without taking
// the source's lock; both move operations now hold it, and the frozen value
// must survive the move.
TEST(FaultInjectorMove, StuckStateSurvivesMoveConstruction) {
  Rng rng(42);
  FaultInjector injector;
  injector.schedule({FaultKind::kSensorStuck, "node/temp", 10, 1000, 1.0});
  // First in-window read freezes the value.
  EXPECT_DOUBLE_EQ(injector.apply_sensor_faults("node/temp", 33.5, 20, rng),
                   33.5);
  FaultInjector moved(std::move(injector));
  // The moved-to injector serves the frozen value, not the new raw reading.
  EXPECT_DOUBLE_EQ(moved.apply_sensor_faults("node/temp", 99.0, 30, rng),
                   33.5);
  EXPECT_EQ(moved.events().size(), 1u);
}

TEST(FaultInjectorMove, StuckStateSurvivesMoveAssignment) {
  Rng rng(43);
  FaultInjector injector;
  injector.schedule({FaultKind::kSensorStuck, "node/power", 0, 500, 1.0});
  EXPECT_DOUBLE_EQ(injector.apply_sensor_faults("node/power", 250.0, 5, rng),
                   250.0);
  FaultInjector target;
  target = std::move(injector);
  EXPECT_DOUBLE_EQ(target.apply_sensor_faults("node/power", 300.0, 10, rng),
                   250.0);
}

}  // namespace
}  // namespace oda::sim
