#!/usr/bin/env python3
"""Self-test for scripts/oda_lint.py: each rule must fire on a minimal
synthetic violation and stay quiet on the idiomatic equivalent, and the
ODA-LINT-ALLOW suppression contract (reason required, next-line coverage)
must hold. Run directly or via ctest (lint.selftest); exits non-zero on the
first failed expectation."""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

LINT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "scripts", "oda_lint.py")

FAILURES = []


def run_lint(root: str) -> tuple[int, str]:
    proc = subprocess.run([sys.executable, LINT, "--root", root],
                          capture_output=True, text=True, timeout=120)
    return proc.returncode, proc.stdout + proc.stderr


def expect(cond: bool, label: str, detail: str = "") -> None:
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {label}")
    if not cond:
        FAILURES.append(label)
        if detail:
            print(detail)


def write_tree(root: str, files: dict[str, str]) -> None:
    for rel, content in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)


def case(name: str, files: dict[str, str], expect_rules: set[str],
         forbid_rules: set[str] = frozenset()) -> None:
    print(f"case: {name}")
    with tempfile.TemporaryDirectory() as root:
        write_tree(root, files)
        code, out = run_lint(root)
        if expect_rules:
            expect(code == 1, "exit code signals findings", out)
        else:
            expect(code == 0, "exit code clean", out)
        for rule in sorted(expect_rules):
            expect(f"[{rule}]" in out, f"rule '{rule}' fires", out)
        for rule in sorted(forbid_rules):
            expect(f"[{rule}]" not in out, f"rule '{rule}' stays quiet", out)


HEADER = "#pragma once\n"


def main() -> int:
    case("raw-mutex: std primitives and headers in src/ are flagged",
         {"src/a.hpp": HEADER + "#include <mutex>\n",
          "src/b.cpp": "#include <shared_mutex>\n"
                       "static std::mutex g_mu;\n"
                       "void f() { std::lock_guard lock(g_mu); }\n",
          "src/c.cpp": "#include <condition_variable>\n"
                       "static std::condition_variable g_cv;\n"},
         {"raw-mutex"})

    case("raw-mutex: sync.hpp itself and non-src trees are exempt",
         {"src/common/sync.hpp": HEADER + "#include <mutex>\n"
                                          "#include <condition_variable>\n",
          "tests/t.cpp": "#include <mutex>\nstatic std::mutex g_mu;\n"},
         set(), {"raw-mutex"})

    case("raw-mutex: the annotated wrappers do not trip the token scan",
         {"src/clean.hpp": HEADER +
          "namespace oda { class Mutex {}; class MutexLock {}; }\n"
          "struct S { oda::Mutex mu; };\n"},
         set(), {"raw-mutex"})

    case("raw-mutex: commented/string occurrences are ignored",
         {"src/doc.hpp": HEADER +
          "// replaces std::mutex with annotated wrappers\n"
          "/* std::lock_guard era */\n"
          "inline const char* k = \"std::condition_variable\";\n"},
         set(), {"raw-mutex"})

    case("raw-mutex: ODA-LINT-ALLOW with a reason suppresses",
         {"src/special.cpp":
          "#include <mutex>  // ODA-LINT-ALLOW(raw-mutex): "
          "self-test fixture exercising the suppression path\n"},
         set(), {"raw-mutex"})

    case("raw-mutex: ODA-LINT-ALLOW without a reason is itself a finding",
         {"src/special.cpp": "#include <mutex>  // ODA-LINT-ALLOW(raw-mutex)\n"},
         {"raw-mutex"})

    case("pragma-once fires on a bare header",
         {"src/h.hpp": "struct S {};\n"}, {"pragma-once"})

    case("naked-new fires, owning containers do not",
         {"src/n.cpp": "int* f() { return new int(3); }\n",
          "src/ok.cpp": "#include <memory>\n"
                        "auto g() { return std::make_unique<int>(3); }\n"},
         {"naked-new"})

    case("atomic-order fires outside src/common, explicit order is clean",
         {"src/x.cpp": "#include <atomic>\nstd::atomic<int> a;\n"
                       "int f() { return a.load(); }\n",
          "src/y.cpp": "#include <atomic>\nstd::atomic<int> b;\n"
                       "int g() { return b.load(std::memory_order_relaxed); }\n"},
         {"atomic-order"})

    case("cout-in-lib fires in src/, not in tests/",
         {"src/p.cpp": "#include <iostream>\nvoid f() { std::cout << 1; }\n",
          "tests/q.cpp": "#include <iostream>\nvoid g() { std::cout << 1; }\n"},
         {"cout-in-lib"})

    case("no-cpp-include fires everywhere",
         {"tests/inc.cpp": "#include <other.cpp>\n"}, {"no-cpp-include"})

    print()
    if FAILURES:
        print(f"test_oda_lint: {len(FAILURES)} failed expectation(s)")
        return 1
    print("test_oda_lint: all expectations passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
