// Integration tests: whole-pipeline scenarios wiring simulator -> telemetry
// -> analytics -> control and asserting closed-loop behaviour, plus the
// config binding and end-to-end compositions the examples are built from.
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/descriptive/kpi.hpp"
#include "analytics/diagnostic/anomaly.hpp"
#include "analytics/diagnostic/fingerprint.hpp"
#include "analytics/diagnostic/rootcause.hpp"
#include "analytics/predictive/spectral.hpp"
#include "analytics/prescriptive/controller.hpp"
#include "analytics/prescriptive/dvfs.hpp"
#include "analytics/prescriptive/response.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/bindings.hpp"
#include "core/oda_system.hpp"
#include "sim/cluster.hpp"
#include "sim/config.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/derived.hpp"

namespace oda {
namespace {

// -------------------------------------------------------------- sim config

TEST(SimConfig, AppliesRecognizedKeys) {
  const auto cfg = Config::from_text(
      "cluster.racks = 2\n"
      "cluster.nodes_per_rack = 4\n"
      "workload.miner_fraction = 0.25\n"
      "facility.supply_setpoint_c = 35\n"
      "weather.mean_temp_c = 22.5\n"
      "scheduler.backfill = false\n");
  const auto params = sim::cluster_params_from_config(cfg);
  EXPECT_EQ(params.racks, 2u);
  EXPECT_EQ(params.nodes_per_rack, 4u);
  EXPECT_DOUBLE_EQ(params.workload.miner_fraction, 0.25);
  EXPECT_DOUBLE_EQ(params.facility.supply_setpoint_c, 35.0);
  EXPECT_DOUBLE_EQ(params.weather.mean_temp_c, 22.5);
  EXPECT_EQ(params.scheduler.discipline, sim::QueueDiscipline::kFcfs);
}

TEST(SimConfig, UnknownKeyThrows) {
  const auto cfg = Config::from_text("cluster.rackz = 3\n");
  EXPECT_THROW(sim::cluster_params_from_config(cfg), ConfigError);
}

TEST(SimConfig, RoundTripsThroughText) {
  sim::ClusterParams params;
  params.racks = 3;
  params.workload.leak_fraction = 0.125;
  params.node.freq_nominal_ghz = 2.1;
  const auto cfg = sim::cluster_params_to_config(params);
  const auto back = sim::cluster_params_from_config(
      Config::from_text(cfg.to_text()));
  EXPECT_EQ(back.racks, 3u);
  EXPECT_DOUBLE_EQ(back.workload.leak_fraction, 0.125);
  EXPECT_DOUBLE_EQ(back.node.freq_nominal_ghz, 2.1);
}

TEST(SimConfig, ConfigDrivenClusterRuns) {
  const auto params = sim::cluster_params_from_config(Config::from_text(
      "cluster.racks = 1\ncluster.nodes_per_rack = 2\ncluster.seed = 5\n"));
  sim::ClusterSimulation cluster(params);
  cluster.run_for(kHour);
  EXPECT_GT(cluster.it_power_w(), 0.0);
}

// --------------------------------------------------- collector parallel path

TEST(Integration, ParallelCollectorMatchesSerial) {
  sim::ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 8;  // > 64 sensors so the pool path engages
  sim::ClusterSimulation cluster(params);
  cluster.run_for(10 * kMinute);

  telemetry::TimeSeriesStore serial_store, parallel_store;
  ThreadPool pool(4);
  telemetry::Collector serial(cluster, &serial_store, nullptr);
  telemetry::Collector parallel(cluster, &parallel_store, nullptr, &pool);
  serial.add_all_sensors(cluster.dt());
  parallel.add_all_sensors(cluster.dt());
  serial.collect();
  parallel.collect();

  // No sensor faults scheduled, so the readings must agree exactly.
  for (const auto& path : serial_store.paths()) {
    ASSERT_TRUE(parallel_store.latest(path).has_value()) << path;
    EXPECT_DOUBLE_EQ(serial_store.latest(path)->value,
                     parallel_store.latest(path)->value)
        << path;
  }
}

// ------------------------------------------------ derived sensors in the loop

TEST(Integration, DerivedPueMatchesFacilitySensor) {
  sim::ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 4;
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store;
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);
  telemetry::DerivedSensors derived(store);
  derived.define_ratio("derived/pue", "facility/total_power", "cluster/it_power");
  while (cluster.now() < kHour) {
    cluster.step();
    collector.collect();
    derived.evaluate(cluster.now());
  }
  const auto direct = store.latest("facility/pue");
  const auto computed = store.latest("derived/pue");
  ASSERT_TRUE(direct && computed);
  EXPECT_NEAR(direct->value, computed->value, 1e-9);
}

// ------------------------------------------- diagnostic -> prescriptive loop

TEST(Integration, EniStyleDetectAndRespond) {
  sim::ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 4;
  params.seed = 3;
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store;
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);

  analytics::EwmaDetector detector(0.05, 5.0);
  auto policy =
      analytics::ResponsePolicy::standard(analytics::ResponseMode::kAutomatic);
  std::vector<analytics::Actuation> log;

  const TimePoint fault_at = 12 * kHour;
  cluster.faults().schedule({sim::FaultKind::kPumpDegradation, "facility",
                             fault_at, fault_at + kDay, 1.7});

  bool responded = false;
  TimePoint detected_at = -1;
  while (cluster.now() < fault_at + 6 * kHour) {
    cluster.step();
    collector.collect();
    if (cluster.now() % (5 * kMinute) == 0) {
      const auto latest = store.latest("facility/pump_power");
      if (!latest) continue;
      detector.observe(latest->value);
      if (cluster.now() > 2 * kHour && detector.score() >= 1.0 && !responded) {
        responded = true;
        detected_at = cluster.now();
        policy.respond({"pump-degradation", "facility/cooling/pump", 1.0},
                       cluster, log);
      }
    }
  }
  ASSERT_TRUE(responded);
  EXPECT_GE(detected_at, fault_at);               // no false alarm before onset
  EXPECT_LE(detected_at, fault_at + 2 * kHour);   // detected promptly
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log[0].knob, "facility/pump_speed");
  EXPECT_GT(cluster.knobs().get("facility/pump_speed"), 1.0);
}

// ----------------------------------------- anomaly -> RCA composition

TEST(Integration, MonitorFeedsRootCauseAnalysis) {
  // A facility-wide condition (hot supply water) makes many nodes run hot;
  // the RCA should blame the shared cooling rather than any node.
  auto graph = analytics::DependencyGraph::standard_cluster(2, 4);
  std::vector<std::string> symptomatic;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t n = 0; n < 4; ++n) {
      symptomatic.push_back(sim::node_path(r, n));
    }
  }
  const auto causes = graph.diagnose(symptomatic);
  ASSERT_FALSE(causes.empty());
  EXPECT_EQ(causes.front().component, "facility/cooling");
}

// --------------------------------------------- closed-loop DVFS on real sim

TEST(Integration, EnergyGovernorSavesEnergyOnMemoryBoundWork) {
  const auto run = [](bool governed) {
    sim::ClusterParams params;
    params.racks = 1;
    params.nodes_per_rack = 4;
    params.seed = 17;
    sim::ClusterSimulation cluster(params);
    cluster.set_workload_enabled(false);
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      sim::JobSpec spec;
      spec.id = 100 + i;
      spec.user = "u";
      spec.nodes_requested = 1;
      sim::JobPhase phase;
      phase.nominal_duration = 48 * kHour;
      phase.cpu_util = 0.6;
      phase.mem_bw_util = 0.9;
      phase.mem_boundedness = 0.85;  // frequency buys almost nothing
      spec.phases = {phase};
      spec.walltime_requested = 96 * kHour;
      cluster.scheduler().submit(spec);
    }
    telemetry::TimeSeriesStore store;
    telemetry::Collector collector(cluster, &store, nullptr);
    collector.add_all_sensors(60);
    analytics::ControlLoop loop(cluster, store);
    if (governed) {
      analytics::DvfsGovernor::Params gp;
      gp.mode = analytics::DvfsGovernor::Mode::kEnergy;
      loop.add(std::make_shared<analytics::DvfsGovernor>(gp));
    }
    while (cluster.now() < 8 * kHour) {
      cluster.step();
      collector.collect();
      loop.tick();
    }
    double progress = 0.0;
    for (const auto& job : cluster.scheduler().running()) {
      progress += job.progress_s;
    }
    return std::pair<double, double>(cluster.it_energy_j(), progress);
  };
  const auto [baseline_energy, baseline_progress] = run(false);
  const auto [governed_energy, governed_progress] = run(true);
  EXPECT_LT(governed_energy, baseline_energy * 0.93);      // real saving
  EXPECT_GT(governed_progress, baseline_progress * 0.90);  // little slowdown
}

// -------------------------------------------------- spectral on live trace

TEST(Integration, SpectralForecastTracksDiurnalPower) {
  sim::ClusterParams params;
  params.seed = 83;
  params.dt = 60;
  params.workload.peak_arrival_rate_per_hour = 4.0;
  params.workload.seed = 83;
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store(1 << 17);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_group({"power", "facility/total_power", 5 * kMinute});
  while (cluster.now() < 6 * kDay) {
    cluster.step();
    collector.collect();
  }
  const auto series = store.query_aggregated(
      "facility/total_power", 0, cluster.now(), 15 * kMinute,
      telemetry::Aggregation::kMean);
  analytics::SpectralForecaster spectral(6);
  spectral.fit(series.values);
  // The daily cycle must be among the dominant recovered components.
  bool found_daily = false;
  for (const auto& c : spectral.components()) {
    const double period_h = c.frequency > 0.0 ? 0.25 / c.frequency : 0.0;
    if (period_h > 20.0 && period_h < 28.0) found_daily = true;
  }
  EXPECT_TRUE(found_daily);
}

// -------------------------------------------- fingerprint on live job trace

TEST(Integration, MinerDetectionOnLiveCluster) {
  sim::ClusterParams params;
  params.seed = 43;
  params.dt = 30;
  params.workload.peak_arrival_rate_per_hour = 70.0;
  params.workload.max_duration = kHour;
  params.workload.min_duration = 20 * kMinute;
  params.workload.miner_fraction = 0.15;
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store(1 << 16);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);
  while (cluster.now() < kDay) {
    cluster.step();
    collector.collect();
  }
  std::vector<std::string> prefixes;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    prefixes.push_back(cluster.node(i).path());
  }
  const auto& completed = cluster.scheduler().completed();
  ASSERT_GT(completed.size(), 60u);

  analytics::ApplicationFingerprinter fp;
  Rng rng(47);
  const std::size_t split = completed.size() / 2;
  for (std::size_t i = 0; i < split; ++i) {
    if (completed[i].run_time() < 10 * kMinute) continue;
    fp.add_training(completed[i].spec.job_class == sim::JobClass::kCryptoMiner
                        ? "miner"
                        : "regular",
                    analytics::job_signature(store, completed[i], prefixes));
  }
  fp.train(rng);
  std::size_t correct = 0, total = 0;
  for (std::size_t i = split; i < completed.size(); ++i) {
    if (completed[i].run_time() < 10 * kMinute) continue;
    const bool truth =
        completed[i].spec.job_class == sim::JobClass::kCryptoMiner;
    const auto pred = fp.predict_forest(
        analytics::job_signature(store, completed[i], prefixes));
    correct += (pred.label == "miner") == truth;
    ++total;
  }
  ASSERT_GT(total, 20u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

// ----------------------------------------------------- framework extensions

TEST(Core, SystemSimilarityAndComprehensiveness) {
  const auto systems = core::published_example_systems();
  // GEOPM and DRAS-CQSim both occupy predictive+prescriptive (different
  // pillars) -> zero cell overlap; GEOPM vs PowerStack overlap strongly.
  const auto find = [&](const char* name) {
    for (const auto& s : systems) {
      if (s.name.find(name) != std::string::npos) return s;
    }
    throw ContractError("system not found");
  };
  EXPECT_DOUBLE_EQ(core::system_similarity(find("GEOPM"), find("GEOPM")), 1.0);
  EXPECT_GT(core::system_similarity(find("GEOPM"), find("PowerStack")), 0.3);
  EXPECT_DOUBLE_EQ(core::system_similarity(find("GEOPM"), find("ClusterCockpit")),
                   0.0);
  EXPECT_GT(core::comprehensiveness(find("PowerStack")),
            core::comprehensiveness(find("ClusterCockpit")));
  const auto matrix = core::render_similarity_matrix(systems);
  EXPECT_NE(matrix.find("1.00"), std::string::npos);
}

TEST(Core, RoadmapRenderForPartialSite) {
  core::FrameworkGrid site;
  core::CapabilityDescriptor dash;
  dash.id = "d";
  dash.name = "dashboards";
  dash.cells = {{core::Pillar::kSystemHardware, core::AnalyticsType::kDescriptive}};
  site.register_capability(dash);
  const auto report = site.render_roadmap();
  EXPECT_NE(report.find("diagnostic"), std::string::npos);
  EXPECT_NE(report.find("applications"), std::string::npos);

  const auto full = core::implemented_capabilities().render_roadmap();
  EXPECT_NE(full.find("already covered"), std::string::npos);
}

}  // namespace
}  // namespace oda
