// Tests for the telemetry pipeline: catalog, bus, store, collector, alerts,
// and derived sensors — including the sim -> store integration path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "sim/cluster.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/derived.hpp"
#include "telemetry/sample.hpp"
#include "telemetry/store.hpp"

namespace oda::telemetry {
namespace {

// ---------------------------------------------------------------- catalog

TEST(SensorCatalog, AddFindMatch) {
  SensorCatalog cat;
  cat.add({"rack00/node00/power", "W"});
  cat.add({"rack00/node00/cpu_temp", "degC"});
  cat.add({"facility/pue", "ratio"});
  EXPECT_TRUE(cat.contains("facility/pue"));
  EXPECT_EQ(cat.find("rack00/node00/power")->unit, "W");
  EXPECT_EQ(cat.match("rack00/node00/*").size(), 2u);
  EXPECT_EQ(cat.match("*").size(), 3u);
  EXPECT_TRUE(cat.match("nothing/*").empty());
}

TEST(SensorCatalog, ReAddUpdates) {
  SensorCatalog cat;
  cat.add({"s", "W"});
  cat.add({"s", "kW"});
  EXPECT_EQ(cat.size(), 1u);
  EXPECT_EQ(cat.find("s")->unit, "kW");
}

// -------------------------------------------------------------------- bus

TEST(MessageBus, DeliversToMatchingSubscribers) {
  MessageBus bus;
  int node_hits = 0, all_hits = 0;
  bus.subscribe("rack*/node*/power", [&](const Reading&) { ++node_hits; });
  bus.subscribe("*", [&](const Reading&) { ++all_hits; });
  bus.publish("rack00/node01/power", 10, 150.0);
  bus.publish("facility/pue", 10, 1.3);
  EXPECT_EQ(node_hits, 1);
  EXPECT_EQ(all_hits, 2);
  EXPECT_EQ(bus.published_count(), 2u);
  EXPECT_EQ(bus.delivered_count(), 3u);
}

TEST(MessageBus, UnsubscribeStopsDelivery) {
  MessageBus bus;
  int hits = 0;
  const auto id = bus.subscribe("*", [&](const Reading&) { ++hits; });
  bus.publish("x", 0, 1.0);
  bus.unsubscribe(id);
  bus.publish("x", 0, 1.0);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

TEST(MessageBus, ReentrantPublishDoesNotDeadlock) {
  MessageBus bus;
  int secondary = 0;
  bus.subscribe("primary", [&](const Reading& r) {
    bus.publish("secondary", r.sample.time, r.sample.value * 2.0);
  });
  bus.subscribe("secondary", [&](const Reading&) { ++secondary; });
  bus.publish("primary", 0, 1.0);
  EXPECT_EQ(secondary, 1);
}

// ------------------------------------------------------------------ store

TEST(Store, InsertAndQueryRange) {
  TimeSeriesStore store;
  for (TimePoint t = 0; t < 100; t += 10) {
    store.insert("s", {t, static_cast<double>(t)});
  }
  const auto slice = store.query("s", 20, 60);
  ASSERT_EQ(slice.size(), 4u);
  EXPECT_EQ(slice.times.front(), 20);
  EXPECT_EQ(slice.times.back(), 50);
  EXPECT_EQ(store.sample_count("s"), 10u);
}

TEST(Store, LatestAndMissing) {
  TimeSeriesStore store;
  EXPECT_FALSE(store.latest("nope").has_value());
  store.insert("s", {5, 1.5});
  store.insert("s", {6, 2.5});
  EXPECT_DOUBLE_EQ(store.latest("s")->value, 2.5);
  EXPECT_TRUE(store.query("nope", 0, 100).empty());
}

TEST(Store, CapacityBoundsRetention) {
  TimeSeriesStore store(4);
  for (TimePoint t = 0; t < 10; ++t) store.insert("s", {t, 0.0});
  EXPECT_EQ(store.sample_count("s"), 4u);
  const auto slice = store.query_all("s");
  EXPECT_EQ(slice.times.front(), 6);
}

TEST(Store, AggregatedBuckets) {
  TimeSeriesStore store;
  for (TimePoint t = 0; t < 60; ++t) {
    store.insert("s", {t, static_cast<double>(t < 30 ? 10 : 20)});
  }
  const auto agg = store.query_aggregated("s", 0, 60, 30, Aggregation::kMean);
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_DOUBLE_EQ(agg.values[0], 10.0);
  EXPECT_DOUBLE_EQ(agg.values[1], 20.0);
  const auto mx = store.query_aggregated("s", 0, 60, 60, Aggregation::kMax);
  EXPECT_DOUBLE_EQ(mx.values[0], 20.0);
  const auto cnt = store.query_aggregated("s", 0, 60, 60, Aggregation::kCount);
  EXPECT_DOUBLE_EQ(cnt.values[0], 60.0);
}

TEST(Store, FrameAlignsMultipleSensors) {
  TimeSeriesStore store;
  for (TimePoint t = 0; t < 40; t += 10) {
    store.insert("a", {t, 1.0});
    if (t < 20) store.insert("b", {t, 2.0});  // b stops early
  }
  const auto f = store.frame({"a", "b"}, 0, 40, 10);
  ASSERT_EQ(f.rows(), 4u);
  ASSERT_EQ(f.cols(), 2u);
  EXPECT_DOUBLE_EQ(f.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(f.at(0, 1), 2.0);
  EXPECT_TRUE(std::isnan(f.at(3, 1)));  // missing data is NaN
  EXPECT_EQ(f.column_values(1).size(), 4u);
  EXPECT_DOUBLE_EQ(f.column_values(1)[1], 2.0);
  const auto col = f.column("a");
  EXPECT_EQ(col.size(), 4u);
  EXPECT_THROW(f.column("zzz"), ContractError);
}

TEST(Store, MatchGlob) {
  TimeSeriesStore store;
  store.insert("rack00/node00/power", {0, 1.0});
  store.insert("rack00/node01/power", {0, 1.0});
  store.insert("facility/pue", {0, 1.0});
  EXPECT_EQ(store.match("rack*/node*/power").size(), 2u);
}

// -------------------------------------------------------------- collector

TEST(Collector, SamplesIntoStoreAtPeriod) {
  sim::ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 2;
  params.dt = 15;
  sim::ClusterSimulation cluster(params);
  TimeSeriesStore store;
  Collector collector(cluster, &store, nullptr);
  collector.add_group({"facility", "facility/*", 30});
  for (int i = 0; i < 8; ++i) {  // 2 minutes at dt=15
    cluster.step();
    collector.collect();
  }
  // period 30 with dt 15 -> every other step.
  EXPECT_EQ(store.sample_count("facility/pue"), 4u);
  EXPECT_EQ(store.sample_count("weather/drybulb_temp"), 0u);  // not in group
}

TEST(Collector, PublishesToBus) {
  sim::ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 2;
  sim::ClusterSimulation cluster(params);
  MessageBus bus;
  std::atomic<int> readings{0};
  bus.subscribe("rack00/*", [&](const Reading&) { ++readings; });
  Collector collector(cluster, nullptr, &bus);
  collector.add_all_sensors(15);
  cluster.step();
  collector.collect();
  EXPECT_GT(readings.load(), 0);
}

TEST(Collector, GroupReportsMatchedCount) {
  sim::ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 4;
  sim::ClusterSimulation cluster(params);
  Collector collector(cluster, nullptr, nullptr);
  EXPECT_EQ(collector.add_group({"power", "rack*/node*/power", 60}), 8u);
}

// ----------------------------------------------------------------- alerts

TEST(Alerts, FiresAfterHoldAndClearsWithHysteresis) {
  AlertEngine engine;
  AlertRule rule;
  rule.name = "hot";
  rule.sensor_pattern = "t";
  rule.threshold = 80.0;
  rule.hold = 20;
  rule.hysteresis = 5.0;
  engine.add_rule(rule);

  engine.observe({"t", {0, 85.0}});   // violation starts
  EXPECT_EQ(engine.active_count(), 0u);  // hold not elapsed
  engine.observe({"t", {10, 86.0}});
  EXPECT_EQ(engine.active_count(), 0u);
  engine.observe({"t", {25, 87.0}});
  EXPECT_EQ(engine.active_count(), 1u);  // fired
  engine.observe({"t", {30, 78.0}});     // below threshold but inside hysteresis
  EXPECT_EQ(engine.active_count(), 1u);
  engine.observe({"t", {35, 74.0}});     // below threshold - hysteresis
  EXPECT_EQ(engine.active_count(), 0u);
  ASSERT_EQ(engine.history().size(), 1u);
  EXPECT_TRUE(engine.history()[0].cleared);
}

TEST(Alerts, ViolationInterruptedResetsHold) {
  AlertEngine engine;
  AlertRule rule;
  rule.name = "hot";
  rule.sensor_pattern = "t";
  rule.threshold = 80.0;
  rule.hold = 20;
  engine.add_rule(rule);
  engine.observe({"t", {0, 85.0}});
  engine.observe({"t", {10, 70.0}});  // back to normal
  engine.observe({"t", {15, 85.0}});
  engine.observe({"t", {30, 85.0}});  // only 15s of continuous violation
  EXPECT_EQ(engine.active_count(), 0u);
  engine.observe({"t", {40, 85.0}});
  EXPECT_EQ(engine.active_count(), 1u);
}

TEST(Alerts, BelowComparisonAndCallback) {
  AlertEngine engine;
  AlertRule rule;
  rule.name = "flow-low";
  rule.sensor_pattern = "flow";
  rule.comparison = AlertComparison::kBelow;
  rule.threshold = 1.0;
  rule.severity = AlertSeverity::kCritical;
  engine.add_rule(rule);
  int callbacks = 0;
  engine.set_callback([&](const Alert& a) {
    ++callbacks;
    EXPECT_EQ(a.severity, AlertSeverity::kCritical);
  });
  engine.observe({"flow", {0, 0.2}});
  EXPECT_EQ(engine.active_count(), 1u);
  EXPECT_EQ(callbacks, 1);
}

TEST(Alerts, PerSensorStateIndependent) {
  AlertEngine engine;
  AlertRule rule;
  rule.name = "hot";
  rule.sensor_pattern = "rack*/temp";
  rule.threshold = 50.0;
  engine.add_rule(rule);
  engine.observe({"rack0/temp", {0, 60.0}});
  engine.observe({"rack1/temp", {0, 40.0}});
  EXPECT_EQ(engine.active_count(), 1u);
  EXPECT_EQ(engine.active()[0].sensor, "rack0/temp");
}

// Hysteresis edge cases: the threshold itself is not a violation (strict
// compare), and the clear band is exclusive at threshold - hysteresis.
TEST(Alerts, ValueExactlyAtThresholdEdges) {
  AlertEngine engine;
  AlertRule rule;
  rule.name = "hot";
  rule.sensor_pattern = "t";
  rule.threshold = 80.0;
  rule.hold = 0;
  rule.hysteresis = 5.0;
  engine.add_rule(rule);

  engine.observe({"t", {0, 80.0}});  // exactly at threshold: no violation
  EXPECT_EQ(engine.active_count(), 0u);
  engine.observe({"t", {10, std::nextafter(80.0, 81.0)}});  // one ulp above
  EXPECT_EQ(engine.active_count(), 1u);
  engine.observe({"t", {20, 75.0}});  // exactly threshold - hysteresis: holds
  EXPECT_EQ(engine.active_count(), 1u);
  engine.observe({"t", {30, std::nextafter(75.0, 74.0)}});  // one ulp below
  EXPECT_EQ(engine.active_count(), 0u);
}

// A collection gap (no readings for a while) must not reset the hold timer:
// the violation window straddles the gap.
TEST(Alerts, HoldWindowStraddlesCollectionGap) {
  AlertEngine engine;
  AlertRule rule;
  rule.name = "hot";
  rule.sensor_pattern = "t";
  rule.threshold = 80.0;
  rule.hold = 60;
  engine.add_rule(rule);

  engine.observe({"t", {0, 85.0}});  // violation starts
  EXPECT_EQ(engine.active_count(), 0u);
  // Sensor quarantined / breaker open: nothing arrives until t = 300.
  engine.observe({"t", {300, 85.0}});  // still violating after the gap
  EXPECT_EQ(engine.active_count(), 1u);
  ASSERT_EQ(engine.history().size(), 1u);
  EXPECT_EQ(engine.history()[0].raised_at, 300);
}

TEST(Alerts, RefiresAfterClear) {
  AlertEngine engine;
  AlertRule rule;
  rule.name = "hot";
  rule.sensor_pattern = "t";
  rule.threshold = 80.0;
  rule.hold = 20;
  rule.hysteresis = 5.0;
  engine.add_rule(rule);

  engine.observe({"t", {0, 85.0}});
  engine.observe({"t", {20, 85.0}});
  EXPECT_EQ(engine.active_count(), 1u);
  engine.observe({"t", {40, 70.0}});  // clears
  EXPECT_EQ(engine.active_count(), 0u);
  engine.observe({"t", {60, 85.0}});  // second episode: hold starts fresh
  EXPECT_EQ(engine.active_count(), 0u);
  engine.observe({"t", {80, 85.0}});
  EXPECT_EQ(engine.active_count(), 1u);
  ASSERT_EQ(engine.history().size(), 2u);
  EXPECT_TRUE(engine.history()[0].cleared);
  EXPECT_FALSE(engine.history()[1].cleared);
}

TEST(Alerts, HistoryCapEvictsOldestClearedAndKeepsActiveValid) {
  AlertEngine engine;
  engine.set_history_limit(16);
  AlertRule rule;
  rule.name = "hot";
  rule.sensor_pattern = "*";
  rule.threshold = 1.0;
  rule.hysteresis = 0.0;
  engine.add_rule(rule);

  // One alert stays active the whole time (pinned in history).
  engine.observe({"pinned", {0, 5.0}});
  EXPECT_EQ(engine.active_count(), 1u);

  // Churn far more fire/clear episodes than the cap on another sensor.
  TimePoint t = 10;
  for (int i = 0; i < 100; ++i) {
    engine.observe({"churn", {t, 5.0}});
    engine.observe({"churn", {t + 1, 0.0}});
    t += 10;
  }
  EXPECT_LE(engine.history().size(), 16u);
  EXPECT_GT(engine.history_evicted(), 0u);
  // The long-lived alert's record survived eviction and still clears
  // correctly through its remapped history index.
  ASSERT_EQ(engine.active_count(), 1u);
  EXPECT_EQ(engine.active()[0].sensor, "pinned");
  engine.observe({"pinned", {t, 0.0}});
  EXPECT_EQ(engine.active_count(), 0u);
  bool found_cleared_pinned = false;
  for (const auto& a : engine.history()) {
    if (a.sensor == "pinned" && a.cleared) found_cleared_pinned = true;
  }
  EXPECT_TRUE(found_cleared_pinned);
}

// ------------------------------------------------------------- unrouted

TEST(MessageBus, CountsUnroutedPublishes) {
  MessageBus bus;
  bus.subscribe("rack0/*", [](const Reading&) {});
  const auto before = bus.unrouted_count();
  bus.publish("rack0/power", 0, 1.0);   // routed
  bus.publish("orphan/metric", 0, 1.0);  // no subscriber
  bus.publish("orphan/other", 0, 1.0);   // same prefix: counted, logged once
  EXPECT_EQ(bus.unrouted_count(), before + 2);
}

// ---------------------------------------------------------- empty groups

TEST(Collector, WarnsOnPatternMatchingNothing) {
  sim::ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 2;
  sim::ClusterSimulation cluster(params);
  Collector collector(cluster, nullptr, nullptr);
  CaptureSink capture;
  EXPECT_EQ(collector.add_group({"typo", "rak*/node*/power", 60}), 0u);
  bool warned = false;
  for (const auto& line : capture.lines()) {
    if (line.find("matched no sensors") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
}

// ---------------------------------------------------------------- derived

TEST(Derived, RatioAndSum) {
  TimeSeriesStore store;
  store.insert("a", {0, 10.0});
  store.insert("b", {0, 4.0});
  DerivedSensors derived(store);
  derived.define_ratio("r", "a", "b");
  derived.define("total", {"a", "b"}, [](const std::vector<double>& v) {
    return v[0] + v[1];
  });
  derived.evaluate(0);
  EXPECT_DOUBLE_EQ(store.latest("r")->value, 2.5);
  EXPECT_DOUBLE_EQ(store.latest("total")->value, 14.0);
}

TEST(Derived, SkipsWhenInputMissing) {
  TimeSeriesStore store;
  store.insert("a", {0, 1.0});
  DerivedSensors derived(store);
  derived.define_ratio("r", "a", "missing");
  derived.evaluate(0);
  EXPECT_FALSE(store.latest("r").has_value());
}

TEST(Derived, SumOverPattern) {
  TimeSeriesStore store;
  store.insert("rack0/power", {0, 100.0});
  store.insert("rack1/power", {0, 150.0});
  DerivedSensors derived(store);
  derived.define_sum("total_power", "rack*/power");
  derived.evaluate(0);
  EXPECT_DOUBLE_EQ(store.latest("total_power")->value, 250.0);
}

}  // namespace
}  // namespace oda::telemetry
