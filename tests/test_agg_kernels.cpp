// Property tests for the bucket aggregation kernels (agg_kernels.hpp): the
// dense and sparse drivers must be bit-identical to folding the same
// samples through AggAccumulator, across every Aggregation mode, ring
// wraparound span splits, NaN runs, duplicate timestamps, and empty-bucket
// gaps. NaN equality here means "both NaN" (the accumulator's sticky
// first-NaN min/max semantics are part of the contract).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "telemetry/agg_kernels.hpp"
#include "telemetry/store.hpp"

namespace oda::telemetry {
namespace {

bool same(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

constexpr Aggregation kAllAggs[] = {
    Aggregation::kMean, Aggregation::kMin,  Aggregation::kMax,
    Aggregation::kSum,  Aggregation::kLast, Aggregation::kCount,
    Aggregation::kStdDev};

/// Reference: the original per-sample AggAccumulator bucket ladder, on a
/// plain sorted vector (what query_aggregated did before the kernels).
void reference_buckets(const std::vector<Sample>& samples, TimePoint from,
                       Duration bucket, Aggregation agg,
                       std::vector<TimePoint>& out_times,
                       std::vector<double>& out_values) {
  if (samples.empty()) return;
  TimePoint bucket_start =
      from + ((samples.front().time - from) / bucket) * bucket;
  AggAccumulator acc;
  const auto flush = [&] {
    if (acc.count != 0) {
      out_times.push_back(bucket_start);
      out_values.push_back(acc.result(agg));
      acc.reset();
    }
  };
  for (const Sample& s : samples) {
    while (s.time >= bucket_start + bucket) {
      flush();
      bucket_start += bucket;
    }
    acc.add(s.value);
  }
  flush();
}

/// Runs both kernel drivers against the reference over one sample sequence,
/// at every possible ring-wrap split point of the two spans.
void check_all_splits(const std::vector<Sample>& samples, TimePoint from,
                      Duration bucket, const std::string& context) {
  TimePoint max_time = from;
  for (const Sample& s : samples) max_time = std::max(max_time, s.time);
  const std::size_t n_buckets =
      static_cast<std::size_t>((max_time - from) / bucket) + 1;

  for (const Aggregation agg : kAllAggs) {
    std::vector<TimePoint> want_times;
    std::vector<double> want_values;
    reference_buckets(samples, from, bucket, agg, want_times, want_values);

    // Dense reference: scatter the sparse reference onto the bucket grid.
    std::vector<double> want_dense(n_buckets, std::nan(""));
    for (std::size_t i = 0; i < want_times.size(); ++i) {
      want_dense[static_cast<std::size_t>((want_times[i] - from) / bucket)] =
          want_values[i];
    }

    for (std::size_t split = 0; split <= samples.size(); ++split) {
      const std::span<const Sample> a(samples.data(), split);
      const std::span<const Sample> b(samples.data() + split,
                                      samples.size() - split);
      const std::string ctx = context + " agg " +
                              std::to_string(static_cast<int>(agg)) +
                              " split " + std::to_string(split);

      std::vector<TimePoint> got_times;
      std::vector<double> got_values;
      bucket_aggregate_sparse(a, b, from, bucket, agg, got_times, got_values);
      ASSERT_EQ(got_times.size(), want_times.size()) << ctx;
      for (std::size_t i = 0; i < got_times.size(); ++i) {
        EXPECT_EQ(got_times[i], want_times[i]) << ctx << " @" << i;
        EXPECT_TRUE(same(got_values[i], want_values[i]))
            << ctx << " @" << i << ": " << got_values[i]
            << " != " << want_values[i];
      }

      std::vector<double> got_dense(n_buckets, std::nan(""));
      bucket_aggregate_dense(a, b, from, bucket, agg, n_buckets,
                             got_dense.data());
      for (std::size_t k = 0; k < n_buckets; ++k) {
        EXPECT_TRUE(same(got_dense[k], want_dense[k]))
            << ctx << " bucket " << k << ": " << got_dense[k]
            << " != " << want_dense[k];
      }
    }
  }
}

TEST(AggKernels, RandomizedMatchesAccumulatorAtEverySplit) {
  Rng rng(7);
  for (int round = 0; round < 25; ++round) {
    const TimePoint from = rng.uniform_int(-100, 100);
    const Duration bucket = rng.uniform_int(1, 60);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 40));
    std::vector<Sample> samples;
    TimePoint t = from;
    for (std::size_t i = 0; i < n; ++i) {
      t += rng.uniform_int(0, 25);  // duplicates (0) through multi-bucket gaps
      double v = rng.normal(0.0, 100.0);
      const double u = rng.uniform();
      if (u < 0.15) v = std::nan("");
      else if (u < 0.25) v = v * 1e12;
      else if (u < 0.30) v = (u < 0.275) ? 0.0 : -0.0;  // signed-zero order
      samples.push_back({t, v});
    }
    check_all_splits(samples, from, bucket,
                     "round " + std::to_string(round));
  }
}

TEST(AggKernels, AllNaNRunsAreSticky) {
  // A bucket whose first value is NaN reports NaN for min/max (sticky);
  // later NaNs are skipped, matching std::min_element comparison order.
  const std::vector<Sample> samples{{0, std::nan("")}, {1, 5.0},
                                    {2, std::nan("")}, {10, 3.0},
                                    {11, std::nan("")}, {12, 1.0}};
  check_all_splits(samples, 0, 10, "nan-runs");
}

TEST(AggKernels, EmptyBucketGapsAndEmptyInput) {
  // Huge gaps: the walk must jump empty buckets by index, not iterate them.
  const std::vector<Sample> samples{{0, 1.0}, {1'000'000, 2.0},
                                    {9'000'000, 3.0}};
  check_all_splits(samples, 0, 7, "gap");

  std::vector<TimePoint> times;
  std::vector<double> values;
  bucket_aggregate_sparse({}, {}, 0, 10, Aggregation::kMean, times, values);
  EXPECT_TRUE(times.empty());
  EXPECT_TRUE(values.empty());
  double dense[4] = {1.0, 2.0, 3.0, 4.0};
  bucket_aggregate_dense({}, {}, 0, 10, Aggregation::kSum, 4, dense);
  EXPECT_DOUBLE_EQ(dense[2], 3.0);  // untouched
}

TEST(AggKernels, SingleSampleEveryMode) {
  const std::vector<Sample> samples{{5, 42.5}};
  check_all_splits(samples, 0, 10, "single");
  // StdDev of a single sample is 0, not NaN (AggAccumulator contract).
  std::vector<TimePoint> times;
  std::vector<double> values;
  bucket_aggregate_sparse(std::span<const Sample>(samples), {}, 0, 10,
                          Aggregation::kStdDev, times, values);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0], 0.0);
}

}  // namespace
}  // namespace oda::telemetry
