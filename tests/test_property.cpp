// Property-based tests: parameterized sweeps asserting invariants across
// input families rather than single examples — FFT algebra over sizes,
// quantile-estimator error bounds over distributions, scheduler safety
// invariants over random workloads/seeds, detector monotonicity over fault
// magnitudes, and statistics merge laws over random partitions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analytics/diagnostic/anomaly.hpp"
#include "analytics/predictive/backtest.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "math/distance.hpp"
#include "math/fft.hpp"
#include "math/optimize.hpp"
#include "sim/scheduler.hpp"
#include "sim/workload.hpp"

namespace oda {
namespace {

// --------------------------------------------------- FFT algebra over sizes

class FftSizeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeProperty, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  std::vector<math::Complex> xs(n);
  for (auto& c : xs) c = math::Complex(rng.normal(), rng.normal());
  const auto back = math::ifft(math::fft(xs));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), xs[i].real(), 1e-7) << "n=" << n;
    EXPECT_NEAR(back[i].imag(), xs[i].imag(), 1e-7) << "n=" << n;
  }
}

TEST_P(FftSizeProperty, LinearityHolds) {
  const std::size_t n = GetParam();
  Rng rng(2000 + n);
  std::vector<math::Complex> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = math::Complex(rng.normal(), 0);
    b[i] = math::Complex(rng.normal(), 0);
    sum[i] = a[i] + b[i];
  }
  const auto fa = math::fft(a);
  const auto fb = math::fft(b);
  const auto fsum = math::fft(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fsum[i].real(), fa[i].real() + fb[i].real(), 1e-7);
    EXPECT_NEAR(fsum[i].imag(), fa[i].imag() + fb[i].imag(), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeProperty,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 16, 31, 32,
                                           60, 64, 100, 127, 128, 255, 256));

// ------------------------------------------- P2 quantile over distributions

struct QuantileCase {
  const char* name;
  double q;
  int distribution;  // 0 normal, 1 exponential, 2 uniform, 3 bimodal
};

class P2Property : public ::testing::TestWithParam<QuantileCase> {};

TEST_P(P2Property, TracksExactQuantile) {
  const auto& param = GetParam();
  Rng rng(static_cast<std::uint64_t>(param.q * 1000) + param.distribution);
  P2Quantile estimator(param.q);
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i) {
    double x = 0.0;
    switch (param.distribution) {
      case 0: x = rng.normal(50.0, 10.0); break;
      case 1: x = rng.exponential(0.2); break;
      case 2: x = rng.uniform(-5.0, 5.0); break;
      case 3: x = rng.bernoulli(0.5) ? rng.normal(0, 1) : rng.normal(20, 1); break;
      default: break;
    }
    xs.push_back(x);
    estimator.add(x);
  }
  const double exact = quantile(xs, param.q);
  const double spread = quantile(xs, 0.95) - quantile(xs, 0.05);
  EXPECT_NEAR(estimator.value(), exact, 0.05 * spread + 1e-6)
      << param.name << " q=" << param.q;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, P2Property,
    ::testing::Values(QuantileCase{"normal_med", 0.5, 0},
                      QuantileCase{"normal_p90", 0.9, 0},
                      QuantileCase{"normal_p99", 0.99, 0},
                      QuantileCase{"exp_med", 0.5, 1},
                      QuantileCase{"exp_p95", 0.95, 1},
                      QuantileCase{"uniform_p25", 0.25, 2},
                      QuantileCase{"uniform_p75", 0.75, 2},
                      // Note: the *median* of a well-separated bimodal mix
                      // sits in an empty density valley where the target
                      // itself is unstable, so we test quantiles inside the
                      // modes instead.
                      QuantileCase{"bimodal_p25", 0.25, 3},
                      QuantileCase{"bimodal_p90", 0.9, 3}),
    [](const auto& suite_info) { return std::string(suite_info.param.name); });

// ------------------------------------------- scheduler safety across seeds

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, InvariantsUnderRandomWorkload) {
  const std::uint64_t seed = GetParam();
  sim::WorkloadParams wp;
  wp.seed = seed;
  wp.max_nodes_per_job = 16;
  wp.min_duration = 5 * kMinute;
  wp.max_duration = 2 * kHour;
  sim::WorkloadGenerator gen(wp);
  auto trace = gen.generate_trace(120);

  sim::SchedulerParams sp;
  sp.discipline = seed % 2 ? sim::QueueDiscipline::kEasyBackfill
                           : sim::QueueDiscipline::kFcfs;
  sim::Scheduler sched(16, sp);

  std::size_t next = 0;
  TimePoint now = 0;
  const Duration dt = kMinute;
  std::set<std::uint64_t> completed_ids;
  while (completed_ids.size() < trace.size() && now < 365 * kDay) {
    while (next < trace.size() && trace[next].submit_time <= now) {
      sched.submit(trace[next++]);
    }
    sched.schedule(now);

    // Invariant 1: a node is never allocated to two jobs.
    std::set<std::size_t> used;
    for (const auto& job : sched.running()) {
      for (std::size_t n : job.nodes) {
        EXPECT_TRUE(used.insert(n).second) << "double allocation, seed " << seed;
      }
    }
    // Invariant 2: busy-map consistency.
    EXPECT_EQ(used.size(), sched.node_count() - sched.free_node_count());

    for (const auto& job : sched.running()) {
      sched.advance_job(job.spec.id, static_cast<double>(dt), 0.0);
    }
    now += dt;
    for (const auto& r : sched.reap(now, 1e18)) {
      // Invariant 3: jobs never run past their walltime request.
      EXPECT_LE(r.run_time(), r.spec.walltime_requested + dt);
      // Invariant 4: each job completes exactly once.
      EXPECT_TRUE(completed_ids.insert(r.spec.id).second);
    }
  }
  // Liveness: everything completes.
  EXPECT_EQ(completed_ids.size(), trace.size()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --------------------------------- stuck detector monotone in run length

class StuckProperty : public ::testing::TestWithParam<int> {};

TEST_P(StuckProperty, ScoreMonotoneInRunLength) {
  const int run = GetParam();
  analytics::StuckSensorDetector det(16);
  Rng rng(run);
  for (int i = 0; i < 64; ++i) det.observe(rng.normal(10, 1));
  double last_score = det.score();
  for (int i = 0; i < run; ++i) {
    det.observe(42.0);
    EXPECT_GE(det.score() + 1e-12, last_score);
    last_score = det.score();
  }
  // The first repeated sample starts the run at zero, so `run` observations
  // of the same value yield a run length of run - 1.
  if (run - 1 >= 16) {
    EXPECT_GE(det.score(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Runs, StuckProperty,
                         ::testing::Values(1, 4, 8, 15, 16, 32, 64));

// ------------------------------------------- z-score detector ROC quality

class DetectorAucProperty : public ::testing::TestWithParam<double> {};

TEST_P(DetectorAucProperty, AucGrowsWithSpikeMagnitude) {
  const double magnitude = GetParam();
  Rng rng(static_cast<std::uint64_t>(magnitude * 100));
  analytics::ZScoreDetector det(64, 4.0);
  std::vector<double> scores;
  std::vector<bool> truth;
  for (int i = 0; i < 2000; ++i) {
    const bool is_anomaly = i > 200 && rng.bernoulli(0.02);
    const double x = rng.normal(100.0, 2.0) + (is_anomaly ? magnitude : 0.0);
    det.observe(x);
    if (i > 200) {
      scores.push_back(det.score());
      truth.push_back(is_anomaly);
    }
  }
  const double auc = analytics::roc_auc(scores, truth);
  if (magnitude >= 8.0) {
    EXPECT_GT(auc, 0.95) << "magnitude " << magnitude;
  } else if (magnitude >= 4.0) {
    EXPECT_GT(auc, 0.75) << "magnitude " << magnitude;
  } else {
    EXPECT_GT(auc, 0.45) << "magnitude " << magnitude;  // not pathological
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, DetectorAucProperty,
                         ::testing::Values(1.0, 4.0, 8.0, 16.0, 32.0));

// -------------------------------------------------- forecaster robustness

class ForecasterRobustness
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ForecasterRobustness, FiniteForecastsOnHostileInputs) {
  auto model = analytics::make_forecaster(GetParam());
  // Constant, spike, alternating, and large-magnitude inputs must never
  // produce NaN/inf forecasts.
  const std::vector<std::vector<double>> inputs = {
      std::vector<double>(200, 5.0),
      [] {
        std::vector<double> v(200, 1.0);
        v[100] = 1e9;
        return v;
      }(),
      [] {
        std::vector<double> v;
        for (int i = 0; i < 200; ++i) v.push_back(i % 2 ? 1e6 : -1e6);
        return v;
      }(),
  };
  for (const auto& xs : inputs) {
    model->fit(xs);
    for (double v : model->forecast(16)) {
      EXPECT_TRUE(std::isfinite(v)) << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Specs, ForecasterRobustness,
                         ::testing::Values("persistence", "moving-average",
                                           "ses", "holt", "holt-winters:24",
                                           "ar", "linear-trend:32"),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           for (char& c : name) {
                             if (c == '-' || c == ':') c = '_';
                           }
                           return name;
                         });

// ------------------------------------------------------ DTW metric laws

class DtwProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DtwProperty, SymmetryAndIdentity) {
  Rng rng(GetParam());
  std::vector<double> a(40), b(50);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  EXPECT_DOUBLE_EQ(math::dtw_distance(a, a), 0.0);
  EXPECT_NEAR(math::dtw_distance(a, b), math::dtw_distance(b, a), 1e-9);
  EXPECT_GE(math::dtw_distance(a, b), 0.0);
  // DTW is bounded above by the L1 distance when lengths match.
  std::vector<double> c(a.size());
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = rng.normal();
  EXPECT_LE(math::dtw_distance(a, c), math::manhattan_distance(a, c) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtwProperty, ::testing::Values(7, 11, 13, 17));

// --------------------------------------------- RunningStats merge algebra

class MergeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeProperty, AnyPartitionGivesSameMoments) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.lognormal(1.0, 1.0));

  RunningStats whole;
  for (double x : xs) whole.add(x);

  // Random 3-way partition, merged in random order.
  RunningStats parts[3];
  for (double x : xs) parts[rng.uniform_int(0, 2)].add(x);
  RunningStats merged = parts[2];
  merged.merge(parts[0]);
  merged.merge(parts[1]);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-7);
  EXPECT_NEAR(merged.skewness(), whole.skewness(), 1e-6);
  EXPECT_NEAR(merged.kurtosis(), whole.kurtosis(), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeProperty,
                         ::testing::Values(3, 9, 27, 81, 243));

// ------------------------------------------------------- glob properties

class GlobProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobProperty, SelfAndStarMatches) {
  Rng rng(GetParam());
  // Random sensor-like paths.
  std::string path;
  const char* segments[] = {"rack", "node", "cpu", "power", "temp", "fan"};
  const int depth = static_cast<int>(rng.uniform_int(1, 4));
  for (int d = 0; d < depth; ++d) {
    if (d) path += '/';
    path += segments[rng.uniform_int(0, 5)];
    path += std::to_string(rng.uniform_int(0, 99));
  }
  EXPECT_TRUE(glob_match(path, path));      // literal self-match
  EXPECT_TRUE(glob_match("*", path));       // universal match
  // Replacing any suffix with '*' still matches.
  for (std::size_t cut = 0; cut < path.size(); ++cut) {
    EXPECT_TRUE(glob_match(path.substr(0, cut) + "*", path));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobProperty,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

// ------------------------------------------ golden section over quadratics

class GoldenProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoldenProperty, FindsMinimumOfRandomQuadratic) {
  Rng rng(GetParam());
  const double center = rng.uniform(-50.0, 50.0);
  const double scale = rng.uniform(0.1, 10.0);
  const auto result = math::golden_section(
      [&](double x) { return scale * (x - center) * (x - center) + 3.0; },
      -100.0, 100.0, 1e-8);
  EXPECT_NEAR(result.x, center, 1e-4);
  EXPECT_NEAR(result.value, 3.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenProperty,
                         ::testing::Values(5, 10, 15, 20, 25, 30));

}  // namespace
}  // namespace oda
