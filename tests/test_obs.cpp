// Tests for the self-instrumentation subsystem: metrics registry semantics,
// Prometheus/JSON exposition correctness, span tracing, per-cell cost
// accounting, pipeline health checks, and callback-series lifetimes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/error.hpp"
#include "common/spsc_queue.hpp"
#include "common/thread_pool.hpp"
#include "obs/cell.hpp"
#include "obs/exposition.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oda::obs {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, CounterIncrements) {
  MetricsRegistry reg;
  Counter& c = reg.counter("oda_test_events_total", "events");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("oda_test_depth", "depth");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(MetricsRegistry, HistogramBucketsSumCount) {
  MetricsRegistry reg;
  Histogram& h =
      reg.histogram("oda_test_seconds", "latency", std::vector<double>{1, 2, 4});
  h.observe(0.5);   // bucket le=1
  h.observe(1.0);   // inclusive upper bound: still le=1
  h.observe(3.0);   // bucket le=4
  h.observe(100.0); // +Inf bucket
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite bounds + implicit +Inf
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
}

TEST(MetricsRegistry, ReRegistrationReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("oda_test_total", "help", {{"k", "v"}});
  Counter& b = reg.counter("oda_test_total", "help", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsRegistry, LabelOrderDoesNotMatter) {
  MetricsRegistry reg;
  Counter& a = reg.counter("oda_test_total", "help",
                           {{"zone", "a"}, {"kind", "x"}});
  Counter& b = reg.counter("oda_test_total", "help",
                           {{"kind", "x"}, {"zone", "a"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("oda_test_total", "help", {{"k", "a"}});
  Counter& b = reg.counter("oda_test_total", "help", {{"k", "b"}});
  EXPECT_NE(&a, &b);
  a.inc(2);
  b.inc(3);
  EXPECT_DOUBLE_EQ(reg.snapshot().total("oda_test_total"), 5.0);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("oda_test_total", "help");
  EXPECT_THROW(reg.gauge("oda_test_total", "help"), ContractError);
  EXPECT_THROW(reg.histogram("oda_test_total", "help"), ContractError);
}

TEST(MetricsRegistry, ValidatesNames) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("bad name", "help"), ContractError);
  EXPECT_THROW(reg.counter("", "help"), ContractError);
  EXPECT_THROW(reg.counter("0leading", "help"), ContractError);
  EXPECT_THROW(reg.counter("ok_total", "help", {{"bad-label", "v"}}),
               ContractError);
  EXPECT_NO_THROW(reg.counter("ok_total", "help", {{"ok_label", "any value"}}));
}

TEST(MetricsRegistry, SnapshotFindAndTotal) {
  MetricsRegistry reg;
  reg.counter("oda_a_total", "a").inc(7);
  reg.gauge("oda_b", "b").set(2.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("oda_a_total"), nullptr);
  EXPECT_EQ(snap.find("oda_a_total")->type, MetricType::kCounter);
  EXPECT_EQ(snap.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(snap.total("oda_a_total"), 7.0);
  EXPECT_DOUBLE_EQ(snap.total("oda_b"), 2.5);
  EXPECT_DOUBLE_EQ(snap.total("missing"), 0.0);
  EXPECT_EQ(reg.family_count(), 2u);
}

TEST(MetricsRegistry, CallbackSeriesLifetime) {
  MetricsRegistry reg;
  double depth = 5.0;
  {
    const CallbackHandle handle = reg.gauge_callback(
        "oda_cb_depth", "pull-model depth", {{"q", "x"}},
        [&depth] { return depth; });
    EXPECT_DOUBLE_EQ(reg.snapshot().total("oda_cb_depth"), 5.0);
    depth = 9.0;
    EXPECT_DOUBLE_EQ(reg.snapshot().total("oda_cb_depth"), 9.0);
  }
  // Handle destroyed: the series must no longer be exported.
  EXPECT_EQ(reg.snapshot().find("oda_cb_depth"), nullptr);
}

TEST(MetricsRegistry, CallbackHandleMoveTransfersOwnership) {
  MetricsRegistry reg;
  CallbackHandle outer;
  {
    CallbackHandle inner = reg.counter_callback(
        "oda_cb_total", "moved", {}, [] { return 1.0; });
    outer = std::move(inner);
  }
  // `inner` was destroyed after the move; the series must survive.
  EXPECT_NE(reg.snapshot().find("oda_cb_total"), nullptr);
  outer.release();
  EXPECT_EQ(reg.snapshot().find("oda_cb_total"), nullptr);
}

TEST(MetricsRegistry, ExponentialAndDefaultBounds) {
  const std::vector<double> bounds = exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
  const std::vector<double> latency = default_latency_bounds();
  ASSERT_FALSE(latency.empty());
  for (std::size_t i = 1; i < latency.size(); ++i) {
    EXPECT_LT(latency[i - 1], latency[i]);
  }
}

// -------------------------------------------------------------- exposition

TEST(Exposition, EscapesLabelValues) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("line1\nline2"), "line1\\nline2");
}

TEST(Exposition, EscapesHelpText) {
  // HELP escapes backslash and newline but NOT double quotes.
  EXPECT_EQ(escape_help_text("a\\b \"q\"\nend"), "a\\\\b \"q\"\\nend");
}

TEST(Exposition, FormatSampleValue) {
  EXPECT_EQ(format_sample_value(0.0), "0");
  EXPECT_EQ(format_sample_value(42.0), "42");
  EXPECT_EQ(format_sample_value(-5.0), "-5");
  EXPECT_EQ(format_sample_value(0.5), "0.5");
  EXPECT_EQ(format_sample_value(1e-6), "1e-06");
  EXPECT_EQ(format_sample_value(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(format_sample_value(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(format_sample_value(std::numeric_limits<double>::quiet_NaN()),
            "NaN");
  // Shortest form must still round-trip exactly.
  for (const double v : {0.1, 1.0 / 3.0, 6.62607015e-34, 1e300}) {
    EXPECT_EQ(std::stod(format_sample_value(v)), v);
  }
}

TEST(Exposition, EmptyRegistry) {
  MetricsRegistry reg;
  EXPECT_EQ(to_prometheus(reg.snapshot()), "");
  EXPECT_EQ(to_json(reg.snapshot()), "{\"families\":[]}");
}

TEST(Exposition, PrometheusCounterWithEscapedLabels) {
  MetricsRegistry reg;
  reg.counter("oda_x_total", "events \\ with\nnewline",
              {{"path", "a\\b\"c\""}})
      .inc(3);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# HELP oda_x_total events \\\\ with\\nnewline\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE oda_x_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("oda_x_total{path=\"a\\\\b\\\"c\\\"\"} 3\n"),
            std::string::npos);
}

TEST(Exposition, PrometheusHistogramIsCumulative) {
  MetricsRegistry reg;
  Histogram& h =
      reg.histogram("oda_h_seconds", "h", std::vector<double>{1, 2}, {});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(5.0);
  const std::string text = to_prometheus(reg.snapshot());
  // Internal counts are per-bucket {1, 1, 1}; exposition must be cumulative.
  EXPECT_NE(text.find("oda_h_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("oda_h_seconds_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("oda_h_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("oda_h_seconds_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("oda_h_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE oda_h_seconds histogram\n"), std::string::npos);
}

TEST(Exposition, JsonSnapshotShape) {
  MetricsRegistry reg;
  reg.gauge("oda_g", "a \"quoted\" gauge", {{"k", "v"}}).set(1.5);
  Histogram& h = reg.histogram("oda_h_seconds", "h", std::vector<double>{1}, {});
  h.observe(0.5);
  const std::string json = to_json(reg.snapshot());
  EXPECT_NE(json.find("\"name\":\"oda_g\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("a \\\"quoted\\\" gauge"), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"k\":\"v\"}"), std::string::npos);
  EXPECT_NE(json.find("\"value\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":[1,0]"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

// ------------------------------------------------------------------ tracer

/// Leaves the global tracer exactly as the other tests expect it:
/// disabled, empty, default capacity.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer& tracer = Tracer::global();
    tracer.set_enabled(false);
    tracer.clear();
    tracer.set_capacity(1 << 16);
  }
  void TearDown() override { SetUp(); }
};

TEST_F(TracerTest, RecordAndDrainOrderedByStart) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.record("late", "test", 100, 5);
  tracer.record("early", "test", 10, 3);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "early");
  EXPECT_EQ(events[0].ts_us, 10u);
  EXPECT_EQ(events[0].dur_us, 3u);
  EXPECT_EQ(events[1].name, "late");
  EXPECT_NE(events[0].tid, 0u);
  EXPECT_EQ(tracer.event_count(), 2u);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST_F(TracerTest, CapacityCapsAndCountsDrops) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.set_capacity(2);
  tracer.record("a", "test", 1, 1);
  tracer.record("b", "test", 2, 1);
  tracer.record("c", "test", 3, 1);
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST_F(TracerTest, SpanRecordsOnlyWhenEnabled) {
  Tracer& tracer = Tracer::global();
  { TraceSpan span("span.disabled", "test"); }
  EXPECT_EQ(tracer.event_count(), 0u);
  tracer.set_enabled(true);
  { TraceSpan span("span.enabled", "test"); }
  ASSERT_EQ(tracer.event_count(), 1u);
  EXPECT_EQ(tracer.events().front().name, "span.enabled");
  EXPECT_EQ(tracer.events().front().category, "test");
}

TEST_F(TracerTest, ChromeJsonHasCompleteEvents) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.record("chrome.span", "test", 7, 11);
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"chrome.span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":7"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":11"), std::string::npos);
}

TEST_F(TracerTest, MacroCompilesInBothModes) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  { ODA_TRACE_SPAN_CAT("macro.span", "test"); }
#if ODA_TRACING_ENABLED
  EXPECT_EQ(tracer.event_count(), 1u);
#else
  EXPECT_EQ(tracer.event_count(), 0u);
#endif
}

// ----------------------------------------------------------------- cells

TEST(CellScope, AccountsRunsAndSeconds) {
  // CellScope writes into the process-global registry, so measure deltas.
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& runs = reg.counter(
      "oda_analytics_runs_total", "Analytics runs per grid cell",
      {{"pillar", "system-software"},
       {"type", "diagnostic"},
       {"capability", "unit.cell"}});
  Histogram& seconds =
      reg.histogram("oda_analytics_run_seconds", "Analytics run latency",
                    {{"pillar", "system-software"}, {"type", "diagnostic"}});
  const std::uint64_t runs_before = runs.value();
  const std::uint64_t count_before = seconds.count();
  { CellScope scope("system-software", "diagnostic", "unit.cell"); }
  EXPECT_EQ(runs.value(), runs_before + 1);
  EXPECT_EQ(seconds.count(), count_before + 1);
}

// ----------------------------------------------------------------- health

TEST(PipelineHealth, EmptySnapshotIsHealthy) {
  const PipelineHealthReport report = assess_pipeline_health(MetricsSnapshot{});
  EXPECT_TRUE(report.healthy());
  ASSERT_FALSE(report.checks.empty());
  for (const HealthCheck& check : report.checks) {
    EXPECT_TRUE(check.ok) << check.name;
    EXPECT_EQ(check.detail, "(no data)") << check.name;
  }
}

TEST(PipelineHealth, TraceDropsDegrade) {
  MetricsRegistry reg;
  reg.counter("oda_trace_dropped_total", "drops").inc(3);
  const PipelineHealthReport report = assess_pipeline_health(reg.snapshot());
  EXPECT_FALSE(report.healthy());
  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("DEGRADED"), std::string::npos);
  EXPECT_NE(rendered.find("trace.drops"), std::string::npos);
}

TEST(PipelineHealth, ZeroDropsStayHealthy) {
  MetricsRegistry reg;
  reg.counter("oda_trace_dropped_total", "drops");
  reg.counter("oda_queue_rejected_total", "rejects");
  EXPECT_TRUE(assess_pipeline_health(reg.snapshot()).healthy());
}

TEST(PipelineHealth, SlowCollectorPassDegrades) {
  MetricsRegistry reg;
  Histogram& pass = reg.histogram("oda_collector_pass_seconds", "pass");
  pass.observe(2.5);  // a multi-second mean pass cannot keep any period
  EXPECT_FALSE(assess_pipeline_health(reg.snapshot()).healthy());
}

TEST(PipelineHealth, FastCollectorPassIsHealthy) {
  MetricsRegistry reg;
  Histogram& pass = reg.histogram("oda_collector_pass_seconds", "pass");
  pass.observe(0.002);
  EXPECT_TRUE(assess_pipeline_health(reg.snapshot()).healthy());
}

TEST(PipelineHealth, RenderCellCosts) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram(
      "oda_analytics_run_seconds", "runs", std::vector<double>{1},
      {{"pillar", "applications"}, {"type", "predictive"}});
  h.observe(0.010);
  h.observe(0.030);
  const std::string table = render_cell_costs(reg.snapshot());
  // 2 runs at a 20 ms mean in the (predictive, applications) cell.
  EXPECT_NE(table.find("2 @ 20.00"), std::string::npos);
  EXPECT_NE(table.find("predictive"), std::string::npos);
  // Untouched cells render as "-".
  EXPECT_NE(table.find("-"), std::string::npos);
}

TEST(PipelineHealth, RenderMetricsTableListsFamilies) {
  MetricsRegistry reg;
  reg.counter("oda_listed_total", "c", {{"k", "v"}}).inc(9);
  Histogram& h = reg.histogram("oda_listed_seconds", "h");
  h.observe(0.5);
  const std::string table = render_metrics_table(reg.snapshot());
  EXPECT_NE(table.find("oda_listed_total{k=v}"), std::string::npos);
  EXPECT_NE(table.find("oda_listed_seconds"), std::string::npos);
  EXPECT_NE(table.find("histogram"), std::string::npos);
}

// --------------------------------------------- pull-model registrations

TEST(Instrumentation, ThreadPoolRegistration) {
  MetricsRegistry reg;
  ThreadPool pool(1);
  {
    const InstrumentationHandles handles =
        register_thread_pool(reg, pool, "test");
    pool.submit([] {});
    pool.wait_idle();
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.total("oda_pool_threads"), 1.0);
    EXPECT_DOUBLE_EQ(snap.total("oda_pool_submitted_total"), 1.0);
    EXPECT_DOUBLE_EQ(snap.total("oda_pool_completed_total"), 1.0);
    EXPECT_DOUBLE_EQ(snap.total("oda_pool_rejected_total"), 0.0);
  }
  // Handles dropped before the pool dies: series must be gone.
  EXPECT_EQ(reg.snapshot().find("oda_pool_threads"), nullptr);
}

TEST(Instrumentation, QueueRegistrations) {
  MetricsRegistry reg;
  SpscQueue<int> spsc(4);
  BlockingQueue<int> blocking(4);
  const InstrumentationHandles spsc_handles =
      register_spsc_queue(reg, spsc, "spsc_test");
  const InstrumentationHandles blocking_handles =
      register_blocking_queue(reg, blocking, "blocking_test");
  ASSERT_TRUE(spsc.try_push(1));
  blocking.push(2);
  blocking.push(3);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricFamily* depth = snap.find("oda_queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->values.size(), 2u);  // one series per queue
  EXPECT_DOUBLE_EQ(snap.total("oda_queue_depth"), 3.0);
  EXPECT_DOUBLE_EQ(snap.total("oda_queue_rejected_total"), 0.0);
}

}  // namespace
}  // namespace oda::obs
