// Concurrency stress tests aimed at ThreadSanitizer. Each test hammers one
// of the concurrent primitives (SpscQueue, BlockingQueue, ThreadPool,
// telemetry::MessageBus) with the interleavings most likely to turn a latent
// ordering bug into a deterministic TSan report: multi-producer/consumer
// loads, shutdown-while-publishing, and subscribe/unsubscribe during
// publish. The assertions also verify conservation (nothing lost, nothing
// duplicated), so the tests are meaningful even in uninstrumented builds —
// but run them under `cmake --preset tsan` to get the race coverage the
// suite exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/spsc_queue.hpp"
#include "common/thread_pool.hpp"
#include "common/thread_watch.hpp"
#include "common/trace_context.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "telemetry/bus.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/obs_server.hpp"
#include "net/self_scrape.hpp"
#include "telemetry/store.hpp"

namespace oda {
namespace {

// Iteration counts are sized so the whole file stays in the low seconds even
// under TSan's ~5-15x slowdown on a small CI machine.
constexpr int kSpscItems = 50000;
constexpr int kQueueItemsPerProducer = 5000;
constexpr int kBusMessages = 2000;

// ------------------------------------------------------------- SpscQueue

TEST(RaceSpscQueue, ProducerConsumerTransfersEverything) {
  SpscQueue<int> q(64);
  std::uint64_t consumed_sum = 0;
  int consumed = 0;

  std::thread consumer([&] {
    while (consumed < kSpscItems) {
      if (auto v = q.try_pop()) {
        // FIFO must hold exactly: the i-th pop is the value i.
        ASSERT_EQ(*v, consumed);
        consumed_sum += static_cast<std::uint64_t>(*v);
        ++consumed;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (int i = 0; i < kSpscItems; ++i) {
    while (!q.try_push(i)) std::this_thread::yield();
  }
  consumer.join();

  const std::uint64_t want =
      static_cast<std::uint64_t>(kSpscItems) * (kSpscItems - 1) / 2;
  EXPECT_EQ(consumed_sum, want);
  EXPECT_TRUE(q.empty_approx());
}

// Heap-allocated payloads make use-after-free / double-free visible to ASan
// and racing accesses to the payload itself visible to TSan, which plain
// ints cannot: the release/acquire pair on the ring indices must also
// publish the pointed-to memory.
TEST(RaceSpscQueue, HeapPayloadsSurviveHandoff) {
  SpscQueue<std::unique_ptr<std::string>> q(8);
  constexpr int kItems = 20000;

  std::thread consumer([&] {
    for (int i = 0; i < kItems;) {
      if (auto v = q.try_pop()) {
        ASSERT_NE(*v, nullptr);
        ASSERT_EQ(**v, std::to_string(i));
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (int i = 0; i < kItems; ++i) {
    auto item = std::make_unique<std::string>(std::to_string(i));
    while (!q.try_push(std::move(item))) std::this_thread::yield();
  }
  consumer.join();
}

// size_approx is documented as approximate; the stress here is that the
// unsynchronized snapshot of head/tail must still never produce a value
// outside [0, capacity] while both sides are running.
TEST(RaceSpscQueue, SizeApproxStaysInRange) {
  constexpr std::size_t kCap = 16;
  SpscQueue<int> q(kCap);
  std::atomic<bool> stop{false};

  std::thread producer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      q.try_push(i++);
    }
  });
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      q.try_pop();
    }
  });

  for (int i = 0; i < 200000; ++i) {
    const std::size_t s = q.size_approx();
    // Internal capacity rounds 16+1 up to 32 slots; size can never exceed
    // the slot count under any interleaving.
    ASSERT_LE(s, 32u);
  }
  stop.store(true, std::memory_order_relaxed);
  producer.join();
  consumer.join();
}

// --------------------------------------------------------- BlockingQueue

TEST(RaceBlockingQueue, MultiProducerMultiConsumerConserves) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  BlockingQueue<int> q(32);  // small bound so producers actually block

  std::atomic<std::uint64_t> pushed_sum{0};
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<int> popped_count{0};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kQueueItemsPerProducer; ++i) {
        const int v = p * kQueueItemsPerProducer + i;
        ASSERT_TRUE(q.push(v));
        pushed_sum.fetch_add(static_cast<std::uint64_t>(v),
                             std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        popped_sum.fetch_add(static_cast<std::uint64_t>(*v),
                             std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Join producers (the first kProducers threads), then close so consumers
  // drain the remainder and exit.
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(popped_count.load(), kProducers * kQueueItemsPerProducer);
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
  EXPECT_EQ(q.size(), 0u);
}

TEST(RaceBlockingQueue, CloseWhilePushingReleasesBlockedProducers) {
  BlockingQueue<int> q(4);
  constexpr int kThreads = 4;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};

  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        if (q.push(i)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
          return;  // closed: push never succeeds again
        }
      }
    });
  }

  // Let producers fill the bounded queue and block, then slam it shut while
  // they are mid-push. Every producer must observe the close and exit.
  while (q.size() < 4) std::this_thread::yield();
  q.close();
  for (auto& p : producers) p.join();

  // Drain after close: pops must return exactly the accepted items that are
  // still queued, then nullopt.
  int drained = 0;
  while (q.try_pop()) ++drained;
  EXPECT_EQ(drained, accepted.load());
  EXPECT_EQ(rejected.load(), kThreads);
  EXPECT_FALSE(q.push(1));
}

TEST(RaceBlockingQueue, TryOpsUnderContention) {
  BlockingQueue<int> q(8);
  std::atomic<int> pushed{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        if (q.try_push(i)) pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        if (q.try_pop()) popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  while (q.try_pop()) popped.fetch_add(1, std::memory_order_relaxed);
  EXPECT_EQ(pushed.load(), popped.load());
}

// ------------------------------------------------------------ ThreadPool

TEST(RaceThreadPool, ConcurrentSubmittersAllTasksRun) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 2000;
  std::atomic<int> executed{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit([&] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& s : submitters) s.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(RaceThreadPool, ShutdownWhileSubmittingSatisfiesEveryFuture) {
  std::atomic<int> executed{0};
  std::vector<std::future<int>> futures;
  std::mutex futures_mu;

  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  std::thread submitter([&] {
    for (int i = 0; i < 100000 && !stop.load(std::memory_order_relaxed); ++i) {
      auto f = pool.submit([&, i] {
        executed.fetch_add(1, std::memory_order_relaxed);
        return i;
      });
      std::lock_guard lock(futures_mu);
      futures.push_back(std::move(f));
    }
  });

  // Shut down while the submitter is racing: late submissions run inline on
  // the submitter thread, so every future must still become ready.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pool.shutdown();
  stop.store(true, std::memory_order_relaxed);
  submitter.join();

  std::lock_guard lock(futures_mu);
  int idx = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.get(), idx);  // futures were appended in submission order
    ++idx;
  }
  EXPECT_EQ(executed.load(), idx);
}

TEST(RaceThreadPool, ParallelForRacingWithSubmits) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 20000;
  std::vector<std::uint8_t> touched(kN, 0);
  std::atomic<int> side_tasks{0};

  std::thread noise([&] {
    for (int i = 0; i < 500; ++i) {
      pool.submit([&] { side_tasks.fetch_add(1, std::memory_order_relaxed); });
    }
  });

  pool.parallel_for(0, kN, [&](std::size_t i) { touched[i] = 1; });
  noise.join();
  pool.wait_idle();

  // parallel_for partitions [0, kN) disjointly, so plain (non-atomic) writes
  // are safe — TSan verifies that claim — and every index is covered.
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), static_cast<int>(kN));
  EXPECT_EQ(side_tasks.load(), 500);
}

TEST(RaceThreadPool, ParallelForUnevenChunkCostsBalance) {
  // Work-stealing claim loop under pathologically uneven costs: a handful
  // of indices are ~1000x more expensive than the rest. Disjoint coverage
  // (plain writes, TSan-checked) must hold regardless of which participant
  // — helper or caller — claims the slow chunks, and a fine grain lets
  // fast threads drain the cheap tail while slow chunks are in flight.
  ThreadPool pool(4);
  constexpr std::size_t kN = 4096;
  std::vector<std::uint32_t> result(kN, 0);
  pool.parallel_for(
      0, kN,
      [&](std::size_t i) {
        if (i % 512 == 0) {
          // Expensive outlier: real work, not sleep, so TSan interleaves.
          volatile double sink = 0.0;
          for (int k = 0; k < 200000; ++k) sink = sink + static_cast<double>(k);
        }
        result[i] = static_cast<std::uint32_t>(i) + 1;
      },
      /*grain=*/8);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(result[i], i + 1) << "index " << i;
  }
  EXPECT_GE(pool.parallel_for_calls(), 1u);
  EXPECT_GE(pool.parallel_for_chunks_claimed(), kN / 8);
}

TEST(RaceThreadPool, ParallelForChunksCoversRangeDisjointly) {
  // The chunk-granular variant: per-chunk bodies see half-open [lo, hi)
  // ranges that tile [begin, end) exactly once. Concurrent submits add
  // queue noise so helpers start at staggered times.
  ThreadPool pool(3);
  constexpr std::size_t kN = 10000;
  std::vector<std::uint8_t> touched(kN, 0);
  std::atomic<int> side_tasks{0};
  std::thread noise([&] {
    for (int i = 0; i < 200; ++i) {
      pool.submit([&] { side_tasks.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunks(100, kN, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) touched[i] = 1;
    total.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  noise.join();
  pool.wait_idle();
  EXPECT_EQ(total.load(), kN - 100);
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), std::size_t{0}),
            kN - 100);
}

TEST(RaceThreadPool, ParallelForPropagatesBodyException) {
  // An exception from any participant (helper or caller) surfaces to the
  // parallel_for caller after every helper has been joined — no helper may
  // outlive the call frame it borrows.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(
          0, 64,
          [&](std::size_t i) {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i == 13) throw std::runtime_error("boom");
          },
          /*grain=*/1),
      std::runtime_error);
  pool.wait_idle();
  EXPECT_GE(ran.load(), 1);
}

TEST(RaceThreadPool, WaitIdleFromManyThreads) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&] { executed.fetch_add(1, std::memory_order_relaxed); });
  }
  std::vector<std::thread> waiters;
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&] { pool.wait_idle(); });
  }
  for (auto& w : waiters) w.join();
  EXPECT_EQ(executed.load(), 1000);
}

// ----------------------------------------------------------- MessageBus

TEST(RaceMessageBus, ParallelPublishersDeliverEverything) {
  telemetry::MessageBus bus;
  constexpr int kPublishers = 4;
  std::atomic<std::uint64_t> received{0};
  bus.subscribe("node/*", [&](const telemetry::Reading&) {
    received.fetch_add(1, std::memory_order_relaxed);
  });

  std::vector<std::thread> pubs;
  pubs.reserve(kPublishers);
  for (int p = 0; p < kPublishers; ++p) {
    pubs.emplace_back([&, p] {
      for (int i = 0; i < kBusMessages; ++i) {
        bus.publish("node/" + std::to_string(p), i, static_cast<double>(i));
      }
    });
  }
  for (auto& p : pubs) p.join();

  const std::uint64_t want =
      static_cast<std::uint64_t>(kPublishers) * kBusMessages;
  EXPECT_EQ(received.load(), want);
  EXPECT_EQ(bus.published_count(), want);
  EXPECT_EQ(bus.delivered_count(), want);
}

TEST(RaceMessageBus, SubscribeUnsubscribeDuringPublish) {
  telemetry::MessageBus bus;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};

  std::vector<std::thread> pubs;
  for (int p = 0; p < 2; ++p) {
    pubs.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        bus.publish("sensor/a/power", 0, 1.0);
      }
    });
  }

  // Churn subscriptions while publishers are mid-flight. The callback's
  // captured state must stay valid for every delivery that was snapshotted
  // before the unsubscribe.
  for (int round = 0; round < 500; ++round) {
    auto id = bus.subscribe("sensor/*", [&](const telemetry::Reading& r) {
      ASSERT_EQ(r.path, "sensor/a/power");
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    std::this_thread::yield();
    bus.unsubscribe(id);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& p : pubs) p.join();

  EXPECT_EQ(bus.subscriber_count(), 0u);
  EXPECT_EQ(bus.delivered_count(), hits.load());
}

TEST(RaceMessageBus, ReentrantPublishFromCallback) {
  telemetry::MessageBus bus;
  std::atomic<int> derived_seen{0};

  // A subscriber that republishes onto a derived topic — the pattern the
  // derived-metrics engine uses — must not deadlock or race against
  // concurrent external publishers.
  bus.subscribe("raw/*", [&](const telemetry::Reading& r) {
    bus.publish("derived/" + r.path, r.sample.time, r.sample.value * 2.0);
  });
  bus.subscribe("derived/*", [&](const telemetry::Reading&) {
    derived_seen.fetch_add(1, std::memory_order_relaxed);
  });

  std::vector<std::thread> pubs;
  for (int p = 0; p < 2; ++p) {
    pubs.emplace_back([&] {
      for (int i = 0; i < kBusMessages; ++i) {
        bus.publish("raw/x", i, 1.0);
      }
    });
  }
  for (auto& p : pubs) p.join();
  EXPECT_EQ(derived_seen.load(), 2 * kBusMessages);
}

// -------------------------------------------------------- MetricsRegistry

// The registry's contract is mutex-guarded registration handing out stable
// instrument references whose hot-path ops are lock-free atomics. Hammer
// registration, increments, observations, and snapshots simultaneously:
// TSan checks the synchronization, the conservation sums check the counts.
TEST(RaceMetricsRegistry, ConcurrentIncObserveSnapshot) {
  obs::MetricsRegistry reg;
  constexpr int kWriters = 4;
  constexpr int kEventsEach = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&reg, w] {
      // Every writer re-registers its instruments each round; half the
      // series are shared across writers, half are per-writer.
      const std::string who = std::to_string(w % 2);
      for (int i = 0; i < kEventsEach; ++i) {
        reg.counter("oda_race_events_total", "events", {{"writer", who}})
            .inc();
        reg.gauge("oda_race_depth", "depth", {{"writer", who}})
            .set(static_cast<double>(i));
        reg.histogram("oda_race_seconds", "latency",
                      std::vector<double>{0.25, 0.5, 0.75}, {})
            .observe(static_cast<double>(i % 100) / 100.0);
      }
    });
  }
  std::atomic<bool> stop{false};
  threads.emplace_back([&] {
    // Snapshot continuously while writers are mid-flight; totals must be
    // monotone for counters even though the cut is not consistent.
    double last_total = 0.0;
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snap = reg.snapshot();
      const double total = snap.total("oda_race_events_total");
      ASSERT_GE(total, last_total);
      last_total = total;
    }
  });

  for (int w = 0; w < kWriters; ++w) {
    threads[static_cast<std::size_t>(w)].join();
  }
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.total("oda_race_events_total"),
                   static_cast<double>(kWriters) * kEventsEach);
  const obs::MetricFamily* hist = snap.find("oda_race_seconds");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->histograms.size(), 1u);
  EXPECT_EQ(hist->histograms.front().count,
            static_cast<std::uint64_t>(kWriters) * kEventsEach);
}

// The instrumented bus publish path updates per-instance counters, global
// registry counters, per-subscriber stats, and a publish-latency histogram
// on every call. Stress it from parallel publishers and verify the global
// series advanced by exactly the published volume. Deltas, not absolutes:
// the global registry aggregates across every bus in the process.
TEST(RaceMessageBus, InstrumentedPublishKeepsGlobalCountersExact) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const obs::MetricsSnapshot before = reg.snapshot();
  const double published_before = before.total("oda_bus_published_total");
  const double delivered_before = before.total("oda_bus_delivered_total");
  std::uint64_t observed_before = 0;
  if (const obs::MetricFamily* fam = before.find("oda_bus_publish_seconds")) {
    for (const auto& h : fam->histograms) observed_before += h.count;
  }

  telemetry::MessageBus bus;
  constexpr int kPublishers = 4;
  std::atomic<std::uint64_t> received{0};
  bus.subscribe("obs/*", [&](const telemetry::Reading&) {
    received.fetch_add(1, std::memory_order_relaxed);
  });

  std::vector<std::thread> pubs;
  pubs.reserve(kPublishers);
  for (int p = 0; p < kPublishers; ++p) {
    pubs.emplace_back([&, p] {
      for (int i = 0; i < kBusMessages; ++i) {
        bus.publish("obs/" + std::to_string(p), i, static_cast<double>(i));
      }
    });
  }
  for (auto& p : pubs) p.join();

  const std::uint64_t want =
      static_cast<std::uint64_t>(kPublishers) * kBusMessages;
  EXPECT_EQ(received.load(), want);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.total("oda_bus_published_total") - published_before,
                   static_cast<double>(want));
  EXPECT_DOUBLE_EQ(snap.total("oda_bus_delivered_total") - delivered_before,
                   static_cast<double>(want));
  // The per-pattern subscriber series for this bus instance is exact.
  const obs::MetricFamily* per_sub =
      snap.find("oda_bus_subscriber_deliveries_total");
  ASSERT_NE(per_sub, nullptr);
  double obs_pattern_total = 0.0;
  for (const auto& v : per_sub->values) {
    for (const auto& [k, label] : v.labels) {
      if (k == "pattern" && label == "obs/*") obs_pattern_total += v.value;
    }
  }
  EXPECT_DOUBLE_EQ(obs_pattern_total, static_cast<double>(want));
  // Publish latency histogram observed one value per publish call.
  const obs::MetricFamily* latency = snap.find("oda_bus_publish_seconds");
  ASSERT_NE(latency, nullptr);
  std::uint64_t observed_after = 0;
  for (const auto& h : latency->histograms) observed_after += h.count;
  EXPECT_EQ(observed_after - observed_before, want);
}

// ---------------------------------------------------------- causal tracing

// Concurrent trace-context propagation: many submitter threads race spans
// through a shared ThreadPool and MessageBus while a reader drains the
// Tracer and snapshots the FlightRecorder's seqlock rings mid-write. TSan
// checks the context hand-off and the ring protocol; the assertions check
// that every propagated child kept its submitter's trace id.
TEST(RaceCausalTracing, ContextPropagatesThroughPoolAndBusUnderStress) {
  obs::Tracer& tracer = obs::Tracer::global();
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  tracer.clear();
  tracer.set_capacity(1 << 18);
  tracer.set_enabled(true);
  recorder.set_enabled(true);

  telemetry::MessageBus bus;
  bus.subscribe("trace/*", [](const telemetry::Reading&) {
    ODA_TRACE_SPAN_CAT("race.deliver_child", "test");
  });

  constexpr int kSubmitters = 4;
  constexpr int kRounds = 500;
  std::atomic<int> mismatches{0};
  {
    ThreadPool pool(4);
    std::atomic<bool> stop{false};
    std::thread reader([&] {
      // Snapshot continuously while writers lap the rings: the seqlock must
      // hand back only stable slots and the tracer drain must not tear.
      // The accumulation only keeps the loop observable; in ODA_TRACING=OFF
      // builds the spans above compile away and zero drained is fine.
      std::size_t drained = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        drained += recorder.snapshot().size();
        drained += tracer.event_count();
      }
      static_cast<void>(drained);
    });

    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        for (int i = 0; i < kRounds; ++i) {
          ODA_TRACE_SPAN_CAT("race.submit_root", "test");
          const TraceContext mine = current_trace_context();
          auto f = pool.submit([&mismatches, mine] {
            // The worker must run under the submitter's context verbatim.
            if (current_trace_context().trace_id != mine.trace_id) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            ODA_TRACE_SPAN_CAT("race.pool_child", "test");
          });
          bus.publish("trace/" + std::to_string(s), i, 1.0);
          f.get();
        }
      });
    }
    for (auto& t : submitters) t.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    pool.shutdown();
  }

#if ODA_TRACING_ENABLED
  EXPECT_EQ(mismatches.load(), 0);
  // Workers never leak a borrowed context past the task: after the pool is
  // idle, fresh spans root fresh traces, so the submitting thread's own
  // context must be empty here.
  EXPECT_FALSE(current_trace_context().active());
#endif
  tracer.set_enabled(false);
  tracer.clear();
  tracer.set_capacity(1 << 16);
}

#if ODA_PROFILING_ENABLED
// The sampling profiler interrupts pipeline threads mid-instruction while
// readers drain its seqlock rings: pool workers and bus publishers run
// under SIGPROF fire while folded()/samples() snapshot concurrently. TSan
// cannot instrument the signal handler's view, but it does see the
// watcher/attach/reader interleavings, ring registration during thread
// birth/death, and the stop() quiescence handshake — the places a latent
// ordering bug would live.
TEST(RaceStress, ProfilerSamplesConcurrentPipelineTraffic) {
  obs::SamplingProfiler& prof = obs::SamplingProfiler::global();
  obs::ProfilerOptions opts;
  opts.interval_us = 500;
  opts.ring_capacity = 256;
  ASSERT_TRUE(prof.start(opts));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> delivered{0};
  {
    ThreadPool pool(3);  // workers self-register with the watch registry
    telemetry::MessageBus bus;
    bus.subscribe("prof/*", [&delivered](const telemetry::Reading&) {
      delivered.fetch_add(1, std::memory_order_relaxed);
    });

    // Reader thread: snapshots rings while the handler writes into them.
    std::thread reader([&] {
      std::size_t seen = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        seen += prof.samples().size();
        seen += prof.folded().size();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      static_cast<void>(seen);
    });

    // A watched producer thread churning bus traffic under sampling.
    std::thread producer([&] {
      WatchedThreadScope scope("race.producer");
      std::int64_t t = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        bus.publish("prof/node", ++t, 1.0);
      }
    });

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
    while (std::chrono::steady_clock::now() < deadline) {
      for (int i = 0; i < 64; ++i) {
        pool.submit([] {
          volatile double sink = 0.0;
          for (int k = 0; k < 2000; ++k) sink = sink + 1.0;
        });
      }
      pool.wait_idle();
    }
    stop.store(true, std::memory_order_relaxed);
    producer.join();
    reader.join();
    pool.shutdown();  // workers die (and deregister) while sampling runs
  }
  prof.stop();

  EXPECT_GT(delivered.load(std::memory_order_relaxed), 0u);
  EXPECT_GE(prof.thread_count(), 4u);  // 3 workers + producer
  for (const auto& s : prof.samples()) {
    EXPECT_FALSE(s.pcs.empty());
    EXPECT_LE(s.pcs.size(), obs::kMaxProfFrames);
  }
  prof.clear();
}
#endif  // ODA_PROFILING_ENABLED

// --------------------------------------------- live introspection plane

// Concurrent HTTP scrapers hammering an ObsServer while the pipeline it
// observes keeps mutating: metric writers spin counters and histograms,
// a self-scrape loop snapshots the registry into a TimeSeriesStore, and
// two client threads GET /metrics and /selfscrape over fresh connections.
// Every layer the scrape path crosses (registry snapshot, store shards,
// interner, reactor post queue, connection table) is exercised against
// writers — the interleavings TSan exists to catch.
TEST(RaceStress, HttpScrapesRaceThePipeline) {
  if (!net::net_enabled()) GTEST_SKIP() << "ODA_NET=OFF";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Counter& spin_counter =
      registry.counter("oda_test_race_http_total", "race-test counter");
  obs::Histogram& spin_hist = registry.histogram(
      "oda_test_race_http_seconds", "race-test histogram");

  telemetry::TimeSeriesStore store(1 << 12);
  net::SelfScrape scraper(store);

  net::ObsServerOptions opts;
  opts.http.port = 0;
  net::ObsServer server(opts);
  server.set_store(&store);
  ASSERT_TRUE(server.start());
  const std::uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes_ok{0};

  // One full GET round trip on a fresh loopback connection.
  const auto scrape = [port](const char* target) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return false;
    }
    const std::string req = std::string("GET ") + target +
                            " HTTP/1.1\r\nConnection: close\r\n\r\n";
    std::size_t off = 0;
    while (off < req.size()) {
      const ssize_t n =
          ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        ::close(fd);
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    std::string out;
    char buf[4096];
    for (;;) {  // Connection: close — read to EOF
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n < 0) {
        ::close(fd);
        return false;
      }
      if (n == 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out.compare(0, 12, "HTTP/1.1 200") == 0;
  };

  std::vector<std::thread> threads;
  // Metric writers: the state every scrape snapshots.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&stop, &spin_counter, &spin_hist, w] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        spin_counter.inc();
        spin_hist.observe(0.001 * static_cast<double>((i + w) % 100));
        ++i;
      }
    });
  }
  // Self-scrape loop: registry -> store while clients read both.
  threads.emplace_back([&stop, &scraper] {
    TimePoint t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      scraper.scrape_once(++t);
    }
  });
  // HTTP scrapers.
  const char* targets[] = {"/metrics", "/selfscrape"};
  for (const char* target : targets) {
    threads.emplace_back([&stop, &scrapes_ok, &scrape, target] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (scrape(target)) {
          scrapes_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Run until both scraper threads have seen real traffic (bounded).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (scrapes_ok.load(std::memory_order_relaxed) < 20 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  server.stop();  // drain races the last in-flight scrapes

  EXPECT_GE(scrapes_ok.load(std::memory_order_relaxed), 20u);
  EXPECT_FALSE(store.match("oda/*").empty());
}

}  // namespace
}  // namespace oda
