// Tests for the descriptive analytics pillar: KPIs, aggregation pipelines,
// and dashboards, driven by the live simulator where integration matters.
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/descriptive/aggregation.hpp"
#include "analytics/descriptive/dashboard.hpp"
#include "analytics/descriptive/kpi.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

namespace oda::analytics {
namespace {

class DescriptiveFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::ClusterParams params;
    params.racks = 2;
    params.nodes_per_rack = 4;
    params.seed = 9;
    params.workload.peak_arrival_rate_per_hour = 60.0;
    params.workload.max_duration = 2 * kHour;
    cluster_ = std::make_unique<sim::ClusterSimulation>(params);
    store_ = std::make_unique<telemetry::TimeSeriesStore>();
    collector_ = std::make_unique<telemetry::Collector>(*cluster_, store_.get(),
                                                        nullptr);
    collector_->add_all_sensors(60);
    while (cluster_->now() < 6 * kHour) {
      cluster_->step();
      collector_->collect();
    }
  }

  std::unique_ptr<sim::ClusterSimulation> cluster_;
  std::unique_ptr<telemetry::TimeSeriesStore> store_;
  std::unique_ptr<telemetry::Collector> collector_;
};

TEST_F(DescriptiveFixture, PueMatchesSimulatorEnergy) {
  const auto pue = compute_pue(*store_, 0, cluster_->now());
  EXPECT_GT(pue.pue, 1.0);
  EXPECT_LT(pue.pue, 2.0);
  // Integrated store energy should be within a few percent of the
  // simulator's exact accounting (sampling at 60s vs stepping at 15s).
  const double exact_kwh =
      cluster_->facility_energy_j() / units::kJoulesPerKilowattHour;
  EXPECT_NEAR(pue.facility_energy_kwh, exact_kwh, exact_kwh * 0.05);
  EXPECT_GT(pue.cooling_energy_kwh, 0.0);
  EXPECT_GT(pue.loss_energy_kwh, 0.0);
}

TEST_F(DescriptiveFixture, ItueAboveOneAndTueAbovePue) {
  const auto itue = compute_itue(*store_, 0, cluster_->now());
  EXPECT_GT(itue.itue, 1.0);
  EXPECT_LT(itue.itue, 1.5);
  const auto pue = compute_pue(*store_, 0, cluster_->now());
  EXPECT_GT(itue.tue, pue.pue);
}

TEST_F(DescriptiveFixture, EreBelowPueWithReuse) {
  const auto pue = compute_pue(*store_, 0, cluster_->now());
  EXPECT_LT(compute_ere(pue, 0.3), pue.pue);
  EXPECT_DOUBLE_EQ(compute_ere(pue, 0.0), pue.pue);
}

TEST_F(DescriptiveFixture, UtilizationInRange) {
  const double u = compute_utilization(*store_, 0, cluster_->now());
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 1.0);
}

TEST_F(DescriptiveFixture, SieDetectsRicherDynamics) {
  const std::vector<std::string> sensors{"cluster/it_power",
                                         "scheduler/running_jobs"};
  const auto sie = compute_sie(*store_, sensors, 0, cluster_->now(), 10 * kMinute);
  EXPECT_GT(sie.transitions, 10u);
  // A constant sensor alone gives (near) zero entropy.
  const auto flat = compute_sie(*store_, {"facility/free_cooling"}, 0,
                                cluster_->now(), 10 * kMinute);
  EXPECT_LE(flat.entropy_bits, sie.entropy_bits + 1e-9);
}

TEST_F(DescriptiveFixture, DashboardsRenderKeyContent) {
  const auto fac = facility_dashboard(*store_, 0, cluster_->now());
  EXPECT_NE(fac.find("PUE"), std::string::npos);
  EXPECT_NE(fac.find("IT power"), std::string::npos);

  const auto sys = system_dashboard(*store_, 0, cluster_->now());
  EXPECT_NE(sys.find("rack00"), std::string::npos);
  EXPECT_NE(sys.find("median"), std::string::npos);

  const auto sched = scheduler_dashboard(
      *store_, cluster_->scheduler().completed(), 0, cluster_->now());
  EXPECT_NE(sched.find("slowdown"), std::string::npos);

  const auto jobs = job_dashboard(cluster_->scheduler().completed());
  EXPECT_NE(jobs.find("JOB DASHBOARD"), std::string::npos);
}

TEST_F(DescriptiveFixture, QuantileTransportGroupsByRack) {
  const auto summaries =
      quantile_transport(*store_, "rack*/node*/power", 0, cluster_->now(), 1);
  ASSERT_EQ(summaries.size(), 2u);  // two racks
  for (const auto& s : summaries) {
    EXPECT_EQ(s.sensors, 4u);
    EXPECT_LE(s.q10, s.q50);
    EXPECT_LE(s.q50, s.q90);
    EXPECT_LE(s.min, s.q10);
    EXPECT_GE(s.max, s.q90);
  }
}

TEST(Slowdown, KnownValues) {
  sim::JobRecord r1;
  r1.spec.submit_time = 0;
  r1.start_time = 100;     // wait 100
  r1.end_time = 200;       // run 100
  sim::JobRecord r2;
  r2.spec.submit_time = 0;
  r2.start_time = 0;
  r2.end_time = 400;       // no wait
  const std::vector<sim::JobRecord> records{r1, r2};
  const auto report = compute_slowdown(records, /*tau=*/50);
  EXPECT_EQ(report.jobs, 2u);
  EXPECT_NEAR(report.mean_slowdown, (2.0 + 1.0) / 2.0, 1e-12);
  EXPECT_NEAR(report.mean_wait_s, 50.0, 1e-12);
}

TEST(Slowdown, BoundedFloorsShortJobs) {
  sim::JobRecord r;
  r.spec.submit_time = 0;
  r.start_time = 1000;
  r.end_time = 1001;  // 1s job, 1000s wait -> raw slowdown 1001
  const std::vector<sim::JobRecord> records{r};
  const auto report = compute_slowdown(records, /*tau=*/600);
  EXPECT_GT(report.mean_slowdown, 500.0);
  EXPECT_LT(report.mean_bounded_slowdown, 3.0);
}

TEST(Roofline, MemoryVsComputeBound) {
  // Low arithmetic intensity -> memory bound.
  const auto mem = roofline(1000.0, 100.0, 50.0, 1.0);  // AI = 1 flop/byte
  EXPECT_TRUE(mem.memory_bound);
  EXPECT_DOUBLE_EQ(mem.attainable_gflops, 100.0);
  EXPECT_DOUBLE_EQ(mem.efficiency, 0.5);
  // High arithmetic intensity -> compute bound.
  const auto comp = roofline(1000.0, 100.0, 900.0, 0.05);  // AI = 20
  EXPECT_FALSE(comp.memory_bound);
  EXPECT_DOUBLE_EQ(comp.attainable_gflops, 1000.0);
}

TEST(OutlierRemoval, DropsExtremes) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 1000};
  const auto cleaned = remove_outliers_iqr(xs);
  EXPECT_EQ(cleaned.size(), 8u);
  EXPECT_EQ(std::count(cleaned.begin(), cleaned.end(), 1000.0), 0);
}

TEST(OutlierRemoval, KeepsSmallSamples) {
  const std::vector<double> xs{1, 100};
  EXPECT_EQ(remove_outliers_iqr(xs).size(), 2u);
}

TEST(Sparkline, ShapeAndBounds) {
  std::vector<double> rising;
  for (int i = 0; i < 100; ++i) rising.push_back(static_cast<double>(i));
  const auto line = sparkline(rising, 20);
  EXPECT_EQ(line.size(), 20u);
  EXPECT_LT(line.front(), line.back());  // ASCII levels are ordered by density
  EXPECT_EQ(sparkline({}, 10), std::string(10, ' '));
}

TEST(SensorSnapshots, ZScoreOfSpike) {
  telemetry::TimeSeriesStore store;
  for (TimePoint t = 0; t < 100; ++t) store.insert("s", {t, 10.0 + (t % 3)});
  store.insert("s", {100, 50.0});
  const auto snaps = snapshot_sensors(store, "s", 0, 101);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_GT(snaps[0].zscore, 3.0);
}

}  // namespace
}  // namespace oda::analytics
