// Tests for time-series models, FFT, and the ML kernels (PCA, k-means, kNN,
// isolation forest, decision trees) plus the optimizers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "math/ar_model.hpp"
#include "math/decision_tree.hpp"
#include "math/distance.hpp"
#include "math/entropy.hpp"
#include "math/fft.hpp"
#include "math/isolation_forest.hpp"
#include "math/kmeans.hpp"
#include "math/knn.hpp"
#include "math/optimize.hpp"
#include "math/pca.hpp"
#include "math/smoothing.hpp"
#include "math/timeseries.hpp"

namespace oda::math {
namespace {

// ------------------------------------------------------------- timeseries

TEST(TimeSeries, DifferenceAndSeasonalDifference) {
  const std::vector<double> xs{1, 3, 6, 10};
  EXPECT_EQ(difference(xs), (std::vector<double>{2, 3, 4}));
  EXPECT_EQ(seasonal_difference(xs, 2), (std::vector<double>{5, 7}));
}

TEST(TimeSeries, DetrendRemovesLine) {
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) xs.push_back(3.0 + 0.7 * i);
  for (double v : detrend(xs)) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(TimeSeries, ZNormalize) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  const auto z = z_normalize(xs);
  EXPECT_NEAR(oda::mean(z), 0.0, 1e-12);
  EXPECT_NEAR(oda::stddev(z), 1.0, 1e-12);
  const std::vector<double> constant(5, 3.0);
  for (double v : z_normalize(constant)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(TimeSeries, MovingAverageSmoothsConstant) {
  std::vector<double> xs(20, 4.0);
  for (double v : moving_average(xs, 5)) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(TimeSeries, TrailingAverageCausal) {
  const std::vector<double> xs{2, 4, 6, 8};
  const auto t = trailing_average(xs, 2);
  EXPECT_DOUBLE_EQ(t[0], 2.0);
  EXPECT_DOUBLE_EQ(t[1], 3.0);
  EXPECT_DOUBLE_EQ(t[3], 7.0);
}

TEST(TimeSeries, DetectPeriodOfSine) {
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(std::sin(2.0 * M_PI * i / 24.0));
  const std::size_t p = detect_period(xs, 60);
  EXPECT_NEAR(static_cast<double>(p), 24.0, 2.0);
}

TEST(TimeSeries, DetectPeriodNoiseReturnsZero) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal());
  EXPECT_EQ(detect_period(xs, 50), 0u);
}

TEST(TimeSeries, AdditiveDecompositionRecovers) {
  std::vector<double> xs;
  for (int i = 0; i < 240; ++i) {
    xs.push_back(10.0 + 0.05 * i + 3.0 * std::sin(2.0 * M_PI * i / 24.0));
  }
  const auto d = decompose_additive(xs, 24);
  // Residual should be small relative to the seasonal amplitude.
  double max_resid = 0.0;
  for (std::size_t i = 24; i + 24 < xs.size(); ++i) {
    max_resid = std::max(max_resid, std::abs(d.residual[i]));
  }
  EXPECT_LT(max_resid, 0.8);
}

TEST(TimeSeries, PaaSegments) {
  const std::vector<double> xs{1, 1, 5, 5};
  const auto p = paa(xs, 2);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 5.0);
}

TEST(TimeSeries, LongestRunAbove) {
  const std::vector<double> xs{0, 5, 5, 5, 0, 5, 5, 0};
  EXPECT_EQ(longest_run_above(xs, 1.0), 3u);
}

// --------------------------------------------------------------------- AR

TEST(ArModel, RecoversAr1Coefficient) {
  Rng rng(7);
  std::vector<double> xs{0.0};
  for (int i = 1; i < 5000; ++i) {
    xs.push_back(0.7 * xs.back() + rng.normal(0.0, 1.0));
  }
  const auto model = ArModel::fit_yule_walker(xs, 1);
  EXPECT_NEAR(model.coefficients()[0], 0.7, 0.05);
}

TEST(ArModel, RecoversAr2Coefficients) {
  Rng rng(11);
  std::vector<double> xs{0.0, 0.0};
  for (int i = 2; i < 8000; ++i) {
    xs.push_back(0.5 * xs[xs.size() - 1] + 0.3 * xs[xs.size() - 2] +
                 rng.normal(0.0, 1.0));
  }
  const auto model = ArModel::fit_yule_walker(xs, 2);
  EXPECT_NEAR(model.coefficients()[0], 0.5, 0.05);
  EXPECT_NEAR(model.coefficients()[1], 0.3, 0.05);
}

TEST(ArModel, LeastSquaresAgreesWithYuleWalker) {
  Rng rng(13);
  std::vector<double> xs{0.0};
  for (int i = 1; i < 4000; ++i) {
    xs.push_back(0.6 * xs.back() + rng.normal(0.0, 0.5));
  }
  const auto yw = ArModel::fit_yule_walker(xs, 1);
  const auto ls = ArModel::fit_least_squares(xs, 1);
  EXPECT_NEAR(yw.coefficients()[0], ls.coefficients()[0], 0.05);
}

TEST(ArModel, ForecastDecaysToMean) {
  Rng rng(17);
  std::vector<double> xs{10.0};
  for (int i = 1; i < 2000; ++i) {
    xs.push_back(5.0 + 0.5 * (xs.back() - 5.0) + rng.normal(0.0, 0.3));
  }
  const auto model = ArModel::fit_yule_walker(xs, 1);
  const auto fc = model.forecast(xs, 100);
  EXPECT_NEAR(fc.back(), model.mean(), 0.5);
}

TEST(ArModel, OrderSelectionFindsTrueOrder) {
  Rng rng(19);
  std::vector<double> xs{0.0, 0.0};
  for (int i = 2; i < 6000; ++i) {
    xs.push_back(0.4 * xs[xs.size() - 1] + 0.4 * xs[xs.size() - 2] +
                 rng.normal(0.0, 1.0));
  }
  const std::size_t order = select_ar_order(xs, 8);
  EXPECT_GE(order, 2u);
  EXPECT_LE(order, 4u);
}

TEST(ArModel, ConstantSeriesPredictsMean) {
  std::vector<double> xs(100, 42.0);
  const auto model = ArModel::fit_yule_walker(xs, 3);
  EXPECT_NEAR(model.predict_next(xs), 42.0, 1e-9);
}

// -------------------------------------------------------------- smoothing

TEST(Smoothing, SesConvergesToLevel) {
  SimpleExpSmoother s(0.5);
  for (int i = 0; i < 50; ++i) s.add(8.0);
  EXPECT_NEAR(s.forecast(), 8.0, 1e-9);
}

TEST(Smoothing, HoltTracksLinearTrend) {
  HoltSmoother h(0.5, 0.3);
  for (int i = 0; i < 200; ++i) h.add(2.0 * i);
  EXPECT_NEAR(h.trend(), 2.0, 0.05);
  EXPECT_NEAR(h.forecast(10), 2.0 * 199 + 2.0 * 10, 2.0);
}

TEST(Smoothing, HoltWintersLearnsSeason) {
  HoltWinters hw(0.3, 0.05, 0.2, 12);
  std::vector<double> xs;
  for (int i = 0; i < 30 * 12; ++i) {
    xs.push_back(20.0 + 5.0 * std::sin(2.0 * M_PI * i / 12.0));
  }
  hw.fit(xs);
  ASSERT_TRUE(hw.seasonal_ready());
  // Forecast one full season and compare to the truth.
  for (std::size_t h = 1; h <= 12; ++h) {
    const double t = static_cast<double>(30 * 12 + h - 1);
    const double truth = 20.0 + 5.0 * std::sin(2.0 * M_PI * t / 12.0);
    EXPECT_NEAR(hw.forecast(h), truth, 1.0);
  }
}

// -------------------------------------------------------------------- FFT

TEST(Fft, RoundTripPowerOfTwo) {
  Rng rng(23);
  std::vector<Complex> xs(64);
  for (auto& c : xs) c = Complex(rng.normal(), rng.normal());
  const auto back = ifft(fft(xs));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(back[i].real(), xs[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), xs[i].imag(), 1e-9);
  }
}

TEST(Fft, RoundTripArbitrarySize) {
  Rng rng(29);
  for (const std::size_t n : {3u, 5u, 12u, 100u, 129u}) {
    std::vector<Complex> xs(n);
    for (auto& c : xs) c = Complex(rng.normal(), 0.0);
    const auto back = ifft(fft(xs));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i].real(), xs[i].real(), 1e-8) << "n=" << n;
    }
  }
}

TEST(Fft, ParsevalTheorem) {
  Rng rng(31);
  std::vector<double> xs(128);
  for (auto& x : xs) x = rng.normal();
  double time_energy = 0.0;
  for (double x : xs) time_energy += x * x;
  const auto spec = fft_real(xs);
  double freq_energy = 0.0;
  for (const auto& c : spec) freq_energy += std::norm(c);
  EXPECT_NEAR(time_energy, freq_energy / 128.0, 1e-8);
}

TEST(Fft, FindsKnownFrequency) {
  std::vector<double> xs;
  for (int i = 0; i < 256; ++i) {
    xs.push_back(2.5 * std::cos(2.0 * M_PI * 10.0 * i / 256.0 + 0.4));
  }
  const auto comps = dominant_components(xs, 1);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_NEAR(comps[0].frequency, 10.0 / 256.0, 1e-6);
  EXPECT_NEAR(comps[0].amplitude, 2.5, 0.01);
  EXPECT_NEAR(comps[0].phase, 0.4, 0.01);
}

TEST(Fft, SynthesizeReconstructsSignal) {
  std::vector<double> xs;
  for (int i = 0; i < 128; ++i) {
    xs.push_back(7.0 + 3.0 * std::sin(2.0 * M_PI * 4.0 * i / 128.0));
  }
  const auto comps = dominant_components(xs, 2);
  const auto recon = synthesize(7.0, comps, 128);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_NEAR(recon[i], xs[i], 0.05);
}

TEST(Fft, AutocorrelationOfPeriodicSignal) {
  std::vector<double> xs;
  for (int i = 0; i < 256; ++i) xs.push_back(std::sin(2.0 * M_PI * i / 32.0));
  const auto ac = fft_autocorrelation(xs, 64);
  EXPECT_NEAR(ac[0], 1.0, 1e-9);
  EXPECT_GT(ac[32], 0.7);
}

// -------------------------------------------------------------------- PCA

TEST(Pca, VarianceConcentratesOnFirstComponent) {
  Rng rng(37);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 300; ++i) {
    const double t = rng.normal(0.0, 5.0);
    rows.push_back({t, 2.0 * t + rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)});
  }
  const auto pca = Pca::fit(Matrix::from_rows(rows), 1);
  EXPECT_GT(pca.explained_variance_ratio(), 0.95);
}

TEST(Pca, ReconstructionErrorLowInSubspace) {
  Rng rng(41);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 200; ++i) {
    const double t = rng.normal();
    rows.push_back({t, -t, 2.0 * t});
  }
  const auto pca = Pca::fit(Matrix::from_rows(rows), 1);
  EXPECT_LT(pca.reconstruction_error(rows[0]), 1e-6);
  // A point far off the subspace scores high.
  EXPECT_GT(pca.reconstruction_error(std::vector<double>{1.0, 1.0, -2.0}), 1.0);
}

TEST(Pca, TransformInverseRoundTripFullRank) {
  Rng rng(43);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back({rng.normal(), rng.normal(), rng.normal()});
  }
  const auto pca = Pca::fit(Matrix::from_rows(rows), 3);
  const auto recon = pca.inverse_transform(pca.transform(rows[7]));
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(recon[d], rows[7][d], 1e-9);
}

// ----------------------------------------------------------------- kmeans

TEST(KMeans, SeparatesObviousClusters) {
  Rng rng(47);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 50; ++i) data.push_back({rng.normal(0, 0.3), rng.normal(0, 0.3)});
  for (int i = 0; i < 50; ++i) data.push_back({rng.normal(10, 0.3), rng.normal(10, 0.3)});
  const auto result = kmeans(data, 2, rng);
  EXPECT_EQ(result.centroids.size(), 2u);
  // All points in each half share a label.
  for (int i = 1; i < 50; ++i) EXPECT_EQ(result.labels[i], result.labels[0]);
  for (int i = 51; i < 100; ++i) EXPECT_EQ(result.labels[i], result.labels[50]);
  EXPECT_NE(result.labels[0], result.labels[50]);
}

TEST(KMeans, PredictAssignsNearest) {
  Rng rng(53);
  std::vector<std::vector<double>> data{{0, 0}, {0, 1}, {10, 10}, {10, 11}};
  const auto result = kmeans(data, 2, rng);
  EXPECT_EQ(result.predict(std::vector<double>{0.2, 0.3}),
            result.labels[0]);
  EXPECT_EQ(result.predict(std::vector<double>{9.9, 10.4}),
            result.labels[2]);
}

TEST(KMeans, ElbowFindsClusterCount) {
  Rng rng(59);
  std::vector<std::vector<double>> data;
  for (const double cx : {0.0, 20.0, 40.0}) {
    for (int i = 0; i < 40; ++i) {
      data.push_back({cx + rng.normal(0, 0.5), rng.normal(0, 0.5)});
    }
  }
  const std::size_t k = select_k_elbow(data, 6, rng);
  EXPECT_GE(k, 2u);
  EXPECT_LE(k, 4u);
}

// -------------------------------------------------------------------- kNN

TEST(Knn, RegressorInterpolatesSmoothFunction) {
  KnnRegressor knn;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.1;
    knn.add({x}, std::sin(x));
  }
  EXPECT_NEAR(knn.predict(std::vector<double>{2.05}, 3), std::sin(2.05), 0.05);
}

TEST(Knn, ClassifierMajorityVote) {
  KnnClassifier knn;
  for (int i = 0; i < 20; ++i) {
    knn.add({static_cast<double>(i % 3), 0.0}, i % 3 == 0 ? "a" : "b");
  }
  EXPECT_EQ(knn.predict(std::vector<double>{0.0, 0.0}, 3), "a");
  EXPECT_EQ(knn.predict(std::vector<double>{2.0, 0.0}, 3), "b");
  EXPECT_GT(knn.confidence(std::vector<double>{0.0, 0.0}, 3), 0.5);
}

// ------------------------------------------------------- isolation forest

TEST(IsolationForest, OutliersScoreHigher) {
  Rng rng(61);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 400; ++i) {
    data.push_back({rng.normal(0, 1), rng.normal(0, 1)});
  }
  auto forest = IsolationForest::fit(data, {}, rng);
  const double inlier = forest.score(std::vector<double>{0.1, -0.2});
  const double outlier = forest.score(std::vector<double>{9.0, 9.0});
  EXPECT_GT(outlier, inlier);
  EXPECT_GT(outlier, 0.6);
  EXPECT_LT(inlier, 0.55);
}

TEST(IsolationForest, DeterministicForSeed) {
  Rng a(67), b(67);
  std::vector<std::vector<double>> data;
  Rng gen(1);
  for (int i = 0; i < 100; ++i) data.push_back({gen.normal(), gen.normal()});
  auto f1 = IsolationForest::fit(data, {}, a);
  auto f2 = IsolationForest::fit(data, {}, b);
  const std::vector<double> q{0.5, 0.5};
  EXPECT_DOUBLE_EQ(f1.score(q), f2.score(q));
}

// ---------------------------------------------------------- decision tree

TEST(DecisionTree, LearnsAxisAlignedSplit) {
  Rng rng(71);
  std::vector<LabeledSample> data;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1, 1);
    data.push_back({{x, rng.uniform(-1, 1)}, x > 0.0 ? 1u : 0u});
  }
  const auto tree = DecisionTree::fit(data, 2, {}, rng);
  EXPECT_EQ(tree.predict(std::vector<double>{0.5, 0.0}), 1u);
  EXPECT_EQ(tree.predict(std::vector<double>{-0.5, 0.0}), 0u);
}

TEST(RandomForest, LearnsNonlinearBoundary) {
  Rng rng(73);
  std::vector<LabeledSample> data;
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    // XOR-style quadrant labeling: a single axis split cannot solve it.
    data.push_back({{x, y}, (x > 0) == (y > 0) ? 1u : 0u});
  }
  RandomForest::Params params;
  params.n_trees = 30;
  const auto forest = RandomForest::fit(data, 2, params, rng);
  int correct = 0;
  Rng test_rng(79);
  for (int i = 0; i < 200; ++i) {
    const double x = test_rng.uniform(-1, 1);
    const double y = test_rng.uniform(-1, 1);
    const std::size_t truth = (x > 0) == (y > 0) ? 1u : 0u;
    if (forest.predict(std::vector<double>{x, y}) == truth) ++correct;
  }
  EXPECT_GT(correct, 170);  // > 85% on a clean XOR problem
}

// --------------------------------------------------------------- optimize

TEST(Optimize, GoldenSectionFindsQuadraticMin) {
  const auto r = golden_section([](double x) { return (x - 3.0) * (x - 3.0); },
                                -10.0, 10.0);
  EXPECT_NEAR(r.x, 3.0, 1e-4);
}

TEST(Optimize, CoordinateDescentOnRosenbrockish) {
  const ObjectiveND f = [](std::span<const double> x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + 5.0 * (x[1] + 2.0) * (x[1] + 2.0);
  };
  const auto r = coordinate_descent(f, {0.0, 0.0}, {1.0, 1.0}, 500);
  EXPECT_NEAR(r.x[0], 1.0, 1e-2);
  EXPECT_NEAR(r.x[1], -2.0, 1e-2);
}

TEST(Optimize, NelderMeadQuadratic) {
  const ObjectiveND f = [](std::span<const double> x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + (x[1] - 1.0) * (x[1] - 1.0) +
           0.5 * x[0] * x[1];
  };
  const auto r = nelder_mead(f, {5.0, 5.0}, 1.0, 1000);
  // Analytic minimum of the coupled quadratic: x = (12/7.5, 3/7.5)... verify
  // by gradient: 2(x-2) + 0.5 y = 0; 2(y-1) + 0.5 x = 0 -> x=1.8667, y=0.5333.
  EXPECT_NEAR(r.x[0], 1.8667, 0.01);
  EXPECT_NEAR(r.x[1], 0.5333, 0.01);
}

TEST(Optimize, AnnealingFindsGlobalAmongLocal) {
  // Two wells; the deeper one is at x = 4.
  const ObjectiveND f = [](std::span<const double> x) {
    const double a = (x[0] + 3.0) * (x[0] + 3.0) - 1.0;
    const double b = (x[0] - 4.0) * (x[0] - 4.0) - 3.0;
    return std::min(a, b);
  };
  Rng rng(83);
  AnnealParams params;
  params.steps = 3000;
  params.initial_temperature = 2.0;
  const std::vector<double> lo{-10.0}, hi{10.0};
  const auto r = simulated_annealing(f, lo, hi, params, rng);
  EXPECT_NEAR(r.x[0], 4.0, 0.5);
}

TEST(Optimize, GridSearchExhaustive) {
  const ObjectiveND f = [](std::span<const double> x) {
    return std::abs(x[0] - 2.0) + std::abs(x[1] - 30.0);
  };
  const auto r = grid_search(f, {{1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}});
  EXPECT_DOUBLE_EQ(r.x[0], 2.0);
  EXPECT_DOUBLE_EQ(r.x[1], 30.0);
  EXPECT_EQ(r.evaluations, 9u);
}

TEST(Optimize, RandomSearchApproaches) {
  Rng rng(89);
  const ObjectiveND f = [](std::span<const double> x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  const std::vector<double> lo{-5, -5}, hi{5, 5};
  const auto r = random_search(f, lo, hi, 500, rng);
  EXPECT_LT(r.value, 0.5);
}

// --------------------------------------------------------------- distance

TEST(Distance, BasicMetrics) {
  const std::vector<double> a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(manhattan_distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(chebyshev_distance(a, b), 4.0);
}

TEST(Distance, CosineParallelAndOrthogonal) {
  EXPECT_NEAR(cosine_distance(std::vector<double>{1, 0},
                              std::vector<double>{2, 0}),
              0.0, 1e-12);
  EXPECT_NEAR(cosine_distance(std::vector<double>{1, 0},
                              std::vector<double>{0, 1}),
              1.0, 1e-12);
}

TEST(Distance, DtwIdenticalIsZero) {
  const std::vector<double> a{1, 2, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dtw_distance(a, a), 0.0);
}

TEST(Distance, DtwHandlesTimeShift) {
  // The same pulse shifted: DTW should be much smaller than the euclidean
  // point-wise distance.
  std::vector<double> a(32, 0.0), b(32, 0.0);
  for (int i = 8; i < 12; ++i) a[static_cast<std::size_t>(i)] = 5.0;
  for (int i = 12; i < 16; ++i) b[static_cast<std::size_t>(i)] = 5.0;
  double euclid = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) euclid += std::abs(a[i] - b[i]);
  EXPECT_LT(dtw_distance(a, b), euclid / 2.0);
}

TEST(Distance, DtwDifferentLengths) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 1, 2, 2, 3, 3};
  EXPECT_NEAR(dtw_distance(a, b), 0.0, 1e-12);
}

// ---------------------------------------------------------------- entropy

TEST(Entropy, UniformIsMaximal) {
  const std::vector<std::size_t> uniform{10, 10, 10, 10};
  const std::vector<std::size_t> skewed{37, 1, 1, 1};
  EXPECT_NEAR(shannon_entropy(uniform), 2.0, 1e-12);
  EXPECT_LT(shannon_entropy(skewed), 2.0);
  EXPECT_NEAR(normalized_entropy(uniform), 1.0, 1e-12);
}

TEST(Entropy, BinnedEntropyConstantIsZero) {
  const std::vector<double> xs(50, 3.0);
  EXPECT_DOUBLE_EQ(binned_entropy(xs, 8), 0.0);
}

TEST(Entropy, TransitionEntropyRegularVsRandom) {
  TransitionEntropy regular, random_te;
  Rng rng(97);
  for (int i = 0; i < 300; ++i) {
    regular.observe(i % 2 ? "a" : "b");
    random_te.observe(std::string(1, static_cast<char>('a' + rng.uniform_int(0, 3))));
  }
  EXPECT_LT(regular.entropy(), random_te.entropy());
  EXPECT_EQ(regular.distinct_transitions(), 2u);
}

}  // namespace
}  // namespace oda::math
