// Gate proof: acquiring two mutexes against a direct ODA_ACQUIRED_BEFORE
// edge must not compile under the tsa preset (-Wthread-safety-beta carries
// the ordering checks).
// TSA-EXPECT: must be acquired
#include "common/sync.hpp"

class Pipeline {
 public:
  void transfer() {
    oda::MutexLock input(input_mu_);
    oda::MutexLock output(output_mu_);
  }
  void inverted() {
    oda::MutexLock output(output_mu_);
    oda::MutexLock input(input_mu_);  // violates the declared order
  }

 private:
  oda::Mutex input_mu_ ODA_ACQUIRED_BEFORE(output_mu_);
  oda::Mutex output_mu_;
};

int main() {
  Pipeline pipeline;
  pipeline.transfer();
  pipeline.inverted();
  return 0;
}
