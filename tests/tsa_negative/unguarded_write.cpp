// Gate proof: writing an ODA_GUARDED_BY field without holding its mutex
// must not compile under the tsa preset.
// TSA-EXPECT: writing variable 'counter_' requires holding mutex 'mu_' exclusively
#include <cstdint>

#include "common/sync.hpp"

class EventCounter {
 public:
  void bump() {
    ++counter_;  // racy write: no lock held
  }
  std::int64_t value() const {
    oda::MutexLock lock(mu_);
    return counter_;
  }

 private:
  mutable oda::Mutex mu_;
  std::int64_t counter_ ODA_GUARDED_BY(mu_) = 0;
};

int main() {
  EventCounter counter;
  counter.bump();
  return static_cast<int>(counter.value());
}
