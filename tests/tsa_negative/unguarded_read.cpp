// Gate proof: reading an ODA_GUARDED_BY field without holding its mutex
// must not compile under the tsa preset. (Valid C++ otherwise — the
// annotations are inert without the analysis.)
// TSA-EXPECT: reading variable 'balance_' requires holding mutex 'mu_'
#include "common/sync.hpp"

class Account {
 public:
  void deposit(int amount) {
    oda::MutexLock lock(mu_);
    balance_ += amount;
  }
  int balance() const {
    return balance_;  // racy read: no lock held
  }

 private:
  mutable oda::Mutex mu_;
  int balance_ ODA_GUARDED_BY(mu_) = 0;
};

int main() {
  Account account;
  account.deposit(1);
  return account.balance();
}
