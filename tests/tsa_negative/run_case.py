#!/usr/bin/env python3
"""Negative-compilation driver for the thread-safety gate.

A case file is a small, *valid* C++ program that violates the locking
discipline encoded in src/common/sync.hpp. The proof obligation is
two-sided:

  1. without analysis flags the case compiles clean (so a failure below is
     attributable to the analysis, not to a syntax error);
  2. with `-Wthread-safety -Wthread-safety-beta -Werror` compilation FAILS,
     and stderr matches every `// TSA-EXPECT: <regex>` line in the case.

Thread Safety Analysis exists only in Clang, so when the configured
compiler is anything else the driver exits 77 (ctest SKIP_RETURN_CODE) —
the gate is exercised wherever clang++ is available (the `tsa` CI job),
and visibly skipped, never silently green, elsewhere.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys

SKIP = 77
TSA_FLAGS = ["-Wthread-safety", "-Wthread-safety-beta", "-Werror"]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("case", help="path to the case .cpp file")
    ap.add_argument("--compiler", default="clang++",
                    help="C++ compiler; non-Clang compilers skip (exit 77)")
    ap.add_argument("--include-dir", required=True,
                    help="repository src/ directory for #include resolution")
    args = ap.parse_args()

    try:
        ver = subprocess.run([args.compiler, "--version"],
                             capture_output=True, text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        print(f"SKIP: compiler '{args.compiler}' is not runnable")
        return SKIP
    if ver.returncode != 0 or "clang" not in ver.stdout.lower():
        print(f"SKIP: '{args.compiler}' is not Clang; "
              "thread-safety analysis is unavailable")
        return SKIP

    with open(args.case, encoding="utf-8") as f:
        source = f.read()
    expects = [m.group(1).strip()
               for m in re.finditer(r"//\s*TSA-EXPECT:\s*(.+)", source)]
    if not expects:
        print("ERROR: case declares no TSA-EXPECT lines")
        return 1

    base = [args.compiler, "-std=c++20", "-fsyntax-only",
            "-I", args.include_dir]

    plain = subprocess.run(base + [args.case],
                           capture_output=True, text=True, timeout=300)
    if plain.returncode != 0:
        print("FAIL: case must be valid C++ without the analysis flags "
              "(otherwise the rejection below proves nothing):")
        print(plain.stderr)
        return 1

    tsa = subprocess.run(base + TSA_FLAGS + [args.case],
                         capture_output=True, text=True, timeout=300)
    if tsa.returncode == 0:
        print("FAIL: the thread-safety gate did not fire — the analysis "
              "accepted a case that violates the locking discipline")
        return 1
    missing = [e for e in expects if not re.search(e, tsa.stderr)]
    if missing:
        print("FAIL: compilation failed but not for the documented reason;")
        for e in missing:
            print(f"  no diagnostic matched: {e}")
        print("--- compiler stderr ---")
        print(tsa.stderr)
        return 1

    print(f"PASS: rejected with all {len(expects)} expected diagnostic(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
