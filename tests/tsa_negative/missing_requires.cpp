// Gate proof: calling an ODA_REQUIRES(mu) helper without holding the mutex
// must not compile under the tsa preset — the *_locked() naming convention
// is machine-checked, not a comment.
// TSA-EXPECT: calling function 'advance_locked' requires holding mutex 'mu_' exclusively
#include "common/sync.hpp"

class Ticker {
 public:
  void advance() {
    advance_locked();  // forgot to take mu_ first
  }
  int read() const {
    oda::MutexLock lock(mu_);
    return ticks_;
  }

 private:
  void advance_locked() ODA_REQUIRES(mu_) { ++ticks_; }

  mutable oda::Mutex mu_;
  int ticks_ ODA_GUARDED_BY(mu_) = 0;
};

int main() {
  Ticker ticker;
  ticker.advance();
  return ticker.read();
}
