// Gate proof: the lock_order rank chain orders mutexes that have no direct
// edge between them. A log-level mutex held while acquiring a bus-level one
// inverts the hierarchy purely through the transitive marker chain
// (bus -> ... -> log), so this must not compile under the tsa preset.
// TSA-EXPECT: must be acquired
#include "common/sync.hpp"

class CrossLayer {
 public:
  void correct() {
    oda::MutexLock bus(bus_mu_);
    oda::MutexLock sink(log_mu_);
  }
  void inverted() {
    oda::MutexLock sink(log_mu_);
    oda::MutexLock bus(bus_mu_);  // bus level under log level
  }

 private:
  oda::Mutex bus_mu_ ODA_ACQUIRED_AFTER(oda::lock_order::bus)
      ODA_ACQUIRED_BEFORE(oda::lock_order::health);
  oda::Mutex log_mu_ ODA_ACQUIRED_AFTER(oda::lock_order::log);
};

int main() {
  CrossLayer layers;
  layers.correct();
  layers.inverted();
  return 0;
}
