// Gate proof: writing a guarded field while holding only the shared
// (reader) side of a SharedMutex must not compile under the tsa preset —
// readers can race with this write.
// TSA-EXPECT: writing variable 'snapshot_' requires holding shared mutex 'mu_' exclusively
#include "common/sync.hpp"

class Catalog {
 public:
  void refresh(double value) {
    oda::ReaderLock lock(mu_);
    snapshot_ = value;  // writer work under a reader lock
  }
  double snapshot() const {
    oda::ReaderLock lock(mu_);
    return snapshot_;
  }

 private:
  mutable oda::SharedMutex mu_;
  double snapshot_ ODA_GUARDED_BY(mu_) = 0.0;
};

int main() {
  Catalog catalog;
  catalog.refresh(1.0);
  return catalog.snapshot() > 0.0 ? 0 : 1;
}
