// Resilient-pipeline tests (docs/RESILIENCE.md): failable sensor reads,
// retry/backoff determinism, circuit-breaker lifecycle, sensor-health
// quarantine scored against injected ground truth, the analytics quality
// overlay, and a randomized chaos campaign over the full pipeline with exact
// gap accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "analytics/descriptive/aggregation.hpp"
#include "analytics/descriptive/kpi.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/cluster.hpp"
#include "sim/faults.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/health.hpp"
#include "telemetry/store.hpp"

namespace oda::telemetry {
namespace {

sim::ClusterParams small_params(std::uint64_t seed = 1) {
  sim::ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 4;
  params.dt = 15;
  params.seed = seed;
  return params;
}

// ------------------------------------------------------------ read faults

TEST(ReadFaults, DropoutFailsReadsAtScheduledWindow) {
  sim::ClusterSimulation cluster(small_params());
  cluster.faults().schedule(
      {sim::FaultKind::kSensorDropout, "facility/pue", 30, 90, 1.0});
  for (int i = 0; i < 8; ++i) {
    cluster.step();
    const auto r = cluster.try_read_sensor("facility/pue");
    const bool faulted = cluster.now() >= 30 && cluster.now() < 90;
    EXPECT_EQ(r.ok, !faulted) << "t=" << cluster.now();
    EXPECT_DOUBLE_EQ(r.latency_s, 0.0);
  }
}

TEST(ReadFaults, StallChargesSimulatedLatency) {
  sim::ClusterSimulation cluster(small_params());
  cluster.faults().schedule(
      {sim::FaultKind::kSensorStall, "facility/pue", 0, kHour, 10.0});
  cluster.step();
  const auto r = cluster.try_read_sensor("facility/pue");
  EXPECT_TRUE(r.ok);  // a stall delays the value, it does not drop it
  EXPECT_GE(r.latency_s, 8.0);   // magnitude jittered +/-20%
  EXPECT_LE(r.latency_s, 12.0);
  // An unaffected sensor costs nothing.
  const auto other = cluster.try_read_sensor("weather/drybulb_temp");
  EXPECT_TRUE(other.ok);
  EXPECT_DOUBLE_EQ(other.latency_s, 0.0);
}

TEST(ReadFaults, IsReadFaultClassification) {
  EXPECT_TRUE(sim::is_read_fault(sim::FaultKind::kSensorDropout));
  EXPECT_TRUE(sim::is_read_fault(sim::FaultKind::kSensorStall));
  EXPECT_FALSE(sim::is_read_fault(sim::FaultKind::kSensorStuck));
  EXPECT_FALSE(sim::is_read_fault(sim::FaultKind::kFanFailure));
  // Read faults are sensor-targeted.
  EXPECT_TRUE(sim::is_sensor_fault(sim::FaultKind::kSensorDropout));
  EXPECT_TRUE(sim::is_sensor_fault(sim::FaultKind::kSensorStall));
}

// --------------------------------------------------------------- backoff

TEST(RetryBackoff, DeterministicForFixedSeed) {
  RetryPolicy policy;
  policy.base_backoff_s = 0.5;
  policy.backoff_multiplier = 2.0;
  policy.jitter_fraction = 0.25;
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(retry_backoff_s(policy, i, a),
                     retry_backoff_s(policy, i, b));
  }
}

TEST(RetryBackoff, ExponentialWithBoundedJitter) {
  RetryPolicy policy;
  policy.base_backoff_s = 0.25;
  policy.backoff_multiplier = 2.0;
  policy.jitter_fraction = 0.25;
  Rng rng(7);
  for (int i = 0; i < 6; ++i) {
    const double nominal = 0.25 * std::pow(2.0, i);
    const double b = retry_backoff_s(policy, i, rng);
    EXPECT_GE(b, nominal * 0.75);
    EXPECT_LE(b, nominal * 1.25);
  }
  policy.jitter_fraction = 0.0;  // jitter off => exact exponential
  Rng unused(1);
  EXPECT_DOUBLE_EQ(retry_backoff_s(policy, 3, unused), 2.0);
}

// ---------------------------------------------------------------- breaker

TEST(CircuitBreaker, OpensHalfOpensAndRecloses) {
  sim::ClusterSimulation cluster(small_params());
  // Total dropout on one sensor for [15, 300): the breaker must open, probe
  // while the fault lasts, and re-close once reads succeed again.
  cluster.faults().schedule(
      {sim::FaultKind::kSensorDropout, "facility/pue", 15, 300, 1.0});
  TimeSeriesStore store;
  Collector collector(cluster, &store, nullptr);
  RetryPolicy retry;
  retry.max_attempts = 2;
  collector.set_retry_policy(retry);
  BreakerPolicy breaker;
  breaker.failure_threshold = 3;
  breaker.open_cooldown = 60;
  breaker.half_open_successes = 2;
  collector.set_breaker_policy(breaker);
  collector.add_group({"pue", "facility/pue", 15});

  bool saw_open = false;
  while (cluster.now() < 600) {
    cluster.step();
    collector.collect();
    if (collector.breaker_state("facility/pue") == BreakerState::kOpen) {
      saw_open = true;
      EXPECT_EQ(collector.open_breakers(), 1u);
    }
  }
  EXPECT_TRUE(saw_open);
  // Fault is long gone: breaker closed again and samples flowing.
  EXPECT_EQ(collector.breaker_state("facility/pue"), BreakerState::kClosed);
  EXPECT_EQ(collector.open_breakers(), 0u);
  EXPECT_GT(store.sample_count("facility/pue"), 0u);
  EXPECT_GT(collector.retries_total(), 0u);
  // Exact conservation: every expected sample is either ingested or an
  // accounted gap.
  EXPECT_EQ(collector.samples_expected(),
            collector.samples_collected() + collector.gaps_total());
  EXPECT_EQ(store.total_inserted(), collector.samples_collected());
}

TEST(CircuitBreaker, DeadlineBoundsStalledSensor) {
  sim::ClusterSimulation cluster(small_params());
  // Stall far beyond the deadline: every read must give up at the budget
  // (never block) and the breaker must open.
  cluster.faults().schedule(
      {sim::FaultKind::kSensorStall, "facility/pue", 15, kHour, 60.0});
  TimeSeriesStore store;
  Collector collector(cluster, &store, nullptr);
  RetryPolicy retry;
  retry.read_deadline_s = 5.0;
  collector.set_retry_policy(retry);
  BreakerPolicy breaker;
  breaker.failure_threshold = 2;
  breaker.open_cooldown = 300;
  collector.set_breaker_policy(breaker);
  collector.add_group({"pue", "facility/pue", 15});

  for (int i = 0; i < 10; ++i) {
    cluster.step();
    collector.collect();
  }
  EXPECT_EQ(store.sample_count("facility/pue"), 0u);
  EXPECT_EQ(collector.breaker_state("facility/pue"), BreakerState::kOpen);
  EXPECT_EQ(collector.samples_expected(),
            collector.samples_collected() + collector.gaps_total());
  EXPECT_EQ(collector.gaps_total(), 10u);
}

// ----------------------------------------------------------------- health

HealthPolicy outcome_only_policy() {
  HealthPolicy policy;
  policy.flatline_run = 0;      // value heuristics off: these tests score
  policy.out_of_range_run = 0;  // the read-outcome path in isolation
  policy.staleness = 0;
  return policy;
}

TEST(SensorHealth, UnknownSeriesReportsHealthy) {
  SensorHealthTracker tracker;
  EXPECT_EQ(tracker.state("never/seen"), SensorState::kHealthy);
  EXPECT_TRUE(tracker.usable("never/seen"));
  EXPECT_EQ(tracker.counts().tracked, 0u);
}

TEST(SensorHealth, FailureRateDrivesFlakyAndQuarantine) {
  SensorHealthTracker tracker(outcome_only_policy());
  const SeriesId id = SeriesInterner::global().intern("hx/sensor");
  // 4 failures in a row: rate 1.0 => quarantined (min_observations = 4).
  for (int i = 0; i < 4; ++i) {
    tracker.record_failure(id, "hx/sensor", 15 * (i + 1), ReadOutcome::kDropout);
  }
  EXPECT_EQ(tracker.state("hx/sensor"), SensorState::kQuarantined);
  EXPECT_FALSE(tracker.usable("hx/sensor"));
  EXPECT_EQ(tracker.quarantined(), std::vector<std::string>{"hx/sensor"});
  // Recovery: policy.recovery_successes clean reads return it to healthy.
  TimePoint t = 100;
  for (std::size_t i = 0; i < tracker.policy().recovery_successes; ++i) {
    tracker.record_success(id, "hx/sensor", t, 1.0 + 0.1 * static_cast<double>(i));
    t += 15;
  }
  EXPECT_EQ(tracker.state("hx/sensor"), SensorState::kHealthy);
  EXPECT_TRUE(tracker.usable("hx/sensor"));
  EXPECT_GE(tracker.transitions(), 2u);
}

TEST(SensorHealth, FlatlineAfterVariationQuarantines) {
  HealthPolicy policy;
  policy.flatline_run = 5;
  SensorHealthTracker tracker(policy);
  const SeriesId born_flat = SeriesInterner::global().intern("hx/constant");
  const SeriesId went_flat = SeriesInterner::global().intern("hx/stuck");
  TimePoint t = 0;
  for (int i = 0; i < 20; ++i) {
    t += 15;
    // A sensor that never varied is not "stuck", it is just constant.
    tracker.record_success(born_flat, "hx/constant", t, 42.0);
    // One that varied and then froze is stuck.
    const double v = i < 4 ? static_cast<double>(i) : 99.0;
    tracker.record_success(went_flat, "hx/stuck", t, v);
  }
  EXPECT_EQ(tracker.state("hx/constant"), SensorState::kHealthy);
  EXPECT_EQ(tracker.state("hx/stuck"), SensorState::kQuarantined);
}

TEST(SensorHealth, OutOfRangeRunQuarantines) {
  HealthPolicy policy;
  policy.out_of_range_run = 3;
  policy.flatline_run = 0;
  SensorHealthTracker tracker(policy);
  tracker.set_range("hx/temp*", -20.0, 120.0);
  const SeriesId id = SeriesInterner::global().intern("hx/temp0");
  tracker.record_success(id, "hx/temp0", 15, 55.0);
  for (int i = 0; i < 3; ++i) {
    tracker.record_success(id, "hx/temp0", 30 + 15 * i, 4000.0 + i);
  }
  EXPECT_EQ(tracker.state("hx/temp0"), SensorState::kQuarantined);
}

TEST(SensorHealth, StalenessSweepQuarantines) {
  HealthPolicy policy;
  policy.staleness = 10 * kMinute;
  SensorHealthTracker tracker(policy);
  const SeriesId id = SeriesInterner::global().intern("hx/stale");
  tracker.record_success(id, "hx/stale", 60, 1.0);
  tracker.step(5 * kMinute);
  EXPECT_EQ(tracker.state("hx/stale"), SensorState::kHealthy);
  tracker.step(20 * kMinute);
  EXPECT_EQ(tracker.state("hx/stale"), SensorState::kQuarantined);
}

TEST(SensorHealth, QuarantineTransitionsPublishOnBus) {
  MessageBus bus;
  std::vector<std::string> events;
  bus.subscribe("_health/*", [&](const Reading& r) { events.push_back(r.path); });
  SensorHealthTracker tracker(outcome_only_policy(), &bus);
  const SeriesId id = SeriesInterner::global().intern("hx/pub");
  for (int i = 0; i < 4; ++i) {
    tracker.record_failure(id, "hx/pub", 15 * (i + 1), ReadOutcome::kDeadline);
  }
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front(), "_health/hx/pub");
}

// Quarantine scored against injected ground truth: precision and recall of
// the quarantined set vs the sensors that actually had read faults.
TEST(SensorHealth, QuarantinePrecisionRecallAgainstGroundTruth) {
  sim::ClusterParams params = small_params(11);
  params.nodes_per_rack = 8;
  sim::ClusterSimulation cluster(params);
  TimeSeriesStore store;
  SensorHealthTracker tracker(outcome_only_policy());
  Collector collector(cluster, &store, nullptr);
  collector.set_health_tracker(&tracker);
  collector.add_all_sensors(15);

  // Fault every 10th sensor with total dropout for the rest of the run.
  const auto all_paths = collector.catalog().match("*");
  ASSERT_GT(all_paths.size(), 30u);
  std::set<std::string> truth;
  for (std::size_t i = 0; i < all_paths.size(); i += 10) {
    truth.insert(all_paths[i]);
    cluster.faults().schedule(
        {sim::FaultKind::kSensorDropout, all_paths[i], 60, 2 * kHour, 1.0});
  }
  ASSERT_GE(truth.size(), 3u);

  while (cluster.now() < 30 * kMinute) {
    cluster.step();
    collector.collect();
  }

  const auto quarantined = tracker.quarantined();
  std::size_t true_positives = 0;
  for (const auto& path : quarantined) {
    if (truth.count(path) > 0) ++true_positives;
  }
  const double precision =
      quarantined.empty()
          ? 0.0
          : static_cast<double>(true_positives) /
                static_cast<double>(quarantined.size());
  const double recall = static_cast<double>(true_positives) /
                        static_cast<double>(truth.size());
  EXPECT_GE(precision, 0.8) << "quarantined " << quarantined.size()
                            << " sensors, " << true_positives << " correct";
  EXPECT_GE(recall, 0.8) << "found " << true_positives << " of "
                         << truth.size() << " faulted sensors";
}

// -------------------------------------------------------- quality overlay

TEST(QualityOverlay, AggregationSkipsQuarantinedAndReportsCoverage) {
  TimeSeriesStore store;
  for (TimePoint t = 0; t < 100; t += 10) {
    store.insert("rack00/node00/power", {t, 100.0});
    store.insert("rack00/node01/power", {t, 100.0});
    store.insert("rack00/node02/power", {t, 1e9});  // poisoned
  }
  SensorHealthTracker tracker(outcome_only_policy());
  const SeriesId bad = SeriesInterner::global().intern("rack00/node02/power");
  for (int i = 0; i < 4; ++i) {
    tracker.record_failure(bad, "rack00/node02/power", 15 * (i + 1),
                           ReadOutcome::kDropout);
  }
  ASSERT_FALSE(tracker.usable("rack00/node02/power"));

  const auto plain = analytics::quantile_transport(store, "rack00/node*/power",
                                                   0, 100, 1);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_GT(plain[0].max, 1e8);  // poisoned value leaks without the overlay
  EXPECT_DOUBLE_EQ(plain[0].coverage, 1.0);

  const auto guarded = analytics::quantile_transport(
      store, "rack00/node*/power", 0, 100, 1, &tracker);
  ASSERT_EQ(guarded.size(), 1u);
  EXPECT_EQ(guarded[0].sensors, 2u);
  EXPECT_EQ(guarded[0].skipped, 1u);
  EXPECT_NEAR(guarded[0].coverage, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(guarded[0].max, 100.0);

  const auto snaps = analytics::snapshot_sensors(store, "rack00/node*/power",
                                                 0, 100, &tracker);
  EXPECT_EQ(snaps.size(), 2u);
}

TEST(QualityOverlay, KpisReportCoverageAndNanOnQuarantine) {
  TimeSeriesStore store;
  for (TimePoint t = 0; t < 100; t += 10) {
    store.insert("facility/total_power", {t, 1200.0});
    store.insert("cluster/it_power", {t, 1000.0});
    store.insert("facility/cooling_power", {t, 150.0});
    store.insert("facility/pdu_loss", {t, 50.0});
    store.insert("scheduler/utilization", {t, 0.7});
  }
  SensorHealthTracker tracker(outcome_only_policy());
  for (const char* path : {"facility/cooling_power", "scheduler/utilization"}) {
    const SeriesId id = SeriesInterner::global().intern(path);
    for (int i = 0; i < 4; ++i) {
      tracker.record_failure(id, path, 15 * (i + 1), ReadOutcome::kDropout);
    }
  }

  const auto plain = analytics::compute_pue(store, 0, 100);
  EXPECT_DOUBLE_EQ(plain.coverage, 1.0);
  EXPECT_GT(plain.cooling_energy_kwh, 0.0);

  const auto guarded = analytics::compute_pue(store, 0, 100, &tracker);
  EXPECT_DOUBLE_EQ(guarded.coverage, 0.75);
  EXPECT_DOUBLE_EQ(guarded.cooling_energy_kwh, 0.0);
  EXPECT_DOUBLE_EQ(guarded.it_energy_kwh, plain.it_energy_kwh);

  EXPECT_NEAR(analytics::compute_utilization(store, 0, 100), 0.7, 1e-12);
  EXPECT_TRUE(std::isnan(analytics::compute_utilization(store, 0, 100, &tracker)));

  const std::vector<std::string> sensors = {
      "facility/total_power", "cluster/it_power", "scheduler/utilization"};
  const auto sie = analytics::compute_sie(store, sensors, 0, 100, 10, 4, &tracker);
  EXPECT_EQ(sie.sensors_used, 2u);
  EXPECT_NEAR(sie.coverage, 2.0 / 3.0, 1e-12);
}

// ------------------------------------------------- no-fault equivalence

// The whole resilience layer is a strict overlay: with no faults scheduled,
// a collector with retry/breaker/health enabled ingests a bit-identical
// stream to a plain one.
TEST(NoFaultEquivalence, ResilienceLayerIsBitIdenticalOverlay) {
  constexpr std::uint64_t kSeed = 99;
  sim::ClusterSimulation plain_cluster(small_params(kSeed));
  TimeSeriesStore plain_store;
  Collector plain(plain_cluster, &plain_store, nullptr);
  plain.add_all_sensors(15);

  sim::ClusterSimulation guarded_cluster(small_params(kSeed));
  TimeSeriesStore guarded_store;
  SensorHealthTracker tracker;
  Collector guarded(guarded_cluster, &guarded_store, nullptr);
  RetryPolicy retry;
  retry.max_attempts = 5;
  retry.base_backoff_s = 1.0;
  guarded.set_retry_policy(retry);
  BreakerPolicy breaker;
  breaker.failure_threshold = 2;
  guarded.set_breaker_policy(breaker);
  guarded.set_health_tracker(&tracker);
  guarded.add_all_sensors(15);

  for (int i = 0; i < 40; ++i) {
    plain_cluster.step();
    plain.collect();
    guarded_cluster.step();
    guarded.collect();
  }

  EXPECT_EQ(guarded.gaps_total(), 0u);
  EXPECT_EQ(guarded.retries_total(), 0u);
  ASSERT_EQ(plain_store.total_inserted(), guarded_store.total_inserted());
  for (const auto& path : plain_store.match("*")) {
    const auto a = plain_store.query_all(path);
    const auto b = guarded_store.query_all(path);
    ASSERT_EQ(a.size(), b.size()) << path;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.times[i], b.times[i]) << path;
      // Bit-identical, not approximately equal.
      ASSERT_EQ(a.values[i], b.values[i]) << path << " @" << a.times[i];
    }
  }
  EXPECT_EQ(tracker.counts().quarantined, 0u);
  EXPECT_EQ(tracker.counts().flaky, 0u);
}

// ---------------------------------------------------------------- chaos

// Randomized full-pipeline campaign: a seeded schedule of dropout, stall,
// and overlay faults across the fleet; the pipeline must survive (no crash,
// no hang), account every sample exactly, and keep analytics runnable.
TEST(Chaos, RandomizedFaultCampaignConservesSamples) {
  sim::ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 8;
  params.dt = 15;
  params.seed = 2026;
  sim::ClusterSimulation cluster(params);
  TimeSeriesStore store;
  MessageBus bus;
  ThreadPool pool(4);
  SensorHealthTracker tracker({}, &bus);
  Collector collector(cluster, &store, &bus, &pool);
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.read_deadline_s = 4.0;
  collector.set_retry_policy(retry);
  BreakerPolicy breaker;
  breaker.failure_threshold = 4;
  breaker.open_cooldown = 120;
  collector.set_breaker_policy(breaker);
  collector.set_health_tracker(&tracker);
  const std::size_t matched = collector.add_all_sensors(15);
  ASSERT_GE(matched, 64u);  // exercises the parallel read path

  // Seeded random fault schedule: kind, target, window, magnitude.
  Rng chaos(params.seed ^ 0xC4A05ULL);
  const auto paths = collector.catalog().match("*");
  constexpr TimePoint kHorizon = 45 * kMinute;
  constexpr int kFaults = 24;
  for (int i = 0; i < kFaults; ++i) {
    const auto& target =
        paths[static_cast<std::size_t>(chaos.uniform_int(
            0, static_cast<std::int64_t>(paths.size()) - 1))];
    const TimePoint start = chaos.uniform_int(0, kHorizon / 2);
    const TimePoint end =
        start + chaos.uniform_int(2 * kMinute, kHorizon - start);
    switch (chaos.uniform_int(0, 3)) {
      case 0:
        cluster.faults().schedule(
            {sim::FaultKind::kSensorDropout, target, start, end,
             chaos.uniform(0.3, 1.0)});
        break;
      case 1:
        cluster.faults().schedule(
            {sim::FaultKind::kSensorStall, target, start, end,
             chaos.uniform(0.5, 12.0)});
        break;
      case 2:
        cluster.faults().schedule(
            {sim::FaultKind::kSensorStuck, target, start, end, 0.0});
        break;
      default:
        cluster.faults().schedule(
            {sim::FaultKind::kSensorNoise, target, start, end,
             chaos.uniform(1.0, 20.0)});
        break;
    }
  }

  while (cluster.now() < kHorizon) {
    cluster.step();
    collector.collect();
  }

  // Exact conservation under chaos: nothing lost, nothing double-counted.
  EXPECT_EQ(collector.samples_expected(),
            collector.samples_collected() + collector.gaps_total());
  EXPECT_EQ(store.total_inserted(), collector.samples_collected());
  EXPECT_GT(collector.gaps_total(), 0u);  // the campaign actually bit
  EXPECT_GT(collector.samples_collected(), 0u);  // and did not kill the feed

  // Analytics stay runnable over the damaged data, with the quality overlay
  // reporting (not hiding) the damage.
  const auto summaries = analytics::quantile_transport(
      store, "rack*/node*/power", 0, kHorizon, 1, &tracker);
  for (const auto& s : summaries) {
    EXPECT_GE(s.coverage, 0.0);
    EXPECT_LE(s.coverage, 1.0);
    EXPECT_TRUE(std::isfinite(s.mean));
  }
  const auto pue = analytics::compute_pue(store, 0, kHorizon, &tracker);
  EXPECT_GE(pue.coverage, 0.0);
  EXPECT_LE(pue.coverage, 1.0);
  EXPECT_TRUE(std::isfinite(pue.pue));

  const auto counts = tracker.counts();
  EXPECT_EQ(counts.tracked,
            counts.healthy + counts.flaky + counts.quarantined);
}

}  // namespace
}  // namespace oda::telemetry
