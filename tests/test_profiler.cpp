// Continuous-profiling layer tests: the critical-path analyzer's
// deterministic algorithm against hand-built span DAGs (exact expected
// numbers — scripts/analyze_trace.py mirrors the same algorithm and the
// obs.critical_path_lockstep fixture compares the two byte-for-byte), the
// sampling profiler's lifecycle and folded output, and the wait-attribution
// exports (pool task timing histograms, per-rank lock contention).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/contention.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "common/thread_watch.hpp"
#include "obs/critical_path.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace oda {
namespace {

using obs::CriticalPathReport;
using obs::TraceEvent;
using obs::TraceEventKind;

TraceEvent span(const char* name, std::uint64_t trace_id,
                std::uint64_t span_id, std::uint64_t parent_id,
                std::uint64_t ts_us, std::uint64_t dur_us) {
  TraceEvent ev;
  ev.name = name;
  ev.category = "test";
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.kind = TraceEventKind::kSpan;
  ev.trace_id = trace_id;
  ev.span_id = span_id;
  ev.parent_id = parent_id;
  return ev;
}

// ---------------------------------------------------- critical-path DAG

// Hand-built tree with every interesting overlap:
//   root [0,100)
//     stepA [10,40)
//     stepB [30,80)       (overlaps stepA on [30,40))
//       stepC [50,70)
// Frontier attribution from the window end backwards gives
//   root: (80,100] + (0,10]          = 30 us on-path
//   stepB: (70,80] + (30,50]         = 30 us
//   stepC: (50,70]                   = 20 us
//   stepA: (10,30] (clipped at B's start) = 20 us
// Self times: root 100-|[10,80)|=30, stepA 30, stepB 50-20=30, stepC 20;
// busy 110 -> parallelism 1.10 over a 100 us root.
std::vector<TraceEvent> overlap_tree() {
  return {
      span("root", 0xabc, 1, 0, 0, 100),
      span("stepA", 0xabc, 2, 1, 10, 30),
      span("stepB", 0xabc, 3, 1, 30, 50),
      span("stepC", 0xabc, 4, 3, 50, 20),
  };
}

TEST(CriticalPath, HandBuiltDagExactNumbers) {
  const auto reports = obs::analyze_critical_path(overlap_tree());
  ASSERT_EQ(reports.size(), 1u);
  const CriticalPathReport& r = reports[0];
  EXPECT_EQ(r.trace_id, 0xabcu);
  EXPECT_EQ(r.root_span_id, 1u);
  EXPECT_EQ(r.root_name, "root");
  EXPECT_EQ(r.root_start_us, 0u);
  EXPECT_EQ(r.root_dur_us, 100u);
  EXPECT_EQ(r.critical_path_us, 100u);  // root covers its whole window
  EXPECT_EQ(r.total_busy_us, 110u);
  EXPECT_EQ(r.span_count, 4u);
  EXPECT_DOUBLE_EQ(r.parallelism, 1.10);

  // Sorted cp desc, self desc, name asc: root ties stepB on both numbers.
  ASSERT_EQ(r.top.size(), 4u);
  EXPECT_EQ(r.top[0].name, "root");
  EXPECT_EQ(r.top[0].cp_us, 30u);
  EXPECT_EQ(r.top[0].self_us, 30u);
  EXPECT_EQ(r.top[0].count, 1u);
  EXPECT_EQ(r.top[1].name, "stepB");
  EXPECT_EQ(r.top[1].cp_us, 30u);
  EXPECT_EQ(r.top[1].self_us, 30u);
  EXPECT_EQ(r.top[2].name, "stepA");
  EXPECT_EQ(r.top[2].cp_us, 20u);
  EXPECT_EQ(r.top[2].self_us, 30u);
  EXPECT_EQ(r.top[3].name, "stepC");
  EXPECT_EQ(r.top[3].cp_us, 20u);
  EXPECT_EQ(r.top[3].self_us, 20u);
}

TEST(CriticalPath, RenderExactText) {
  const std::string text =
      obs::render_critical_path(obs::analyze_critical_path(overlap_tree()));
  EXPECT_EQ(text,
            "trace 0000000000000abc root 'root' dur 0.100 ms "
            "critical_path 0.100 ms busy 0.110 ms parallelism 1.10 spans 4\n"
            "  root                             count      1 "
            "self      0.030 ms on-path      0.030 ms\n"
            "  stepB                            count      1 "
            "self      0.030 ms on-path      0.030 ms\n"
            "  stepA                            count      1 "
            "self      0.030 ms on-path      0.020 ms\n"
            "  stepC                            count      1 "
            "self      0.020 ms on-path      0.020 ms\n");
}

TEST(CriticalPath, RenderEmptyInput) {
  EXPECT_EQ(obs::render_critical_path({}), "no traced spans\n");
}

TEST(CriticalPath, OrphanSubtreeBecomesItsOwnRoot) {
  // Parent id 99 never appears (ring eviction in practice): the orphan
  // roots its own report within the same trace.
  std::vector<TraceEvent> events = {
      span("root", 5, 1, 0, 0, 50),
      span("orphan", 5, 2, 99, 200, 80),
      span("orphan.child", 5, 3, 2, 210, 20),
  };
  const auto reports = obs::analyze_critical_path(events);
  ASSERT_EQ(reports.size(), 2u);
  // Sorted by root duration descending.
  EXPECT_EQ(reports[0].root_name, "orphan");
  EXPECT_EQ(reports[0].root_dur_us, 80u);
  EXPECT_EQ(reports[0].span_count, 2u);
  EXPECT_EQ(reports[1].root_name, "root");
  EXPECT_EQ(reports[1].root_dur_us, 50u);
}

TEST(CriticalPath, IgnoresInstantsAndUntracedSpans) {
  std::vector<TraceEvent> events = {span("root", 7, 1, 0, 0, 10)};
  TraceEvent instant = span("mark", 7, 2, 1, 5, 0);
  instant.kind = TraceEventKind::kInstant;
  events.push_back(instant);
  events.push_back(span("untraced", 0, 3, 0, 0, 1000));
  const auto reports = obs::analyze_critical_path(events);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].span_count, 1u);
  EXPECT_EQ(reports[0].root_dur_us, 10u);
}

TEST(CriticalPath, ZeroDurationRootHasZeroParallelism) {
  const auto reports =
      obs::analyze_critical_path({span("tick", 9, 1, 0, 42, 0)});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].root_dur_us, 0u);
  EXPECT_EQ(reports[0].critical_path_us, 0u);
  EXPECT_DOUBLE_EQ(reports[0].parallelism, 0.0);
}

TEST(CriticalPath, DuplicateSpanIdKeepsFirstByTimestamp) {
  // A tracer never emits duplicates; the analyzer's contract is to keep
  // the earliest occurrence deterministically.
  std::vector<TraceEvent> events = {
      span("late", 11, 1, 0, 100, 5),
      span("early", 11, 1, 0, 0, 50),
  };
  const auto reports = obs::analyze_critical_path(events);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].root_name, "early");
  EXPECT_EQ(reports[0].root_dur_us, 50u);
}

TEST(CriticalPath, SelfParentBecomesRootAndCyclesDrop) {
  // span 1 parents itself -> treated as a root; spans 2 and 3 parent each
  // other -> unreachable from any root, so they contribute no report.
  std::vector<TraceEvent> events = {
      span("selfie", 13, 1, 1, 0, 10),
      span("cycleA", 13, 2, 3, 0, 10),
      span("cycleB", 13, 3, 2, 0, 10),
  };
  const auto reports = obs::analyze_critical_path(events);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].root_name, "selfie");
  EXPECT_EQ(reports[0].span_count, 1u);
}

TEST(CriticalPath, TopNTruncates) {
  std::vector<TraceEvent> events = {span("root", 17, 1, 0, 0, 100)};
  const char* names[] = {"c0", "c1", "c2", "c3", "c4"};
  for (std::uint64_t i = 0; i < 5; ++i) {
    events.push_back(span(names[i], 17, 2 + i, 1, i * 10, 10));
  }
  const auto reports = obs::analyze_critical_path(events, /*top_n=*/3);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].top.size(), 3u);
  EXPECT_EQ(reports[0].span_count, 6u);
}

TEST(CriticalPath, ReportsSortedAcrossTraces) {
  std::vector<TraceEvent> events = {
      span("short", 30, 1, 0, 0, 10),
      span("long", 20, 1, 0, 0, 500),
      span("mid", 40, 1, 0, 0, 100),
  };
  const auto reports = obs::analyze_critical_path(events);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].root_name, "long");
  EXPECT_EQ(reports[1].root_name, "mid");
  EXPECT_EQ(reports[2].root_name, "short");
}

// ------------------------------------------------------- wait attribution

TEST(WaitAttribution, PoolTaskTimingHistogramsCountCompletedTasks) {
  obs::MetricsRegistry registry;
  ThreadPool pool(2);
  const auto handles = obs::register_thread_pool(registry, pool, "test");
  constexpr int kTasks = 32;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(std::memory_order_relaxed), kTasks);

  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricFamily* wait = snap.find("oda_pool_task_queue_wait_seconds");
  const obs::MetricFamily* run = snap.find("oda_pool_task_run_seconds");
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(run, nullptr);
  ASSERT_EQ(wait->histograms.size(), 1u);
  ASSERT_EQ(run->histograms.size(), 1u);
  EXPECT_EQ(wait->histograms[0].count, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(run->histograms[0].count, static_cast<std::uint64_t>(kTasks));
  // Parked-worker gauge exists and reads a sane value (both workers idle
  // once wait_idle returned, but a worker may still be between tasks).
  const obs::MetricFamily* parked = snap.find("oda_pool_workers_parked");
  ASSERT_NE(parked, nullptr);
  ASSERT_EQ(parked->values.size(), 1u);
  EXPECT_LE(parked->values[0].value, 2.0);
}

TEST(WaitAttribution, LockContentionExportsPerRankHistogram) {
  contention::reset();
  obs::MetricsRegistry registry;
  const auto handles = obs::register_lock_contention(registry);

  // Force a contended acquisition on a ranked mutex.
  Mutex mu(LockRankId::kBus);
  std::atomic<bool> held{false};
  std::thread holder([&] {
    MutexLock lock(mu);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  while (!held.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  {
    MutexLock lock(mu);
    EXPECT_GT(lock.waited_s(), 0.0);
  }
  holder.join();

  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricFamily* fam = snap.find("oda_lock_wait_seconds");
  ASSERT_NE(fam, nullptr);
  // One series per rank, registered eagerly.
  EXPECT_EQ(fam->histograms.size(), static_cast<std::size_t>(kLockRankCount));
  bool found = false;
  for (const auto& h : fam->histograms) {
    ASSERT_EQ(h.labels.size(), 1u);
    EXPECT_EQ(h.labels[0].first, "rank");
    if (h.labels[0].second == to_string(LockRankId::kBus)) {
      found = true;
      EXPECT_GE(h.count, 1u);
      EXPECT_GT(h.sum, 0.0);
      EXPECT_EQ(h.bounds.size(), contention::kWaitBounds.size());
      EXPECT_EQ(h.counts.size(), contention::kWaitBounds.size() + 1);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GE(snap.total("oda_lock_contended_total"), 1.0);
  contention::reset();
}

// ---------------------------------------------------------- profiler

#if ODA_PROFILING_ENABLED

TEST(Profiler, LifecycleStartStopRestart) {
  obs::SamplingProfiler& prof = obs::SamplingProfiler::global();
  EXPECT_FALSE(obs::SamplingProfiler::active());
  obs::ProfilerOptions opts;
  opts.interval_us = 1000;
  ASSERT_TRUE(prof.start(opts));
  EXPECT_TRUE(obs::SamplingProfiler::active());
  EXPECT_TRUE(prof.running());
  EXPECT_FALSE(prof.start(opts));  // already running
  prof.stop();
  EXPECT_FALSE(obs::SamplingProfiler::active());
  ASSERT_TRUE(prof.start(opts));  // restart works
  prof.stop();
  prof.clear();
  EXPECT_TRUE(prof.samples().empty());
}

TEST(Profiler, SamplesWatchedThreadAndFoldsStacks) {
  WatchedThreadScope scope("test.main");
  obs::SamplingProfiler& prof = obs::SamplingProfiler::global();
  obs::ProfilerOptions opts;
  opts.interval_us = 500;
  ASSERT_TRUE(prof.start(opts));
  // Busy-spin until at least a few samples landed (generous deadline: CI
  // machines stall; the watcher fires every 500 us).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  volatile double sink = 0.0;
  while (prof.sampled_total() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  }
  prof.stop();
  EXPECT_GE(prof.sampled_total(), 3u);
  EXPECT_GE(prof.thread_count(), 1u);
  EXPECT_GE(prof.signals_sent(), prof.sampled_total());

  const auto samples = prof.samples();
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    EXPECT_FALSE(s.pcs.empty());
    EXPECT_LE(s.pcs.size(), obs::kMaxProfFrames);
  }

  // Folded output: "stack count" lines, role prefix first.
  const std::string folded = prof.folded();
  ASSERT_FALSE(folded.empty());
  std::size_t pos = 0;
  while (pos < folded.size()) {
    const std::size_t eol = folded.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = folded.substr(pos, eol - pos);
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.rfind("test.main;", 0), 0u) << line;
    const std::string count = line.substr(space + 1);
    EXPECT_GT(std::stoull(count), 0u) << line;
    pos = eol + 1;
  }
  prof.clear();
}

TEST(Profiler, SecondInstanceCannotStartWhileGlobalRuns) {
  obs::SamplingProfiler& prof = obs::SamplingProfiler::global();
  ASSERT_TRUE(prof.start());
  obs::SamplingProfiler other;
  EXPECT_FALSE(other.start());  // handler/TLS are process-global
  prof.stop();
  prof.clear();
}

TEST(Profiler, RegisterProfilerExportsCounters) {
  obs::MetricsRegistry registry;
  obs::SamplingProfiler& prof = obs::SamplingProfiler::global();
  const auto handles = obs::register_profiler(registry, prof, "test");
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_NE(snap.find("oda_profiler_samples_total"), nullptr);
  EXPECT_NE(snap.find("oda_profiler_truncated_total"), nullptr);
  EXPECT_NE(snap.find("oda_profiler_threads_watched"), nullptr);
}

#else  // !ODA_PROFILING_ENABLED

TEST(Profiler, CompiledOutStubsAreInert) {
  obs::SamplingProfiler& prof = obs::SamplingProfiler::global();
  EXPECT_FALSE(prof.start());
  EXPECT_FALSE(prof.running());
  EXPECT_FALSE(obs::SamplingProfiler::active());
  prof.stop();  // no-op
  EXPECT_TRUE(prof.samples().empty());
  EXPECT_TRUE(prof.folded().empty());
  EXPECT_EQ(prof.sampled_total(), 0u);
}

#endif  // ODA_PROFILING_ENABLED

}  // namespace
}  // namespace oda
