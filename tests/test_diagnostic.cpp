// Tests for the diagnostic pillar: streaming/multivariate anomaly detection
// (scored against injected-fault ground truth), root-cause analysis,
// fingerprinting, contention diagnosis, and software diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/diagnostic/anomaly.hpp"
#include "analytics/diagnostic/contention.hpp"
#include "analytics/diagnostic/fingerprint.hpp"
#include "analytics/diagnostic/rootcause.hpp"
#include "analytics/diagnostic/software.hpp"
#include "analytics/diagnostic/stress_test.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

namespace oda::analytics {
namespace {

// ------------------------------------------------------ streaming detectors

TEST(ZScoreDetector, FiresOnSpikeNotOnNoise) {
  Rng rng(1);
  ZScoreDetector det(64, 4.0);
  for (int i = 0; i < 200; ++i) {
    det.observe(rng.normal(100.0, 2.0));
    EXPECT_LT(det.score(), 1.0) << "false positive at i=" << i;
  }
  det.observe(150.0);
  EXPECT_GE(det.score(), 1.0);
}

TEST(MadDetector, SurvivesContaminatedWindow) {
  Rng rng(2);
  MadDetector det(64, 5.0);
  for (int i = 0; i < 100; ++i) det.observe(rng.normal(10.0, 0.5));
  // A burst of outliers: MAD keeps firing where stddev-based scores would
  // be swamped by the contamination.
  for (int i = 0; i < 10; ++i) {
    det.observe(30.0);
    EXPECT_GE(det.score(), 1.0);
  }
}

TEST(EwmaDetector, DetectsLevelShift) {
  Rng rng(3);
  EwmaDetector det(0.2, 4.0);
  for (int i = 0; i < 300; ++i) det.observe(rng.normal(50.0, 1.0));
  EXPECT_LT(det.score(), 1.0);
  for (int i = 0; i < 30; ++i) det.observe(rng.normal(56.0, 1.0));
  EXPECT_GE(det.score(), 1.0);
}

TEST(StuckSensorDetector, CountsConstantRun) {
  StuckSensorDetector det(10);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) det.observe(rng.normal(3.0, 0.2));
  EXPECT_LT(det.score(), 0.5);
  for (int i = 0; i < 12; ++i) det.observe(7.77);
  EXPECT_GE(det.score(), 1.0);
}

// -------------------------------------------------------- detection scoring

TEST(DetectionMetrics, ConfusionMath) {
  const std::vector<bool> pred{true, true, false, false, true};
  const std::vector<bool> truth{true, false, false, true, true};
  const auto m = score_detection(pred, truth);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_EQ(m.true_negatives, 1u);
  EXPECT_NEAR(m.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.f1(), 2.0 / 3.0, 1e-12);
}

TEST(RocAuc, PerfectAndRandomScores) {
  const std::vector<double> perfect{0.1, 0.2, 0.8, 0.9};
  const std::vector<bool> truth{false, false, true, true};
  EXPECT_DOUBLE_EQ(roc_auc(perfect, truth), 1.0);
  const std::vector<double> inverted{0.9, 0.8, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(roc_auc(inverted, truth), 0.0);
  const std::vector<double> ties{0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(roc_auc(ties, truth), 0.5);
}

// --------------------------------------------------------- node monitor E2E

class MonitorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::ClusterParams params;
    params.racks = 2;
    params.nodes_per_rack = 4;
    params.seed = 21;
    cluster_ = std::make_unique<sim::ClusterSimulation>(params);
    cluster_->set_workload_enabled(false);
    store_ = std::make_unique<telemetry::TimeSeriesStore>();
    collector_ = std::make_unique<telemetry::Collector>(*cluster_, store_.get(),
                                                        nullptr);
    collector_->add_all_sensors(60);
    for (std::size_t i = 0; i < cluster_->node_count(); ++i) {
      prefixes_.push_back(cluster_->node(i).path());
    }
    // Steady synthetic load: one long single-node job per node, so every
    // node has a stable busy signature the monitor can learn.
    Rng job_rng(77);
    for (std::size_t i = 0; i < cluster_->node_count(); ++i) {
      sim::JobSpec spec;
      spec.id = 1000 + i;
      spec.user = "steady";
      spec.nodes_requested = 1;
      spec.phases = sim::WorkloadGenerator::make_phases(
          sim::JobClass::kComputeBound, 48 * kHour, job_rng);
      spec.walltime_requested = 96 * kHour;
      cluster_->scheduler().submit(spec);
    }
  }

  void run_until(TimePoint t) {
    while (cluster_->now() < t) {
      cluster_->step();
      collector_->collect();
    }
  }

  std::unique_ptr<sim::ClusterSimulation> cluster_;
  std::unique_ptr<telemetry::TimeSeriesStore> store_;
  std::unique_ptr<telemetry::Collector> collector_;
  std::vector<std::string> prefixes_;
};

TEST_F(MonitorFixture, DetectsFanFailureLowFalsePositives) {
  run_until(8 * kHour);  // healthy training period
  Rng rng(5);
  NodeAnomalyMonitor monitor({}, prefixes_);
  monitor.train(*store_, kHour, 8 * kHour, rng);

  // Healthy scan: few (ideally zero) false positives.
  std::size_t false_pos = 0;
  for (const auto& v : monitor.scan(*store_, cluster_->now())) {
    if (v.anomalous) ++false_pos;
  }
  EXPECT_LE(false_pos, 1u);

  // Inject a fan failure on node 2 and a thermal degradation on node 5.
  cluster_->faults().schedule({sim::FaultKind::kFanFailure, prefixes_[2],
                               cluster_->now(), cluster_->now() + 4 * kHour, 1.0});
  cluster_->faults().schedule({sim::FaultKind::kThermalDegradation, prefixes_[5],
                               cluster_->now(), cluster_->now() + 4 * kHour, 2.0});
  run_until(cluster_->now() + 2 * kHour);

  const auto verdicts = monitor.scan(*store_, cluster_->now());
  EXPECT_TRUE(verdicts[2].anomalous) << "fan failure missed, score="
                                     << verdicts[2].score;
  EXPECT_TRUE(verdicts[5].anomalous) << "thermal degradation missed, score="
                                     << verdicts[5].score;
  // The faulty nodes must rank above every healthy node.
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (i == 2 || i == 5) continue;
    EXPECT_LT(verdicts[i].score, verdicts[2].score);
    EXPECT_LT(verdicts[i].score, verdicts[5].score);
  }
}

TEST(PcaAnomalyDetector, FlagsOffSubspaceSamples) {
  Rng rng(6);
  std::vector<std::vector<double>> healthy;
  for (int i = 0; i < 200; ++i) {
    const double t = rng.normal();
    healthy.push_back({t + rng.normal(0.0, 0.05), 2.0 * t + rng.normal(0.0, 0.05),
                       -t + rng.normal(0.0, 0.05)});
  }
  PcaAnomalyDetector det;
  det.train(healthy, 0.95);
  EXPECT_LT(det.score(healthy[0]), 1.5);
  EXPECT_GT(det.score(std::vector<double>{3.0, -6.0, 3.0}), 2.0);
}

TEST(WindowFeatures, ShapeAndSlope) {
  telemetry::Frame frame;
  frame.columns = {"a", "b"};
  frame.times = {0, 1, 2, 3};
  frame.allocate(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    frame.at(r, 0) = static_cast<double>(r);
    frame.at(r, 1) = 5.0;
  }
  const auto f = window_features(frame);
  ASSERT_EQ(f.size(), 6u);
  EXPECT_NEAR(f[0], 1.5, 1e-12);  // mean(a)
  EXPECT_NEAR(f[2], 1.0, 1e-12);  // slope(a)
  EXPECT_NEAR(f[5], 0.0, 1e-12);  // slope(b)
}

// ------------------------------------------------------------------- RCA

TEST(RootCause, BlamesCoolingWhenAllRacksHot) {
  auto graph = DependencyGraph::standard_cluster(2, 4);
  std::vector<std::string> symptoms;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t n = 0; n < 4; ++n) symptoms.push_back(sim::node_path(r, n));
  }
  const auto causes = graph.diagnose(symptoms);
  ASSERT_FALSE(causes.empty());
  EXPECT_EQ(causes.front().component, "facility/cooling");
}

TEST(RootCause, BlamesRackWhenOnlyItsNodesHot) {
  auto graph = DependencyGraph::standard_cluster(2, 4);
  std::vector<std::string> symptoms;
  for (std::size_t n = 0; n < 4; ++n) symptoms.push_back(sim::node_path(1, n));
  const auto causes = graph.diagnose(symptoms);
  ASSERT_FALSE(causes.empty());
  EXPECT_EQ(causes.front().component, "rack01");
}

TEST(RootCause, SingleNodeIsItsOwnCause) {
  auto graph = DependencyGraph::standard_cluster(2, 4);
  const auto causes = graph.diagnose({sim::node_path(0, 2)});
  ASSERT_FALSE(causes.empty());
  EXPECT_EQ(causes.front().component, sim::node_path(0, 2));
}

TEST(RootCause, GraphStructure) {
  auto graph = DependencyGraph::standard_cluster(3, 2);
  EXPECT_TRUE(graph.contains("facility/cooling"));
  EXPECT_EQ(graph.children_of("rack00").size(), 2u);
  EXPECT_EQ(graph.descendants_of("facility/cooling").size(), 3 + 3 * 2 + 2u);
}

// ----------------------------------------------------------- fingerprinting

TEST(CrisisFingerprinter, MatchesKnownIncidentClass) {
  CrisisFingerprinter fp;
  Rng rng(7);
  // Two incident classes with distinct signatures.
  for (int i = 0; i < 5; ++i) {
    fp.add_incident("cooling-loss",
                    {40.0 + rng.normal(0, 0.5), 80.0 + rng.normal(0, 0.5), 2.0});
    fp.add_incident("power-surge",
                    {10.0 + rng.normal(0, 0.5), 20.0 + rng.normal(0, 0.5), 9.0});
  }
  const auto match = fp.identify({40.3, 79.7, 2.1});
  EXPECT_EQ(match.label, "cooling-loss");
  EXPECT_TRUE(match.known);
  const auto novel = fp.identify({400.0, 0.0, -50.0});
  EXPECT_FALSE(novel.known);
}

TEST(ApplicationFingerprinter, SeparatesSyntheticClasses) {
  ApplicationFingerprinter fp;
  Rng rng(8);
  // Miner: high cpu, low mem/net. HPC: moderate cpu, higher mem/net.
  for (int i = 0; i < 30; ++i) {
    fp.add_training("miner", {0.99 + rng.normal(0, 0.003), 0.02, 0.05, 0.01});
    fp.add_training("hpc", {0.8 + rng.normal(0, 0.05), 0.15,
                            0.5 + rng.normal(0, 0.1), 0.3});
  }
  fp.train(rng);
  EXPECT_EQ(fp.predict_knn({0.995, 0.02, 0.04, 0.01}).label, "miner");
  EXPECT_EQ(fp.predict_forest({0.995, 0.02, 0.04, 0.01}).label, "miner");
  EXPECT_EQ(fp.predict_knn({0.78, 0.2, 0.6, 0.35}).label, "hpc");
  EXPECT_GT(fp.predict_forest({0.995, 0.02, 0.04, 0.01}).confidence, 0.7);
}

// -------------------------------------------------------- contention E2E

TEST(Contention, DiagnosesDegradedUplink) {
  sim::ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 8;
  params.seed = 31;
  params.workload.peak_arrival_rate_per_hour = 0.0;
  sim::ClusterSimulation cluster(params);
  cluster.set_workload_enabled(false);

  // A cross-rack network-heavy job.
  sim::JobSpec spec;
  spec.id = 1;
  spec.user = "netuser";
  spec.nodes_requested = 12;  // spans both racks under first-fit
  sim::JobPhase phase;
  phase.nominal_duration = 6 * kHour;
  phase.cpu_util = 0.5;
  phase.net_util = 0.9;
  spec.phases = {phase};
  spec.walltime_requested = 12 * kHour;
  cluster.scheduler().submit(spec);

  // Degrade rack 0's uplink so the shared link saturates.
  cluster.faults().schedule({sim::FaultKind::kNetworkDegradation, "0", 0,
                             12 * kHour, 0.3});

  telemetry::TimeSeriesStore store;
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);
  while (cluster.now() < kHour) {
    cluster.step();
    collector.collect();
  }

  std::vector<std::string> prefixes;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    prefixes.push_back(cluster.node(i).path());
  }
  ContentionParams cp;
  cp.nodes_per_rack = 8;
  const auto report = diagnose_contention(store, cluster.scheduler().running(),
                                          prefixes, cluster.now(), cp);
  ASSERT_TRUE(report.contention_detected());
  EXPECT_EQ(report.hot_links.front().rack, 0u);
  ASSERT_FALSE(report.involved_jobs.empty());
  EXPECT_EQ(report.involved_jobs.front().job_id, 1u);
  EXPECT_TRUE(report.involved_jobs.front().aggressor);
}

// --------------------------------------------------------------- software

TEST(MemoryLeak, DetectedOnLeakClassJob) {
  sim::ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 2;
  params.workload.peak_arrival_rate_per_hour = 0.0;
  sim::ClusterSimulation cluster(params);
  cluster.set_workload_enabled(false);

  sim::JobSpec leak;
  leak.id = 1;
  leak.user = "u";
  leak.job_class = sim::JobClass::kMemoryLeak;
  leak.nodes_requested = 1;
  sim::JobPhase phase;
  phase.nominal_duration = 6 * kHour;
  phase.cpu_util = 0.8;
  leak.phases = {phase};
  leak.walltime_requested = 12 * kHour;
  cluster.scheduler().submit(leak);

  telemetry::TimeSeriesStore store;
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);
  while (cluster.now() < kHour) {
    cluster.step();
    collector.collect();
  }

  std::vector<std::string> prefixes;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    prefixes.push_back(cluster.node(i).path());
  }
  ASSERT_FALSE(cluster.scheduler().running().empty());
  const auto verdict = detect_memory_leak(
      store, cluster.scheduler().running()[0], prefixes, cluster.now(), {});
  EXPECT_TRUE(verdict.leaking);
  EXPECT_NEAR(verdict.slope_gb_per_hour, 90.0, 20.0);  // 1.5 GB/min ramp
  EXPECT_GT(verdict.projected_hours_to_oom, 0.0);
}

TEST(OsNoise, FindsInjectedPeriod) {
  // One interference event every 0.1 s against 0.0105 s quanta: ~10% of
  // quanta are inflated.
  const auto trace = synthesize_fwq(1024, 0.01, /*noise_period=*/0.1,
                                    /*noise_cost=*/0.004,
                                    /*sample_period=*/0.0105, 99);
  const auto report = analyze_fwq(trace, 0.01, 0.0105);
  EXPECT_GT(report.noise_fraction, 0.05);
  ASSERT_TRUE(report.periodic);
  // An impulse train carries equal energy in all harmonics, so the dominant
  // bin may be any multiple of the fundamental: accept period = 0.1/k.
  const double ratio = 0.1 / report.dominant_period_s;
  EXPECT_NEAR(ratio, std::round(ratio), 0.15)
      << "dominant period " << report.dominant_period_s
      << " is not a harmonic of 0.1 s";
  EXPECT_LE(report.dominant_period_s, 0.11);
}

TEST(OsNoise, QuietTraceIsClean) {
  const auto trace = synthesize_fwq(256, 0.01, /*noise_period=*/1e9,
                                    /*noise_cost=*/0.0, 0.0105, 7);
  const auto report = analyze_fwq(trace, 0.01, 0.0105);
  EXPECT_LT(report.noise_fraction, 0.02);
}

TEST(Boundedness, NameMapping) {
  EXPECT_STREQ(boundedness_name(Boundedness::kCompute), "compute-bound");
  EXPECT_STREQ(boundedness_name(Boundedness::kIdle), "idle");
}


TEST(StressTest, FitTimeConstantExactExponential) {
  std::vector<double> t, y;
  const double tau = 600.0, y0 = 30.0, yinf = 27.0;
  for (int i = 1; i <= 40; ++i) {
    t.push_back(i * 60.0);
    y.push_back(yinf + (y0 - yinf) * std::exp(-i * 60.0 / tau));
  }
  EXPECT_NEAR(fit_time_constant(t, y, y0, yinf), tau, 5.0);
}

TEST(StressTest, DegradedPumpSlowsLoopResponse) {
  const auto measure = [](double degradation) {
    sim::ClusterParams params;
    params.racks = 1;
    params.nodes_per_rack = 4;
    params.seed = 9;
    params.workload.peak_arrival_rate_per_hour = 0.0;
    sim::ClusterSimulation cluster(params);
    cluster.set_workload_enabled(false);
    if (degradation > 1.0) {
      cluster.faults().schedule({sim::FaultKind::kPumpDegradation, "facility",
                                 0, 100 * kDay, degradation});
    }
    return run_cooling_stress_test(cluster, /*baseline_tau_s=*/0.0);
  };
  const auto healthy = measure(1.0);
  ASSERT_TRUE(healthy.completed);
  EXPECT_NEAR(healthy.time_constant_s, 900.0, 200.0);  // the loop's design tau
  EXPECT_LT(healthy.residual_rmse_c, 0.2);             // clean first-order fit

  const auto degraded = measure(2.0);
  EXPECT_GT(degraded.time_constant_s, healthy.time_constant_s * 1.6);

  // Verdict path: re-run degraded with the healthy baseline.
  sim::ClusterParams params;
  params.racks = 1;
  params.nodes_per_rack = 4;
  params.seed = 9;
  params.workload.peak_arrival_rate_per_hour = 0.0;
  sim::ClusterSimulation cluster(params);
  cluster.set_workload_enabled(false);
  cluster.faults().schedule({sim::FaultKind::kPumpDegradation, "facility", 0,
                             100 * kDay, 2.0});
  const auto verdict =
      run_cooling_stress_test(cluster, healthy.time_constant_s);
  EXPECT_TRUE(verdict.degraded);
  EXPECT_GT(verdict.slowdown_factor, 1.4);
  // The protocol restores the operating point.
  EXPECT_DOUBLE_EQ(cluster.knobs().get("facility/supply_setpoint"),
                   params.facility.supply_setpoint_c);
}

}  // namespace
}  // namespace oda::analytics
