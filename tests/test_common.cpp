// Unit tests for the oda_common substrate: RNG, streaming statistics,
// containers, concurrency primitives, and text/config utilities.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>
#include <thread>

#include "common/blocking_queue.hpp"
#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/spsc_queue.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace oda {
namespace {

// ----------------------------------------------------------------- types

TEST(Types, FormatDuration) {
  EXPECT_EQ(format_duration(0), "00:00:00");
  EXPECT_EQ(format_duration(kHour + 2 * kMinute + 3), "01:02:03");
  EXPECT_EQ(format_duration(2 * kDay + 3 * kHour), "2d 03:00:00");
  EXPECT_EQ(format_duration(-kMinute), "-00:01:00");
}

TEST(Types, FormatTime) {
  EXPECT_EQ(format_time(0), "d00 00:00:00");
  EXPECT_EQ(format_time(kDay + kHour), "d01 01:00:00");
}

TEST(Types, UnitConversions) {
  EXPECT_DOUBLE_EQ(units::celsius_to_kelvin(0.0), 273.15);
  EXPECT_DOUBLE_EQ(units::kelvin_to_celsius(units::celsius_to_kelvin(42.0)), 42.0);
  EXPECT_DOUBLE_EQ(units::joules_to_kwh(3.6e6), 1.0);
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng root(7);
  Rng c1 = root.split(1);
  Rng c2 = root.split(2);
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(17);
  RunningStats small, large;
  for (int i = 0; i < 20000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
    large.add(static_cast<double>(rng.poisson(80.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 80.0, 0.5);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectWeights) {
  Rng rng(23);
  std::vector<double> counts(3, 0.0);
  for (int i = 0; i < 30000; ++i) counts[rng.categorical({1.0, 2.0, 1.0})] += 1.0;
  EXPECT_NEAR(counts[1] / 30000.0, 0.5, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), ContractError);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), ContractError);
}

TEST(Rng, ParetoHeavyTail) {
  Rng rng(29);
  double max_seen = 0.0;
  for (int i = 0; i < 10000; ++i) max_seen = std::max(max_seen, rng.pareto(1.0, 1.5));
  EXPECT_GT(max_seen, 10.0);  // heavy tail produces large values
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// ----------------------------------------------------------------- stats

TEST(RunningStats, MatchesBatchComputation) {
  Rng rng(37);
  RunningStats stats;
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(5.0, 3.0);
    xs.push_back(x);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(stats.variance(), variance(xs), 1e-9);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(41);
  RunningStats a, b, all;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0, 10);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.skewness(), all.skewness(), 1e-6);
  EXPECT_NEAR(a.kurtosis(), all.kurtosis(), 1e-6);
}

TEST(RunningStats, MinMax) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile q(0.5);
  q.add(1.0);
  q.add(3.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

TEST(P2Quantile, ApproximatesMedianOfNormal) {
  Rng rng(43);
  P2Quantile q(0.5);
  for (int i = 0; i < 20000; ++i) q.add(rng.normal(100.0, 15.0));
  EXPECT_NEAR(q.value(), 100.0, 1.0);
}

TEST(P2Quantile, ApproximatesTailQuantile) {
  Rng rng(47);
  P2Quantile q(0.95);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.exponential(1.0);
    xs.push_back(x);
    q.add(x);
  }
  EXPECT_NEAR(q.value(), quantile(xs, 0.95), 0.15);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.2);
  for (int i = 0; i < 100; ++i) e.add(5.0);
  EXPECT_NEAR(e.mean(), 5.0, 1e-9);
  EXPECT_NEAR(e.variance(), 0.0, 1e-9);
}

TEST(Ewma, TracksStep) {
  Ewma e(0.5);
  e.add(0.0);
  for (int i = 0; i < 20; ++i) e.add(10.0);
  EXPECT_NEAR(e.mean(), 10.0, 0.01);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(RollingWindow, EvictsOldest) {
  RollingWindow w(3);
  for (double x : {1.0, 2.0, 3.0, 4.0}) w.add(x);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.front(), 2.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(RollingWindow, VarianceMatchesBatch) {
  Rng rng(53);
  RollingWindow w(50);
  for (int i = 0; i < 200; ++i) w.add(rng.uniform(0, 100));
  const auto v = w.to_vector();
  EXPECT_NEAR(w.variance(), variance(v), 1e-6);
  EXPECT_DOUBLE_EQ(w.min(), *std::min_element(v.begin(), v.end()));
  EXPECT_DOUBLE_EQ(w.max(), *std::max_element(v.begin(), v.end()));
}

TEST(BatchStats, QuantileInterpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(BatchStats, MadRobustToOutlier) {
  std::vector<double> xs{1, 2, 3, 4, 5, 1000};
  EXPECT_LT(mad(xs), 5.0);
}

TEST(BatchStats, CorrelationKnownValues) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  std::vector<double> z{5, 4, 3, 2, 1};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, z), -1.0, 1e-12);
  std::vector<double> c{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(correlation(x, c), 0.0);
}

TEST(BatchStats, AutocorrelationPeriodicSignal) {
  std::vector<double> xs;
  for (int i = 0; i < 128; ++i) xs.push_back(std::sin(2.0 * M_PI * i / 16.0));
  EXPECT_GT(autocorrelation(xs, 16), 0.8);
  EXPECT_LT(autocorrelation(xs, 8), -0.5);
}

// ------------------------------------------------------------- containers

TEST(RingBuffer, OverwritesOldest) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb[0], 3);
  EXPECT_EQ(rb.back(), 5);
  EXPECT_EQ(rb.to_vector(), (std::vector<int>{3, 4, 5}));
}

TEST(RingBuffer, IndexOutOfRangeThrows) {
  RingBuffer<int> rb(2);
  rb.push(1);
  EXPECT_THROW(rb[1], ContractError);
}

TEST(SpscQueue, FifoOrder) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.try_pop().value(), i);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscQueue, FullRejectsPush) {
  SpscQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  // capacity rounded up to power of two minus the sentinel slot: at least 2.
  while (q.try_push(0)) {
  }
  EXPECT_FALSE(q.try_push(99));
}

TEST(SpscQueue, ConcurrentTransferPreservesAll) {
  SpscQueue<int> q(1024);
  constexpr int kCount = 100000;
  std::atomic<long long> sum{0};
  std::thread consumer([&] {
    int received = 0;
    while (received < kCount) {
      if (auto v = q.try_pop()) {
        sum += *v;
        ++received;
      }
    }
  });
  for (int i = 0; i < kCount; ++i) {
    while (!q.try_push(i)) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long long>(kCount) * (kCount - 1) / 2);
}

TEST(SpscQueue, CapacityOneRing) {
  // capacity 1 rounds the internal ring to 2 slots (1 usable + sentinel):
  // strict ping-pong must work indefinitely, two pushes in a row never.
  SpscQueue<int> q(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(q.try_push(i));
    EXPECT_FALSE(q.try_push(i + 1000));
    EXPECT_EQ(q.size_approx(), 1u);
    EXPECT_EQ(q.try_pop().value(), i);
    EXPECT_FALSE(q.try_pop().has_value());
    EXPECT_TRUE(q.empty_approx());
  }
}

TEST(SpscQueue, WrapAroundManyLaps) {
  // Drive the masked indices through many laps of the ring (including
  // partial fills at every offset) to exercise wrap-around arithmetic far
  // past the first index cycle.
  SpscQueue<int> q(4);  // internal ring: 8 slots
  int next_push = 0;
  int next_pop = 0;
  for (int lap = 0; lap < 1000; ++lap) {
    const int burst = 1 + lap % 4;
    for (int i = 0; i < burst; ++i) EXPECT_TRUE(q.try_push(next_push++));
    for (int i = 0; i < burst; ++i) EXPECT_EQ(q.try_pop().value(), next_pop++);
  }
  EXPECT_TRUE(q.empty_approx());
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscQueue, MoveOnlyPayload) {
  // capacity 1 is exact (2-slot ring, 1 usable), so the full boundary is
  // deterministic — larger capacities round up to a power of two.
  SpscQueue<std::unique_ptr<int>> q(1);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(1)));

  // A failed push must leave the caller's move-only value intact so it can
  // be retried instead of being silently destroyed.
  auto keep = std::make_unique<int>(2);
  EXPECT_FALSE(q.try_push(std::move(keep)));
  ASSERT_NE(keep, nullptr);
  EXPECT_EQ(*keep, 2);

  EXPECT_EQ(*q.try_pop().value(), 1);
  EXPECT_TRUE(q.try_push(std::move(keep)));
  EXPECT_EQ(keep, nullptr);  // success does consume the value
  EXPECT_EQ(*q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, PushPopAndClose) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.pop().value(), 1);
  q.close();
  EXPECT_EQ(q.pop().value(), 2);   // drains after close
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.push(3));
}

TEST(BlockingQueue, BoundedTryPush) {
  BlockingQueue<int> q(1);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
  q.try_pop();
  EXPECT_TRUE(q.try_push(2));
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done++;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

// ----------------------------------------------------------------- string

TEST(StringUtil, SplitAndJoin) {
  EXPECT_EQ(split("a/b/c", '/'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", '/'), (std::vector<std::string>{""}));
  EXPECT_EQ(join({"x", "y"}, "-"), "x-y");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\n"), "");
}

TEST(StringUtil, GlobMatch) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("rack*/node*/power", "rack00/node03/power"));
  EXPECT_FALSE(glob_match("rack*/node*/power", "rack00/node03/temp"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "abbc"));
  EXPECT_TRUE(glob_match("facility/*", "facility/pue"));
  EXPECT_FALSE(glob_match("facility/*", "network/pue"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.5000, 4, true), "1.5");
  EXPECT_EQ(format_double(2.0, 3, true), "2");
}

TEST(StringUtil, SiFormat) {
  EXPECT_EQ(si_format(1500.0), "1.5k");
  EXPECT_EQ(si_format(2500000.0), "2.5M");
  EXPECT_EQ(si_format(42.0), "42");
}

// ------------------------------------------------------------------ table

TEST(TextTable, RendersHeadersAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
}

TEST(TextTable, WrapsLongCells) {
  TextTable t({"text"});
  t.set_max_width(0, 10);
  t.add_row({"this is a very long cell that must wrap"});
  const std::string out = t.render();
  // No rendered line may exceed the width + borders.
  for (const auto& line : split(out, '\n')) {
    EXPECT_LE(line.size(), 15u);
  }
}

TEST(TextTable, PadsMissingCells) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.render());
}

// -------------------------------------------------------------------- csv

TEST(Csv, WriteAndParseRoundTrip) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row(std::vector<std::string>{"name", "note"});
  w.write_row(std::vector<std::string>{"x", "contains, comma"});
  w.write_row(std::vector<std::string>{"y", "has \"quotes\""});
  const auto table = parse_csv(out.str());
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][1], "contains, comma");
  EXPECT_EQ(table.rows[1][1], "has \"quotes\"");
}

TEST(Csv, NumericColumn) {
  const auto table = parse_csv("t,v\n1,2.5\n2,3.5\n");
  const auto col = table.numeric_column("v");
  ASSERT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col[0], 2.5);
  EXPECT_DOUBLE_EQ(col[1], 3.5);
}

TEST(Csv, MissingColumnThrows) {
  const auto table = parse_csv("a\n1\n");
  EXPECT_THROW(table.column("zzz"), ConfigError);
}

// ----------------------------------------------------------------- config

TEST(Config, ParseAndTypedGetters) {
  const auto cfg = Config::from_text(
      "alpha = 1.5\n"
      "count=42   # comment\n"
      "name = hello world\n"
      "flag = true\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("alpha"), 1.5);
  EXPECT_EQ(cfg.get_int("count"), 42);
  EXPECT_EQ(cfg.get_string("name"), "hello world");
  EXPECT_TRUE(cfg.get_bool("flag"));
}

TEST(Config, MissingAndMalformed) {
  const auto cfg = Config::from_text("x = notanumber\n");
  EXPECT_THROW(cfg.get_double("x"), ConfigError);
  EXPECT_THROW(cfg.get_string("missing"), ConfigError);
  EXPECT_EQ(cfg.get_int_or("missing", 9), 9);
  EXPECT_THROW(Config::from_text("no_equals_here\n"), ConfigError);
}

TEST(Config, ScopedAndMerge) {
  auto cfg = Config::from_text("sim.dt = 15\nsim.seed = 1\nother = 2\n");
  const auto sim = cfg.scoped("sim");
  EXPECT_EQ(sim.get_int("dt"), 15);
  EXPECT_FALSE(sim.contains("other"));
  Config extra;
  extra.set("sim.dt", static_cast<std::int64_t>(30));
  cfg.merge(extra);
  EXPECT_EQ(cfg.get_int("sim.dt"), 30);
}

}  // namespace
}  // namespace oda
