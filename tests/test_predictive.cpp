// Tests for the predictive pillar: forecaster correctness and ordering on
// signals with known structure, backtesting, spectral power forecasting with
// the LLNL notification rule, job runtime/energy prediction, failure
// projection, workload forecasting, and scheduler what-if simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/predictive/backtest.hpp"
#include "analytics/predictive/failure.hpp"
#include "analytics/predictive/forecaster.hpp"
#include "analytics/predictive/jobs.hpp"
#include "analytics/predictive/spectral.hpp"
#include "analytics/predictive/whatif.hpp"
#include "analytics/predictive/workload_forecast.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace oda::analytics {
namespace {

std::vector<double> seasonal_series(std::size_t n, std::size_t period,
                                    double level, double amplitude,
                                    double noise, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(level +
                  amplitude * std::sin(2.0 * M_PI * static_cast<double>(i) /
                                       static_cast<double>(period)) +
                  rng.normal(0.0, noise));
  }
  return out;
}

// ------------------------------------------------------------- forecasters

TEST(Forecaster, FactoryBuildsAllStandardSpecs) {
  for (const auto& spec : standard_forecaster_specs(96)) {
    EXPECT_NO_THROW(make_forecaster(spec)) << spec;
  }
  EXPECT_THROW(make_forecaster("nonsense"), ContractError);
}

TEST(Forecaster, PersistenceRepeatsLast) {
  PersistenceForecaster f;
  const std::vector<double> xs{1, 2, 9};
  f.fit(xs);
  for (double v : f.forecast(4)) EXPECT_DOUBLE_EQ(v, 9.0);
}

TEST(Forecaster, HoltExtendsTrend) {
  HoltForecaster f;
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(3.0 * i);
  f.fit(xs);
  const auto fc = f.forecast(5);
  EXPECT_NEAR(fc[4], 3.0 * 104, 3.0);
}

TEST(Forecaster, HoltWintersBeatsPersistenceOnSeasonal) {
  const auto series = seasonal_series(96 * 10, 96, 100.0, 20.0, 1.0, 5);
  BacktestParams params;
  params.min_train = 96 * 4;
  params.horizon = 24;
  const auto hw = backtest("holt-winters:96", series, params);
  const auto pers = backtest("persistence", series, params);
  EXPECT_LT(hw.mae, pers.mae * 0.5);
  EXPECT_GT(hw.skill_vs_persistence, 0.5);
}

TEST(Forecaster, ArBeatsPersistenceOnArProcess) {
  Rng rng(7);
  std::vector<double> xs{0.0};
  for (int i = 1; i < 3000; ++i) {
    xs.push_back(0.9 * xs.back() + rng.normal(0.0, 1.0));
  }
  BacktestParams params;
  params.min_train = 500;
  params.horizon = 4;
  const auto ar = backtest("ar", xs, params);
  EXPECT_GT(ar.skill_vs_persistence, 0.0);
}

TEST(Forecaster, ShortHistoryFallbacks) {
  // All models must survive near-empty histories.
  for (const auto& spec : standard_forecaster_specs(96)) {
    auto model = make_forecaster(spec);
    const std::vector<double> tiny{5.0, 6.0};
    model->fit(tiny);
    const auto fc = model->forecast(3);
    ASSERT_EQ(fc.size(), 3u) << spec;
    for (double v : fc) {
      EXPECT_TRUE(std::isfinite(v)) << spec;
    }
  }
}

TEST(Backtest, RanksModelsAndCountsEvaluations) {
  const auto series = seasonal_series(96 * 6, 96, 50.0, 10.0, 0.5, 11);
  BacktestParams params;
  params.min_train = 96 * 3;
  const auto results =
      backtest_all({"persistence", "holt-winters:96"}, series, params);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_LE(results[0].mae, results[1].mae);  // sorted
  EXPECT_GT(results[0].evaluations, 0u);
}

// ---------------------------------------------------------------- spectral

TEST(Spectral, RecoversPeriodicSignalForward) {
  // Two sinusoids + trend; the forecaster must extrapolate both.
  std::vector<double> xs;
  const std::size_t n = 512;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    xs.push_back(100.0 + 0.01 * t + 8.0 * std::sin(2.0 * M_PI * t / 64.0) +
                 4.0 * std::cos(2.0 * M_PI * t / 16.0));
  }
  SpectralForecaster f(4);
  f.fit(xs);
  const auto fc = f.forecast(64);
  double max_err = 0.0;
  for (std::size_t h = 0; h < 64; ++h) {
    const double t = static_cast<double>(n + h);
    const double truth = 100.0 + 0.01 * t +
                         8.0 * std::sin(2.0 * M_PI * t / 64.0) +
                         4.0 * std::cos(2.0 * M_PI * t / 16.0);
    max_err = std::max(max_err, std::abs(fc[h] - truth));
  }
  EXPECT_LT(max_err, 2.5);
}

TEST(Spectral, DetectPowerSwingsOnStep) {
  NotificationRule rule;
  rule.threshold_w = 100.0;
  rule.window = 10;
  rule.sample_period = 1;
  std::vector<double> power(100, 1000.0);
  for (std::size_t i = 50; i < 100; ++i) power[i] = 1200.0;  // step at 50
  const auto swings = detect_power_swings(power, rule);
  ASSERT_EQ(swings.size(), 1u);  // one onset, not one per sample
  EXPECT_EQ(swings[0].step, 50u);
  EXPECT_GT(swings[0].delta_w, 100.0);
}

TEST(Spectral, NotificationScoring) {
  const std::vector<PowerSwingEvent> predicted{{10, +900e3}, {50, -800e3},
                                               {70, +900e3}};
  const std::vector<PowerSwingEvent> actual{{12, +850e3}, {49, -900e3},
                                            {90, +800e3}};
  const auto score = score_notifications(predicted, actual, 5);
  EXPECT_EQ(score.hits, 2u);          // 10~12 and 50~49
  EXPECT_EQ(score.misses, 1u);        // 90 unmatched
  EXPECT_EQ(score.false_alarms, 1u);  // 70 unmatched
  EXPECT_NEAR(score.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(score.recall(), 2.0 / 3.0, 1e-12);
}

TEST(Spectral, DirectionMattersInScoring) {
  const std::vector<PowerSwingEvent> predicted{{10, +900e3}};
  const std::vector<PowerSwingEvent> actual{{10, -900e3}};
  const auto score = score_notifications(predicted, actual, 5);
  EXPECT_EQ(score.hits, 0u);
}

// --------------------------------------------------------- job prediction

sim::JobRecord make_record(const std::string& user, Duration runtime,
                           Duration request, TimePoint submit,
                           std::size_t nodes = 2) {
  sim::JobRecord r;
  r.spec.user = user;
  r.spec.nodes_requested = nodes;
  r.spec.walltime_requested = request;
  r.spec.submit_time = submit;
  r.spec.queue = "small";
  r.start_time = submit;
  r.end_time = submit + runtime;
  r.nodes.resize(nodes);
  r.energy_j = static_cast<double>(runtime) * 200.0 * static_cast<double>(nodes);
  return r;
}

TEST(JobRuntime, UserHistoryBeatsRequest) {
  JobRuntimePredictor predictor;
  // A user who always requests 10x what they use.
  for (int i = 0; i < 10; ++i) {
    predictor.observe(make_record("alice", kHour, 10 * kHour, i * kDay));
  }
  sim::JobSpec spec;
  spec.user = "alice";
  spec.nodes_requested = 2;
  spec.walltime_requested = 10 * kHour;
  spec.queue = "small";
  const auto est = predictor.predict(spec);
  EXPECT_STREQ(est.source, "user-history");
  EXPECT_NEAR(est.runtime_s, static_cast<double>(kHour), 600.0);
}

TEST(JobRuntime, UnknownUserFallsBackToKnnThenRequest) {
  JobRuntimePredictor predictor;
  sim::JobSpec spec;
  spec.user = "stranger";
  spec.walltime_requested = 5 * kHour;
  EXPECT_STREQ(predictor.predict(spec).source, "request");
  for (int i = 0; i < 20; ++i) {
    predictor.observe(make_record("u" + std::to_string(i), 2 * kHour,
                                  6 * kHour, i * kHour));
  }
  const auto est = predictor.predict(spec);
  EXPECT_STREQ(est.source, "knn");
  EXPECT_LE(est.runtime_s, static_cast<double>(spec.walltime_requested));
}

TEST(JobRuntime, EvaluationShowsImprovement) {
  // Synthetic population with stable per-user behaviour and heavy
  // overestimation: history-based prediction must beat the request.
  Rng rng(13);
  std::vector<sim::JobRecord> records;
  for (int u = 0; u < 6; ++u) {
    const auto typical = static_cast<Duration>(
        rng.uniform(static_cast<double>(kHour) / 2.0, 4.0 * kHour));
    for (int j = 0; j < 40; ++j) {
      const auto runtime = static_cast<Duration>(
          static_cast<double>(typical) * rng.uniform(0.85, 1.15));
      records.push_back(make_record("user" + std::to_string(u), runtime,
                                    runtime * 6, (u * 40 + j) * kHour));
    }
  }
  const auto score = evaluate_runtime_predictor(records, 0.5);
  EXPECT_GT(score.jobs, 100u);
  EXPECT_GT(score.improvement_vs_request, 0.5);
  EXPECT_LT(score.mape, 0.5);
}

TEST(JobEnergy, PredictsStablePower) {
  JobEnergyPredictor predictor;
  for (int i = 0; i < 20; ++i) {
    predictor.observe(make_record("u", kHour, 2 * kHour, i * kHour));
  }
  sim::JobSpec spec;
  spec.user = "u";
  spec.nodes_requested = 2;
  spec.walltime_requested = 2 * kHour;
  spec.queue = "small";
  EXPECT_NEAR(predictor.predict_node_power_w(spec), 200.0, 10.0);
  EXPECT_NEAR(predictor.predict_energy_j(spec, 3600.0),
              200.0 * 2 * 3600.0, 200.0 * 2 * 3600.0 * 0.1);
}

// ---------------------------------------------------------------- failure

TEST(Failure, ProjectsThresholdCrossing) {
  // Fan speed decaying 2%/h from 100%, failure below 20%.
  std::vector<double> signal;
  for (int i = 0; i < 48; ++i) signal.push_back(100.0 - 2.0 * i);  // hourly
  const auto p = project_failure(signal, 3600.0, 20.0, /*increasing_is_bad=*/false);
  ASSERT_TRUE(p.degrading);
  ASSERT_TRUE(p.hours_to_threshold.has_value());
  // After 48 samples, value is 6; (6-20)... value is 100-2*47=6 < 20: already failed.
  EXPECT_NEAR(*p.hours_to_threshold, 0.0, 1e-9);
}

TEST(Failure, HealthySignalNotFlagged) {
  Rng rng(17);
  std::vector<double> signal;
  for (int i = 0; i < 100; ++i) signal.push_back(80.0 + rng.normal(0.0, 0.3));
  const auto p = project_failure(signal, 3600.0, 95.0, /*increasing_is_bad=*/true);
  EXPECT_FALSE(p.degrading);
}

TEST(Failure, ProjectsTimeForSlowDrift) {
  std::vector<double> signal;
  for (int i = 0; i < 24; ++i) signal.push_back(60.0 + 0.5 * i);  // +0.5/h
  const auto p = project_failure(signal, 3600.0, 90.0, true);
  ASSERT_TRUE(p.degrading);
  // Current 71.5, headroom 18.5, slope 0.5/h -> ~37 h.
  EXPECT_NEAR(*p.hours_to_threshold, 37.0, 3.0);
}

TEST(Weibull, FitRecoversParameters) {
  Rng rng(19);
  std::vector<double> failures;
  for (int i = 0; i < 500; ++i) failures.push_back(rng.weibull(1000.0, 2.0));
  const auto model = WeibullLifetime::fit(failures);
  EXPECT_NEAR(model.shape(), 2.0, 0.25);
  EXPECT_NEAR(model.scale(), 1000.0, 80.0);
  EXPECT_NEAR(model.cdf(1000.0), 1.0 - std::exp(-1.0), 0.05);
}

TEST(Weibull, HazardIncreasesForWearOut) {
  const std::vector<double> failures{800, 950, 1000, 1100, 1200, 900, 1050};
  const auto model = WeibullLifetime::fit(failures);
  EXPECT_GT(model.shape(), 1.0);  // wear-out
  EXPECT_GT(model.hazard(1000.0), model.hazard(100.0));
  EXPECT_GT(model.conditional_failure(1000.0, 100.0),
            model.conditional_failure(10.0, 100.0));
}

// --------------------------------------------------------------- workload

TEST(WorkloadForecast, LearnsDailyProfile) {
  WorkloadForecaster wf(kHour);
  Rng rng(23);
  // Two weeks of synthetic arrivals: busy 9-17h, quiet otherwise.
  for (int day = 0; day < 14; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const int n = (hour >= 9 && hour < 17) ? 10 : 1;
      for (int j = 0; j < n; ++j) {
        wf.observe_arrival(day * kDay + hour * kHour +
                           rng.uniform_int(0, kHour - 1));
      }
    }
  }
  const auto profile = wf.daily_profile();
  ASSERT_EQ(profile.size(), 24u);
  EXPECT_GT(profile[12], profile[3] * 3.0);
  // Forecast the next day: business hours clearly above night.
  const auto fc = wf.forecast(24);
  EXPECT_GT(fc[12], fc[3]);
}

TEST(WorkloadForecast, NonNegativeForecasts) {
  WorkloadForecaster wf(kHour);
  wf.observe_arrival(10);
  for (double v : wf.forecast(48)) EXPECT_GE(v, 0.0);
}

// ----------------------------------------------------------------- whatif

TEST(WhatIf, BackfillImprovesOnFcfs) {
  sim::WorkloadParams wp;
  wp.seed = 404;
  wp.max_nodes_per_job = 32;
  wp.peak_arrival_rate_per_hour = 60.0;  // saturating for 64 nodes
  wp.max_duration = 4 * kHour;
  sim::WorkloadGenerator gen(wp);
  const auto trace = gen.generate_trace(400);
  const auto results = compare_disciplines(trace, 64);
  ASSERT_EQ(results.size(), 2u);
  const auto& fcfs = results[0];
  const auto& backfill = results[1];
  EXPECT_EQ(fcfs.jobs_completed, trace.size());
  EXPECT_EQ(backfill.jobs_completed, trace.size());
  // The canonical result: EASY backfill cuts waiting and bounded slowdown.
  EXPECT_LT(backfill.mean_wait_s, fcfs.mean_wait_s);
  EXPECT_LT(backfill.mean_bounded_slowdown, fcfs.mean_bounded_slowdown);
  EXPECT_GE(backfill.mean_utilization, fcfs.mean_utilization * 0.98);
}

TEST(WhatIf, EmptyMachineNoWaits) {
  sim::JobSpec spec;
  spec.id = 1;
  spec.user = "u";
  spec.nodes_requested = 1;
  sim::JobPhase phase;
  phase.nominal_duration = kHour;
  spec.phases = {phase};
  spec.walltime_requested = 2 * kHour;
  spec.submit_time = 0;
  WhatIfParams params;
  params.node_count = 4;
  const auto result = simulate_policy(std::vector<sim::JobSpec>{spec}, params);
  EXPECT_EQ(result.jobs_completed, 1u);
  EXPECT_DOUBLE_EQ(result.mean_wait_s, 0.0);
}

}  // namespace
}  // namespace oda::analytics
