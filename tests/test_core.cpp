// Tests for the core ODA framework: pillars/types, the 4x4 grid, the survey
// catalog that regenerates Table I, the complex-system compositions of
// Figure 3, and the library's own full-coverage binding.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/bindings.hpp"
#include "core/figures.hpp"
#include "core/grid.hpp"
#include "core/oda_system.hpp"
#include "core/pillars.hpp"
#include "core/survey_catalog.hpp"

namespace oda::core {
namespace {

// ------------------------------------------------------------ pillars/types

TEST(Pillars, TraitsAndRoundTrip) {
  for (const auto& p : kAllPillars) {
    const auto& t = traits(p);
    EXPECT_EQ(t.pillar, p);
    EXPECT_EQ(pillar_from_string(t.name), p);
  }
  EXPECT_THROW(pillar_from_string("bogus"), ContractError);
}

TEST(Types, StagedOrderAndQuestions) {
  for (const auto& t : kAllTypes) {
    const auto& tt = traits(t);
    EXPECT_EQ(tt.type, t);
    EXPECT_EQ(type_from_string(tt.name), t);
  }
  // Value and difficulty increase along the staircase.
  for (std::size_t i = 1; i < kAllTypes.size(); ++i) {
    EXPECT_GT(traits(kAllTypes[i]).value_rank, traits(kAllTypes[i - 1]).value_rank);
    EXPECT_GT(traits(kAllTypes[i]).difficulty_rank,
              traits(kAllTypes[i - 1]).difficulty_rank);
  }
  // Hindsight -> foresight progression.
  EXPECT_EQ(traits(AnalyticsType::kDescriptive).insight, Insight::kHindsight);
  EXPECT_EQ(traits(AnalyticsType::kDiagnostic).insight, Insight::kInsight);
  EXPECT_EQ(traits(AnalyticsType::kPredictive).insight, Insight::kForesight);
  EXPECT_FALSE(traits(AnalyticsType::kDescriptive).proactive);
  EXPECT_TRUE(traits(AnalyticsType::kPrescriptive).proactive);
}

// -------------------------------------------------------------------- grid

CapabilityDescriptor make_cap(const std::string& id, Pillar p, AnalyticsType t) {
  CapabilityDescriptor d;
  d.id = id;
  d.name = id;
  d.cells = {{p, t}};
  return d;
}

TEST(Grid, RegisterAndQuery) {
  FrameworkGrid grid;
  grid.register_capability(
      make_cap("a", Pillar::kSystemHardware, AnalyticsType::kDiagnostic));
  EXPECT_TRUE(grid.contains("a"));
  EXPECT_EQ(grid.in_cell({Pillar::kSystemHardware, AnalyticsType::kDiagnostic})
                .size(),
            1u);
  EXPECT_TRUE(
      grid.in_cell({Pillar::kApplications, AnalyticsType::kDiagnostic}).empty());
  EXPECT_THROW(grid.at("zzz"), ContractError);
  EXPECT_THROW(grid.register_capability(
                   make_cap("a", Pillar::kApplications, AnalyticsType::kDescriptive)),
               ContractError);
}

TEST(Grid, CoverageAndGaps) {
  FrameworkGrid grid;
  grid.register_capability(
      make_cap("a", Pillar::kSystemHardware, AnalyticsType::kDescriptive));
  const auto report = grid.coverage();
  EXPECT_EQ(report.occupied_cells, 1u);
  EXPECT_EQ(report.gaps.size(), 15u);
  EXPECT_EQ(report.counts[0][1], 1u);  // [descriptive][system-hardware]
}

TEST(Grid, SimilarityJaccard) {
  FrameworkGrid grid;
  auto a = make_cap("a", Pillar::kSystemHardware, AnalyticsType::kPredictive);
  a.cells.push_back({Pillar::kSystemHardware, AnalyticsType::kPrescriptive});
  auto b = make_cap("b", Pillar::kSystemHardware, AnalyticsType::kPrescriptive);
  auto c = make_cap("c", Pillar::kApplications, AnalyticsType::kDescriptive);
  grid.register_capability(a);
  grid.register_capability(b);
  grid.register_capability(c);
  EXPECT_DOUBLE_EQ(grid.similarity("a", "b"), 0.5);
  EXPECT_DOUBLE_EQ(grid.similarity("a", "c"), 0.0);
  EXPECT_DOUBLE_EQ(grid.similarity("a", "a"), 1.0);
}

TEST(Grid, RoadmapSuggestsFirstMissingStage) {
  FrameworkGrid grid;
  grid.register_capability(
      make_cap("desc", Pillar::kSystemHardware, AnalyticsType::kDescriptive));
  const auto roadmap = grid.roadmap();
  ASSERT_EQ(roadmap.size(), 4u);  // every pillar gets a suggestion
  for (const auto& s : roadmap) {
    if (s.pillar == Pillar::kSystemHardware) {
      EXPECT_EQ(s.next_type, AnalyticsType::kDiagnostic);
    } else {
      EXPECT_EQ(s.next_type, AnalyticsType::kDescriptive);
    }
  }
}

TEST(Grid, MultiPillarMultiTypeFlags) {
  auto d = make_cap("x", Pillar::kSystemHardware, AnalyticsType::kPredictive);
  EXPECT_FALSE(d.multi_pillar());
  EXPECT_FALSE(d.multi_type());
  d.cells.push_back({Pillar::kSystemSoftware, AnalyticsType::kPredictive});
  EXPECT_TRUE(d.multi_pillar());
  EXPECT_FALSE(d.multi_type());
  d.cells.push_back({Pillar::kSystemHardware, AnalyticsType::kPrescriptive});
  EXPECT_TRUE(d.multi_type());
}

TEST(Grid, RenderListsCapabilities) {
  FrameworkGrid grid;
  grid.register_capability(
      make_cap("pue-calc", Pillar::kBuildingInfrastructure,
               AnalyticsType::kDescriptive));
  const auto out = grid.render("TEST GRID");
  EXPECT_NE(out.find("pue-calc"), std::string::npos);
  EXPECT_NE(out.find("prescriptive"), std::string::npos);
}

// ---------------------------------------------------------- survey catalog

TEST(Survey, Table1CellCountsMatchPaper) {
  const auto catalog = SurveyCatalog::table1();
  // The paper's Table I: every one of the 16 cells is populated.
  for (const auto& type : kAllTypes) {
    for (const auto& pillar : kAllPillars) {
      EXPECT_FALSE(catalog.in_cell({pillar, type}).empty())
          << to_string(GridCell{pillar, type});
    }
  }
  // Exact bullet counts per paper row.
  std::size_t prescriptive = 0, predictive = 0, diagnostic = 0, descriptive = 0;
  for (const auto& uc : catalog.use_cases()) {
    switch (uc.cell.type) {
      case AnalyticsType::kPrescriptive: ++prescriptive; break;
      case AnalyticsType::kPredictive: ++predictive; break;
      case AnalyticsType::kDiagnostic: ++diagnostic; break;
      case AnalyticsType::kDescriptive: ++descriptive; break;
    }
  }
  EXPECT_EQ(prescriptive, 11u);
  EXPECT_EQ(predictive, 11u);
  EXPECT_EQ(diagnostic, 12u);
  EXPECT_EQ(descriptive, 11u);
}

TEST(Survey, MultiCellReferencesIncludeKnownSystems) {
  const auto catalog = SurveyCatalog::table1();
  const auto multi = catalog.multi_cell_references();
  // Warm-water cooling [12] spans infra+hardware prescriptive; GEOPM [11]
  // spans predictive+prescriptive; PowerStack [41] hardware+applications.
  const auto has = [&](int r) {
    return std::find(multi.begin(), multi.end(), r) != multi.end();
  };
  EXPECT_TRUE(has(12));
  EXPECT_TRUE(has(11));
  EXPECT_TRUE(has(41));
  EXPECT_TRUE(has(24));
}

TEST(Survey, EveryCitedReferenceHasBibliography) {
  const auto catalog = SurveyCatalog::table1();
  for (const auto& uc : catalog.use_cases()) {
    for (int r : uc.references) {
      EXPECT_TRUE(catalog.references().count(r)) << "missing reference " << r;
    }
  }
  EXPECT_GE(catalog.reference_count(), 55u);
}

TEST(Survey, RenderTable1ContainsPaperBullets) {
  const auto catalog = SurveyCatalog::table1();
  const auto table = catalog.render_table1();
  EXPECT_NE(table.find("TABLE I"), std::string::npos);
  EXPECT_NE(table.find("PUE calculation"), std::string::npos);
  EXPECT_NE(table.find("Plan-based scheduling"), std::string::npos);
  EXPECT_NE(table.find("Application fingerprinting"), std::string::npos);
  EXPECT_NE(table.find("Auto-tuning of HPC"), std::string::npos);
  EXPECT_NE(table.find("[12]"), std::string::npos);
}

TEST(Survey, ToGridCoversAllCells) {
  const auto grid = SurveyCatalog::table1().to_grid();
  const auto report = grid.coverage();
  EXPECT_EQ(report.occupied_cells, 16u);
  EXPECT_TRUE(report.gaps.empty());
  EXPECT_EQ(report.total_capabilities, 45u);  // 11+11+12+11 bullets
}

TEST(Survey, StatisticsRender) {
  const auto stats = SurveyCatalog::table1().render_statistics();
  EXPECT_NE(stats.find("distinct references"), std::string::npos);
  EXPECT_NE(stats.find("total"), std::string::npos);
}

// ------------------------------------------------------------- ODA systems

TEST(OdaSystems, PublishedExamplesClassification) {
  const auto systems = published_example_systems();
  ASSERT_GE(systems.size(), 5u);
  // ENI: multi-type, single-pillar.
  const auto& eni = systems[0];
  EXPECT_TRUE(eni.multi_type());
  EXPECT_FALSE(eni.multi_pillar());
  EXPECT_EQ(eni.discipline_count(), 2u);
  // PowerStack: multi-pillar and multi-type.
  const auto& powerstack = systems[1];
  EXPECT_TRUE(powerstack.multi_pillar());
  EXPECT_TRUE(powerstack.multi_type());
  // ClusterCockpit: single cell.
  const auto it = std::find_if(systems.begin(), systems.end(),
                               [](const OdaSystem& s) {
                                 return s.name == "ClusterCockpit";
                               });
  ASSERT_NE(it, systems.end());
  EXPECT_FALSE(it->multi_pillar());
  EXPECT_FALSE(it->multi_type());
}

TEST(OdaSystems, CensusMatchesPaperObservation) {
  const auto systems = published_example_systems();
  const auto c = census(systems);
  EXPECT_EQ(c.total, systems.size());
  EXPECT_EQ(c.single_cell + c.multi_type_only + c.multi_pillar_only +
                c.multi_both,
            c.total);
  // Paper Sec. V-B: multi-pillar systems are the minority.
  EXPECT_LT(c.multi_pillar_only + c.multi_both, c.total / 2 + 1);
}

TEST(OdaSystems, Figure3RendersLegendAndMarks) {
  const auto out = render_figure3(published_example_systems());
  EXPECT_NE(out.find("FIGURE 3"), std::string::npos);
  EXPECT_NE(out.find("A = ENI"), std::string::npos);
  EXPECT_NE(out.find("[multi-pillar]"), std::string::npos);
}

// ---------------------------------------------------------------- figures

TEST(Figures, Figure1ListsPillars) {
  const auto out = render_figure1();
  for (const auto& p : kAllPillars) {
    EXPECT_NE(out.find(to_string(p)), std::string::npos);
  }
}

TEST(Figures, Figure2StaircaseWithMeasurements) {
  std::map<AnalyticsType, double> costs{
      {AnalyticsType::kDescriptive, 0.5},
      {AnalyticsType::kPrescriptive, 12.0},
  };
  const auto out = render_figure2(costs);
  EXPECT_NE(out.find("What happened?"), std::string::npos);
  EXPECT_NE(out.find("measured reference cost"), std::string::npos);
  EXPECT_NE(out.find("foresight"), std::string::npos);
}

// --------------------------------------------------------------- bindings

TEST(Bindings, LibraryCoversAll16Cells) {
  const auto grid = implemented_capabilities();
  EXPECT_GE(grid.size(), 30u);
  const auto report = verify_full_coverage(grid);
  EXPECT_EQ(report.occupied_cells, 16u);
}

TEST(Bindings, PrescriptiveCapabilitiesDeclareKnobs) {
  const auto grid = implemented_capabilities();
  for (const auto& cap : grid.capabilities()) {
    bool prescriptive = false;
    for (const auto& cell : cap.cells) {
      prescriptive |= cell.type == AnalyticsType::kPrescriptive;
    }
    // Placement, auto-tuning and recommendations prescribe without writing
    // facility knobs (their actuators are the scheduler, the application,
    // and the developer respectively).
    const bool knobless = cap.id == "presc.placement" ||
                          cap.id == "presc.autotune" ||
                          cap.id == "presc.recommend";
    if (prescriptive && !knobless) {
      EXPECT_FALSE(cap.knobs.empty()) << cap.id;
    }
  }
}

TEST(Bindings, RoadmapEmptyWhenFullyCovered) {
  const auto grid = implemented_capabilities();
  EXPECT_TRUE(grid.roadmap().empty());
}

}  // namespace
}  // namespace oda::core
