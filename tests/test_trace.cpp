// Causal-tracing tests (docs/OBSERVABILITY.md): trace/span id propagation
// within a thread, across ThreadPool::submit, and through the full pipeline
// (one collect pass must form a single connected trace from the pass root
// through sensor reads, bus fan-out, store ingest, and analytics cells);
// the always-on flight recorder (records with the Tracer disabled, bounded
// rings, postmortem dump on the unhealthy edge); Chrome JSON rendering
// (hostile-name escaping, cross-thread flow pairs); and histogram exemplars
// carried into the Prometheus exposition.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/trace_context.hpp"
#include "obs/cell.hpp"
#include "obs/exposition.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"
#include "sim/faults.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/store.hpp"

namespace oda::obs {
namespace {

/// Leaves the shared tracing globals exactly as other tests expect them:
/// Tracer disabled/empty/default-capacity, FlightRecorder enabled (its
/// always-on default) but cleared, no lingering thread-local context.
class CausalTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer& tracer = Tracer::global();
    tracer.set_enabled(false);
    tracer.clear();
    tracer.set_capacity(1 << 16);
    FlightRecorder& recorder = FlightRecorder::global();
    recorder.set_enabled(true);
    recorder.clear();
    recorder.set_dump_path("");
    exchange_trace_context({});
  }
  void TearDown() override { SetUp(); }
};

// ------------------------------------------------------------ context ids

TEST_F(CausalTraceTest, NextTraceIdIsNonzeroAndUnique) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = next_trace_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST_F(CausalTraceTest, ContextScopeInstallsAndRestores) {
  EXPECT_FALSE(current_trace_context().active());
  {
    TraceContextScope outer({7, 8});
    EXPECT_EQ(current_trace_context().trace_id, 7u);
    EXPECT_EQ(current_trace_context().span_id, 8u);
    {
      TraceContextScope inner({9, 10});
      EXPECT_EQ(current_trace_context().trace_id, 9u);
    }
    EXPECT_EQ(current_trace_context().span_id, 8u);
  }
  EXPECT_FALSE(current_trace_context().active());
}

TEST_F(CausalTraceTest, NestedSpansShareTraceAndLinkParents) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  {
    TraceSpan root("causal.root", "test");
    { TraceSpan child("causal.child", "test"); }
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // The child finishes first; find both by name.
  const TraceEvent* root = nullptr;
  const TraceEvent* child = nullptr;
  for (const auto& e : events) {
    if (e.name == "causal.root") root = &e;
    if (e.name == "causal.child") child = &e;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_NE(root->trace_id, 0u);
  EXPECT_EQ(root->parent_id, 0u);  // freshly rooted trace
  EXPECT_EQ(child->trace_id, root->trace_id);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_NE(child->span_id, root->span_id);
}

TEST_F(CausalTraceTest, InstantInheritsEnclosingSpan) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  {
    TraceSpan span("causal.owner", "test");
    trace_instant("causal.mark", "test");
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* owner = nullptr;
  const TraceEvent* mark = nullptr;
  for (const auto& e : events) {
    if (e.name == "causal.owner") owner = &e;
    if (e.name == "causal.mark") mark = &e;
  }
  ASSERT_NE(owner, nullptr);
  ASSERT_NE(mark, nullptr);
  EXPECT_EQ(mark->kind, TraceEventKind::kInstant);
  EXPECT_EQ(mark->dur_us, 0u);
  EXPECT_EQ(mark->trace_id, owner->trace_id);
  EXPECT_EQ(mark->parent_id, owner->span_id);
  EXPECT_NE(mark->span_id, owner->span_id);
}

#if ODA_TRACING_ENABLED
TEST_F(CausalTraceTest, ThreadPoolSubmitPropagatesContext) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  ThreadPool pool(2);
  {
    TraceSpan outer("pool.outer", "test");
    pool.submit([] { ODA_TRACE_SPAN_CAT("pool.inner", "test"); }).get();
  }
  pool.shutdown();
  const std::vector<TraceEvent> events = tracer.events();
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    if (e.name == "pool.outer") outer = &e;
    if (e.name == "pool.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The worker-side span joined the submitter's trace as a child even
  // though it ran on another thread.
  EXPECT_EQ(inner->trace_id, outer->trace_id);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_NE(inner->tid, outer->tid);
}
#endif  // ODA_TRACING_ENABLED

// ------------------------------------------------- pipeline acceptance

#if ODA_TRACING_ENABLED
// One collect pass through collector -> pool -> store -> bus -> analytics
// cell must form a single connected trace: every event shares the pass
// root's trace id, every parent link resolves, and the retry / breaker
// instants hang off the faulted sensor's read span.
TEST_F(CausalTraceTest, CollectPassFormsOneConnectedTrace) {
  Tracer& tracer = Tracer::global();
  tracer.set_capacity(1 << 18);
  tracer.set_enabled(true);

  sim::ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 8;
  params.dt = 15;
  params.seed = 7;
  sim::ClusterSimulation cluster(params);
  // Total dropout on one facility sensor from the first pass on: with a
  // threshold-1 breaker the pass contains retries AND a breaker-open flip.
  cluster.faults().schedule(
      {sim::FaultKind::kSensorDropout, "facility/pue", 0, kHour, 1.0});

  telemetry::TimeSeriesStore store;
  telemetry::MessageBus bus;
  ThreadPool pool(4);
  telemetry::Collector collector(cluster, &store, &bus, &pool);
  telemetry::BreakerPolicy breaker;
  breaker.failure_threshold = 1;
  collector.set_breaker_policy(breaker);
  const std::size_t matched = collector.add_all_sensors(15);
  ASSERT_GE(matched, 64u);  // exercises the parallel (pool) read path

  // An analytics cell opened from inside a bus delivery: its span must
  // also join the pass trace through the bus.deliver context.
  bus.subscribe("facility/*", [](const telemetry::Reading&) {
    CellScope cell("building-infrastructure", "descriptive", "trace.cell");
  });

  cluster.step();
  collector.collect();  // exactly one due pass -> exactly one trace
  pool.shutdown();
  EXPECT_GT(collector.gaps_total(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const std::vector<TraceEvent> events = tracer.events();
  std::map<std::uint64_t, const TraceEvent*> spans;
  const TraceEvent* pass_root = nullptr;
  for (const auto& e : events) {
    if (e.kind == TraceEventKind::kSpan) {
      // Span ids are unique across the whole trace.
      EXPECT_TRUE(spans.emplace(e.span_id, &e).second);
    }
    if (e.name == "collector.collect") {
      EXPECT_EQ(pass_root, nullptr) << "more than one pass root";
      pass_root = &e;
    }
  }
  ASSERT_NE(pass_root, nullptr);
  ASSERT_NE(pass_root->trace_id, 0u);
  EXPECT_EQ(pass_root->parent_id, 0u);

  std::set<std::string> names;
  for (const auto& e : events) {
    names.insert(e.name);
    // Single connected trace: every pipeline event shares the root's trace
    // id and every non-root parent link resolves to a recorded span of the
    // trace. (cluster.step() legitimately roots its own "sim" trace before
    // the pass begins — the only other trace allowed here.)
    if (e.trace_id != pass_root->trace_id) {
      EXPECT_STREQ(e.category.c_str(), "sim") << e.name;
      continue;
    }
    if (e.span_id == pass_root->span_id) continue;
    ASSERT_NE(e.parent_id, 0u) << e.name << " is a second root";
    const auto parent = spans.find(e.parent_id);
    ASSERT_NE(parent, spans.end()) << e.name << " has an unrecorded parent";
    EXPECT_EQ(parent->second->trace_id, pass_root->trace_id);
  }
  // The pass touched every pipeline stage.
  for (const char* required :
       {"collector.read_group", "collector.read_chunk",
        "collector.read_sensor", "collector.retry", "collector.breaker_open",
        "store.insert_batch", "bus.publish", "bus.deliver", "trace.cell"}) {
    EXPECT_TRUE(names.count(required)) << "missing " << required;
  }
  // Retry and breaker instants sit under the failing sensor's read span.
  for (const auto& e : events) {
    if (e.name != "collector.retry" && e.name != "collector.breaker_open") {
      continue;
    }
    EXPECT_EQ(e.kind, TraceEventKind::kInstant);
    const auto parent = spans.find(e.parent_id);
    ASSERT_NE(parent, spans.end());
    EXPECT_EQ(parent->second->name, "collector.read_sensor") << e.name;
  }

  // The pass-duration histogram observed inside the pass span remembers the
  // trace id, and the Prometheus exposition renders it as an OpenMetrics
  // exemplar on a bucket line.
  const std::string prom =
      to_prometheus(MetricsRegistry::global().snapshot());
  EXPECT_NE(prom.find("oda_collector_pass_seconds_bucket"), std::string::npos);
  EXPECT_NE(prom.find("# {trace_id=\""), std::string::npos);

  // The rendered JSON passes the same structural bar scripts/check_trace.py
  // enforces in CI: ids as 16-hex args on every traced event.
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"trace_id\":\"" + trace_id_hex(pass_root->trace_id) +
                      "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}
#endif  // ODA_TRACING_ENABLED

// --------------------------------------------------------- flight recorder

TEST_F(CausalTraceTest, RecorderCapturesSpansWhileTracerDisabled) {
  Tracer& tracer = Tracer::global();
  ASSERT_FALSE(tracer.enabled());
  FlightRecorder& recorder = FlightRecorder::global();
  // TraceSpan (not the macro) so this holds under ODA_TRACING=OFF too: the
  // class always compiles, and the recorder is armed by default.
  { TraceSpan span("flight.only", "test"); }
  trace_instant("flight.mark", "test");
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_GE(recorder.recorded_total(), 2u);
  const std::vector<TraceEvent> events = recorder.snapshot();
  ASSERT_GE(events.size(), 2u);
  std::set<std::string> names;
  for (const auto& e : events) names.insert(e.name);
  EXPECT_TRUE(names.count("flight.only"));
  EXPECT_TRUE(names.count("flight.mark"));
  const std::string json = recorder.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"flight.only\""), std::string::npos);
}

TEST_F(CausalTraceTest, RecorderDisabledTogetherWithTracerRecordsNothing) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_enabled(false);
  { TraceSpan span("flight.dark", "test"); }
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_EQ(Tracer::global().event_count(), 0u);
  recorder.set_enabled(true);
}

TEST_F(CausalTraceTest, RingWrapKeepsMostRecentEvents) {
  FlightRecorder local(16);
  for (std::uint64_t i = 0; i < 40; ++i) {
    local.record("wrap.event", "test", i, 1, TraceEventKind::kSpan, 1, i + 1,
                 0);
  }
  EXPECT_EQ(local.recorded_total(), 40u);
  const std::vector<TraceEvent> events = local.snapshot();
  ASSERT_EQ(events.size(), 16u);
  for (const auto& e : events) {
    EXPECT_GE(e.ts_us, 24u);  // only the newest 16 of 40 survive
    EXPECT_LT(e.ts_us, 40u);
  }
  local.clear();
  EXPECT_EQ(local.event_count(), 0u);
}

TEST_F(CausalTraceTest, UnhealthyAssessmentDumpsPostmortem) {
  FlightRecorder& recorder = FlightRecorder::global();
  { TraceSpan span("flight.postmortem", "test"); }  // make the dump non-empty
  const std::string path = ::testing::TempDir() + "oda_flight_dump.json";
  std::remove(path.c_str());
  recorder.set_dump_path(path);
  EXPECT_EQ(recorder.dump_path(), path);

  // A snapshot with an open breaker fails the collector.breakers check;
  // the healthy -> unhealthy edge must write the configured dump file.
  MetricsRegistry registry;
  registry.gauge("oda_collector_breakers_open", "open breakers").set(1.0);
  const std::uint64_t dumps_before = recorder.dump_count();
  const PipelineHealthReport report =
      assess_pipeline_health(registry.snapshot());
  ASSERT_FALSE(report.healthy());
  EXPECT_EQ(recorder.dump_count(), dumps_before + 1);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "postmortem dump not written to " << path;
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.str().find("flight.postmortem"), std::string::npos);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ chrome json

TEST_F(CausalTraceTest, ChromeJsonEscapesHostileNames) {
  std::vector<TraceEvent> events(1);
  // "\x01" is split from "ctl" so the hex escape doesn't swallow the 'c'.
  events[0].name = "evil\"name\\with\nnewline\tand\x01" "ctl";
  events[0].category = "cat\"egory";
  events[0].ts_us = 1;
  events[0].dur_us = 2;
  events[0].tid = 1;
  const std::string json = chrome_trace_json(events);
  EXPECT_NE(json.find("evil\\\"name\\\\with\\nnewline\\tand\\u0001ctl"),
            std::string::npos);
  EXPECT_NE(json.find("cat\\\"egory"), std::string::npos);
  // No raw control bytes or unescaped quotes-in-strings may survive.
  for (const char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
}

TEST_F(CausalTraceTest, ChromeJsonEmitsFlowPairsForCrossThreadEdges) {
  std::vector<TraceEvent> events(2);
  events[0].name = "parent";
  events[0].ts_us = 10;
  events[0].dur_us = 100;
  events[0].tid = 1;
  events[0].trace_id = 0xaa;
  events[0].span_id = 0xb1;
  events[1].name = "child";
  events[1].ts_us = 20;
  events[1].dur_us = 5;
  events[1].tid = 2;  // different thread -> Perfetto needs a flow arrow
  events[1].trace_id = 0xaa;
  events[1].span_id = 0xb2;
  events[1].parent_id = 0xb1;
  const std::string json = chrome_trace_json(events);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"" + trace_id_hex(0xaa) + "\""),
            std::string::npos);

  // Same-thread nesting needs no flow glue.
  events[1].tid = 1;
  const std::string same_thread = chrome_trace_json(events);
  EXPECT_EQ(same_thread.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(same_thread.find("\"ph\":\"f\""), std::string::npos);
}

TEST_F(CausalTraceTest, TraceIdHexIsFixedWidthLowercase) {
  EXPECT_EQ(trace_id_hex(0), "0000000000000000");
  EXPECT_EQ(trace_id_hex(0xabc), "0000000000000abc");
  EXPECT_EQ(trace_id_hex(0xFFFFFFFFFFFFFFFFull), "ffffffffffffffff");
}

// -------------------------------------------------------------- exemplars

TEST_F(CausalTraceTest, HistogramRemembersExtremeObservationTrace) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("oda_exemplar_seconds", "exemplar test",
                                       std::vector<double>{1.0, 2.0});
  hist.observe(0.5);  // no active context: no exemplar yet
  EXPECT_EQ(hist.exemplar().trace_id, 0u);
  {
    TraceContextScope scope({0x1111, 0x1});
    hist.observe(1.5);
  }
  EXPECT_EQ(hist.exemplar().trace_id, 0x1111u);
  EXPECT_DOUBLE_EQ(hist.exemplar().value, 1.5);
  {
    TraceContextScope scope({0x2222, 0x2});
    hist.observe(0.7);  // smaller than the current extreme: keeps 0x1111
  }
  EXPECT_EQ(hist.exemplar().trace_id, 0x1111u);
  {
    TraceContextScope scope({0x3333, 0x3});
    hist.observe(5.0);  // new extreme takes over
  }
  EXPECT_EQ(hist.exemplar().trace_id, 0x3333u);
  EXPECT_DOUBLE_EQ(hist.exemplar().value, 5.0);

  // Exposition: OpenMetrics "# {...}" suffix on the smallest bucket that
  // contains the exemplar value (5.0 > every finite bound -> +Inf bucket).
  const std::string prom = to_prometheus(registry.snapshot());
  EXPECT_NE(
      prom.find("oda_exemplar_seconds_bucket{le=\"+Inf\"} 4 # {trace_id=\"" +
                trace_id_hex(0x3333) + "\"} 5"),
      std::string::npos);
  // JSON exposition carries the same exemplar.
  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"exemplar\":{\"value\":5,\"trace_id\":\"" +
                      trace_id_hex(0x3333) + "\"}"),
            std::string::npos);
}

TEST_F(CausalTraceTest, ExemplarOnFiniteBucketLine) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("oda_exemplar2_seconds", "exemplar",
                                       std::vector<double>{1.0, 2.0});
  {
    TraceContextScope scope({0xbeef, 0x1});
    hist.observe(1.5);  // lands in the le="2" bucket
  }
  const std::string prom = to_prometheus(registry.snapshot());
  EXPECT_NE(prom.find("oda_exemplar2_seconds_bucket{le=\"2\"} 1 # "
                      "{trace_id=\"" +
                      trace_id_hex(0xbeef) + "\"} 1.5"),
            std::string::npos);
  // The other bucket lines carry no exemplar suffix.
  EXPECT_NE(prom.find("oda_exemplar2_seconds_bucket{le=\"1\"} 0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("oda_exemplar2_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
}

}  // namespace
}  // namespace oda::obs
