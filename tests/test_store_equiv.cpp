// Equivalence property tests for the sharded TimeSeriesStore: every query
// surface (query / query_aggregated / frame / latest / sample_count / paths
// / match) must return bit-identical results to a straightforward
// single-map reference model across randomized workloads — including ring
// wraparound (small capacities), NaN readings, duplicate timestamps, and a
// mix of string, id, and batch ingest paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "telemetry/series_id.hpp"
#include "telemetry/store.hpp"

namespace oda::telemetry {
namespace {

/// NaN-tolerant exact comparison: both NaN, or bitwise-comparable equality.
bool same(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

/// The pre-shard design: one ordered map of capacity-bounded deques, with
/// the original query/aggregation algorithms (materialized bucket vectors
/// fed through the shared aggregate() helper).
class ReferenceStore {
 public:
  explicit ReferenceStore(std::size_t cap) : cap_(cap) {}

  void insert(const std::string& path, Sample s) {
    auto& dq = series_[path];
    dq.push_back(s);
    if (dq.size() > cap_) dq.pop_front();
  }

  SeriesSlice query(const std::string& path, TimePoint from,
                    TimePoint to) const {
    SeriesSlice out;
    const auto it = series_.find(path);
    if (it == series_.end()) return out;
    for (const Sample& s : it->second) {
      if (s.time >= from && s.time < to) {
        out.times.push_back(s.time);
        out.values.push_back(s.value);
      }
    }
    return out;
  }

  SeriesSlice query_aggregated(const std::string& path, TimePoint from,
                               TimePoint to, Duration bucket,
                               Aggregation agg) const {
    const SeriesSlice raw = query(path, from, to);
    SeriesSlice out;
    if (raw.empty()) return out;
    std::vector<double> current;
    TimePoint bucket_start =
        from + ((raw.times.front() - from) / bucket) * bucket;
    const auto flush = [&] {
      if (!current.empty()) {
        out.times.push_back(bucket_start);
        out.values.push_back(aggregate(current, agg));
        current.clear();
      }
    };
    for (std::size_t i = 0; i < raw.size(); ++i) {
      while (raw.times[i] >= bucket_start + bucket) {
        flush();
        bucket_start += bucket;
      }
      current.push_back(raw.values[i]);
    }
    flush();
    return out;
  }

  Frame frame(const std::vector<std::string>& sensor_paths, TimePoint from,
              TimePoint to, Duration bucket, Aggregation agg) const {
    Frame f;
    f.columns = sensor_paths;
    const std::size_t n_buckets = static_cast<std::size_t>(
        std::max<TimePoint>(0, (to - from + bucket - 1) / bucket));
    f.times.resize(n_buckets);
    for (std::size_t b = 0; b < n_buckets; ++b) {
      f.times[b] = from + static_cast<Duration>(b) * bucket;
    }
    f.allocate(n_buckets, sensor_paths.size());
    for (std::size_t c = 0; c < sensor_paths.size(); ++c) {
      const SeriesSlice slice =
          query_aggregated(sensor_paths[c], from, to, bucket, agg);
      for (std::size_t i = 0; i < slice.size(); ++i) {
        const auto b = static_cast<std::size_t>((slice.times[i] - from) / bucket);
        if (b < n_buckets) f.at(b, c) = slice.values[i];
      }
    }
    return f;
  }

  std::optional<Sample> latest(const std::string& path) const {
    const auto it = series_.find(path);
    if (it == series_.end() || it->second.empty()) return std::nullopt;
    return it->second.back();
  }

  std::size_t sample_count(const std::string& path) const {
    const auto it = series_.find(path);
    return it == series_.end() ? 0 : it->second.size();
  }

  std::vector<std::string> paths() const {
    std::vector<std::string> out;
    for (const auto& [p, dq] : series_) out.push_back(p);
    return out;
  }

  std::vector<std::string> match(const std::string& pattern) const {
    std::vector<std::string> out;
    for (const auto& [p, dq] : series_) {
      if (glob_match(pattern, p)) out.push_back(p);
    }
    return out;
  }

 private:
  std::size_t cap_;
  std::map<std::string, std::deque<Sample>> series_;
};

void expect_slices_equal(const SeriesSlice& got, const SeriesSlice& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got.times[i], want.times[i]) << context << " @" << i;
    EXPECT_TRUE(same(got.values[i], want.values[i]))
        << context << " @" << i << ": " << got.values[i]
        << " != " << want.values[i];
  }
}

void expect_frames_equal(const Frame& got, const Frame& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  EXPECT_EQ(got.columns, want.columns);
  EXPECT_EQ(got.times, want.times);
  for (std::size_t r = 0; r < got.rows(); ++r) {
    for (std::size_t c = 0; c < got.cols(); ++c) {
      EXPECT_TRUE(same(got.at(r, c), want.at(r, c)))
          << "row " << r << " col " << c;
    }
  }
}

constexpr Aggregation kAllAggs[] = {
    Aggregation::kMean, Aggregation::kMin,   Aggregation::kMax,
    Aggregation::kSum,  Aggregation::kLast,  Aggregation::kCount,
    Aggregation::kStdDev};

/// Drives one randomized workload at a given capacity/shard count and
/// checks every query surface against the reference model.
void run_equivalence_round(std::uint64_t seed, std::size_t capacity,
                           std::size_t shards) {
  Rng rng(seed);
  TimeSeriesStore store(capacity, shards);
  ReferenceStore ref(capacity);

  // A unique path set per round keeps the process-wide interner from
  // aliasing series across test rounds.
  std::vector<std::string> paths;
  const std::size_t n_paths = 3 + static_cast<std::size_t>(rng.uniform_int(0, 9));
  for (std::size_t p = 0; p < n_paths; ++p) {
    paths.push_back("equiv" + std::to_string(seed) + "/rack" +
                    std::to_string(p / 4) + "/node" + std::to_string(p % 4) +
                    "/power");
  }

  // Monotone global clock with duplicate timestamps; values include NaN and
  // large magnitudes. Ingest through a random mix of the string API, the id
  // API, and insert_batch with random batch sizes.
  TimePoint t = static_cast<TimePoint>(rng.uniform_int(0, 100));
  const std::size_t n_ops = 1500;
  std::vector<IdReading> batch;
  const auto flush_batch = [&] {
    if (!batch.empty()) {
      store.insert_batch(std::span<const IdReading>(batch));
      batch.clear();
    }
  };
  for (std::size_t op = 0; op < n_ops; ++op) {
    const std::string& path =
        paths[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(paths.size()) - 1))];
    double value = rng.normal(0.0, 100.0);
    const double u = rng.uniform();
    if (u < 0.05) value = std::nan("");
    else if (u < 0.10) value = value * 1e12;
    const Sample s{t, value};

    ref.insert(path, s);
    const double which = rng.uniform();
    if (which < 0.4) {
      flush_batch();
      store.insert(path, s);
    } else if (which < 0.6) {
      flush_batch();
      store.insert(SeriesInterner::global().intern(path), s);
    } else {
      batch.push_back({SeriesInterner::global().intern(path), s});
      if (batch.size() >= static_cast<std::size_t>(rng.uniform_int(1, 64))) {
        flush_batch();
      }
    }
    t += rng.uniform_int(0, 30);  // duplicates (0) through gaps
  }
  flush_batch();

  // Catalog surfaces.
  EXPECT_EQ(store.paths(), ref.paths());
  EXPECT_EQ(store.match("equiv" + std::to_string(seed) + "/rack0/*/power"),
            ref.match("equiv" + std::to_string(seed) + "/rack0/*/power"));
  for (const auto& path : paths) {
    EXPECT_EQ(store.sample_count(path), ref.sample_count(path)) << path;
    const auto got = store.latest(path);
    const auto want = ref.latest(path);
    ASSERT_EQ(got.has_value(), want.has_value()) << path;
    if (got) {
      EXPECT_EQ(got->time, want->time) << path;
      EXPECT_TRUE(same(got->value, want->value)) << path;
    }
  }

  // Random query windows, raw and aggregated, string and id keyed.
  for (int q = 0; q < 20; ++q) {
    const std::string& path =
        paths[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(paths.size()) - 1))];
    const TimePoint from = rng.uniform_int(-50, t);
    const TimePoint to = from + rng.uniform_int(0, t + 100);
    expect_slices_equal(store.query(path, from, to), ref.query(path, from, to),
                        "query " + path);
    const SeriesId id = SeriesInterner::global().intern(path);
    expect_slices_equal(store.query(id, from, to), ref.query(path, from, to),
                        "query(id) " + path);
    const Duration bucket = rng.uniform_int(1, 120);
    for (const Aggregation agg : kAllAggs) {
      expect_slices_equal(
          store.query_aggregated(path, from, to, bucket, agg),
          ref.query_aggregated(path, from, to, bucket, agg),
          "agg " + path + " bucket " + std::to_string(bucket) + " kind " +
              std::to_string(static_cast<int>(agg)));
    }
  }

  // Aligned frames over every path (includes missing-bucket NaN gaps).
  for (const Aggregation agg :
       {Aggregation::kMean, Aggregation::kStdDev, Aggregation::kCount}) {
    const TimePoint from = 0;
    const TimePoint to = t + 50;
    const Duration bucket = rng.uniform_int(10, 200);
    expect_frames_equal(store.frame(paths, from, to, bucket, agg),
                        ref.frame(paths, from, to, bucket, agg));
  }
}

TEST(StoreEquivalence, RandomizedWorkloadsMatchReferenceModel) {
  // Small capacities force ring wraparound; shard counts cover the
  // single-shard degenerate case through more-shards-than-series.
  run_equivalence_round(/*seed=*/1, /*capacity=*/8, /*shards=*/1);
  run_equivalence_round(/*seed=*/2, /*capacity=*/32, /*shards=*/4);
  run_equivalence_round(/*seed=*/3, /*capacity=*/64, /*shards=*/0);  // default
  run_equivalence_round(/*seed=*/4, /*capacity=*/7, /*shards=*/64);
  run_equivalence_round(/*seed=*/5, /*capacity=*/1024, /*shards=*/16);
}

TEST(StoreEquivalence, AggregateHelperMatchesAccumulator) {
  // The dashboards' aggregate() helper and the store's streaming pass share
  // AggAccumulator; spot-check the helper against hand computations.
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(aggregate(v, Aggregation::kMean), 2.5);
  EXPECT_DOUBLE_EQ(aggregate(v, Aggregation::kMin), 1.0);
  EXPECT_DOUBLE_EQ(aggregate(v, Aggregation::kMax), 4.0);
  EXPECT_DOUBLE_EQ(aggregate(v, Aggregation::kSum), 10.0);
  EXPECT_DOUBLE_EQ(aggregate(v, Aggregation::kLast), 4.0);
  EXPECT_DOUBLE_EQ(aggregate(v, Aggregation::kCount), 4.0);
  EXPECT_NEAR(aggregate(v, Aggregation::kStdDev), 1.2909944487358056, 1e-12);
  EXPECT_TRUE(std::isnan(aggregate({}, Aggregation::kMean)));
  EXPECT_DOUBLE_EQ(aggregate({5.0}, Aggregation::kStdDev), 0.0);
}

TEST(StoreEquivalence, BatchPreservesPerSeriesOrder) {
  // All readings of one series land in one shard; the stable counting sort
  // must keep their relative order so ring retention stays append-ordered.
  TimeSeriesStore store(4, 8);
  const SeriesId id = SeriesInterner::global().intern("equiv-order/s");
  std::vector<IdReading> batch;
  for (TimePoint t = 0; t < 10; ++t) {
    batch.push_back({id, {t, static_cast<double>(t)}});
  }
  store.insert_batch(std::span<const IdReading>(batch));
  const SeriesSlice slice = store.query_all("equiv-order/s");
  ASSERT_EQ(slice.size(), 4u);  // capacity bound: newest four retained
  EXPECT_EQ(slice.times.front(), 6);
  EXPECT_EQ(slice.times.back(), 9);
}

TEST(StoreEquivalence, ParallelFrameMatchesSerial) {
  TimeSeriesStore store(256, 8);
  std::vector<std::string> paths;
  for (int p = 0; p < 12; ++p) {
    paths.push_back("equiv-pframe/s" + std::to_string(p));
  }
  Rng rng(42);
  for (TimePoint t = 0; t < 500; ++t) {
    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (rng.uniform() < 0.8) {
        store.insert(paths[p], {t, rng.normal(0.0, 10.0)});
      }
    }
  }
  const Frame serial = store.frame(paths, 0, 500, 37, Aggregation::kStdDev);
  ThreadPool pool(4);
  store.set_pool(&pool);
  const Frame parallel = store.frame(paths, 0, 500, 37, Aggregation::kStdDev);
  store.set_pool(nullptr);
  expect_frames_equal(parallel, serial);
}

TEST(StoreEquivalence, FrameUnknownColumnsStayAllNaN) {
  // Regression: frame() maps unknown paths to the default (invalid)
  // SeriesId; those columns must stay all-NaN rather than aliasing any
  // stored series — serial and pooled paths alike.  Capacity must hold all
  // 100 samples per series or early buckets evict to NaN.
  TimeSeriesStore store(128, 4);
  std::vector<std::string> paths;
  for (int p = 0; p < 6; ++p) {
    paths.push_back("equiv-unknown/s" + std::to_string(p));
    for (TimePoint t = 0; t < 100; ++t) {
      store.insert(paths.back(), {t, static_cast<double>(t + p)});
    }
  }
  // One path never seen by the interner, one interned but never inserted
  // into this store.
  paths.insert(paths.begin() + 2, "equiv-unknown/never-interned");
  SeriesInterner::global().intern("equiv-unknown/foreign");
  paths.push_back("equiv-unknown/foreign");

  const auto check = [&](const Frame& f) {
    ASSERT_EQ(f.cols(), paths.size());
    for (std::size_t r = 0; r < f.rows(); ++r) {
      EXPECT_TRUE(std::isnan(f.at(r, 2))) << "never-interned row " << r;
      EXPECT_TRUE(std::isnan(f.at(r, f.cols() - 1))) << "foreign row " << r;
      EXPECT_FALSE(std::isnan(f.at(r, 0))) << "known column row " << r;
    }
  };
  check(store.frame(paths, 0, 100, 10));
  ThreadPool pool(4);
  store.set_pool(&pool);
  check(store.frame(paths, 0, 100, 10));
  store.set_pool(nullptr);
}

TEST(StoreEquivalence, ContainsAndInvalidHandles) {
  TimeSeriesStore store(16, 4);
  EXPECT_FALSE(store.contains("equiv-missing/x"));
  EXPECT_FALSE(store.contains(SeriesId{}));
  EXPECT_TRUE(store.query(SeriesId{}, 0, 100).empty());
  EXPECT_TRUE(store.query_aggregated(SeriesId{}, 0, 100, 10,
                                     Aggregation::kMean)
                  .empty());
  EXPECT_FALSE(store.latest(SeriesId{}).has_value());
  EXPECT_EQ(store.sample_count(SeriesId{}), 0u);
  store.insert("equiv-contains/x", {0, 1.0});
  EXPECT_TRUE(store.contains("equiv-contains/x"));
  // Interned elsewhere but never inserted into this store.
  const SeriesId foreign = SeriesInterner::global().intern("equiv-foreign/y");
  EXPECT_FALSE(store.contains(foreign));
}

}  // namespace
}  // namespace oda::telemetry
