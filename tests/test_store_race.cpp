// Concurrency stress tests for the sharded TimeSeriesStore and the
// collector's parallel read path, aimed at ThreadSanitizer (run them under
// `cmake --preset tsan`). Writers hammer insert_batch across overlapping
// shard sets while readers run every query surface; assertions verify
// conservation (per-series counts, total_inserted) so the tests stay
// meaningful in uninstrumented builds too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/series_id.hpp"
#include "telemetry/store.hpp"

namespace oda::telemetry {
namespace {

// Sized to stay in the low seconds under TSan's slowdown on small CI boxes.
constexpr int kWriterThreads = 4;
constexpr int kReaderThreads = 3;
constexpr int kBatchesPerWriter = 40;
constexpr int kBatchSize = 256;
constexpr int kPathCount = 32;

TEST(RaceStore, ConcurrentBatchInsertAndQueryAcrossShards) {
  // Capacity >= per-series writes (kWriterThreads * kBatchesPerWriter *
  // kBatchSize / kPathCount = 1280), so nothing is evicted and retention is
  // exactly the write count.
  TimeSeriesStore store(1 << 11, 8);
  std::vector<std::string> paths;
  std::vector<SeriesId> ids;
  for (int p = 0; p < kPathCount; ++p) {
    paths.push_back("race-store/rack" + std::to_string(p / 8) + "/node" +
                    std::to_string(p % 8) + "/power");
    ids.push_back(SeriesInterner::global().intern(paths.back()));
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriterThreads);
  for (int w = 0; w < kWriterThreads; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(1000 + static_cast<std::uint64_t>(w));
      std::vector<IdReading> batch(kBatchSize);
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        for (int i = 0; i < kBatchSize; ++i) {
          // Every writer strides over every series: shard locks genuinely
          // contend, and per-series write counts stay deterministic so the
          // conservation check below is exact.
          const auto p = static_cast<std::size_t>(w + i) % kPathCount;
          batch[i] = IdReading{
              ids[p], {static_cast<TimePoint>(b), rng.normal(0.0, 1.0)}};
        }
        store.insert_batch(std::span<const IdReading>(batch));
      }
    });
  }

  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int r = 0; r < kReaderThreads; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(2000 + static_cast<std::uint64_t>(r));
      while (!done.load(std::memory_order_acquire)) {
        const auto p =
            static_cast<std::size_t>(rng.uniform_int(0, kPathCount - 1));
        (void)store.query(ids[p], 0, kBatchesPerWriter);
        (void)store.query_aggregated(ids[p], 0, kBatchesPerWriter, 4,
                                     Aggregation::kStdDev);
        (void)store.latest(ids[p]);
        (void)store.sample_count(paths[p]);
        (void)store.match("race-store/rack*/node*/power");
        (void)store.frame({paths[0], paths[7], paths[15], paths[31]}, 0,
                          kBatchesPerWriter, 2, Aggregation::kMean);
      }
    });
  }

  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  // Conservation: nothing lost, nothing duplicated.
  const std::uint64_t total_written = static_cast<std::uint64_t>(
      kWriterThreads) * kBatchesPerWriter * kBatchSize;
  EXPECT_EQ(store.total_inserted(), total_written);
  std::uint64_t retained = 0;
  for (const auto& path : paths) retained += store.sample_count(path);
  // Rings are sized to hold everything (capacity 1024 per series >= worst
  // case per-series share), so retention must equal the write count.
  EXPECT_EQ(retained, total_written);
  EXPECT_EQ(store.match("race-store/*/*/power").size(),
            static_cast<std::size_t>(kPathCount));
}

TEST(RaceStore, PooledFrameRacesConcurrentBatchInserts) {
  // The chunked parallel frame path under write pressure: fill_column
  // workers take shard reader locks and write disjoint cache-line-aligned
  // column stripes while writer threads pump insert_batch into the same
  // shards. Uneven column costs (one hot series with far more samples)
  // force the chunk-claiming cursor to rebalance mid-frame. Ring capacity
  // comfortably exceeds the 800 seed samples plus every concurrent write a
  // series could absorb, so the seeded window is never evicted mid-test.
  TimeSeriesStore store(1 << 11, 8);
  ThreadPool pool(4);
  store.set_pool(&pool);
  constexpr int kCols = 48;
  std::vector<std::string> paths;
  std::vector<SeriesId> ids;
  for (int p = 0; p < kCols; ++p) {
    paths.push_back("race-pframe/s" + std::to_string(p));
    ids.push_back(SeriesInterner::global().intern(paths.back()));
    // Column 0 is ~10x denser than the rest: an expensive outlier chunk.
    const TimePoint step = p == 0 ? 1 : 10;
    for (TimePoint t = 0; t < 800; t += step) {
      store.insert(ids.back(), {t, static_cast<double>(p) + 0.5});
    }
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(3000 + static_cast<std::uint64_t>(w));
      std::vector<IdReading> batch(128);
      for (int b = 0; b < 60; ++b) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const auto p = static_cast<std::size_t>(
              rng.uniform_int(0, kCols - 1));
          batch[i] = IdReading{ids[p],
                               {800 + static_cast<TimePoint>(b),
                                rng.normal(0.0, 1.0)}};
        }
        store.insert_batch(std::span<const IdReading>(batch));
      }
    });
  }

  // Frames race the writers; only the pre-populated window [0, 800) has a
  // stable answer, so assert on that region (bucket 80 -> 10 rows).
  for (int round = 0; round < 30; ++round) {
    const Frame f = store.frame(paths, 0, 800, 80, Aggregation::kMean);
    ASSERT_EQ(f.rows(), 10u);
    ASSERT_EQ(f.cols(), static_cast<std::size_t>(kCols));
    for (std::size_t c = 1; c < f.cols(); ++c) {
      for (double v : f.column_values(c)) {
        ASSERT_EQ(v, static_cast<double>(c) + 0.5) << "col " << c;
      }
    }
  }
  for (auto& w : writers) w.join();
  store.set_pool(nullptr);
}

TEST(RaceStore, ParallelCollectorReadsWithFaultOverlay) {
  // The collector's parallel path reads sensors concurrently with per-chunk
  // overlay Rngs; stuck/spike/noise faults exercise the shared stuck-state
  // capture under contention.
  sim::ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 8;
  sim::ClusterSimulation cluster(params);

  const auto& defs = cluster.sensors();
  ASSERT_GE(defs.size(), 64u);  // parallel path engages at >= 64 sensors
  for (std::size_t i = 0; i < defs.size(); i += 3) {
    sim::FaultEvent e;
    e.kind = (i % 9 == 0)   ? sim::FaultKind::kSensorStuck
             : (i % 6 == 0) ? sim::FaultKind::kSensorSpike
                            : sim::FaultKind::kSensorNoise;
    e.target = defs[i].path;
    e.start = 0;
    e.end = 1 << 20;
    e.magnitude = 1.0;
    cluster.faults().schedule(e);
  }

  TimeSeriesStore store(1 << 8, 8);
  ThreadPool pool(4);
  store.set_pool(&pool);
  Collector collector(cluster, &store, nullptr, &pool);
  const std::size_t matched = collector.add_all_sensors(params.dt);
  ASSERT_EQ(matched, defs.size());

  constexpr int kPasses = 25;
  for (int pass = 0; pass < kPasses; ++pass) {
    cluster.step();
    collector.collect();
  }

  EXPECT_EQ(collector.samples_collected(),
            static_cast<std::uint64_t>(kPasses) * defs.size());
  EXPECT_EQ(store.total_inserted(),
            static_cast<std::uint64_t>(kPasses) * defs.size());
  for (const auto& def : defs) {
    EXPECT_EQ(store.sample_count(def.path), static_cast<std::size_t>(kPasses))
        << def.path;
  }
}

}  // namespace
}  // namespace oda::telemetry
