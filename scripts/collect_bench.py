#!/usr/bin/env python3
"""Aggregates per-bench --json outputs into one BENCH_results.json.

Accepts both schemas emitted by the suite:
  * bench_util.hpp BenchReport files: {"bench", "wall_seconds", "metrics"};
  * google-benchmark --benchmark_out files: {"context", "benchmarks": [...]}
    (produced by the ODA_BENCH_MAIN() --json translation).

Usage:
  collect_bench.py --out BENCH_results.json results/*.json
  build/bench/bench_table1 --json t1.json && collect_bench.py t1.json

The output maps bench name -> normalized record:
  {"benches": {...}, "count": N, "meta": {...}}
google-benchmark entries are normalized to metrics named after each
benchmark case with value = real_time and unit = time_unit.  The "meta"
block stamps provenance so a checked-in BENCH_results.json is comparable
across machines and commits: git SHA (plus a -dirty suffix when the tree
has uncommitted changes), UTC date, hostname, and online core count.
"""

import argparse
import datetime
import json
import os
import socket
import subprocess
import sys


def git_revision():
    """`<sha>` or `<sha>-dirty`; "unknown" outside a git checkout."""
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        sha = subprocess.run(
            ["git", "-C", here, "rev-parse", "HEAD"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            check=True).stdout.decode().strip()
        dirty = subprocess.run(
            ["git", "-C", here, "status", "--porcelain"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            check=True).stdout.decode().strip()
        return sha + ("-dirty" if dirty else "")
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def build_meta():
    now = datetime.datetime.now(datetime.timezone.utc)
    return {
        "git_revision": git_revision(),
        "date_utc": now.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "host": socket.gethostname(),
        "cpu_count": os.cpu_count() or 0,
    }


def normalize(path, doc):
    if "bench" in doc:  # BenchReport schema
        name = doc["bench"]
        return name, {
            "schema": "bench_report",
            "wall_seconds": doc.get("wall_seconds"),
            "metrics": doc.get("metrics", []),
        }
    if "benchmarks" in doc:  # google-benchmark schema
        name = os.path.splitext(os.path.basename(path))[0]
        exe = doc.get("context", {}).get("executable", "")
        if exe:
            name = os.path.basename(exe)
        metrics = []
        for case in doc["benchmarks"]:
            if case.get("run_type") == "aggregate":
                continue
            metrics.append(
                {
                    "name": case.get("name", "?"),
                    "value": case.get("real_time"),
                    "unit": case.get("time_unit", "ns"),
                    "iterations": case.get("iterations"),
                }
            )
        return name, {"schema": "google_benchmark", "metrics": metrics}
    raise ValueError(f"{path}: neither a BenchReport nor a google-benchmark file")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", help="per-bench --json files")
    parser.add_argument("--out", default="BENCH_results.json")
    args = parser.parse_args()

    benches = {}
    failures = 0
    for path in args.inputs:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            name, record = normalize(path, doc)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"collect_bench: skipping {path}: {err}", file=sys.stderr)
            failures += 1
            continue
        if name in benches:
            print(f"collect_bench: duplicate bench {name} from {path}",
                  file=sys.stderr)
            failures += 1
            continue
        benches[name] = record

    result = {"benches": benches, "count": len(benches),
              "meta": build_meta()}
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"collect_bench: wrote {args.out} with {len(benches)} bench(es)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
