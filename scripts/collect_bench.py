#!/usr/bin/env python3
"""Aggregates per-bench --json outputs into one BENCH_results.json.

Accepts both schemas emitted by the suite:
  * bench_util.hpp BenchReport files: {"bench", "wall_seconds", "metrics"};
  * google-benchmark --benchmark_out files: {"context", "benchmarks": [...]}
    (produced by the ODA_BENCH_MAIN() --json translation).

Usage:
  collect_bench.py --out BENCH_results.json results/*.json
  build/bench/bench_table1 --json t1.json && collect_bench.py t1.json

The output maps bench name -> normalized record:
  {"benches": {...}, "count": N, "meta": {...}}
google-benchmark entries are normalized to metrics named after each
benchmark case with value = real_time and unit = time_unit.  The "meta"
block stamps provenance so a checked-in BENCH_results.json is comparable
across machines and commits: git SHA (plus a -dirty suffix when the tree
has uncommitted changes), UTC date, hostname, and online core count.

When a previous results file exists (--baseline, defaulting to the --out
path before it is overwritten), the output also carries a
"delta_vs_previous" section mapping bench -> metric -> {previous, current,
ratio}, so perf regressions are visible directly in the PR diff of the
checked-in BENCH_results.json.
"""

import argparse
import datetime
import json
import os
import socket
import subprocess
import sys


def git_revision():
    """`<sha>` or `<sha>-dirty`; "unknown" outside a git checkout."""
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        sha = subprocess.run(
            ["git", "-C", here, "rev-parse", "HEAD"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            check=True).stdout.decode().strip()
        dirty = subprocess.run(
            ["git", "-C", here, "status", "--porcelain"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            check=True).stdout.decode().strip()
        return sha + ("-dirty" if dirty else "")
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def build_meta():
    now = datetime.datetime.now(datetime.timezone.utc)
    return {
        "git_revision": git_revision(),
        "date_utc": now.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "host": socket.gethostname(),
        "cpu_count": os.cpu_count() or 0,
    }


def normalize(path, doc):
    if "bench" in doc:  # BenchReport schema
        name = doc["bench"]
        return name, {
            "schema": "bench_report",
            "wall_seconds": doc.get("wall_seconds"),
            "metrics": doc.get("metrics", []),
        }
    if "benchmarks" in doc:  # google-benchmark schema
        name = os.path.splitext(os.path.basename(path))[0]
        exe = doc.get("context", {}).get("executable", "")
        if exe:
            name = os.path.basename(exe)
        metrics = []
        for case in doc["benchmarks"]:
            if case.get("run_type") == "aggregate":
                continue
            metrics.append(
                {
                    "name": case.get("name", "?"),
                    "value": case.get("real_time"),
                    "unit": case.get("time_unit", "ns"),
                    "iterations": case.get("iterations"),
                }
            )
        return name, {"schema": "google_benchmark", "metrics": metrics}
    raise ValueError(f"{path}: neither a BenchReport nor a google-benchmark file")


def metric_map(record):
    """metric name -> numeric value for one normalized bench record."""
    out = {}
    for m in record.get("metrics", []):
        value = m.get("value")
        if isinstance(value, (int, float)):
            out[m.get("name", "?")] = value
    return out


def compute_delta(previous, benches):
    """bench -> metric -> {previous, current, ratio} for shared metrics."""
    delta = {}
    for name, record in sorted(benches.items()):
        prev_record = previous.get("benches", {}).get(name)
        if not prev_record:
            continue
        prev_metrics = metric_map(prev_record)
        entries = {}
        for metric, value in sorted(metric_map(record).items()):
            if metric not in prev_metrics:
                continue
            prev_value = prev_metrics[metric]
            entries[metric] = {
                "previous": prev_value,
                "current": value,
                "ratio": (value / prev_value) if prev_value else None,
            }
        if entries:
            delta[name] = entries
    return delta


def print_delta(delta):
    print("collect_bench: delta vs previous results")
    for name, entries in delta.items():
        for metric, e in entries.items():
            ratio = e["ratio"]
            ratio_s = f"x{ratio:.3f}" if ratio is not None else "n/a"
            print(f"  {name}/{metric}: {e['previous']:.6g} -> "
                  f"{e['current']:.6g} ({ratio_s})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", help="per-bench --json files")
    parser.add_argument("--out", default="BENCH_results.json")
    parser.add_argument(
        "--baseline", default=None,
        help="previous BENCH_results.json to diff against "
             "(default: the --out file, read before overwriting)")
    args = parser.parse_args()

    benches = {}
    failures = 0
    for path in args.inputs:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            name, record = normalize(path, doc)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"collect_bench: skipping {path}: {err}", file=sys.stderr)
            failures += 1
            continue
        if name in benches:
            print(f"collect_bench: duplicate bench {name} from {path}",
                  file=sys.stderr)
            failures += 1
            continue
        benches[name] = record

    result = {"benches": benches, "count": len(benches),
              "meta": build_meta()}

    baseline_path = args.baseline or args.out
    previous = None
    try:
        with open(baseline_path, encoding="utf-8") as f:
            previous = json.load(f)
    except (OSError, json.JSONDecodeError):
        if args.baseline:  # an explicit baseline must be readable
            print(f"collect_bench: cannot read baseline {baseline_path}",
                  file=sys.stderr)
            failures += 1
    if previous:
        delta = compute_delta(previous, benches)
        if delta:
            result["delta_vs_previous"] = delta
            result["delta_baseline_revision"] = (
                previous.get("meta", {}).get("git_revision", "unknown"))
            print_delta(delta)

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"collect_bench: wrote {args.out} with {len(benches)} bench(es)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
