#!/usr/bin/env bash
# Check-only formatting gate: verifies tracked C++ sources against
# .clang-format without modifying anything. Exits 0 and prints a notice when
# clang-format is unavailable (e.g. the minimal CI/tier-1 container) so the
# gate degrades gracefully instead of failing the build for a missing tool.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check: clang-format not found on PATH; skipping (install clang-format to enable)"
  exit 0
fi

mapfile -t files < <(git ls-files 'src/**/*.hpp' 'src/**/*.cpp' \
  'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "format_check: no tracked sources found" >&2
  exit 1
fi

echo "format_check: checking ${#files[@]} files with $(clang-format --version)"
clang-format --dry-run -Werror --style=file "${files[@]}"
echo "format_check: OK"
