#!/usr/bin/env python3
"""Randomized SIGKILL crash-restart harness for the store's write-ahead log.

Each round spawns `wal_ingest ingest` against the same WAL directory, lets it
run for a random interval, SIGKILLs it mid-batch, then runs `wal_ingest
verify` over the survivors. verify recovers into a fresh store and asserts:

  * the replayed readings are an exact, bit-identical prefix of the
    deterministic stream (so a torn tail can only ever shorten the data,
    never corrupt or reorder it), and
  * the prefix covers every sample the ingest process acked as flushed
    (fsync durability: an acked flush must survive SIGKILL).

Across rounds this script additionally asserts the verified count never
decreases — recovery may truncate an unacked torn tail but must not lose
previously committed history. A final graceful run (orderly flush + stop)
followed by `wal_ingest inspect` proves a clean shutdown leaves no tail to
truncate.

Usage: crash_restart.py --binary build/examples/wal_ingest \
                        --dir /tmp/crash_wal [--rounds 4] [--seed 7]
"""

import argparse
import os
import random
import shutil
import signal
import subprocess
import sys
import time


def run(cmd, **kw):
    return subprocess.run(cmd, capture_output=True, text=True, **kw)


def verified_count(out: str) -> int:
    for line in out.splitlines():
        if line.startswith("verified "):
            return int(line.split()[1])
    raise SystemExit(f"verify printed no 'verified N samples' line:\n{out}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True, help="path to wal_ingest")
    ap.add_argument("--dir", required=True, help="WAL directory (recreated)")
    ap.add_argument("--rounds", type=int, default=4)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--min-sleep", type=float, default=0.05)
    ap.add_argument("--max-sleep", type=float, default=0.5)
    args = ap.parse_args()

    rng = random.Random(args.seed)
    shutil.rmtree(args.dir, ignore_errors=True)
    os.makedirs(args.dir, exist_ok=True)
    progress = os.path.join(args.dir, "progress.txt")

    stream = ["--seed", str(args.seed), "--progress", progress]
    prev_verified = 0
    for rnd in range(args.rounds):
        proc = subprocess.Popen(
            [args.binary, "ingest", args.dir, *stream],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        time.sleep(rng.uniform(args.min_sleep, args.max_sleep))
        proc.send_signal(signal.SIGKILL)
        proc.wait()

        v = run([args.binary, "verify", args.dir, *stream])
        if v.returncode != 0:
            print(f"round {rnd}: verify FAILED (exit {v.returncode})")
            print(v.stdout + v.stderr)
            return 1
        n = verified_count(v.stdout)
        if n < prev_verified:
            print(f"round {rnd}: verified count went BACKWARDS "
                  f"({prev_verified} -> {n}): committed history was lost")
            return 1
        print(f"round {rnd}: killed mid-ingest, verified {n} samples "
              f"(previously {prev_verified})")
        prev_verified = n

    # Orderly finish: a bounded run that flushes and stops must exit 0 and
    # leave segments that recover with zero truncation.
    g = run([args.binary, "ingest", args.dir, *stream, "--batches", "16"])
    if g.returncode != 0:
        print(f"graceful run FAILED (exit {g.returncode})")
        print(g.stdout + g.stderr)
        return 1
    ins = run([args.binary, "inspect", args.dir])
    print(ins.stdout.strip())
    if ins.returncode != 0:
        print("inspect reports a truncated tail after an orderly stop")
        return 1
    v = run([args.binary, "verify", args.dir, *stream])
    if v.returncode != 0:
        print("final verify FAILED")
        print(v.stdout + v.stderr)
        return 1
    print(f"crash_restart: {args.rounds} SIGKILL round(s) + graceful finish "
          f"OK, {verified_count(v.stdout)} samples conserved")
    return 0


if __name__ == "__main__":
    sys.exit(main())
