#!/usr/bin/env python3
"""Offline critical-path analysis of a Chrome trace JSON file.

Implements the identical algorithm to src/obs/critical_path.cpp — same
grouping, same tie-breaks, same integer-microsecond arithmetic — so the two
stay in lockstep (tests/test_profiler.cpp asserts exact outputs against the
C++ side; this script must reproduce them bit-for-bit on the same trace).

Input: the JSON written by oda::obs::chrome_trace_json (e.g. bench binaries'
--trace-out, or examples/self_monitor's trace export).  Only complete-span
events (ph == "X") carrying a nonzero args.trace_id participate; instants
(ph == "i") and the flow-arrow pairs (ph == "s"/"f", cat "flow") are
ignored, as the C++ analyzer ignores non-span event kinds.

Usage:
  analyze_trace.py TRACE.json [--top N] [--json OUT.json] [--min-traces N]

Text output matches oda::obs::render_critical_path byte-for-byte.  --json
additionally writes the reports as structured JSON.  --min-traces N exits
nonzero when fewer than N reports were produced (CI guard against an empty
or untraced run).  No third-party dependencies.
"""

import argparse
import json
import sys

# Mirrors kMaxDepth in critical_path.cpp: deeper nesting means corrupt
# parent ids; treat as a leaf.
MAX_DEPTH = 512


def _parse_id(value):
    """16-char hex id (trace_id_hex) -> int; tolerates missing/blank."""
    if not value:
        return 0
    try:
        return int(value, 16)
    except ValueError:
        return 0


def load_spans(doc):
    """Extracts (name, trace_id, span_id, parent_id, start_us, dur_us)
    tuples for every traced complete-span event, in file order."""
    spans = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue  # instants, flow arrows, metadata
        args = ev.get("args") or {}
        trace_id = _parse_id(args.get("trace_id"))
        if trace_id == 0:
            continue  # untraced span: chrome_trace_json omits args entirely
        spans.append({
            "name": str(ev.get("name", "")),
            "trace_id": trace_id,
            "span_id": _parse_id(args.get("span_id")),
            "parent_id": _parse_id(args.get("parent_id")),
            "start": int(ev.get("ts", 0)),
            "dur": int(ev.get("dur", 0)),
        })
    return spans


class _Node:
    __slots__ = ("ev", "start", "end", "children", "on_stack")

    def __init__(self, ev):
        self.ev = ev
        self.start = ev["start"]
        self.end = ev["start"] + ev["dur"]
        self.children = []
        self.on_stack = False


class _Walker:
    """Mirrors the anonymous-namespace Walker in critical_path.cpp."""

    def __init__(self, nodes):
        self.nodes = nodes
        self.agg = {}  # name -> {"count", "self_us", "cp_us"}
        self.total_busy = 0
        self.span_count = 0

    def _agg_for(self, name):
        a = self.agg.get(name)
        if a is None:
            a = {"name": name, "count": 0, "self_us": 0, "cp_us": 0}
            self.agg[name] = a
        return a

    def walk(self, idx, wlo, whi, depth):
        node = self.nodes[idx]
        lo = max(node.start, wlo)
        hi = min(node.end, whi)
        if hi <= lo:
            return 0
        a = self._agg_for(node.ev["name"])
        if depth >= MAX_DEPTH:
            a["cp_us"] += hi - lo
            return hi - lo
        node.on_stack = True
        frontier = hi
        cp = 0
        for child_idx in node.children:
            child = self.nodes[child_idx]
            if child.on_stack:
                continue  # corrupt parent chain (cycle)
            child_end = min(child.end, frontier)
            if child_end <= lo or child.start >= frontier:
                continue
            if frontier > child_end:
                # Slice (child_end, frontier]: no later-ending child covers
                # it — the node itself is on the critical path here.
                a["cp_us"] += frontier - child_end
                cp += frontier - child_end
            cp += self.walk(child_idx, lo, child_end, depth + 1)
            frontier = max(child.start, lo)
            if frontier <= lo:
                break
        if frontier > lo:
            a["cp_us"] += frontier - lo
            cp += frontier - lo
        node.on_stack = False
        return cp

    def accumulate_self(self, idx, depth):
        node = self.nodes[idx]
        if node.on_stack or depth >= MAX_DEPTH:
            return
        node.on_stack = True
        self.span_count += 1
        ivals = []
        for child_idx in node.children:
            child = self.nodes[child_idx]
            s = max(child.start, node.start)
            e = min(child.end, node.end)
            if e > s:
                ivals.append((s, e))
            self.accumulate_self(child_idx, depth + 1)
        ivals.sort()
        covered = 0
        cursor = node.start
        for s, e in ivals:
            frm = max(s, cursor)
            if e > frm:
                covered += e - frm
                cursor = e
        dur = node.end - node.start
        self_us = dur - min(covered, dur)
        a = self._agg_for(node.ev["name"])
        a["count"] += 1
        a["self_us"] += self_us
        self.total_busy += self_us
        node.on_stack = False


def analyze(spans, top_n=10):
    """Mirrors oda::obs::analyze_critical_path; returns report dicts."""
    traces = {}
    for ev in spans:
        traces.setdefault(ev["trace_id"], []).append(ev)

    reports = []
    for trace_id in sorted(traces):
        evs = sorted(traces[trace_id],
                     key=lambda e: (e["span_id"], e["start"]))
        nodes = []
        by_id = {}
        for ev in evs:
            if ev["span_id"] in by_id:
                continue  # duplicate span id: keep the first occurrence
            by_id[ev["span_id"]] = len(nodes)
            nodes.append(_Node(ev))
        roots = []
        for i, node in enumerate(nodes):
            parent = by_id.get(node.ev["parent_id"])
            if node.ev["parent_id"] == 0 or parent is None or parent == i:
                roots.append(i)
            else:
                nodes[parent].children.append(i)
        for node in nodes:
            node.children.sort(
                key=lambda c: (-nodes[c].end, -nodes[c].start,
                               nodes[c].ev["span_id"]))

        for root in roots:
            walker = _Walker(nodes)
            rnode = nodes[root]
            report = {
                "trace_id": trace_id,
                "root_span_id": rnode.ev["span_id"],
                "root_name": rnode.ev["name"],
                "root_start_us": rnode.start,
                "root_dur_us": rnode.end - rnode.start,
            }
            report["critical_path_us"] = walker.walk(
                root, rnode.start, rnode.end, 0)
            walker.accumulate_self(root, 0)
            report["total_busy_us"] = walker.total_busy
            report["span_count"] = walker.span_count
            report["parallelism"] = (
                0.0 if report["root_dur_us"] == 0
                else walker.total_busy / report["root_dur_us"])
            top = sorted(walker.agg.values(),
                         key=lambda a: (-a["cp_us"], -a["self_us"],
                                        a["name"]))
            report["top"] = top[:top_n]
            reports.append(report)

    reports.sort(key=lambda r: (-r["root_dur_us"], r["trace_id"],
                                r["root_span_id"]))
    return reports


def render(reports):
    """Byte-for-byte mirror of oda::obs::render_critical_path."""
    out = []
    for r in reports:
        out.append(
            "trace %016x root '%s' dur %.3f ms critical_path %.3f ms "
            "busy %.3f ms parallelism %.2f spans %d\n"
            % (r["trace_id"], r["root_name"], r["root_dur_us"] / 1000.0,
               r["critical_path_us"] / 1000.0, r["total_busy_us"] / 1000.0,
               r["parallelism"], r["span_count"]))
        for a in r["top"]:
            out.append("  %-32s count %6d self %10.3f ms on-path %10.3f ms\n"
                       % (a["name"], a["count"], a["self_us"] / 1000.0,
                          a["cp_us"] / 1000.0))
    if not out:
        return "no traced spans\n"
    return "".join(out)


def main():
    ap = argparse.ArgumentParser(
        description="Critical-path analysis of a Chrome trace JSON file "
                    "(lockstep port of src/obs/critical_path.cpp)")
    ap.add_argument("trace", help="Chrome trace JSON (chrome_trace_json)")
    ap.add_argument("--top", type=int, default=10, metavar="N",
                    help="per-report span-aggregate cap (default 10)")
    ap.add_argument("--json", metavar="OUT",
                    help="also write reports as structured JSON")
    ap.add_argument("--out", metavar="OUT",
                    help="also write the full text rendering to a file "
                         "(never truncated — byte-comparable against "
                         "render_critical_path output)")
    ap.add_argument("--min-traces", type=int, default=0, metavar="N",
                    help="exit 1 unless at least N reports were produced")
    ap.add_argument("--max-reports", type=int, default=0, metavar="N",
                    help="render only the N longest-root reports "
                         "(0 = all; --json is never truncated)")
    args = ap.parse_args()

    # walk()/accumulate_self() recurse to MAX_DEPTH; leave headroom over
    # Python's default 1000 limit.
    sys.setrecursionlimit(4 * MAX_DEPTH + 100)

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print("analyze_trace: cannot read %s: %s" % (args.trace, exc),
              file=sys.stderr)
        return 1

    reports = analyze(load_spans(doc), top_n=args.top)
    shown = reports
    if args.max_reports > 0 and len(reports) > args.max_reports:
        shown = reports[:args.max_reports]
    sys.stdout.write(render(shown))
    if len(shown) < len(reports):
        print("... (%d more report(s) suppressed by --max-reports)"
              % (len(reports) - len(shown)))

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(render(reports))

    if args.json:
        payload = []
        for r in reports:
            j = dict(r)
            j["trace_id"] = "%016x" % r["trace_id"]
            j["root_span_id"] = "%016x" % r["root_span_id"]
            payload.append(j)
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump({"reports": payload, "count": len(payload)}, f,
                      indent=2, sort_keys=True)
            f.write("\n")

    if len(reports) < args.min_traces:
        print("analyze_trace: %d report(s) < --min-traces %d"
              % (len(reports), args.min_traces), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
