#!/usr/bin/env python3
"""Repo-specific lint pass for ODA-Lib — invariants clang-tidy cannot express.

Rules (suppress a finding with `// ODA-LINT-ALLOW(<rule>): <reason>` on the
offending line or the line directly above it; an empty reason is itself a
lint error):

  pragma-once     every header under src/ contains `#pragma once`
  self-contained  every header under src/ compiles on its own
                  (requires --compiler; skipped otherwise)
  naked-new       no naked `new` / `delete` in src/ — use std::make_unique,
                  std::vector, or another owning container
  atomic-order    every std::atomic access outside src/common/ names an
                  explicit std::memory_order (the concurrency core in
                  src/common/ is exempt: its orders are audited in-place)
  raw-mutex       no raw std:: synchronization primitives (mutex,
                  lock_guard, condition_variable, ...) or their headers in
                  src/ outside src/common/sync.hpp — lock through the
                  annotated oda::Mutex/MutexLock wrappers so the tsa preset
                  can check the locking discipline
  cout-in-lib     no std::cout / std::cerr / printf in library code under
                  src/ — route diagnostics through common/log
                  (src/common/log.* is exempt: it is the logging sink)
  no-cpp-include  no `#include` of a `.cpp` file anywhere in src/, tests/,
                  bench/, or examples/

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys
import tempfile

ALLOW_RE = re.compile(r"//\s*ODA-LINT-ALLOW\((?P<rules>[a-z0-9-,\s]+)\)\s*:?\s*(?P<reason>.*)")

ATOMIC_CALL_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    r"compare_exchange_weak|compare_exchange_strong)\s*\(")
NAKED_NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_(:]|(?<![\w.])delete\s*(\[\s*\])?\s+?[A-Za-z_(*]")
COUT_RE = re.compile(r"std::cout|std::cerr|(?<![\w:.])printf\s*\(|(?<![\w.])puts\s*\(")
CPP_INCLUDE_RE = re.compile(r"#\s*include\s*[\"<][^\">]*\.cpp[\">]")
RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure
    so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                    continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def allowances(raw_lines: list[str]) -> dict[int, tuple[set[str], str]]:
    """Map 1-based line number -> (allowed rules, reason). An ALLOW on its own
    line also covers the next line."""
    allow: dict[int, tuple[set[str], str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
        reason = m.group("reason").strip()
        allow[idx] = (rules, reason)
        if line.strip().startswith("//"):  # standalone comment covers next line
            allow[idx + 1] = (rules, reason)
    return allow


def is_allowed(allow, lineno: int, rule: str, findings: list, path: str) -> bool:
    entry = allow.get(lineno)
    if not entry or rule not in entry[0]:
        return False
    if not entry[1]:
        findings.append(Finding(path, lineno, rule,
                                "ODA-LINT-ALLOW requires a written justification"))
    return True


def lint_file(root: str, rel: str, compiler: str | None,
              include_dir: str) -> list[Finding]:
    path = os.path.join(root, rel)
    findings: list[Finding] = []
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    raw_lines = raw.splitlines()
    allow = allowances(raw_lines)
    stripped_lines = strip_comments_and_strings(raw).splitlines()

    in_src = rel.startswith("src/")
    in_common = rel.startswith("src/common/")
    is_header = rel.endswith((".hpp", ".h"))
    is_log_impl = rel in ("src/common/log.hpp", "src/common/log.cpp")

    if in_src and is_header and "#pragma once" not in raw:
        findings.append(Finding(rel, 1, "pragma-once", "header lacks #pragma once"))

    for lineno, line in enumerate(stripped_lines, start=1):
        if CPP_INCLUDE_RE.search(line):
            if not is_allowed(allow, lineno, "no-cpp-include", findings, rel):
                findings.append(Finding(rel, lineno, "no-cpp-include",
                                        "translation units must not include .cpp files"))
        if not in_src:
            continue
        if NAKED_NEW_RE.search(line):
            if not is_allowed(allow, lineno, "naked-new", findings, rel):
                findings.append(Finding(rel, lineno, "naked-new",
                                        "naked new/delete; use an owning container "
                                        "or std::make_unique"))
        if rel != "src/common/sync.hpp" and RAW_MUTEX_RE.search(line):
            if not is_allowed(allow, lineno, "raw-mutex", findings, rel):
                findings.append(Finding(rel, lineno, "raw-mutex",
                                        "raw std:: synchronization primitive; "
                                        "use oda::Mutex/MutexLock from "
                                        "common/sync.hpp (tsa-checked)"))
        if not is_log_impl and COUT_RE.search(line):
            if not is_allowed(allow, lineno, "cout-in-lib", findings, rel):
                findings.append(Finding(rel, lineno, "cout-in-lib",
                                        "library code must log via common/log, "
                                        "not write to stdio directly"))
        if not in_common:
            for m in ATOMIC_CALL_RE.finditer(line):
                # Only flag accesses that are plausibly atomics: the repo
                # convention is that these member names are atomic-only.
                args = line[m.end():]
                if "memory_order" in args:
                    continue
                if is_allowed(allow, lineno, "atomic-order", findings, rel):
                    continue
                findings.append(Finding(rel, lineno, "atomic-order",
                                        f".{m.group(1)}() without an explicit "
                                        "std::memory_order argument"))

    if in_src and is_header and compiler:
        findings.extend(check_self_contained(root, rel, compiler, include_dir))
    return findings


def check_self_contained(root: str, rel: str, compiler: str,
                         include_dir: str) -> list[Finding]:
    """A header is self-contained iff a TU consisting of just that #include
    compiles."""
    with tempfile.NamedTemporaryFile("w", suffix=".cpp", delete=False) as tu:
        header = os.path.relpath(os.path.join(root, rel),
                                 os.path.join(root, include_dir))
        tu.write(f'#include "{header}"\nint oda_lint_anchor_;\n')
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [compiler, "-std=c++20", "-fsyntax-only",
             "-I", os.path.join(root, include_dir), tu_path],
            capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            snippet = detail[0] if detail else "compiler error"
            return [Finding(rel, 1, "self-contained",
                            f"header does not compile standalone: {snippet}")]
        return []
    finally:
        os.unlink(tu_path)


def gather_files(root: str) -> list[str]:
    rels = []
    for top in ("src", "tests", "bench", "examples"):
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".hpp", ".h", ".cpp", ".cc")):
                    rels.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(rels)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), help="repository root")
    ap.add_argument("--compiler", default=None,
                    help="C++ compiler for the self-contained header check "
                         "(omitted => that rule is skipped)")
    ap.add_argument("--include-dir", default="src",
                    help="include root passed to the compiler")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    files = gather_files(root)
    if not files:
        print("oda_lint: no sources found under", root, file=sys.stderr)
        return 2

    findings: list[Finding] = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [pool.submit(lint_file, root, rel, args.compiler,
                               args.include_dir) for rel in files]
        for fut in futures:
            findings.extend(fut.result())

    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f)
    checked_rules = 6 + (1 if args.compiler else 0)
    print(f"oda_lint: {len(files)} files, {checked_rules} rules, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
