#!/usr/bin/env python3
"""Validates a Prometheus text-exposition (format 0.0.4) file.

Checks, without any third-party dependency:
  * every non-comment line parses as  name{labels} value  (labels optional);
  * metric and label names are legal;
  * label values use only the \\\\, \\", \\n escapes;
  * # TYPE appears at most once per family, before its samples;
  * no duplicate series (same name + identical label set);
  * histogram families expose _bucket/_sum/_count, bucket counts are
    cumulative (non-decreasing as le increases), and the +Inf bucket equals
    the _count sample;
  * sample values parse as floats (NaN/+Inf/-Inf allowed);
  * OpenMetrics exemplars (` # {trace_id="..."} value` suffixes) parse, sit
    on _bucket samples only, have legal label names, and a finite-bucket
    exemplar value fits inside its bucket (value <= le);
  * with --require-exemplar FAMILY (repeatable): that histogram family
    carries at least one exemplar;
  * with --inventory DOC.md: every exported family name appears in the doc
    (backticked `oda_*` tokens; `{a,b}` brace groups expand) — the
    inventory-drift gate for docs/OBSERVABILITY.md.

Usage: check_prom.py <file.prom | http://host:port/metrics | ->
                     [--require-prefix oda_]
                     [--require-exemplar FAMILY] [--inventory DOC.md]
The input may be a file path, a live http(s):// URL (scraped directly),
or "-" for stdin.
Exit status 0 when the file is valid, 1 otherwise (problems on stderr).
"""

import argparse
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name { labels } value [# {exemplar-labels} exemplar-value]
# (timestamps deliberately unsupported: we never emit one)
SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)"
    r"(?:\s+#\s+(\{[^}]*\})\s+(\S+))?$"
)
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_labels(block, problems, lineno):
    """Returns a sorted tuple of (name, value) pairs from '{a="b",c="d"}'."""
    inner = block[1:-1]
    if not inner:
        return ()
    labels = []
    consumed = 0
    for m in LABEL.finditer(inner):
        labels.append((m.group(1), m.group(2)))
        consumed += len(m.group(0))
    # Account for separators: n-1 commas (trailing comma is legal too).
    separators = inner.count(",")
    if consumed + separators < len(inner.replace(" ", "")):
        problems.append(f"line {lineno}: malformed label block {block!r}")
    for name, value in labels:
        if not LABEL_NAME.match(name):
            problems.append(f"line {lineno}: bad label name {name!r}")
        bad_escapes = re.findall(r"\\[^\\n\"]", value)
        if bad_escapes:
            problems.append(
                f"line {lineno}: invalid escape(s) {bad_escapes} in label "
                f"value {value!r}"
            )
    return tuple(sorted(labels))


def base_family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def expand_braces(token):
    """Expands one level of {a,b,c} alternation: 'x_{a,b}_y' -> x_a_y, x_b_y."""
    m = re.search(r"\{([^{}]*)\}", token)
    if not m:
        return [token]
    out = []
    for alt in m.group(1).split(","):
        expanded = token[: m.start()] + alt.strip() + token[m.end():]
        out.extend(expand_braces(expanded))
    return out


def read_source(source):
    """Text from a file path, a live http(s):// URL, or "-" for stdin.

    The URL form lets the scrape-smoke harness point this checker straight
    at a running ObsServer's /metrics endpoint; stdin supports piping
    `curl ... | check_prom.py -`.
    """
    if source == "-":
        return sys.stdin.read()
    if source.startswith(("http://", "https://")):
        import urllib.request

        with urllib.request.urlopen(source, timeout=10) as resp:
            return resp.read().decode("utf-8")
    with open(source, encoding="utf-8") as f:
        return f.read()


def documented_families(doc_path):
    """Backticked oda_* names from a markdown inventory, braces expanded."""
    with open(doc_path, encoding="utf-8") as f:
        text = f.read()
    names = set()
    for token in re.findall(r"oda_[a-zA-Z0-9_{},]*", text):
        for name in expand_braces(token):
            if METRIC_NAME.match(name):
                names.add(name)
    return names


def check(path, require_prefix=None, require_exemplar=(), inventory=None):
    problems = []
    typed = {}        # family -> type
    seen_series = {}  # (name, labels) -> lineno
    samples = []      # (lineno, name, labels, value)
    exemplar_families = set()
    families_with_samples = set()

    lines = read_source(path).splitlines()

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                    problems.append(f"line {lineno}: malformed {parts[1]} comment")
                    continue
                if parts[1] == "TYPE":
                    fam = parts[2]
                    if fam in typed:
                        problems.append(
                            f"line {lineno}: duplicate TYPE for family {fam}"
                        )
                    if fam in families_with_samples:
                        problems.append(
                            f"line {lineno}: TYPE for {fam} after its samples"
                        )
                    typed[fam] = parts[3].strip() if len(parts) > 3 else ""
            continue

        m = SAMPLE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, label_block, value_text, ex_block, ex_value_text = m.groups()
        if require_prefix and not name.startswith(require_prefix):
            problems.append(
                f"line {lineno}: metric {name} lacks required prefix "
                f"{require_prefix!r}"
            )
        labels = parse_labels(label_block, problems, lineno) if label_block else ()
        try:
            value = parse_value(value_text)
        except ValueError:
            problems.append(f"line {lineno}: bad sample value {value_text!r}")
            continue
        key = (name, labels)
        if key in seen_series:
            problems.append(
                f"line {lineno}: duplicate series {name}{dict(labels)} "
                f"(first at line {seen_series[key]})"
            )
        else:
            seen_series[key] = lineno
        families_with_samples.add(base_family(name))
        samples.append((lineno, name, labels, value))

        if ex_block is not None:
            if not name.endswith("_bucket"):
                problems.append(
                    f"line {lineno}: exemplar on non-bucket sample {name}"
                )
            ex_labels = parse_labels(ex_block, problems, lineno)
            try:
                ex_value = parse_value(ex_value_text)
            except ValueError:
                problems.append(
                    f"line {lineno}: bad exemplar value {ex_value_text!r}"
                )
                continue
            le_text = dict(labels).get("le")
            if le_text is not None:
                le = parse_value(le_text)
                if math.isfinite(le) and ex_value > le:
                    problems.append(
                        f"line {lineno}: exemplar value {ex_value} exceeds "
                        f"bucket le={le_text}"
                    )
            if not ex_labels:
                problems.append(f"line {lineno}: empty exemplar label set")
            exemplar_families.add(base_family(name))

    # Histogram structure checks.
    for fam, ftype in typed.items():
        if ftype != "histogram":
            continue
        buckets = {}  # labels-without-le -> list of (le, value)
        sums = {}
        counts = {}
        for lineno, name, labels, value in samples:
            if name == fam + "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    problems.append(f"line {lineno}: bucket without le label")
                    continue
                rest = tuple(kv for kv in labels if kv[0] != "le")
                buckets.setdefault(rest, []).append((parse_value(le), value))
            elif name == fam + "_sum":
                sums[labels] = value
            elif name == fam + "_count":
                counts[labels] = value
        for rest, series in buckets.items():
            series.sort(key=lambda p: p[0])
            values = [v for _, v in series]
            if values != sorted(values):
                problems.append(
                    f"histogram {fam}{dict(rest)}: bucket counts not cumulative"
                )
            if not series or not math.isinf(series[-1][0]):
                problems.append(f"histogram {fam}{dict(rest)}: no +Inf bucket")
            elif rest in counts and series[-1][1] != counts[rest]:
                problems.append(
                    f"histogram {fam}{dict(rest)}: +Inf bucket "
                    f"{series[-1][1]} != _count {counts[rest]}"
                )
            if rest not in sums:
                problems.append(f"histogram {fam}{dict(rest)}: missing _sum")
            if rest not in counts:
                problems.append(f"histogram {fam}{dict(rest)}: missing _count")

    for fam in require_exemplar:
        if fam not in exemplar_families:
            problems.append(f"family {fam}: no exemplar found (required)")

    if inventory is not None:
        documented = documented_families(inventory)
        for fam in sorted(typed):
            if fam not in documented:
                problems.append(
                    f"family {fam}: exported but missing from the inventory "
                    f"table in {inventory} (docs drift)"
                )

    return problems, len(samples), len(typed)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "file",
        help="file path, live http(s):// URL, or - for stdin",
    )
    parser.add_argument(
        "--require-prefix",
        default=None,
        help="require every metric name to start with this prefix",
    )
    parser.add_argument(
        "--require-exemplar",
        action="append",
        default=[],
        metavar="FAMILY",
        help="require at least one exemplar on this histogram family "
        "(repeatable)",
    )
    parser.add_argument(
        "--inventory",
        default=None,
        metavar="DOC.md",
        help="markdown doc whose backticked oda_* names must cover every "
        "exported family",
    )
    args = parser.parse_args()

    problems, n_samples, n_families = check(
        args.file, args.require_prefix, args.require_exemplar, args.inventory
    )
    if problems:
        for p in problems:
            print(f"check_prom: {p}", file=sys.stderr)
        print(
            f"check_prom: FAIL — {len(problems)} problem(s) in {args.file}",
            file=sys.stderr,
        )
        return 1
    print(
        f"check_prom: OK — {n_samples} samples across {n_families} typed "
        f"families in {args.file}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
