#!/usr/bin/env python3
"""Live-introspection smoke test: scrapes every ObsServer endpoint of a
running examples/self_monitor and validates the responses with the repo's
own checkers.

Spawns self_monitor with a long simulated window and http_port=0, reads the
announced ephemeral port from stdout, then:

  * GET /metrics        -> check_prom.py (live URL mode; optional
                           --inventory drift gate against the docs);
  * GET /metrics.json   -> parses as JSON with a "families" array;
  * GET /healthz        -> 200 or 503, non-empty report;
  * GET /trace, /flight -> check_trace.py (live URL mode);
  * GET /profile        -> folded stacks -> check_folded.py (or a clean
                           503 when the build has ODA_PROFILE=OFF);
  * GET /varz           -> parses as JSON, "net": true;
  * GET /selfscrape     -> parses as JSON, series_count > 0 (the process's
                           own oda_* series are queryable from its store);
  * GET /unknown        -> 404; POST /metrics -> 405.

Then sends SIGTERM while hammering /metrics from a background thread and
asserts the shutdown is torn-response-free: every scrape observed during
the drain either completes (full Content-Length framing) or is refused
cleanly (connection refused/reset with zero payload bytes) — never a
truncated response. Finally asserts exit 0 and that stdout shows the
server quiescing before the run summary.

Usage: scrape_smoke.py --self-monitor build/examples/self_monitor \
                       [--inventory docs/OBSERVABILITY.md] \
                       [--scripts-dir scripts] [--dir /tmp/scrape_smoke]
"""

import argparse
import http.client
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request

LISTEN_PREFIX = "obs server listening on "


def fail(msg):
    print(f"scrape_smoke: FAIL — {msg}", file=sys.stderr)
    return 1


def get(base, target, method="GET", timeout=10.0):
    """(status, body) for one request; raises on transport errors."""
    req = urllib.request.Request(base + target, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8", "replace")
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode("utf-8", "replace")


def run_checker(script, args):
    """Runs a checker script; returns (ok, combined output)."""
    proc = subprocess.run(
        [sys.executable, script, *args], capture_output=True, text=True
    )
    out = (proc.stdout + proc.stderr).strip()
    return proc.returncode == 0, out


class ShutdownScraper(threading.Thread):
    """Hammers /metrics over raw sockets until the port stops answering,
    recording any torn (non-empty but incomplete) response."""

    def __init__(self, host, port):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.stop_flag = threading.Event()
        self.complete = 0
        self.refused = 0
        self.torn = []

    @staticmethod
    def is_complete_response(data):
        head, sep, rest = data.partition(b"\r\n\r\n")
        if not sep:
            return False
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                need = int(line.split(b":", 1)[1].strip())
                return len(rest) >= need
        return False  # every ObsServer response is Content-Length framed

    def run(self):
        while not self.stop_flag.is_set():
            data = b""
            try:
                with socket.create_connection(
                    (self.host, self.port), timeout=5.0
                ) as s:
                    s.sendall(
                        b"GET /metrics HTTP/1.1\r\n"
                        b"Connection: close\r\n\r\n"
                    )
                    s.settimeout(5.0)
                    while True:
                        chunk = s.recv(65536)
                        if not chunk:
                            break
                        data += chunk
            except OSError:
                if data:
                    self.torn.append(data[:200])
                else:
                    self.refused += 1
                    if self.stop_flag.wait(0.01):
                        break
                continue
            if not data:
                self.refused += 1
            elif self.is_complete_response(data):
                self.complete += 1
            else:
                self.torn.append(data[:200])


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--self-monitor", required=True)
    ap.add_argument("--inventory", default=None,
                    help="docs file for check_prom's inventory drift gate")
    ap.add_argument("--scripts-dir",
                    default=os.path.dirname(os.path.abspath(__file__)))
    ap.add_argument("--dir", default="/tmp/scrape_smoke",
                    help="scratch directory (recreated)")
    ap.add_argument("--startup-timeout", type=float, default=30.0)
    args = ap.parse_args()

    shutil.rmtree(args.dir, ignore_errors=True)
    os.makedirs(args.dir, exist_ok=True)
    out = lambda name: os.path.join(args.dir, name)  # noqa: E731
    checker = lambda name: os.path.join(args.scripts_dir, name)  # noqa: E731

    # A huge simulated window: the process only exits via our SIGTERM.
    proc = subprocess.Popen(
        [args.self_monitor, "100000", out("sm.prom"), out("sm_trace.json"),
         out("sm_metrics.json"), out("sm_flight.json"), out("sm.folded"),
         out("sm_critical_path.txt"), "-", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)

    stdout_lines = []
    stdout_lock = threading.Lock()

    def pump_stdout():
        for line in proc.stdout:
            with stdout_lock:
                stdout_lines.append(line.rstrip("\n"))

    pump = threading.Thread(target=pump_stdout, daemon=True)
    pump.start()

    def find_line(prefix):
        with stdout_lock:
            for line in stdout_lines:
                if line.startswith(prefix):
                    return line
        return None

    deadline = time.monotonic() + args.startup_timeout
    listen = None
    while listen is None and time.monotonic() < deadline:
        if proc.poll() is not None:
            pump.join(timeout=5)
            with stdout_lock:
                text = "\n".join(stdout_lines)
            return fail(f"self_monitor exited {proc.returncode} before "
                        f"announcing its port:\n{text}")
        listen = find_line(LISTEN_PREFIX)
        if listen is None:
            time.sleep(0.05)
    if listen is None:
        proc.kill()
        return fail("no 'obs server listening' line (ODA_NET=OFF build?)")

    host, _, port_text = listen[len(LISTEN_PREFIX):].rpartition(":")
    port = int(port_text)
    base = f"http://{host}:{port}"
    print(f"scrape_smoke: scraping {base}")
    problems = []

    # Let a couple of self-scrape passes land before asserting on them.
    time.sleep(1.0)

    # -- /metrics through the real checker, straight off the live URL.
    prom_args = [base + "/metrics", "--require-prefix", "oda_"]
    if args.inventory:
        prom_args += ["--inventory", args.inventory]
    ok, text = run_checker(checker("check_prom.py"), prom_args)
    print(text)
    if not ok:
        problems.append("/metrics failed check_prom.py")

    # -- /metrics.json
    code, body = get(base, "/metrics.json")
    try:
        doc = json.loads(body)
        if code != 200 or "families" not in doc:
            problems.append(f"/metrics.json: code {code} or missing families")
    except json.JSONDecodeError as e:
        problems.append(f"/metrics.json is not JSON: {e}")

    # -- /healthz
    code, body = get(base, "/healthz")
    if code not in (200, 503) or not body.strip():
        problems.append(f"/healthz: unexpected code {code} or empty report")

    # -- /trace and /flight through check_trace.py (live URL mode).
    for target in ("/trace", "/flight"):
        ok, text = run_checker(
            checker("check_trace.py"),
            [base + target, "--allow-missing-parents"])
        print(text)
        if not ok:
            problems.append(f"{target} failed check_trace.py")

    # -- /profile: folded stacks (or a clean 503 under ODA_PROFILE=OFF).
    code, body = get(base, "/profile?seconds=0.3", timeout=30.0)
    if code == 200:
        if body.strip() != "(no samples)":
            with open(out("live.folded"), "w", encoding="utf-8") as f:
                f.write(body)
            ok, text = run_checker(
                checker("check_folded.py"),
                [out("live.folded"), "--min-samples", "1"])
            print(text)
            if not ok:
                problems.append("/profile output failed check_folded.py")
    elif code != 503:
        problems.append(f"/profile: unexpected code {code}")

    # -- /varz
    code, body = get(base, "/varz")
    try:
        doc = json.loads(body)
        if code != 200 or doc.get("build", {}).get("net") is not True:
            problems.append(f"/varz: code {code} or build.net != true")
    except json.JSONDecodeError as e:
        problems.append(f"/varz is not JSON: {e}")

    # -- /selfscrape: the process's own series, queryable from its store.
    code, body = get(base, "/selfscrape")
    try:
        doc = json.loads(body)
        if code != 200 or doc.get("series_count", 0) <= 0:
            problems.append(
                f"/selfscrape: code {code}, series_count "
                f"{doc.get('series_count')!r}")
    except json.JSONDecodeError as e:
        problems.append(f"/selfscrape is not JSON: {e}")

    # -- Unknown path and non-GET method.
    code, _ = get(base, "/definitely-not-an-endpoint")
    if code != 404:
        problems.append(f"unknown path: expected 404, got {code}")
    code, _ = get(base, "/metrics", method="POST")
    if code != 405:
        problems.append(f"POST /metrics: expected 405, got {code}")

    if problems:
        proc.kill()
        for p in problems:
            print(f"scrape_smoke: {p}", file=sys.stderr)
        return fail(f"{len(problems)} endpoint problem(s)")

    # -- SIGTERM while scraping: the drain must never tear a response.
    scraper = ShutdownScraper(host, port)
    scraper.start()
    # Wait for the first completed scrape before firing the signal, so the
    # "shutdown saw complete scrapes" assertion can't flake on a loaded
    # machine where 200ms of wall time buys no scheduling.
    wait_deadline = time.monotonic() + 30.0
    while scraper.complete == 0 and time.monotonic() < wait_deadline:
        time.sleep(0.02)
    if scraper.complete == 0:
        proc.kill()
        scraper.stop_flag.set()
        return fail("scraper completed no request in 30s with the server up")
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        scraper.stop_flag.set()
        return fail("self_monitor did not exit within 120s of SIGTERM")
    time.sleep(0.5)  # drain any scrape still in flight against a dead port
    scraper.stop_flag.set()
    scraper.join(timeout=10)
    pump.join(timeout=10)

    with stdout_lock:
        text = "\n".join(stdout_lines)
    if proc.returncode != 0:
        return fail(f"self_monitor exited {proc.returncode} after SIGTERM "
                    f"(expected 0)\n{text}")
    if scraper.torn:
        return fail(f"{len(scraper.torn)} torn response(s) during shutdown; "
                    f"first: {scraper.torn[0]!r}")
    if scraper.complete == 0:
        return fail("shutdown scraper never completed a response "
                    "(started too late to observe the drain?)")
    if "obs server quiesced" not in text:
        return fail(f"stdout does not report the server quiescing:\n{text}")
    if "SIGTERM received" not in text:
        return fail(f"stdout does not acknowledge SIGTERM:\n{text}")

    print(f"scrape_smoke: OK — all endpoints valid; shutdown saw "
          f"{scraper.complete} complete scrape(s), {scraper.refused} clean "
          f"refusal(s), 0 torn")
    return 0


if __name__ == "__main__":
    sys.exit(main())
