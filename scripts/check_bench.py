#!/usr/bin/env python3
"""CI gate over a collect_bench.py results file (the store bench smoke).

Hard requirements (fail regardless of machine):
  * every --require metric must be present in the named bench's record
    (a refactor that silently drops frame_parallel_speedup or the
    frame_cols_* scaling curve from bench_store --json fails here);
  * metric values must be finite numbers.

Threshold requirements (--min NAME=VALUE) are enforced only when the
results file's meta.cpu_count is at least --min-cores (default 4): the
parallel speedup floors are meaningless on the 1-2 core runners where the
pool cannot win, but must hold on real multi-core CI machines.

Usage:
  check_bench.py bench_smoke.json --bench bench_store \
      --require frame_parallel_speedup --require collector_parallel_speedup \
      --require frame_cols_64_ms --require frame_cols_256_ms \
      --require frame_cols_1024_ms \
      --min frame_parallel_speedup=1.5 --min collector_parallel_speedup=1.2
"""

import argparse
import json
import math
import sys


def parse_min(spec):
    name, _, value = spec.partition("=")
    if not name or not value:
        raise argparse.ArgumentTypeError(f"expected NAME=VALUE, got {spec!r}")
    return name, float(value)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="collect_bench.py output file")
    parser.add_argument("--bench", default="bench_store",
                        help="bench record to check (default: bench_store)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="metric that must exist (repeatable)")
    parser.add_argument("--min", action="append", default=[], type=parse_min,
                        metavar="NAME=VALUE",
                        help="floor enforced on multi-core machines "
                             "(repeatable; implies --require NAME)")
    parser.add_argument("--min-cores", type=int, default=4,
                        help="cpu_count needed before --min floors apply")
    args = parser.parse_args()

    with open(args.results, encoding="utf-8") as f:
        doc = json.load(f)

    record = doc.get("benches", {}).get(args.bench)
    if record is None:
        print(f"check_bench: FAIL: no '{args.bench}' record in {args.results}",
              file=sys.stderr)
        return 1

    metrics = {}
    for m in record.get("metrics", []):
        metrics[m.get("name", "?")] = m.get("value")

    failures = 0
    required = list(args.require) + [name for name, _ in args.min]
    for name in required:
        value = metrics.get(name)
        if value is None:
            print(f"check_bench: FAIL: metric '{name}' missing from "
                  f"{args.bench}", file=sys.stderr)
            failures += 1
        elif not isinstance(value, (int, float)) or not math.isfinite(value):
            print(f"check_bench: FAIL: metric '{name}' is not finite: "
                  f"{value!r}", file=sys.stderr)
            failures += 1

    cpu_count = doc.get("meta", {}).get("cpu_count", 0)
    skipped = []
    if cpu_count >= args.min_cores:
        for name, floor in args.min:
            value = metrics.get(name)
            if not isinstance(value, (int, float)):
                continue  # already reported as missing above
            status = "ok" if value >= floor else "FAIL"
            print(f"check_bench: {status}: {name} = {value:.3f} "
                  f"(floor {floor}, {cpu_count} cores)")
            if value < floor:
                failures += 1
    else:
        for name, floor in args.min:
            value = metrics.get(name)
            shown = f"{value:.3f}" if isinstance(value, (int, float)) else "?"
            print(f"check_bench: skip floor {name} >= {floor} "
                  f"(only {cpu_count} cores, need {args.min_cores}); "
                  f"measured {shown}")
            skipped.append(f"{name}>={floor}")

    if failures:
        print(f"check_bench: {failures} failure(s)", file=sys.stderr)
        return 1
    if skipped:
        # A pass with floors skipped is weaker than a pass that enforced
        # them — say so explicitly rather than claiming a clean bill.
        print(f"check_bench: presence checks passed for {args.bench}; "
              f"{len(skipped)} floor check(s) SKIPPED on this "
              f"{cpu_count}-core machine (need {args.min_cores}): "
              + ", ".join(skipped))
    else:
        print(f"check_bench: all checks passed for {args.bench}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
