#!/usr/bin/env bash
# One-shot reproduction: configure, build, run the full test suite, and
# regenerate every paper artifact and experiment into ./artifacts/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure

mkdir -p artifacts
for b in build/bench/bench_*; do
  name="$(basename "$b")"
  echo "== ${name} =="
  "$b" | tee "artifacts/${name}.txt"
done

echo
echo "artifacts written to ./artifacts/"
