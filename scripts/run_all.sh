#!/usr/bin/env bash
# One-shot reproduction: configure, build, run the full test suite, and
# regenerate every paper artifact and experiment into ./artifacts/.
#
# Usage: scripts/run_all.sh [preset]
#   With a preset (release | asan-ubsan | tsan | lint) it builds and tests
#   via `cmake --preset`; without one it configures ./build with the default
#   generator (Ninja is used when available but is not required).
set -euo pipefail
cd "$(dirname "$0")/.."

PRESET="${1:-}"

if [[ -n "$PRESET" ]]; then
  BUILD_DIR="build-${PRESET}"
  cmake --preset "$PRESET"
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR" --output-on-failure
else
  BUILD_DIR="build"
  GENERATOR=()
  if command -v ninja >/dev/null 2>&1; then
    GENERATOR=(-G Ninja)
  fi
  cmake -B "$BUILD_DIR" "${GENERATOR[@]}"
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR" --output-on-failure
fi

# Sanitizer/lint presets skip the bench harness (ODA_BUILD_BENCH=OFF); only
# regenerate artifacts when the benchmarks were actually built.
if compgen -G "$BUILD_DIR/bench/bench_*" >/dev/null; then
  mkdir -p artifacts
  for b in "$BUILD_DIR"/bench/bench_*; do
    [[ -x "$b" ]] || continue
    name="$(basename "$b")"
    echo "== ${name} =="
    "$b" | tee "artifacts/${name}.txt"
  done
  echo
  echo "artifacts written to ./artifacts/"
else
  echo "bench harness not built for preset '${PRESET:-default}'; skipping artifacts"
fi
