#!/usr/bin/env python3
"""Validates a folded-stack profile file (SamplingProfiler::dump_folded).

Checks, without any third-party dependency:
  * every line matches  `stack count`  where count is a positive integer
    and stack is `frame(;frame)*` with no empty frames (the flamegraph.pl
    input contract);
  * frames contain no spaces or semicolons beyond the separators (the
    profiler sanitizes both out of symbol names);
  * stacks are unique and sorted (dump_folded aggregates by stack string);
  * with --min-lines N: at least N distinct stacks;
  * with --min-samples N: counts sum to at least N (guards a profiler run
    that started but never sampled).

Usage: check_folded.py <profile.folded> [--min-lines N] [--min-samples N]
Exit status 0 when the file is valid, 1 otherwise (problems on stderr).
"""

import argparse
import sys


def main():
    ap = argparse.ArgumentParser(
        description="Validate a folded-stack profile file")
    ap.add_argument("path", help="folded stacks (dump_folded output)")
    ap.add_argument("--min-lines", type=int, default=0, metavar="N",
                    help="require at least N distinct stacks")
    ap.add_argument("--min-samples", type=int, default=0, metavar="N",
                    help="require counts to sum to at least N")
    args = ap.parse_args()

    try:
        with open(args.path, "r", encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as exc:
        print("check_folded: cannot read %s: %s" % (args.path, exc),
              file=sys.stderr)
        return 1

    problems = []
    stacks = []
    total = 0
    for lineno, line in enumerate(lines, 1):
        if not line:
            problems.append("%d: empty line" % lineno)
            continue
        # Rightmost space splits stack from count: frames never contain
        # spaces (the profiler rewrites them to '_').
        stack, sep, count = line.rpartition(" ")
        if not sep or not stack:
            problems.append("%d: no `stack count` separator: %r"
                            % (lineno, line))
            continue
        if not count.isdigit() or int(count) <= 0:
            problems.append("%d: count %r is not a positive integer"
                            % (lineno, count))
            continue
        if " " in stack:
            problems.append("%d: space inside stack %r" % (lineno, stack))
            continue
        frames = stack.split(";")
        if any(not fr for fr in frames):
            problems.append("%d: empty frame in stack %r" % (lineno, stack))
            continue
        stacks.append(stack)
        total += int(count)

    for prev, cur in zip(stacks, stacks[1:]):
        if cur == prev:
            problems.append("duplicate stack %r" % cur)
        elif cur < prev:
            problems.append("stacks not sorted: %r after %r" % (cur, prev))

    if len(stacks) < args.min_lines:
        problems.append("%d distinct stack(s) < --min-lines %d"
                        % (len(stacks), args.min_lines))
    if total < args.min_samples:
        problems.append("%d sample(s) < --min-samples %d"
                        % (total, args.min_samples))

    for p in problems:
        print("check_folded: %s" % p, file=sys.stderr)
    if not problems:
        print("check_folded: OK — %d stack(s), %d sample(s)"
              % (len(stacks), total))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
