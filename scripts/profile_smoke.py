#!/usr/bin/env python3
"""CI profiling smoke gate: runs a google-benchmark binary twice — once
plain, once with the sampling profiler and tracer armed — and fails when:

  * the profiled run's folded-stack output is missing, malformed, or
    near-empty (delegates to check_folded.py);
  * the trace export yields no critical-path report (analyze_trace.py);
  * the profiler-enabled runtime exceeds the disabled runtime by more than
    --max-overhead (default 10%, the bound docs/OBSERVABILITY.md states).

Runtime is the sum of per-benchmark real_time from the benchmark's own
JSON output, not process wall clock: dump-time symbolization and process
startup are excluded, so the gate measures what the claim says — the
steady-state cost of being sampled.

The default filter excludes the BM_TraceSpan* ladder because those cases
toggle and clear the global tracer mid-run, which would empty the
--trace-out artifact.

Usage:
  profile_smoke.py --bench build/bench/bench_pipeline [--max-overhead 0.10]
                   [--filter REGEX] [--outdir DIR] [--min-samples N]
"""

import argparse
import json
import os
import subprocess
import sys

DEFAULT_FILTER = ("BM_BusPublish|BM_StoreInsert|BM_StoreFrame|"
                  "BM_CollectorPass|BM_SimStep")

UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def run_bench(bench, json_out, filter_re, extra):
    cmd = [bench, "--quick", "--json", json_out,
           "--benchmark_filter=" + filter_re] + extra
    print("profile_smoke: $ " + " ".join(cmd))
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT)
    if proc.returncode != 0:
        sys.stdout.buffer.write(proc.stdout)
        print("profile_smoke: %s exited %d" % (cmd[0], proc.returncode),
              file=sys.stderr)
        return False
    return True


def total_real_seconds(json_path):
    with open(json_path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    total = 0.0
    cases = 0
    for b in doc.get("benchmarks", []):
        if b.get("aggregate_name"):
            continue  # mean/median/stddev rows double-count
        scale = UNIT_SECONDS.get(b.get("time_unit", "ns"), 1e-9)
        # Per-iteration real time x iterations = the case's measured span.
        total += float(b.get("real_time", 0.0)) * scale * \
            float(b.get("iterations", 0))
        cases += 1
    return total, cases


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    ap = argparse.ArgumentParser(description="Profiler-overhead smoke gate")
    ap.add_argument("--bench", required=True,
                    help="google-benchmark binary (bench_pipeline)")
    ap.add_argument("--max-overhead", type=float, default=0.10,
                    metavar="FRAC",
                    help="allowed fractional slowdown (default 0.10)")
    ap.add_argument("--filter", default=DEFAULT_FILTER, metavar="REGEX",
                    help="benchmark_filter for both runs")
    ap.add_argument("--outdir", default=".", metavar="DIR",
                    help="where artifacts (folded/trace/json) are written")
    ap.add_argument("--min-samples", type=int, default=10, metavar="N",
                    help="minimum profiler samples in the folded output")
    args = ap.parse_args()

    os.makedirs(args.outdir, exist_ok=True)
    base_json = os.path.join(args.outdir, "smoke_base.json")
    prof_json = os.path.join(args.outdir, "smoke_prof.json")
    folded = os.path.join(args.outdir, "smoke.folded")
    trace = os.path.join(args.outdir, "smoke_trace.json")

    if not run_bench(args.bench, base_json, args.filter, []):
        return 1
    if not run_bench(args.bench, prof_json, args.filter,
                     ["--profile-out", folded, "--trace-out", trace]):
        return 1

    failures = 0

    rc = subprocess.run([sys.executable,
                         os.path.join(here, "check_folded.py"), folded,
                         "--min-lines", "1",
                         "--min-samples", str(args.min_samples)]).returncode
    if rc != 0:
        print("profile_smoke: folded-output validation FAILED",
              file=sys.stderr)
        failures += 1

    rc = subprocess.run([sys.executable,
                         os.path.join(here, "analyze_trace.py"), trace,
                         "--min-traces", "1", "--top", "5",
                         "--max-reports", "3"]).returncode
    if rc != 0:
        print("profile_smoke: critical-path analysis FAILED",
              file=sys.stderr)
        failures += 1

    base_s, base_n = total_real_seconds(base_json)
    prof_s, prof_n = total_real_seconds(prof_json)
    if base_n == 0 or prof_n == 0 or base_s <= 0.0:
        print("profile_smoke: no benchmark cases measured (filter %r)"
              % args.filter, file=sys.stderr)
        failures += 1
    else:
        overhead = (prof_s - base_s) / base_s
        print("profile_smoke: baseline %.3fs (%d cases), profiled %.3fs "
              "(%d cases), overhead %+.1f%% (limit +%.1f%%)"
              % (base_s, base_n, prof_s, prof_n, 100.0 * overhead,
                 100.0 * args.max_overhead))
        if overhead > args.max_overhead:
            print("profile_smoke: overhead gate FAILED", file=sys.stderr)
            failures += 1

    if failures == 0:
        print("profile_smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
