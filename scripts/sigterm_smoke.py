#!/usr/bin/env python3
"""SIGTERM graceful-shutdown regression test for examples/self_monitor.

Spawns self_monitor with a long simulated window and a WAL directory, sends
SIGTERM once the run is underway, and asserts:

  * the process exits 0 (graceful path, not a crash),
  * stdout acknowledges the signal ("SIGTERM received") and the WAL flush,
  * `wal_ingest inspect` over the directory exits 0 — an orderly stop
    flushed and fsynced everything, so recovery finds no torn tail.

With --http the live introspection plane is exercised too: self_monitor is
started with an ephemeral HTTP port, a background scraper hammers /metrics
across the SIGTERM, and the script additionally asserts:

  * no scrape observed during the drain is torn (a non-empty response is
    always complete; a refused/reset connection with zero bytes is fine),
  * stdout shows the server quiescing BEFORE the WAL flush — the shutdown
    order that keeps scrapers from racing the store teardown.

Usage: sigterm_smoke.py --self-monitor build/examples/self_monitor \
                        --wal-ingest build/examples/wal_ingest \
                        --dir /tmp/sigterm_wal [--http]
"""

import argparse
import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time

LISTEN_PREFIX = "obs server listening on "


class ShutdownScraper(threading.Thread):
    """Hammers /metrics over raw sockets, recording torn responses."""

    def __init__(self, host, port):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.stop_flag = threading.Event()
        self.complete = 0
        self.refused = 0
        self.torn = []

    @staticmethod
    def is_complete_response(data):
        head, sep, rest = data.partition(b"\r\n\r\n")
        if not sep:
            return False
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                need = int(line.split(b":", 1)[1].strip())
                return len(rest) >= need
        return False  # ObsServer responses are always Content-Length framed

    def run(self):
        while not self.stop_flag.is_set():
            data = b""
            try:
                with socket.create_connection(
                    (self.host, self.port), timeout=5.0
                ) as s:
                    s.sendall(
                        b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"
                    )
                    s.settimeout(5.0)
                    while True:
                        chunk = s.recv(65536)
                        if not chunk:
                            break
                        data += chunk
            except OSError:
                if data:
                    self.torn.append(data[:200])
                else:
                    self.refused += 1
                    if self.stop_flag.wait(0.01):
                        break
                continue
            if not data:
                self.refused += 1
            elif self.is_complete_response(data):
                self.complete += 1
            else:
                self.torn.append(data[:200])


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--self-monitor", required=True)
    ap.add_argument("--wal-ingest", required=True)
    ap.add_argument("--dir", required=True, help="WAL directory (recreated)")
    ap.add_argument("--startup-wait", type=float, default=2.0,
                    help="seconds to let the run get underway before SIGTERM")
    ap.add_argument("--http", action="store_true",
                    help="also scrape the obs server across the shutdown")
    args = ap.parse_args()

    shutil.rmtree(args.dir, ignore_errors=True)
    os.makedirs(args.dir, exist_ok=True)
    out = lambda name: os.path.join(args.dir, name)  # noqa: E731

    # 1000 simulated hours: far more than the startup wait allows, so the
    # only way the process exits is the SIGTERM path.
    cmd = [args.self_monitor, "1000", out("sm.prom"), out("sm_trace.json"),
           out("sm_metrics.json"), out("sm_flight.json"), out("sm.folded"),
           out("sm_critical_path.txt"), args.dir]
    if args.http:
        cmd.append("0")
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)

    stdout_lines = []
    stdout_lock = threading.Lock()

    def pump_stdout():
        for line in proc.stdout:
            with stdout_lock:
                stdout_lines.append(line.rstrip("\n"))

    pump = threading.Thread(target=pump_stdout, daemon=True)
    pump.start()

    scraper = None
    if args.http:
        deadline = time.monotonic() + 30.0
        listen = None
        while listen is None and time.monotonic() < deadline:
            if proc.poll() is not None:
                pump.join(timeout=5)
                with stdout_lock:
                    text = "\n".join(stdout_lines)
                print(f"self_monitor exited {proc.returncode} before "
                      f"announcing its port:\n{text}")
                return 1
            with stdout_lock:
                for line in stdout_lines:
                    if line.startswith(LISTEN_PREFIX):
                        listen = line
                        break
            if listen is None:
                time.sleep(0.05)
        if listen is None:
            proc.kill()
            print("no 'obs server listening' line (ODA_NET=OFF build?)")
            return 1
        host, _, port_text = listen[len(LISTEN_PREFIX):].rpartition(":")
        scraper = ShutdownScraper(host, int(port_text))
        scraper.start()

    time.sleep(args.startup_wait)
    if scraper is not None:
        # Don't fire the signal before the scraper has landed one complete
        # request: the post-shutdown "complete > 0" assertion must not
        # flake on a loaded machine.
        wait_deadline = time.monotonic() + 30.0
        while scraper.complete == 0 and time.monotonic() < wait_deadline:
            time.sleep(0.02)
        if scraper.complete == 0:
            proc.kill()
            scraper.stop_flag.set()
            print("scraper completed no request in 30s with the server up")
            return 1
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        print("self_monitor did not exit within 120s of SIGTERM")
        return 1
    if scraper is not None:
        time.sleep(0.5)  # let in-flight scrapes resolve against a dead port
        scraper.stop_flag.set()
        scraper.join(timeout=10)
    pump.join(timeout=10)
    with stdout_lock:
        stdout = "\n".join(stdout_lines)

    if proc.returncode != 0:
        print(f"self_monitor exited {proc.returncode} after SIGTERM "
              f"(expected 0)\n{stdout}")
        return 1
    if "SIGTERM received" not in stdout:
        print(f"stdout does not acknowledge SIGTERM:\n{stdout}")
        return 1
    if "wal: flushed and fsynced" not in stdout:
        print(f"stdout does not report the WAL flush:\n{stdout}")
        return 1

    if scraper is not None:
        if scraper.torn:
            print(f"{len(scraper.torn)} torn response(s) during shutdown; "
                  f"first: {scraper.torn[0]!r}")
            return 1
        if scraper.complete == 0:
            print("shutdown scraper never completed a response")
            return 1
        quiesce = stdout.find("obs server quiesced")
        flush = stdout.find("wal: flushed and fsynced")
        if quiesce == -1:
            print(f"stdout does not report the server quiescing:\n{stdout}")
            return 1
        if quiesce > flush:
            print("server quiesced AFTER the WAL flush — shutdown order "
                  f"violated:\n{stdout}")
            return 1
        print(f"sigterm_smoke: shutdown scrapes: {scraper.complete} "
              f"complete, {scraper.refused} refused, 0 torn")

    ins = subprocess.run([args.wal_ingest, "inspect", args.dir],
                         capture_output=True, text=True)
    print(ins.stdout.strip())
    if ins.returncode != 0:
        print("inspect reports a truncated tail after graceful SIGTERM stop")
        return 1
    print("sigterm_smoke: graceful shutdown, clean WAL tail")
    return 0


if __name__ == "__main__":
    sys.exit(main())
