#!/usr/bin/env python3
"""SIGTERM graceful-shutdown regression test for examples/self_monitor.

Spawns self_monitor with a long simulated window and a WAL directory, sends
SIGTERM once the run is underway, and asserts:

  * the process exits 0 (graceful path, not a crash),
  * stdout acknowledges the signal ("SIGTERM received") and the WAL flush,
  * `wal_ingest inspect` over the directory exits 0 — an orderly stop
    flushed and fsynced everything, so recovery finds no torn tail.

Usage: sigterm_smoke.py --self-monitor build/examples/self_monitor \
                        --wal-ingest build/examples/wal_ingest \
                        --dir /tmp/sigterm_wal
"""

import argparse
import os
import shutil
import signal
import subprocess
import sys
import time


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--self-monitor", required=True)
    ap.add_argument("--wal-ingest", required=True)
    ap.add_argument("--dir", required=True, help="WAL directory (recreated)")
    ap.add_argument("--startup-wait", type=float, default=2.0,
                    help="seconds to let the run get underway before SIGTERM")
    args = ap.parse_args()

    shutil.rmtree(args.dir, ignore_errors=True)
    os.makedirs(args.dir, exist_ok=True)
    out = lambda name: os.path.join(args.dir, name)  # noqa: E731

    # 1000 simulated hours: far more than the startup wait allows, so the
    # only way the process exits is the SIGTERM path.
    proc = subprocess.Popen(
        [args.self_monitor, "1000", out("sm.prom"), out("sm_trace.json"),
         out("sm_metrics.json"), out("sm_flight.json"), out("sm.folded"),
         out("sm_critical_path.txt"), args.dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    time.sleep(args.startup_wait)
    proc.send_signal(signal.SIGTERM)
    try:
        stdout, _ = proc.communicate(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        print("self_monitor did not exit within 120s of SIGTERM")
        return 1

    if proc.returncode != 0:
        print(f"self_monitor exited {proc.returncode} after SIGTERM "
              f"(expected 0)\n{stdout}")
        return 1
    if "SIGTERM received" not in stdout:
        print(f"stdout does not acknowledge SIGTERM:\n{stdout}")
        return 1
    if "wal: flushed and fsynced" not in stdout:
        print(f"stdout does not report the WAL flush:\n{stdout}")
        return 1

    ins = subprocess.run([args.wal_ingest, "inspect", args.dir],
                         capture_output=True, text=True)
    print(ins.stdout.strip())
    if ins.returncode != 0:
        print("inspect reports a truncated tail after graceful SIGTERM stop")
        return 1
    print("sigterm_smoke: graceful shutdown, clean WAL tail")
    return 0


if __name__ == "__main__":
    sys.exit(main())
