#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file (as emitted by obs::Tracer /
obs::FlightRecorder via chrome_trace_json).

Checks, without any third-party dependency:
  * the file parses as JSON and exposes a "traceEvents" array (or is a bare
    array);
  * every event has a string "name"/"ph" and numeric "ts"/"pid"/"tid";
  * timestamps are non-negative, finite, and within a sane epoch window
    (< 100 years of microseconds — catches garbage/overflowed clocks);
  * "X" (complete) events carry a non-negative finite "dur";
  * args.{trace_id,span_id,parent_id} are 16-char hex strings when present;
  * span ids are unique across span events;
  * every nonzero parent_id resolves to a recorded span with the same
    trace_id (relaxed by --allow-missing-parents for flight-recorder dumps,
    whose ring eviction may orphan parents);
  * flow events pair up: every flow id appears with both "s" and "f";
  * with --min-events N: at least N non-flow events are present.

Usage: check_trace.py <trace.json | http://host:port/trace | ->
                      [--allow-missing-parents] [--min-events N]
The input may be a file path, a live http(s):// URL (scraped directly from
a running ObsServer's /trace or /flight endpoint), or "-" for stdin.
Exit status 0 when the file is valid, 1 otherwise (problems on stderr).
"""

import argparse
import json
import math
import re
import sys

HEX_ID = re.compile(r"^[0-9a-f]{16}$")
# 100 years in microseconds: any steady-clock delta beyond this is garbage.
MAX_EPOCH_US = 100 * 365 * 24 * 3600 * 1e6
ZERO_ID = "0" * 16


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def read_source(source):
    """Text from a file path, a live http(s):// URL, or "-" for stdin."""
    if source == "-":
        return sys.stdin.read()
    if source.startswith(("http://", "https://")):
        import urllib.request

        with urllib.request.urlopen(source, timeout=10) as resp:
            return resp.read().decode("utf-8")
    with open(source, encoding="utf-8") as f:
        return f.read()


def check(path, allow_missing_parents=False, min_events=0):
    problems = []
    try:
        doc = json.loads(read_source(path))
    except (OSError, json.JSONDecodeError) as e:
        return [f"cannot parse {path}: {e}"], 0

    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return [f"{path}: no traceEvents array"], 0
    elif isinstance(doc, list):
        events = doc
    else:
        return [f"{path}: top level is neither object nor array"], 0

    spans = {}  # span_id -> (index, trace_id)
    flow_phases = {}  # flow id -> set of phases seen
    n_real = 0  # events that are not flow glue

    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        ph = ev.get("ph")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing/empty name")
        if not isinstance(ph, str) or not ph:
            problems.append(f"{where}: missing ph")
            continue
        for field in ("ts", "pid", "tid"):
            if not is_number(ev.get(field)):
                problems.append(f"{where} ({name!r}): missing numeric {field}")
        ts = ev.get("ts")
        if is_number(ts) and not (0 <= ts <= MAX_EPOCH_US and math.isfinite(ts)):
            problems.append(f"{where} ({name!r}): timestamp {ts} out of epoch")

        if ph in ("s", "f", "t"):
            flow_id = ev.get("id")
            if not isinstance(flow_id, str) or not flow_id:
                problems.append(f"{where}: flow event without id")
            else:
                flow_phases.setdefault(flow_id, set()).add(ph)
            continue

        n_real += 1
        if ph == "X":
            dur = ev.get("dur")
            if not is_number(dur) or dur < 0 or not math.isfinite(dur):
                problems.append(f"{where} ({name!r}): X event with bad dur {dur!r}")

        args = ev.get("args")
        if args is None:
            continue
        if not isinstance(args, dict):
            problems.append(f"{where} ({name!r}): args is not an object")
            continue
        ids = {}
        for field in ("trace_id", "span_id", "parent_id"):
            v = args.get(field)
            if v is None:
                continue
            if not isinstance(v, str) or not HEX_ID.match(v):
                problems.append(
                    f"{where} ({name!r}): args.{field} {v!r} is not 16-hex"
                )
            else:
                ids[field] = v
        span_id = ids.get("span_id")
        if span_id is not None and span_id != ZERO_ID and ph == "X":
            if span_id in spans:
                problems.append(
                    f"{where} ({name!r}): duplicate span id {span_id} "
                    f"(first at event {spans[span_id][0]})"
                )
            else:
                spans[span_id] = (i, ids.get("trace_id", ZERO_ID))

    # Parent resolution: every nonzero parent must be a recorded span of the
    # same trace. Ring-evicted parents are tolerated under
    # --allow-missing-parents (flight-recorder dumps).
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            continue
        args = ev.get("args")
        if not isinstance(args, dict):
            continue
        parent = args.get("parent_id")
        if not isinstance(parent, str) or parent == ZERO_ID:
            continue
        if parent not in spans:
            if not allow_missing_parents:
                problems.append(
                    f"event {i} ({ev.get('name')!r}): parent {parent} does "
                    f"not resolve to any recorded span"
                )
            continue
        trace = args.get("trace_id", ZERO_ID)
        parent_trace = spans[parent][1]
        if trace != parent_trace:
            problems.append(
                f"event {i} ({ev.get('name')!r}): trace {trace} differs "
                f"from parent's trace {parent_trace}"
            )

    for flow_id, phases in sorted(flow_phases.items()):
        if "s" not in phases or "f" not in phases:
            problems.append(
                f"flow id {flow_id}: incomplete pair (saw {sorted(phases)})"
            )

    if n_real < min_events:
        problems.append(
            f"{path}: {n_real} events, required at least {min_events}"
        )
    return problems, n_real


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "file",
        help="file path, live http(s):// URL, or - for stdin",
    )
    parser.add_argument(
        "--allow-missing-parents",
        action="store_true",
        help="tolerate parent ids that left the buffer (flight-recorder "
        "ring dumps)",
    )
    parser.add_argument(
        "--min-events",
        type=int,
        default=0,
        help="require at least this many non-flow events",
    )
    args = parser.parse_args()

    problems, n_events = check(
        args.file, args.allow_missing_parents, args.min_events
    )
    if problems:
        for p in problems:
            print(f"check_trace: {p}", file=sys.stderr)
        print(
            f"check_trace: FAIL — {len(problems)} problem(s) in {args.file}",
            file=sys.stderr,
        )
        return 1
    print(f"check_trace: OK — {n_events} events in {args.file}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
