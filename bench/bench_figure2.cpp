// Figure 2 regenerator: the four-types staircase, annotated with *measured*
// compute cost of this library's reference implementation of each type on
// the same telemetry — an empirical demonstration of the paper's claim that
// sophistication (and difficulty) grows along the staircase.
#include <chrono>
#include <cstdio>
#include <map>

#include "analytics/descriptive/kpi.hpp"
#include "analytics/diagnostic/anomaly.hpp"
#include "analytics/predictive/backtest.hpp"
#include "analytics/prescriptive/cooling.hpp"
#include "analytics/prescriptive/controller.hpp"
#include "core/figures.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

#include "bench_util.hpp"

int main(int argc, char** argv) {
  oda::bench::BenchReport oda_report("bench_figure2", argc, argv);
  using namespace oda;
  using Clock = std::chrono::steady_clock;

  // Shared telemetry substrate: one simulated day.
  sim::ClusterParams params;
  params.seed = 2026;
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store;
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);
  while (cluster.now() < kDay) {
    cluster.step();
    collector.collect();
  }
  std::vector<std::string> prefixes;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    prefixes.push_back(cluster.node(i).path());
  }

  std::map<core::AnalyticsType, double> cost_ms;
  const auto time_it = [](auto&& fn) {
    const auto start = Clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };

  // Descriptive: interval KPIs.
  cost_ms[core::AnalyticsType::kDescriptive] = time_it([&] {
    analytics::compute_pue(store, 0, cluster.now());
    analytics::compute_utilization(store, 0, cluster.now());
  });

  // Diagnostic: train + scan the node anomaly monitor.
  cost_ms[core::AnalyticsType::kDiagnostic] = time_it([&] {
    Rng rng(7);
    analytics::NodeAnomalyMonitor monitor({}, prefixes);
    monitor.train(store, kHour, kDay, rng);
    monitor.scan(store, cluster.now());
  });

  // Predictive: backtest the forecaster suite on facility power.
  cost_ms[core::AnalyticsType::kPredictive] = time_it([&] {
    const auto power =
        store.query_aggregated("facility/total_power", 0, cluster.now(),
                               5 * kMinute, telemetry::Aggregation::kMean);
    analytics::BacktestParams bp;
    bp.min_train = power.values.size() / 2;
    analytics::backtest_all(analytics::standard_forecaster_specs(288),
                            power.values, bp);
  });

  // Prescriptive: a closed-loop optimization episode (12 controller moves
  // over two more simulated days).
  cost_ms[core::AnalyticsType::kPrescriptive] = time_it([&] {
    analytics::ControlLoop loop(cluster, store);
    analytics::CoolingSetpointOptimizer::Params op;
    op.period = 2 * kHour;
    loop.add(std::make_shared<analytics::CoolingSetpointOptimizer>(op));
    const TimePoint end = cluster.now() + 2 * kDay;
    while (cluster.now() < end) {
      cluster.step();
      collector.collect();
      loop.tick();
    }
  });

  for (const auto& [type, ms] : cost_ms) {
    oda_report.add(std::string("cost_") + core::to_string(type), ms, "ms");
  }
  std::printf("%s\n", core::render_figure2(cost_ms).c_str());
  std::printf("note: prescriptive cost includes driving the plant for two\n"
              "simulated days of closed-loop control; the staircase ordering\n"
              "descriptive < diagnostic/predictive < prescriptive is the\n"
              "measured shape the figure claims.\n");
  return 0;
}
