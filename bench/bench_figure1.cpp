// Figure 1 regenerator: the four pillars of energy-efficient HPC, annotated
// with the live subsystems of the simulated facility that realize each
// pillar (proof the substrate covers all four).
#include <cstdio>

#include "core/figures.hpp"
#include "sim/cluster.hpp"

#include "bench_util.hpp"

int main(int argc, char** argv) {
  oda::bench::BenchReport oda_report("bench_figure1", argc, argv);
  using namespace oda;
  std::printf("%s\n", core::render_figure1().c_str());

  // Show the pillars are live: count sensors per pillar in the simulator.
  sim::ClusterParams params;
  sim::ClusterSimulation cluster(params);
  std::size_t infra = 0, hardware = 0, software = 0;
  for (const auto& s : cluster.sensors()) {
    if (s.path.rfind("facility/", 0) == 0 || s.path.rfind("weather/", 0) == 0) {
      ++infra;
    } else if (s.path.rfind("scheduler/", 0) == 0) {
      ++software;
    } else {
      ++hardware;  // rack*/node*, network, cluster aggregates
    }
  }
  oda_report.add("sensors_building_infrastructure",
                 static_cast<double>(infra), "sensors");
  oda_report.add("sensors_system_hardware", static_cast<double>(hardware),
                 "sensors");
  oda_report.add("sensors_system_software", static_cast<double>(software),
                 "sensors");
  std::printf("live sensors per pillar in the reference simulation:\n");
  std::printf("  building-infrastructure : %zu\n", infra);
  std::printf("  system-hardware         : %zu\n", hardware);
  std::printf("  system-software         : %zu\n", software);
  std::printf("  applications            : per-job records via the scheduler\n");
  return 0;
}
