// Shared bench-output helper: every bench accepts `--json <path>` and emits
// a machine-readable result file next to its human-readable stdout artifact.
//
//   * Plain artifact benches construct a BenchReport, add() named metrics,
//     and the destructor writes {"bench", "wall_seconds", "metrics": [...]}
//     when --json was passed (and nothing otherwise).
//   * google-benchmark benches use ODA_BENCH_MAIN(), which translates
//     `--json <path>` into --benchmark_out=<path>/--benchmark_out_format=json
//     so the flag is uniform across the suite.
//
// scripts/collect_bench.py aggregates either schema into BENCH_results.json.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace oda::bench {

/// Returns the value following `--json` in argv, or "" when absent.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

class BenchReport {
 public:
  /// Parses --json from the command line; metrics are dropped if absent.
  BenchReport(std::string bench_name, int argc, char** argv)
      : name_(std::move(bench_name)),
        path_(json_path_from_args(argc, argv)),
        start_(std::chrono::steady_clock::now()) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { write(); }

  void add(const std::string& metric, double value,
           const std::string& unit = "") {
    metrics_.push_back({metric, value, unit});
  }

  /// Writes the JSON file now (idempotent; also called by the destructor).
  void write() {
    if (path_.empty() || written_) return;
    written_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_util: cannot write %s\n", path_.c_str());
      return;
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"wall_seconds\": %.6f,\n",
                 name_.c_str(), wall);
    std::fprintf(f, "  \"metrics\": [");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"value\": %.17g, \"unit\": \"%s\"}",
                   i == 0 ? "" : ",", m.name.c_str(), m.value, m.unit.c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };

  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Metric> metrics_;
  bool written_ = false;
};

/// Rewrites `--json <path>` into google-benchmark's native output flags.
/// Returns the adjusted argument vector (pointers into `storage`).
inline std::vector<char*> translate_json_flag(int argc, char** argv,
                                              std::vector<std::string>& storage) {
  storage.clear();
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      storage.push_back("--benchmark_out=" + std::string(argv[i + 1]));
      storage.push_back("--benchmark_out_format=json");
      ++i;
    } else {
      storage.push_back(arg);
    }
  }
  std::vector<char*> out;
  out.reserve(storage.size());
  for (auto& s : storage) out.push_back(s.data());
  return out;
}

}  // namespace oda::bench

/// main() for google-benchmark benches with --json support.
#define ODA_BENCH_MAIN()                                              \
  int main(int argc, char** argv) {                                   \
    std::vector<std::string> oda_bench_storage;                       \
    std::vector<char*> oda_bench_args =                               \
        ::oda::bench::translate_json_flag(argc, argv, oda_bench_storage); \
    int oda_bench_argc = static_cast<int>(oda_bench_args.size());     \
    ::benchmark::Initialize(&oda_bench_argc, oda_bench_args.data());  \
    if (::benchmark::ReportUnrecognizedArguments(oda_bench_argc,      \
                                                 oda_bench_args.data())) \
      return 1;                                                       \
    ::benchmark::RunSpecifiedBenchmarks();                            \
    ::benchmark::Shutdown();                                          \
    return 0;                                                         \
  }
