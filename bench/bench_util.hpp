// Shared bench-output helper: every bench accepts `--json <path>` and emits
// a machine-readable result file next to its human-readable stdout artifact.
//
//   * Plain artifact benches construct a BenchReport, add() named metrics,
//     and the destructor writes {"bench", "wall_seconds", "metrics": [...]}
//     when --json was passed (and nothing otherwise).
//   * google-benchmark benches use ODA_BENCH_MAIN(), which translates
//     `--json <path>` into --benchmark_out=<path>/--benchmark_out_format=json
//     so the flag is uniform across the suite, and additionally peels off:
//       --quick            run every case briefly (CI smoke pace)
//       --profile-out <p>  sample the whole run, write folded stacks to <p>
//       --trace-out <p>    enable the tracer, write Chrome trace JSON to <p>
//
// scripts/collect_bench.py aggregates either schema into BENCH_results.json;
// scripts/profile_smoke.py drives the --quick/--profile-out/--trace-out
// combination to gate profiler overhead in CI.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace oda::bench {

/// Returns the value following `--json` in argv, or "" when absent.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

class BenchReport {
 public:
  /// Parses --json from the command line; metrics are dropped if absent.
  BenchReport(std::string bench_name, int argc, char** argv)
      : name_(std::move(bench_name)),
        path_(json_path_from_args(argc, argv)),
        start_(std::chrono::steady_clock::now()) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { write(); }

  void add(const std::string& metric, double value,
           const std::string& unit = "") {
    metrics_.push_back({metric, value, unit});
  }

  /// Writes the JSON file now (idempotent; also called by the destructor).
  void write() {
    if (path_.empty() || written_) return;
    written_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_util: cannot write %s\n", path_.c_str());
      return;
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"wall_seconds\": %.6f,\n",
                 name_.c_str(), wall);
    std::fprintf(f, "  \"metrics\": [");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"value\": %.17g, \"unit\": \"%s\"}",
                   i == 0 ? "" : ",", m.name.c_str(), m.value, m.unit.c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };

  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Metric> metrics_;
  bool written_ = false;
};

/// Cross-cutting observability flags peeled off by ODA_BENCH_MAIN before
/// google-benchmark sees the argument vector.
struct BenchRunOptions {
  std::string profile_out;  ///< --profile-out <path>: folded stacks
  std::string trace_out;    ///< --trace-out <path>: Chrome trace JSON
};

/// Rewrites `--json <path>` into google-benchmark's native output flags,
/// expands `--quick` into a short min-time, and strips the profiler/tracer
/// flags into `opts`. Returns the adjusted argv (pointers into `storage`).
inline std::vector<char*> translate_bench_flags(
    int argc, char** argv, std::vector<std::string>& storage,
    BenchRunOptions& opts) {
  storage.clear();
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      storage.push_back("--benchmark_out=" + std::string(argv[i + 1]));
      storage.push_back("--benchmark_out_format=json");
      ++i;
    } else if (arg == "--quick") {
      // Bare seconds value: the pinned libbenchmark predates the "0.01s"
      // suffix syntax.
      storage.push_back("--benchmark_min_time=0.01");
    } else if (arg == "--profile-out" && i + 1 < argc) {
      opts.profile_out = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      opts.trace_out = argv[++i];
    } else {
      storage.push_back(arg);
    }
  }
  std::vector<char*> out;
  out.reserve(storage.size());
  for (auto& s : storage) out.push_back(s.data());
  return out;
}

/// Arms the profiler and/or tracer for the whole benchmark run and writes
/// their artifacts on destruction. Registers the main thread with the
/// thread-watch registry so single-threaded benches still produce samples.
class ScopedBenchProfile {
 public:
  explicit ScopedBenchProfile(const BenchRunOptions& opts)
      : opts_(opts), main_scope_("bench.main") {
    if (!opts_.profile_out.empty()) {
      obs::ProfilerOptions popts;
      popts.interval_us = 1000;  // 1 kHz: plenty for a seconds-long run
      profiling_ = obs::SamplingProfiler::global().start(popts);
      if (!profiling_) {
        std::fprintf(stderr,
                     "bench_util: profiler unavailable (compiled out or "
                     "already running); no profile will be written\n");
      }
    }
    if (!opts_.trace_out.empty()) {
      obs::Tracer::global().set_capacity(1 << 16);
      obs::Tracer::global().set_enabled(true);
    }
  }

  ScopedBenchProfile(const ScopedBenchProfile&) = delete;
  ScopedBenchProfile& operator=(const ScopedBenchProfile&) = delete;

  ~ScopedBenchProfile() {
    if (profiling_) {
      obs::SamplingProfiler::global().stop();
      obs::SamplingProfiler::global().dump_folded(opts_.profile_out);
    }
    if (!opts_.trace_out.empty()) {
      obs::Tracer::global().set_enabled(false);
      std::FILE* f = std::fopen(opts_.trace_out.c_str(), "w");
      if (f != nullptr) {
        const std::string json =
            obs::chrome_trace_json(obs::Tracer::global().events());
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "bench_util: cannot write %s\n",
                     opts_.trace_out.c_str());
      }
    }
  }

 private:
  BenchRunOptions opts_;
  WatchedThreadScope main_scope_;
  bool profiling_ = false;
};

}  // namespace oda::bench

/// main() for google-benchmark benches with --json/--quick/--profile-out/
/// --trace-out support.
#define ODA_BENCH_MAIN()                                              \
  int main(int argc, char** argv) {                                   \
    std::vector<std::string> oda_bench_storage;                       \
    ::oda::bench::BenchRunOptions oda_bench_opts;                     \
    std::vector<char*> oda_bench_args = ::oda::bench::translate_bench_flags( \
        argc, argv, oda_bench_storage, oda_bench_opts);               \
    int oda_bench_argc = static_cast<int>(oda_bench_args.size());     \
    ::benchmark::Initialize(&oda_bench_argc, oda_bench_args.data());  \
    if (::benchmark::ReportUnrecognizedArguments(oda_bench_argc,      \
                                                 oda_bench_args.data())) \
      return 1;                                                       \
    {                                                                 \
      ::oda::bench::ScopedBenchProfile oda_bench_profile(oda_bench_opts); \
      ::benchmark::RunSpecifiedBenchmarks();                          \
    }                                                                 \
    ::benchmark::Shutdown();                                          \
    return 0;                                                         \
  }
