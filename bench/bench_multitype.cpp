// Experiment E5 (DESIGN.md): the paper's Sec. V-A multi-type claim —
// augmenting a prescriptive controller with predictive capability turns it
// proactive and improves the KPI. Here: thermal-cap DVFS under a hot cooling
// loop, run three ways (uncontrolled / reactive / forecast-driven
// proactive), scored on thermal-limit violations, throttle events, work
// completed, and energy.
#include <cstdio>
#include <memory>

#include "analytics/prescriptive/controller.hpp"
#include "analytics/prescriptive/dvfs.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

#include "bench_util.hpp"

namespace {

using namespace oda;

struct Outcome {
  double limit_violation_hours = 0.0;  // node-hours above the thermal limit
  double throttle_hours = 0.0;         // node-hours spent hardware-throttled
  double work_done_s = 0.0;            // total nominal seconds completed
  double it_energy_kwh = 0.0;
  std::size_t actuations = 0;
};

Outcome run_case(int mode /*0=none,1=reactive,2=proactive*/) {
  sim::ClusterParams params;
  params.racks = 2;
  params.nodes_per_rack = 8;
  params.seed = 61;
  params.facility.supply_setpoint_c = 42.0;  // hot loop: thermal stress is real
  params.node.fan_target_temp_c = 88.0;      // lazy fans
  // A daily heat wave through the rack inlets via the weather-coupled plant.
  params.weather.mean_temp_c = 24.0;
  params.weather.diurnal_amplitude = 7.0;

  sim::ClusterSimulation cluster(params);
  cluster.set_workload_enabled(false);
  Rng job_rng(1234);
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    sim::JobSpec spec;
    spec.id = 100 + i;
    spec.user = "steady";
    spec.nodes_requested = 1;
    sim::JobPhase phase;
    phase.nominal_duration = 400 * kHour;
    phase.cpu_util = 1.0;
    phase.mem_bw_util = 0.35;
    phase.mem_boundedness = 0.15;
    spec.phases = {phase};
    spec.walltime_requested = 800 * kHour;
    cluster.scheduler().submit(spec);
  }

  telemetry::TimeSeriesStore store(1 << 17);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);
  analytics::ControlLoop loop(cluster, store);
  const double temp_limit = 84.0;
  if (mode > 0) {
    analytics::DvfsGovernor::Params gp;
    gp.mode = mode == 1 ? analytics::DvfsGovernor::Mode::kThermalReactive
                        : analytics::DvfsGovernor::Mode::kThermalProactive;
    gp.temp_limit_c = temp_limit;
    gp.temp_headroom_c = 2.0;
    gp.forecast_lead = 10 * kMinute;
    gp.period = 2 * kMinute;
    loop.add(std::make_shared<analytics::DvfsGovernor>(gp));
  }

  Outcome outcome;
  const Duration dt = params.dt;
  while (cluster.now() < 2 * kDay) {
    cluster.step();
    collector.collect();
    loop.tick();
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      if (cluster.node(i).cpu_temp_c() > temp_limit) {
        outcome.limit_violation_hours += static_cast<double>(dt) / 3600.0;
      }
      if (cluster.node(i).throttled()) {
        outcome.throttle_hours += static_cast<double>(dt) / 3600.0;
      }
    }
  }
  for (const auto& job : cluster.scheduler().running()) {
    outcome.work_done_s += job.progress_s;
  }
  for (const auto& job : cluster.scheduler().completed()) {
    outcome.work_done_s += static_cast<double>(job.spec.nominal_duration());
  }
  outcome.it_energy_kwh = cluster.it_energy_j() / units::kJoulesPerKilowattHour;
  outcome.actuations = loop.audit_log().size();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  oda::bench::BenchReport oda_report("bench_multitype", argc, argv);
  std::printf("=== E5: reactive vs proactive thermal-cap DVFS (Sec. V-A) ===\n");
  std::printf("setup: 16 nodes at full load on a 42 C loop, 84 C thermal "
              "limit, 2 simulated days\n\n");
  TextTable table({"policy", "limit-violation node-h", "hw-throttle node-h",
                   "work done [kh]", "IT energy [kWh]", "actuations"});
  for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, Align::kRight);

  const Outcome none = run_case(0);
  const Outcome reactive = run_case(1);
  const Outcome proactive = run_case(2);
  const auto row = [&](const char* name, const Outcome& o) {
    table.add_row({name, format_double(o.limit_violation_hours, 2),
                   format_double(o.throttle_hours, 2),
                   format_double(o.work_done_s / 3600.0 / 1000.0, 2),
                   format_double(o.it_energy_kwh, 1),
                   std::to_string(o.actuations)});
  };
  row("uncontrolled", none);
  row("reactive governor", reactive);
  row("proactive governor", proactive);
  std::printf("%s", table.render().c_str());

  std::printf("\nexpected shape (paper's multi-type claim): the governors "
              "eliminate most violations relative to the uncontrolled run, "
              "and the proactive variant cuts the residual violations of the "
              "reactive one by acting before the limit is reached.\n");
  const bool governors_help =
      reactive.limit_violation_hours < none.limit_violation_hours * 0.5;
  const bool proactive_best =
      proactive.limit_violation_hours <= reactive.limit_violation_hours;
  std::printf("observed: governors-help=%s proactive<=reactive=%s\n",
              governors_help ? "yes" : "NO", proactive_best ? "yes" : "NO");
  return 0;
}
