// Experiment E6 (DESIGN.md): the paper's Sec. V-B multi-pillar claim —
// crossing pillar boundaries buys efficiency a siloed system cannot reach.
// Here: job placement (a system-software decision) made with building-
// infrastructure awareness. Pack placement concentrates heat into one rack
// (local hotspot -> extra leakage + fan power); thermal-aware placement
// spreads it. Identical workload, seeds, and plant; only placement differs.
#include <cstdio>
#include <memory>

#include "analytics/descriptive/kpi.hpp"
#include "analytics/prescriptive/placement.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

#include "bench_util.hpp"

namespace {

using namespace oda;

struct Outcome {
  double facility_kwh = 0.0;
  double it_kwh = 0.0;
  double pue = 0.0;
  double max_inlet_c = 0.0;
  double max_cpu_c = 0.0;
  double utilization = 0.0;
  std::size_t completed = 0;
};

Outcome run_case(bool thermal_aware) {
  sim::ClusterParams params;
  params.racks = 4;
  params.nodes_per_rack = 8;
  params.seed = 71;
  params.dt = 30;
  params.rack_thermal_coupling_c = 9.0;  // pronounced hotspot physics
  params.workload.seed = 71;
  // ~40-50% utilization: placement only matters when the machine has slack
  // (a saturated machine forces every policy into the same allocation).
  params.workload.peak_arrival_rate_per_hour = 8.0;
  params.workload.max_nodes_per_job = 4;
  params.workload.max_duration = 4 * kHour;

  sim::ClusterSimulation cluster(params);
  if (thermal_aware) {
    cluster.scheduler().set_placement(analytics::make_thermal_placement(cluster));
  } else {
    cluster.scheduler().set_placement(
        std::make_shared<analytics::PackPlacement>(params.nodes_per_rack));
  }

  telemetry::TimeSeriesStore store(1 << 17);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);

  Outcome o;
  double busy_steps = 0.0, total_steps = 0.0;
  while (cluster.now() < 3 * kDay) {
    cluster.step();
    collector.collect();
    for (std::size_t r = 0; r < cluster.rack_count(); ++r) {
      o.max_inlet_c = std::max(o.max_inlet_c, cluster.rack_inlet_temp_c(r));
    }
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      o.max_cpu_c = std::max(o.max_cpu_c, cluster.node(i).cpu_temp_c());
      busy_steps += cluster.node(i).progress_rate() > 0.0 ? 1.0 : 0.0;
      total_steps += 1.0;
    }
  }
  o.utilization = busy_steps / total_steps;
  o.facility_kwh = cluster.facility_energy_j() / units::kJoulesPerKilowattHour;
  o.it_kwh = cluster.it_energy_j() / units::kJoulesPerKilowattHour;
  o.pue = o.it_kwh > 0.0 ? o.facility_kwh / o.it_kwh : 0.0;
  o.completed = cluster.scheduler().completed().size();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  oda::bench::BenchReport oda_report("bench_multipillar", argc, argv);
  std::printf("=== E6: siloed (pack) vs multi-pillar (thermal-aware) placement "
              "(Sec. V-B) ===\n");
  std::printf("setup: 32 nodes / 4 racks, ~50%% load, identical workload and "
              "plant; 3 simulated days\n\n");

  const Outcome pack = run_case(false);
  const Outcome aware = run_case(true);

  TextTable table({"placement", "facility kWh", "IT kWh", "PUE",
                   "max rack inlet [C]", "max CPU [C]", "utilization",
                   "jobs done"});
  for (std::size_t c = 1; c <= 7; ++c) table.set_align(c, Align::kRight);
  const auto row = [&](const char* name, const Outcome& o) {
    table.add_row({name, format_double(o.facility_kwh, 1),
                   format_double(o.it_kwh, 1), format_double(o.pue, 3),
                   format_double(o.max_inlet_c, 1),
                   format_double(o.max_cpu_c, 1),
                   format_double(o.utilization, 2),
                   std::to_string(o.completed)});
  };
  row("pack (siloed)", pack);
  row("thermal-aware (multi-pillar)", aware);
  std::printf("%s", table.render().c_str());

  const double saving =
      (pack.facility_kwh - aware.facility_kwh) / pack.facility_kwh * 100.0;
  std::printf("\nfacility energy saving from crossing the pillar boundary: "
              "%.2f%%\n", saving);
  oda_report.add("pack_facility_kwh", pack.facility_kwh, "kWh");
  oda_report.add("aware_facility_kwh", aware.facility_kwh, "kWh");
  oda_report.add("facility_saving", saving, "percent");
  std::printf("expected shape: thermal-aware placement lowers peak rack inlet "
              "and total energy at equal throughput — the paper's argument "
              "for multi-pillar ODA despite its integration cost.\n");
  return 0;
}
