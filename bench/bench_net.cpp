// Live-introspection plane benchmark: what does a scrape cost, and how
// fast can the epoll server turn requests around?
//
//   * scrape latency: sequential GET /metrics round trips against a real
//     ObsServer whose registry carries a representative family count —
//     reported as p50/p99 microseconds (http_scrape_p99_us is the CI-gated
//     number: a regression here is a scraper stalling the reactor).
//   * request throughput: keep-alive GET round trips against a minimal
//     handler (http_reqs_per_sec) — the server machinery itself, with the
//     exposition cost factored out.
//
// Plain BenchReport executable: `--json <path>` writes the machine-readable
// record scripts/collect_bench.py aggregates; `--quick` shortens the runs
// to CI smoke pace. Under ODA_NET=OFF the executable reports net_enabled=0
// and exits 0 without the http metrics (the CI gate only requires them in
// net-enabled builds).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/obs_server.hpp"
#include "net/reactor.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"

namespace {

using oda::net::HttpResponse;

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t sent = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (sent <= 0) return false;
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

/// Reads one Content-Length-framed response off a keep-alive connection.
bool recv_response(int fd, std::string& scratch) {
  scratch.clear();
  char buf[65536];
  std::size_t body_needed = 0;
  std::size_t header_end = std::string::npos;
  for (;;) {
    if (header_end == std::string::npos) {
      header_end = scratch.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const std::size_t cl = scratch.find("Content-Length: ");
        if (cl == std::string::npos || cl > header_end) return false;
        body_needed = static_cast<std::size_t>(
            std::strtoul(scratch.c_str() + cl + 16, nullptr, 10));
      }
    }
    if (header_end != std::string::npos &&
        scratch.size() >= header_end + 4 + body_needed) {
      return true;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    scratch.append(buf, static_cast<std::size_t>(n));
  }
}

/// `reps` sequential round trips on one keep-alive connection; returns the
/// per-request latencies in microseconds (empty on any failure).
std::vector<double> time_round_trips(std::uint16_t port,
                                     const std::string& request, int reps) {
  std::vector<double> latencies_us;
  const int fd = connect_loopback(port);
  if (fd < 0) return latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(reps));
  std::string scratch;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    if (!send_all(fd, request.data(), request.size()) ||
        !recv_response(fd, scratch)) {
      latencies_us.clear();
      break;
    }
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  ::close(fd);
  return latencies_us;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

/// A registry payload comparable to the real pipeline's (~50 families with
/// labeled series and histograms), so /metrics renders realistic bytes.
void populate_registry() {
  oda::obs::MetricsRegistry& registry = oda::obs::MetricsRegistry::global();
  char name[64];
  for (int i = 0; i < 40; ++i) {
    std::snprintf(name, sizeof(name), "oda_bench_net_family_%02d_total", i);
    registry.counter(name, "bench filler counter", {{"shard", "0"}}).inc(i);
    registry.counter(name, "bench filler counter", {{"shard", "1"}}).inc(i);
  }
  for (int i = 0; i < 8; ++i) {
    std::snprintf(name, sizeof(name), "oda_bench_net_hist_%02d_seconds", i);
    oda::obs::Histogram& hist =
        registry.histogram(name, "bench filler histogram");
    for (int k = 0; k < 32; ++k) {
      hist.observe(0.0005 * static_cast<double>(k));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  oda::bench::BenchReport report("bench_net", argc, argv);
  report.add("net_enabled", oda::net::net_enabled() ? 1.0 : 0.0, "");
  if (!oda::net::net_enabled()) {
    std::printf("bench_net: ODA_NET=OFF — nothing to measure\n");
    return 0;
  }

  populate_registry();

  // ----------------------------------------------------- scrape latency
  const int scrape_reps = quick ? 300 : 3000;
  {
    oda::net::ObsServerOptions opts;
    opts.http.port = 0;
    oda::net::ObsServer server(opts);
    if (!server.start()) {
      std::fprintf(stderr, "bench_net: ObsServer failed to start\n");
      return 1;
    }
    const std::string request = "GET /metrics HTTP/1.1\r\n\r\n";
    // Warm up connection setup + first-snapshot allocations off the clock.
    time_round_trips(server.port(), request, 16);
    const std::vector<double> lat =
        time_round_trips(server.port(), request, scrape_reps);
    server.stop();
    if (lat.empty()) {
      std::fprintf(stderr, "bench_net: scrape round trips failed\n");
      return 1;
    }
    const double p50 = percentile(lat, 0.50);
    const double p99 = percentile(lat, 0.99);
    std::printf("GET /metrics scrape latency over %zu keep-alive round "
                "trips:\n  p50 %8.1f us\n  p99 %8.1f us\n",
                lat.size(), p50, p99);
    report.add("http_scrape_p50_us", p50, "us");
    report.add("http_scrape_p99_us", p99, "us");
  }

  // ------------------------------------------------- request throughput
  const int tput_reps = quick ? 2000 : 20000;
  {
    oda::net::HttpServerOptions opts;
    opts.port = 0;
    oda::net::HttpServer server(opts);
    server.set_handler(
        [](const oda::net::HttpRequest&, const oda::net::Responder& r) {
          HttpResponse resp;
          resp.body = "ok";
          r.send(std::move(resp));
        });
    if (!server.start()) {
      std::fprintf(stderr, "bench_net: HttpServer failed to start\n");
      return 1;
    }
    const std::string request = "GET /ok HTTP/1.1\r\n\r\n";
    time_round_trips(server.port(), request, 64);  // warm-up
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<double> lat =
        time_round_trips(server.port(), request, tput_reps);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    server.stop();
    if (lat.empty() || wall_s <= 0.0) {
      std::fprintf(stderr, "bench_net: throughput round trips failed\n");
      return 1;
    }
    const double rps = static_cast<double>(lat.size()) / wall_s;
    std::printf("minimal-handler throughput: %zu keep-alive round trips in "
                "%.3f s -> %.0f req/s\n",
                lat.size(), wall_s, rps);
    report.add("http_reqs_per_sec", rps, "req/s");
  }
  return 0;
}
