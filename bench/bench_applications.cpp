// Experiment E4 (DESIGN.md): the applications column —
//   descriptive : roofline operating points for the simulated job classes;
//   diagnostic  : application fingerprinting / crypto-miner detection scored
//                 on held-out jobs;
//   predictive  : job runtime prediction vs the walltime request;
//   prescriptive: auto-tuning strategy comparison on a synthetic app.
#include <cstdio>
#include <map>
#include <memory>

#include "analytics/descriptive/kpi.hpp"
#include "analytics/diagnostic/fingerprint.hpp"
#include "analytics/predictive/jobs.hpp"
#include "analytics/prescriptive/autotune.hpp"
#include "analytics/prescriptive/recommend.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

#include "bench_util.hpp"

namespace {

using namespace oda;

void descriptive_section() {
  std::printf("=== E4.descriptive: roofline operating points ===\n");
  // The reference machine: 3.2 GF/W-class node, 100 GB/s memory.
  const double peak_gflops = 2500.0, peak_bw = 200.0;
  TextTable table({"kernel", "AI [flop/byte]", "attainable GF/s",
                   "achieved GF/s", "bound", "efficiency"});
  for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, Align::kRight);
  const struct {
    const char* name;
    double bytes_per_flop;
    double achieved;
  } kernels[] = {
      {"stream-triad", 12.0, 15.0},
      {"spmv", 4.0, 40.0},
      {"stencil-27pt", 0.5, 350.0},
      {"dgemm", 0.05, 2100.0},
  };
  for (const auto& k : kernels) {
    const auto p = analytics::roofline(peak_gflops, peak_bw, k.achieved,
                                       k.bytes_per_flop);
    table.add_row({k.name, format_double(p.arithmetic_intensity, 2),
                   format_double(p.attainable_gflops, 0),
                   format_double(p.achieved_gflops, 0),
                   p.memory_bound ? "memory" : "compute",
                   format_double(p.efficiency, 2)});
  }
  std::printf("%s\n", table.render().c_str());
}

void diagnostic_section() {
  std::printf("=== E4.diagnostic: application fingerprinting / miner detection ===\n");
  // Run a workload with 10% miners + 5% leakers; fingerprint completed jobs.
  sim::ClusterParams params;
  params.seed = 43;
  params.dt = 30;
  params.workload.peak_arrival_rate_per_hour = 70.0;
  params.workload.max_duration = 90 * kMinute;
  params.workload.min_duration = 20 * kMinute;
  params.workload.miner_fraction = 0.10;
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store(1 << 17);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);
  while (cluster.now() < 3 * kDay) {
    cluster.step();
    collector.collect();
  }
  std::vector<std::string> prefixes;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    prefixes.push_back(cluster.node(i).path());
  }
  const auto& completed = cluster.scheduler().completed();
  std::printf("completed jobs: %zu\n", completed.size());

  // Train/test split in completion order; label = miner vs regular.
  analytics::ApplicationFingerprinter fp;
  Rng rng(47);
  const std::size_t split = completed.size() / 2;
  std::size_t train_miners = 0;
  for (std::size_t i = 0; i < split; ++i) {
    const auto& r = completed[i];
    if (r.run_time() < 10 * kMinute) continue;  // too short to fingerprint
    const bool miner = r.spec.job_class == sim::JobClass::kCryptoMiner;
    train_miners += miner;
    fp.add_training(miner ? "miner" : "regular",
                    analytics::job_signature(store, r, prefixes));
  }
  fp.train(rng);

  std::size_t tp = 0, fps = 0, fn = 0, tn = 0;
  for (std::size_t i = split; i < completed.size(); ++i) {
    const auto& r = completed[i];
    if (r.run_time() < 10 * kMinute) continue;
    const bool truth = r.spec.job_class == sim::JobClass::kCryptoMiner;
    const auto pred =
        fp.predict_forest(analytics::job_signature(store, r, prefixes));
    const bool flagged = pred.label == "miner";
    if (flagged && truth) ++tp;
    else if (flagged && !truth) ++fps;
    else if (!flagged && truth) ++fn;
    else ++tn;
  }
  const double precision = tp + fps ? double(tp) / double(tp + fps) : 0.0;
  const double recall = tp + fn ? double(tp) / double(tp + fn) : 0.0;
  std::printf("miner detection on held-out jobs (random forest on telemetry "
              "signatures):\n");
  std::printf("  train miners: %zu   test: tp=%zu fp=%zu fn=%zu tn=%zu\n",
              train_miners, tp, fps, fn, tn);
  std::printf("  precision=%.2f recall=%.2f\n\n", precision, recall);
}

void predictive_section() {
  std::printf("=== E4.predictive: job runtime prediction ===\n");
  sim::WorkloadParams wp;
  wp.seed = 53;
  wp.peak_arrival_rate_per_hour = 50.0;
  sim::WorkloadGenerator gen(wp);
  // Idealized records (runtime = nominal duration): what a scheduler log
  // would contain.
  std::vector<sim::JobRecord> records;
  for (const auto& spec : gen.generate_trace(1500)) {
    sim::JobRecord r;
    r.spec = spec;
    r.start_time = spec.submit_time;
    r.end_time = spec.submit_time + spec.nominal_duration();
    records.push_back(std::move(r));
  }
  TextTable table({"quantile", "MAE", "MAPE", "underestimate rate",
                   "improvement vs request"});
  for (std::size_t c = 1; c <= 4; ++c) table.set_align(c, Align::kRight);
  for (const double q : {0.5, 0.75, 0.9}) {
    analytics::JobRuntimePredictor::Params pp;
    pp.quantile = q;
    const auto score = analytics::evaluate_runtime_predictor(records, 0.5, pp);
    table.add_row({format_double(q, 2),
                   format_duration(static_cast<Duration>(score.mae_s)),
                   format_double(score.mape, 2),
                   format_double(score.underestimate_rate, 2),
                   format_double(score.improvement_vs_request, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("expected shape: large improvement over the request (users "
              "overestimate 1.2-6x); higher quantiles trade MAE for fewer "
              "underestimates.\n\n");
}

void prescriptive_section() {
  std::printf("=== E4.prescriptive: auto-tuning strategies on a synthetic app ===\n");
  const std::vector<analytics::TunableParam> space{
      {"tile_size", 8.0, 512.0, {}},
      {"unroll", 1.0, 16.0, {}},
      {"threads", 1.0, 64.0, {}},
      {"prefetch", 0.0, 1.0, {}},
  };
  const auto surface = analytics::synthetic_app_surface(space, 300.0, 97, 0.01);
  analytics::AutoTuner::Params tp;
  tp.budget = 256;
  analytics::AutoTuner tuner(space, surface, tp);

  TextTable table({"strategy", "best runtime [s]", "improvement vs default",
                   "evaluations"});
  for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, Align::kRight);
  for (const auto& r : tuner.tune_all()) {
    table.add_row({r.strategy, format_double(r.best_cost, 1),
                   format_double(r.improvement * 100.0, 1) + "%",
                   std::to_string(r.evaluations)});
  }
  std::printf("%s\n", table.render().c_str());

  // Recommendation-based prescriptive ODA [44]: advice for a memory-bound,
  // imbalanced, over-requested job profile.
  std::printf("=== E4.prescriptive: code improvement recommendations ===\n");
  analytics::JobProfile profile;
  profile.cpu_util = 0.55;
  profile.mem_bw_util = 0.9;
  profile.cpu_util_stddev = 0.22;
  profile.walltime_request_ratio = 5.0;
  profile.boundedness = analytics::Boundedness::kMemory;
  sim::JobRecord record;
  record.spec.id = 4242;
  record.spec.user = "user112";
  std::printf("%s", analytics::render_recommendations(
                        record, analytics::recommend(profile))
                        .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  oda::bench::BenchReport oda_report("bench_applications", argc, argv);
  descriptive_section();
  diagnostic_section();
  predictive_section();
  prescriptive_section();
  return 0;
}
