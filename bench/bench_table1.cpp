// Experiment T1 (DESIGN.md): regenerates the paper's Table I from the
// machine-readable survey catalog, through the same FrameworkGrid machinery
// a user would apply to their own systems; then prints the library's own
// capability grid to show each surveyed cell is backed by working code.
#include <cstdio>

#include "core/bindings.hpp"
#include "core/survey_catalog.hpp"

#include "bench_util.hpp"

int main(int argc, char** argv) {
  oda::bench::BenchReport oda_report("bench_table1", argc, argv);
  using namespace oda::core;

  const auto catalog = SurveyCatalog::table1();
  std::printf("%s\n", catalog.render_table1().c_str());
  std::printf("%s\n", catalog.render_statistics().c_str());

  // Classification sanity, as the paper reports it: every cell populated.
  const auto survey_grid = catalog.to_grid();
  const auto survey_cov = survey_grid.coverage();
  std::printf("survey grid: %zu use cases, %zu/16 cells occupied, %zu gaps\n\n",
              survey_cov.total_capabilities, survey_cov.occupied_cells,
              survey_cov.gaps.size());

  // The operational counterpart: this library's own engines on the grid.
  const auto impl = implemented_capabilities();
  std::printf("%s\n",
              impl.render("THIS LIBRARY'S CAPABILITIES ON THE SAME GRID").c_str());
  const auto impl_cov = verify_full_coverage(impl);
  std::printf("implementation grid: %zu capabilities, %zu/16 cells occupied\n\n",
              impl_cov.total_capabilities, impl_cov.occupied_cells);
  oda_report.add("survey_use_cases",
                 static_cast<double>(survey_cov.total_capabilities), "count");
  oda_report.add("survey_cells_occupied",
                 static_cast<double>(survey_cov.occupied_cells), "cells");
  oda_report.add("impl_capabilities",
                 static_cast<double>(impl_cov.total_capabilities), "count");
  oda_report.add("impl_cells_occupied",
                 static_cast<double>(impl_cov.occupied_cells), "cells");

  // The planning use of the framework (Sec. I): a hypothetical site that has
  // deployed only dashboards gets a staged roadmap toward the missing types.
  FrameworkGrid young_site;
  CapabilityDescriptor dash;
  dash.id = "site.dashboards";
  dash.name = "Grafana dashboards";
  dash.cells = {{Pillar::kBuildingInfrastructure, AnalyticsType::kDescriptive},
                {Pillar::kSystemHardware, AnalyticsType::kDescriptive}};
  young_site.register_capability(dash);
  std::printf("example: roadmap for a site with dashboards only --\n%s\n",
              young_site.render_roadmap().c_str());
  return 0;
}
