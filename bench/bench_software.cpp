// Experiment E3 (DESIGN.md): the system-software column —
//   descriptive : slowdown/wait statistics and the scheduler dashboard;
//   diagnostic  : OS-noise characterization (FWQ) and memory-leak scan;
//   predictive  : scheduler what-if simulation (FCFS vs EASY) and workload
//                 (arrival) forecasting;
//   prescriptive: power/KPI-aware discipline choice follows from the
//                 what-if numbers (E6 covers placement).
#include <cstdio>
#include <memory>

#include "analytics/descriptive/dashboard.hpp"
#include "analytics/descriptive/kpi.hpp"
#include "analytics/diagnostic/software.hpp"
#include "analytics/predictive/whatif.hpp"
#include "analytics/predictive/workload_forecast.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

#include "bench_util.hpp"

namespace {

using namespace oda;

void descriptive_section() {
  std::printf("=== E3.descriptive: scheduler QoS on the physical simulator ===\n");
  sim::ClusterParams params;
  params.seed = 31;
  params.dt = 30;
  params.workload.peak_arrival_rate_per_hour = 60.0;
  params.workload.max_duration = 3 * kHour;
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store(1 << 17);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(60);
  while (cluster.now() < 2 * kDay) {
    cluster.step();
    collector.collect();
  }
  std::printf("%s\n",
              analytics::scheduler_dashboard(store, cluster.scheduler().completed(),
                                             0, cluster.now())
                  .c_str());
}

void diagnostic_section() {
  std::printf("=== E3.diagnostic: OS noise fingerprint (FWQ) ===\n");
  TextTable table({"interference period [s]", "cost [ms]", "noise fraction",
                   "periodic?", "recovered period [s]"});
  for (std::size_t c = 0; c <= 4; ++c) table.set_align(c, Align::kRight);
  for (const double period : {0.05, 0.1, 0.25}) {
    const auto trace = analytics::synthesize_fwq(
        2048, 0.01, period, 0.004, 0.0105, 42);
    const auto report = analytics::analyze_fwq(trace, 0.01, 0.0105);
    table.add_row({format_double(period, 2), "4",
                   format_double(report.noise_fraction, 3),
                   report.periodic ? "yes" : "no",
                   report.periodic ? format_double(report.dominant_period_s, 3)
                                   : "-"});
  }
  std::printf("%s\n", table.render().c_str());
}

void predictive_whatif_section() {
  std::printf("=== E3.predictive: what-if scheduler simulation (Table: FCFS vs "
              "EASY) ===\n");
  sim::WorkloadParams wp;
  wp.seed = 37;
  wp.max_nodes_per_job = 32;
  wp.peak_arrival_rate_per_hour = 60.0;
  wp.max_duration = 4 * kHour;
  sim::WorkloadGenerator gen(wp);
  const auto trace = gen.generate_trace(600);

  TextTable table({"discipline", "mean wait", "p95 wait", "mean slowdown",
                   "bounded slowdown", "utilization", "makespan"});
  for (std::size_t c = 1; c <= 6; ++c) table.set_align(c, Align::kRight);
  for (const auto& r : analytics::compare_disciplines(trace, 64)) {
    table.add_row({r.label,
                   format_duration(static_cast<Duration>(r.mean_wait_s)),
                   format_duration(static_cast<Duration>(r.p95_wait_s)),
                   format_double(r.mean_slowdown, 2),
                   format_double(r.mean_bounded_slowdown, 2),
                   format_double(r.mean_utilization, 3),
                   format_duration(r.makespan)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("expected shape: EASY-backfill cuts waits/slowdown at equal or "
              "better utilization.\n\n");
}

void predictive_workload_section() {
  std::printf("=== E3.predictive: workload (arrival) forecasting ===\n");
  sim::WorkloadParams wp;
  wp.seed = 41;
  wp.peak_arrival_rate_per_hour = 50.0;
  sim::WorkloadGenerator gen(wp);

  analytics::WorkloadForecaster forecaster(kHour);
  // Two weeks of history.
  for (TimePoint t = 0; t < 14 * kDay; t += kHour) {
    for (const auto& job : gen.generate(t, kHour)) {
      forecaster.observe_arrival(job.submit_time);
    }
  }
  // Forecast day 15 and compare to what the generator actually produces.
  const auto forecast = forecaster.forecast(24);
  double mae = 0.0, naive_mae = 0.0;
  const auto profile = forecaster.daily_profile();
  const auto series = forecaster.arrival_series();
  double overall_mean = 0.0;
  for (double c : series) overall_mean += c;
  overall_mean /= static_cast<double>(series.size());

  TextTable table({"hour", "forecast", "actual"});
  for (std::size_t c = 0; c <= 2; ++c) table.set_align(c, Align::kRight);
  for (int h = 0; h < 24; ++h) {
    const auto actual = static_cast<double>(
        gen.generate(14 * kDay + h * kHour, kHour).size());
    mae += std::abs(forecast[static_cast<std::size_t>(h)] - actual);
    naive_mae += std::abs(overall_mean - actual);
    if (h % 3 == 0) {
      table.add_row({std::to_string(h),
                     format_double(forecast[static_cast<std::size_t>(h)], 1),
                     format_double(actual, 0)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("day-15 hourly MAE: seasonal forecaster %.2f vs flat-mean %.2f "
              "jobs/h\n\n",
              mae / 24.0, naive_mae / 24.0);
}

}  // namespace

int main(int argc, char** argv) {
  oda::bench::BenchReport oda_report("bench_software", argc, argv);
  descriptive_section();
  diagnostic_section();
  predictive_whatif_section();
  predictive_workload_section();
  return 0;
}
