// Experiment E7 (DESIGN.md): the paper's Sec. V-C beyond-the-datacenter use
// case — LLNL's utility contract requires notice before facility power moves
// more than a threshold within 15 minutes; they forecast spikes with Fourier
// analysis of historical power [72]. Here: a 14-day facility power trace
// from the simulator, a spectral (FFT) forecaster fit on the first 10 days,
// and notification precision/recall on the last 4 days, with the rule
// threshold swept relative to facility scale.
#include <cstdio>
#include <memory>

#include "analytics/predictive/backtest.hpp"
#include "analytics/predictive/spectral.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

#include "bench_util.hpp"

namespace {
using namespace oda;
}

int main(int argc, char** argv) {
  oda::bench::BenchReport oda_report("bench_llnl_power", argc, argv);
  std::printf("=== E7: spectral power-spike forecasting + utility "
              "notification rule (LLNL, Sec. V-C) ===\n");

  // 14 days of facility power at 5-minute resolution.
  sim::ClusterParams params;
  params.seed = 83;
  params.dt = 60;
  // Well below saturation so the diurnal submission cycle actually shows up
  // in facility power (a saturated machine runs flat around the clock; at
  // this rate utilization swings ~0.35-0.65 through the day).
  params.workload.peak_arrival_rate_per_hour = 4.0;
  params.workload.seed = 83;
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store(1 << 18);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_group({"power", "facility/total_power", kMinute});
  while (cluster.now() < 14 * kDay) {
    cluster.step();
    collector.collect();
  }
  // Utilities meter interval-average power, not instantaneous draw: the
  // contract series is the 15-minute mean, which also filters the
  // unpredictable single-job start/stop steps out of the rule.
  const auto series = store.query_aggregated(
      "facility/total_power", 0, cluster.now(), 15 * kMinute,
      telemetry::Aggregation::kMean);
  const std::size_t per_day = kDay / (15 * kMinute);
  const std::size_t train_n = 10 * per_day;
  std::printf("trace: %zu samples (15-min interval means), mean power %.1f kW\n\n",
              series.size(), mean(series.values) / 1000.0);

  // Forecast quality: spectral vs the standard suite on the held-out tail.
  const std::vector<double> train(series.values.begin(),
                                  series.values.begin() + train_n);
  const std::vector<double> test(series.values.begin() + train_n,
                                 series.values.end());

  analytics::SpectralForecaster spectral(8);
  spectral.fit(train);
  const auto spectral_fc = spectral.forecast(test.size());
  analytics::PersistenceForecaster persistence;
  persistence.fit(train);
  const auto persistence_fc = persistence.forecast(test.size());

  double mae_spec = 0.0, mae_pers = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    mae_spec += std::abs(spectral_fc[i] - test[i]);
    mae_pers += std::abs(persistence_fc[i] - test[i]);
  }
  mae_spec /= static_cast<double>(test.size());
  mae_pers /= static_cast<double>(test.size());
  std::printf("4-day-ahead forecast MAE: spectral %.1f kW vs persistence "
              "%.1f kW (skill %+.2f)\n",
              mae_spec / 1000.0, mae_pers / 1000.0, 1.0 - mae_spec / mae_pers);
  std::printf("dominant components recovered:\n");
  for (const auto& c : spectral.components()) {
    const double period_h = c.frequency > 0.0 ? 0.25 / c.frequency : 0.0;
    if (period_h > 1.0) {
      std::printf("  period %6.1f h  amplitude %6.2f kW\n", period_h,
                  c.amplitude / 1000.0);
    }
  }

  // Notification rule sweep. LLNL's contract is 750 kW / 15 min on a
  // ~25 MW site — 3% of facility power over a window matched to how fast
  // that machine's load moves. Scaled to our ~18 kW simulated facility,
  // whose aggregate power moves on job (hour) timescales, the equivalent
  // contract is ~1.5 kW over 2 h; the detector and scorer are identical.
  std::printf("\nnotification rule: |dP| over 2 h exceeding threshold "
              "(events on the 4-day held-out window)\n");
  TextTable table({"threshold [kW]", "actual events", "predicted",
                   "hits", "misses", "false alarms", "precision", "recall"});
  for (std::size_t c = 0; c <= 7; ++c) table.set_align(c, Align::kRight);
  analytics::NotificationRule rule;
  rule.window = 2 * kHour;
  rule.sample_period = 15 * kMinute;
  for (const double threshold_kw : {0.8, 1.2, 1.6}) {
    rule.threshold_w = threshold_kw * 1000.0;
    const auto actual = analytics::detect_power_swings(test, rule);
    const auto predicted = analytics::detect_power_swings(spectral_fc, rule);
    // A prediction within 1.5 h of the actual crossing counts as a usable
    // advance notification.
    const auto score =
        analytics::score_notifications(predicted, actual, /*tolerance=*/6);
    table.add_row({format_double(threshold_kw, 1),
                   std::to_string(score.actual),
                   std::to_string(score.predicted),
                   std::to_string(score.hits), std::to_string(score.misses),
                   std::to_string(score.false_alarms),
                   format_double(score.precision(), 2),
                   format_double(score.recall(), 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected shape: the 24 h component dominates the spectrum, so "
              "notifications fire with high precision on the predictable "
              "daily ramps; recall is limited because most threshold "
              "crossings on a machine this small come from individual large "
              "jobs starting/stopping (one 16-node job is ~25%% of IT power "
              "here, vs <1%% on a leadership system) — the stochastic "
              "component pure-Fourier forecasting cannot anticipate, exactly "
              "the limitation the LLNL study reports. Forecast MAE is "
              "likewise noise-floor-bound at this scale.\n");
  return 0;
}
