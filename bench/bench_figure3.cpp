// Figure 3 regenerator: the published complex ODA systems placed on the
// grid, plus the census backing the paper's Sec. V observations (multi-type
// vs multi-pillar prevalence, discipline cost of multi-type systems).
#include <cstdio>

#include "core/oda_system.hpp"

#include "bench_util.hpp"

int main(int argc, char** argv) {
  oda::bench::BenchReport oda_report("bench_figure3", argc, argv);
  using namespace oda::core;
  const auto systems = published_example_systems();
  std::printf("%s\n", render_figure3(systems).c_str());

  const auto c = census(systems);
  oda_report.add("example_systems", static_cast<double>(c.total), "count");
  oda_report.add("multi_type_and_pillar", static_cast<double>(c.multi_both),
                 "count");
  std::printf("census of the example systems (Sec. V discussion):\n");
  std::printf("  total                 : %zu\n", c.total);
  std::printf("  single-cell           : %zu\n", c.single_cell);
  std::printf("  multi-type only       : %zu\n", c.multi_type_only);
  std::printf("  multi-pillar only     : %zu\n", c.multi_pillar_only);
  std::printf("  multi-type and pillar : %zu\n", c.multi_both);
  std::printf("\nper-system discipline cost (Sec. V-A):\n");
  for (const auto& s : systems) {
    std::printf("  %-28s analytics disciplines required: %zu%s\n",
                s.name.c_str(), s.discipline_count(),
                s.multi_pillar() ? "  + cross-pillar orchestration" : "");
  }

  // Sec. I: the grid enables comparing systems "in terms of similarity and
  // comprehensiveness based on their relative locations".
  std::printf("\n%s\n", render_similarity_matrix(systems).c_str());
  std::printf("comprehensiveness (fraction of the 16 cells covered):\n");
  for (const auto& s : systems) {
    std::printf("  %-28s %.3f\n", s.name.c_str(), comprehensiveness(s));
  }
  return 0;
}
