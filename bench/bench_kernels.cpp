// Experiment P2 (DESIGN.md): analytics-kernel microbenchmarks — the
// algorithmic costs underlying the four analytics types: FFT scaling,
// AR/Holt-Winters fitting, PCA, k-means, isolation forest, random forest,
// and DTW. These are the design-choice ablation data for DESIGN.md §6.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "math/ar_model.hpp"
#include "math/decision_tree.hpp"
#include "math/distance.hpp"
#include "math/fft.hpp"
#include "math/isolation_forest.hpp"
#include "math/kmeans.hpp"
#include "math/pca.hpp"
#include "math/smoothing.hpp"

namespace {

using namespace oda;

std::vector<double> noisy_seasonal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = 100.0 + 10.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 96.0) +
            rng.normal(0.0, 1.0);
  }
  return xs;
}

void BM_FftPowerOfTwo(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<math::Complex> xs(n);
  for (auto& c : xs) c = math::Complex(rng.normal(), 0.0);
  for (auto _ : state) {
    auto copy = xs;
    math::fft_radix2(copy, false);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftPowerOfTwo)->Range(256, 1 << 16)->Complexity(benchmark::oNLogN);

void BM_FftBluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<math::Complex> xs(n);  // prime-ish sizes exercise Bluestein
  for (auto& c : xs) c = math::Complex(rng.normal(), 0.0);
  for (auto _ : state) {
    auto out = math::fft(xs);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FftBluestein)->Arg(1000)->Arg(4093);

void BM_ArFit(benchmark::State& state) {
  const auto xs = noisy_seasonal(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto model = math::ArModel::fit_yule_walker(xs, 8);
    benchmark::DoNotOptimize(&model);
  }
}
BENCHMARK(BM_ArFit)->Arg(1024)->Arg(8192);

void BM_HoltWintersFit(benchmark::State& state) {
  const auto xs = noisy_seasonal(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    math::HoltWinters hw(0.25, 0.02, 0.15, 96);
    hw.fit(xs);
    benchmark::DoNotOptimize(hw.forecast(1));
  }
}
BENCHMARK(BM_HoltWintersFit)->Arg(1024)->Arg(8192);

void BM_PcaFit(benchmark::State& state) {
  Rng rng(5);
  const auto rows = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> data;
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> row(16);
    for (auto& v : row) v = rng.normal();
    data.push_back(std::move(row));
  }
  const auto m = math::Matrix::from_rows(data);
  for (auto _ : state) {
    auto pca = math::Pca::fit(m, 4);
    benchmark::DoNotOptimize(&pca);
  }
}
BENCHMARK(BM_PcaFit)->Arg(256)->Arg(2048);

void BM_KMeans(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 1024; ++i) {
    data.push_back({rng.normal(i % 4 * 10.0, 1.0), rng.normal(0, 1)});
  }
  for (auto _ : state) {
    Rng local(7);
    auto result = math::kmeans(data, static_cast<std::size_t>(state.range(0)), local);
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_KMeans)->Arg(4)->Arg(16);

void BM_IsolationForestFit(benchmark::State& state) {
  Rng rng(11);
  std::vector<std::vector<double>> data;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    std::vector<double> row(15);
    for (auto& v : row) v = rng.normal();
    data.push_back(std::move(row));
  }
  for (auto _ : state) {
    Rng local(11);
    auto forest = math::IsolationForest::fit(data, {}, local);
    benchmark::DoNotOptimize(&forest);
  }
}
BENCHMARK(BM_IsolationForestFit)->Arg(512)->Arg(4096);

void BM_IsolationForestScore(benchmark::State& state) {
  Rng rng(13);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 1024; ++i) {
    std::vector<double> row(15);
    for (auto& v : row) v = rng.normal();
    data.push_back(std::move(row));
  }
  auto forest = math::IsolationForest::fit(data, {}, rng);
  const auto& sample = data[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.score(sample));
  }
}
BENCHMARK(BM_IsolationForestScore);

void BM_RandomForestFit(benchmark::State& state) {
  Rng rng(17);
  std::vector<math::LabeledSample> data;
  for (int i = 0; i < 512; ++i) {
    std::vector<double> f(10);
    for (auto& v : f) v = rng.normal();
    data.push_back({std::move(f), static_cast<std::size_t>(rng.uniform_int(0, 1))});
  }
  math::RandomForest::Params params;
  params.n_trees = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng local(17);
    auto forest = math::RandomForest::fit(data, 2, params, local);
    benchmark::DoNotOptimize(&forest);
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(10)->Arg(50);

void BM_Dtw(benchmark::State& state) {
  Rng rng(19);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n), b(n);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::dtw_distance(a, b, n / 10));
  }
}
BENCHMARK(BM_Dtw)->Arg(128)->Arg(1024);

void BM_P2QuantileAdd(benchmark::State& state) {
  Rng rng(23);
  P2Quantile q(0.95);
  for (auto _ : state) {
    q.add(rng.normal());
  }
  benchmark::DoNotOptimize(q.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_P2QuantileAdd);

}  // namespace

ODA_BENCH_MAIN()
