// Experiment P1 (DESIGN.md): telemetry-pipeline microbenchmarks — the
// infrastructure costs behind every ODA deployment: bus publish fan-out,
// store insert/query/aggregate, full collector passes, and simulator step
// cost at several machine sizes.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "common/rng.hpp"
#include "common/sync.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/store.hpp"

namespace {

using namespace oda;

void BM_BusPublish(benchmark::State& state) {
  telemetry::MessageBus bus;
  const auto subscribers = state.range(0);
  std::size_t delivered = 0;
  for (std::int64_t i = 0; i < subscribers; ++i) {
    bus.subscribe(i % 2 ? "rack*/node*/power" : "*",
                  [&delivered](const telemetry::Reading&) { ++delivered; });
  }
  std::int64_t t = 0;
  for (auto _ : state) {
    bus.publish("rack00/node01/power", ++t, 150.0);
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_BusPublish)->Arg(1)->Arg(8)->Arg(64);

void BM_StoreInsert(benchmark::State& state) {
  telemetry::TimeSeriesStore store(1 << 16);
  TimePoint t = 0;
  for (auto _ : state) {
    store.insert("rack00/node01/power", {++t, 150.0});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreInsert);

void BM_StoreQueryRange(benchmark::State& state) {
  telemetry::TimeSeriesStore store(1 << 16);
  for (TimePoint t = 0; t < 40000; ++t) {
    store.insert("s", {t, static_cast<double>(t % 100)});
  }
  const auto span = state.range(0);
  for (auto _ : state) {
    auto slice = store.query("s", 20000, 20000 + span);
    benchmark::DoNotOptimize(slice.values.data());
  }
  state.SetItemsProcessed(state.iterations() * span);
}
BENCHMARK(BM_StoreQueryRange)->Arg(100)->Arg(1000)->Arg(10000);

void BM_StoreAggregate(benchmark::State& state) {
  telemetry::TimeSeriesStore store(1 << 16);
  for (TimePoint t = 0; t < 40000; ++t) {
    store.insert("s", {t, static_cast<double>(t % 100)});
  }
  for (auto _ : state) {
    auto slice = store.query_aggregated("s", 0, 40000, 600,
                                        telemetry::Aggregation::kMean);
    benchmark::DoNotOptimize(slice.values.data());
  }
}
BENCHMARK(BM_StoreAggregate);

void BM_StoreFrame(benchmark::State& state) {
  telemetry::TimeSeriesStore store(1 << 14);
  std::vector<std::string> paths;
  for (int s = 0; s < 16; ++s) {
    paths.push_back("sensor" + std::to_string(s));
    for (TimePoint t = 0; t < 5000; ++t) {
      store.insert(paths.back(), {t, static_cast<double>(t + s)});
    }
  }
  for (auto _ : state) {
    auto frame = store.frame(paths, 0, 5000, 60);
    benchmark::DoNotOptimize(frame.column_values(0).data());
  }
}
BENCHMARK(BM_StoreFrame);

void BM_CollectorPass(benchmark::State& state) {
  sim::ClusterParams params;
  params.racks = static_cast<std::size_t>(state.range(0));
  params.nodes_per_rack = 16;
  sim::ClusterSimulation cluster(params);
  telemetry::TimeSeriesStore store(1 << 12);
  telemetry::Collector collector(cluster, &store, nullptr);
  collector.add_all_sensors(cluster.dt());
  cluster.step();
  collector.collect();  // warm-up: first insert allocates each ring buffer
  for (auto _ : state) {
    collector.collect();
  }
  state.counters["sensors"] =
      static_cast<double>(collector.catalog().size());
}
BENCHMARK(BM_CollectorPass)->Arg(1)->Arg(4)->Arg(16);

// The tracing cost ladder (trace.hpp's cost model). Both sinks off must
// price a span at one relaxed atomic load — compare against RecorderOnly
// (the always-on default: clock reads + ring stores) and Full (tracer
// buffer push on top). Spans are taken via the TraceSpan class directly so
// the ladder is measurable in ODA_TRACING=OFF builds too; the macro path
// compiles to literally nothing there.
void BM_TraceSpanDisabled(benchmark::State& state) {
  obs::Tracer::global().set_enabled(false);
  obs::FlightRecorder::global().set_enabled(false);
  for (auto _ : state) {
    obs::TraceSpan span("bench.span", "bench");
  }
  state.SetItemsProcessed(state.iterations());
  obs::FlightRecorder::global().set_enabled(true);  // restore the default
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanRecorderOnly(benchmark::State& state) {
  obs::Tracer::global().set_enabled(false);
  obs::FlightRecorder::global().set_enabled(true);
  for (auto _ : state) {
    obs::TraceSpan span("bench.span", "bench");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanRecorderOnly);

void BM_TraceSpanFull(benchmark::State& state) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_capacity(1 << 12);  // small cap: steady state is count-drops
  tracer.set_enabled(true);
  for (auto _ : state) {
    obs::TraceSpan span("bench.span", "bench");
  }
  state.SetItemsProcessed(state.iterations());
  tracer.set_enabled(false);
  tracer.clear();
  tracer.set_capacity(1 << 16);
}
BENCHMARK(BM_TraceSpanFull);

// The profiler gate ladder (profiler.hpp's cost model): compiled in but
// stopped, SamplingProfiler::active() must price at one relaxed load —
// the entire steady-state cost instrumented threads pay when nobody is
// profiling. Compare against BM_TraceSpanDisabled, the same claim for
// spans.
void BM_ProfilerGateDisabled(benchmark::State& state) {
  for (auto _ : state) {
    bool active = obs::SamplingProfiler::active();
    benchmark::DoNotOptimize(active);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerGateDisabled);

// The lock-accounting ladder (contention.hpp's cost model): an uncontended
// RAII acquisition with accounting armed (the default — one relaxed load
// plus a try_lock fast path that skips both clock reads) against the same
// acquisition disarmed (plain lock() behind the relaxed load).
void BM_LockUncontendedAccountingOn(benchmark::State& state) {
  contention::set_enabled(true);
  Mutex mu;
  long counter = 0;
  for (auto _ : state) {
    MutexLock lock(mu);
    benchmark::DoNotOptimize(++counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockUncontendedAccountingOn);

void BM_LockUncontendedAccountingOff(benchmark::State& state) {
  contention::set_enabled(false);
  Mutex mu;
  long counter = 0;
  for (auto _ : state) {
    MutexLock lock(mu);
    benchmark::DoNotOptimize(++counter);
  }
  contention::set_enabled(true);  // restore the default
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockUncontendedAccountingOff);

void BM_SimStep(benchmark::State& state) {
  sim::ClusterParams params;
  params.racks = static_cast<std::size_t>(state.range(0));
  params.nodes_per_rack = 16;
  params.workload.peak_arrival_rate_per_hour = 60.0;
  sim::ClusterSimulation cluster(params);
  cluster.run_for(kHour);  // warm up with jobs running
  for (auto _ : state) {
    cluster.step();
  }
  state.counters["nodes"] = static_cast<double>(cluster.node_count());
}
BENCHMARK(BM_SimStep)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

ODA_BENCH_MAIN()
