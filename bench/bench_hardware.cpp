// Experiment E2 (DESIGN.md): the system-hardware column —
//   descriptive : ITUE/TUE and System Information Entropy;
//   diagnostic  : node anomaly detection across four injected fault kinds,
//                 plus a streaming-detector ablation on sensor faults;
//   predictive  : node sensor forecasting backtest + failure projection;
//   (prescriptive hardware control is measured in E5/E6.)
#include <cmath>
#include <cstdio>
#include <memory>

#include "analytics/descriptive/kpi.hpp"
#include "analytics/diagnostic/anomaly.hpp"
#include "analytics/predictive/backtest.hpp"
#include "analytics/predictive/failure.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

#include "bench_util.hpp"

namespace {

using namespace oda;

struct Rig {
  std::unique_ptr<sim::ClusterSimulation> cluster;
  std::unique_ptr<telemetry::TimeSeriesStore> store;
  std::unique_ptr<telemetry::Collector> collector;
  std::vector<std::string> prefixes;

  Rig(std::uint64_t seed, bool steady) {
    sim::ClusterParams params;
    params.racks = 2;
    params.nodes_per_rack = 8;
    params.seed = seed;
    params.workload.seed = seed;
    params.workload.peak_arrival_rate_per_hour = 40.0;
    cluster = std::make_unique<sim::ClusterSimulation>(params);
    store = std::make_unique<telemetry::TimeSeriesStore>(1 << 17);
    collector =
        std::make_unique<telemetry::Collector>(*cluster, store.get(), nullptr);
    collector->add_all_sensors(60);
    for (std::size_t i = 0; i < cluster->node_count(); ++i) {
      prefixes.push_back(cluster->node(i).path());
    }
    if (steady) {
      cluster->set_workload_enabled(false);
      Rng job_rng(seed ^ 0xABCD);
      for (std::size_t i = 0; i < cluster->node_count(); ++i) {
        sim::JobSpec spec;
        spec.id = 9000 + i;
        spec.user = "steady";
        spec.nodes_requested = 1;
        spec.phases = sim::WorkloadGenerator::make_phases(
            sim::JobClass::kComputeBound, 100 * kHour, job_rng);
        spec.walltime_requested = 200 * kHour;
        cluster->scheduler().submit(spec);
      }
    }
  }
  void advance(Duration d) {
    const TimePoint end = cluster->now() + d;
    while (cluster->now() < end) {
      cluster->step();
      collector->collect();
    }
  }
};

void descriptive_section() {
  std::printf("=== E2.descriptive: ITUE / TUE / SIE ===\n");
  Rig rig(11, /*steady=*/false);
  rig.advance(2 * kDay);
  const auto itue = analytics::compute_itue(*rig.store, 0, rig.cluster->now());
  std::printf("ITUE = %.3f   TUE = %.3f   (fan energy %.2f kWh of %.1f IT kWh)\n",
              itue.itue, itue.tue, itue.fan_energy_kwh, itue.it_energy_kwh);
  const auto sie = analytics::compute_sie(
      *rig.store, {"cluster/it_power", "scheduler/running_jobs",
                   "facility/cooling_power"},
      0, rig.cluster->now(), 15 * kMinute);
  std::printf("SIE = %.2f bits over %zu transitions (%zu distinct states)\n\n",
              sie.entropy_bits, sie.transitions, sie.distinct_states);
}

void diagnostic_component_faults() {
  std::printf("=== E2.diagnostic: node anomaly detection by fault kind ===\n");
  Rig rig(13, /*steady=*/true);
  rig.advance(10 * kHour);
  Rng rng(5);
  analytics::NodeAnomalyMonitor monitor({}, rig.prefixes);
  monitor.train(*rig.store, kHour, 10 * kHour, rng);

  // One fault per victim node, each of a different kind, spread across the
  // racks (the rack-relative features tolerate a minority of faulty peers
  // per rack; three faults in one 8-node rack would shift any robust
  // reference statistic).
  const TimePoint t0 = rig.cluster->now();
  rig.cluster->faults().schedule(
      {sim::FaultKind::kFanFailure, rig.prefixes[1], t0, t0 + 6 * kHour, 1.0});
  rig.cluster->faults().schedule({sim::FaultKind::kThermalDegradation,
                                  rig.prefixes[12], t0, t0 + 6 * kHour, 1.8});
  rig.cluster->faults().schedule({sim::FaultKind::kSensorStuck,
                                  rig.prefixes[6] + "/power", t0,
                                  t0 + 6 * kHour, 0.0});
  rig.cluster->faults().schedule({sim::FaultKind::kSensorDrift,
                                  rig.prefixes[10] + "/cpu_temp", t0,
                                  t0 + 6 * kHour, 4.0});
  rig.advance(2 * kHour);

  const auto verdicts = monitor.scan(*rig.store, rig.cluster->now());
  TextTable table({"node", "injected fault", "ensemble score",
                   "forest member", "pca member", "flagged"});
  table.set_align(2, Align::kRight);
  table.set_align(3, Align::kRight);
  table.set_align(4, Align::kRight);
  const auto fault_of = [&](std::size_t i) -> const char* {
    switch (i) {
      case 1: return "fan-failure";
      case 12: return "thermal-degradation";
      case 6: return "sensor-stuck(power)";
      case 10: return "sensor-drift(temp)";
      default: return "-";
    }
  };
  std::size_t detected = 0, false_pos = 0;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const bool faulty = i == 1 || i == 12 || i == 6 || i == 10;
    if (faulty && verdicts[i].anomalous) ++detected;
    if (!faulty && verdicts[i].anomalous) ++false_pos;
    table.add_row({verdicts[i].subject, fault_of(i),
                   format_double(verdicts[i].score, 2),
                   format_double(verdicts[i].forest_score, 2),
                   format_double(verdicts[i].pca_score, 2),
                   verdicts[i].anomalous ? "YES" : ""});
  }
  std::printf("%s", table.render().c_str());
  std::printf("window-feature ensemble: detected %zu/4 injected faults, %zu "
              "false positives on %zu healthy nodes\n",
              detected, false_pos, verdicts.size() - 4);

  // The stuck sensor freezes at a *typical* value, which is statistically
  // invisible to distribution-based monitors — the dedicated constant-run
  // detector is the right tool (division of labor: window features catch
  // physical/behavioral anomalies, per-sensor stream detectors catch
  // instrumentation faults).
  analytics::StuckSensorDetector stuck(20);
  const auto frozen = rig.store->query(rig.prefixes[6] + "/power",
                                       rig.cluster->now() - 2 * kHour,
                                       rig.cluster->now());
  for (double v : frozen.values) stuck.observe(v);
  std::printf("stuck-power sensor via StuckSensorDetector: score %.1f (>=1 "
              "fires) after %zu frozen samples\n\n",
              stuck.score(), frozen.size());
}

void diagnostic_streaming_ablation() {
  std::printf("=== E2.diagnostic ablation: streaming detectors on a drifting "
              "sensor ===\n");
  // Synthetic node-power stream with a drift fault in a known window.
  Rng rng(17);
  std::vector<double> values;
  std::vector<bool> truth;
  for (int i = 0; i < 4000; ++i) {
    double v = 230.0 + 8.0 * std::sin(2.0 * M_PI * i / 500.0) + rng.normal(0, 2.0);
    const bool faulty = i >= 2500 && i < 3500;
    if (faulty) v += 0.08 * static_cast<double>(i - 2500);  // drift
    values.push_back(v);
    truth.push_back(faulty);
  }
  TextTable table({"detector", "AUC", "recall@score>=1", "false-positive rate"});
  for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, Align::kRight);
  const auto evaluate = [&](analytics::StreamingDetector& det) {
    std::vector<double> scores;
    std::vector<bool> pred, t;
    for (std::size_t i = 0; i < values.size(); ++i) {
      det.observe(values[i]);
      if (i < 300) continue;
      scores.push_back(det.score());
      pred.push_back(det.score() >= 1.0);
      t.push_back(truth[i]);
    }
    const auto m = analytics::score_detection(pred, t);
    const double fpr =
        m.false_positives + m.true_negatives
            ? static_cast<double>(m.false_positives) /
                  static_cast<double>(m.false_positives + m.true_negatives)
            : 0.0;
    table.add_row({det.name(), format_double(analytics::roc_auc(scores, t), 3),
                   format_double(m.recall(), 2), format_double(fpr, 3)});
  };
  analytics::ZScoreDetector z(256, 4.0);
  analytics::MadDetector mad(256, 5.0);
  analytics::EwmaDetector ewma(0.05, 5.0);
  evaluate(z);
  evaluate(mad);
  evaluate(ewma);
  std::printf("%s\n", table.render().c_str());
}

void predictive_section() {
  std::printf("=== E2.predictive: node sensor forecasting + failure projection ===\n");
  Rig rig(19, /*steady=*/false);
  rig.advance(4 * kDay);
  const auto series = rig.store->query_aggregated(
      rig.prefixes[0] + "/power", 0, rig.cluster->now(), 10 * kMinute,
      telemetry::Aggregation::kMean);
  analytics::BacktestParams bp;
  bp.min_train = series.values.size() / 2;
  bp.horizon = 6;  // one hour ahead
  TextTable table({"model", "MAE [W]", "skill vs persistence"});
  table.set_align(1, Align::kRight);
  table.set_align(2, Align::kRight);
  for (const auto& r : analytics::backtest_all(
           {"persistence", "moving-average", "ses", "ar", "holt-winters:144"},
           series.values, bp)) {
    table.add_row({r.model, format_double(r.mae, 1),
                   format_double(r.skill_vs_persistence, 3)});
  }
  std::printf("%s", table.render().c_str());

  // Failure projection on a degrading fan signal.
  std::vector<double> fan;
  Rng rng(23);
  for (int h = 0; h < 72; ++h) fan.push_back(0.95 - 0.004 * h + rng.normal(0, 0.004));
  const auto proj =
      analytics::project_failure(fan, 3600.0, 0.5, /*increasing_is_bad=*/false);
  std::printf("fan degradation: slope %.4f/h -> hours to failure threshold: %s\n",
              proj.slope_per_hour,
              proj.hours_to_threshold
                  ? format_double(*proj.hours_to_threshold, 1).c_str()
                  : "n/a");

  // Weibull fleet model from synthetic failure history.
  Rng wrng(29);
  std::vector<double> failures;
  for (int i = 0; i < 60; ++i) failures.push_back(wrng.weibull(20000.0, 1.8));
  const auto weibull = analytics::WeibullLifetime::fit(failures);
  std::printf("fleet Weibull fit: shape=%.2f scale=%.0f h; P(fail in next "
              "1000 h | survived 20000 h) = %.3f\n\n",
              weibull.shape(), weibull.scale(),
              weibull.conditional_failure(20000.0, 1000.0));
}

}  // namespace

int main(int argc, char** argv) {
  oda::bench::BenchReport oda_report("bench_hardware", argc, argv);
  descriptive_section();
  diagnostic_component_faults();
  diagnostic_streaming_ablation();
  predictive_section();
  return 0;
}
