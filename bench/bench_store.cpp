// Telemetry-store throughput bench: insert throughput single/multi-thread
// for the sharded store vs. a faithful replica of the pre-shard design (one
// shared_mutex over a string-keyed map, one lock per sample), plus query /
// query_aggregated / frame latency and the collector's serial vs. parallel
// pass time. Emits --json via bench_util.hpp for scripts/collect_bench.py;
// --quick shrinks the workload for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <span>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/ring_buffer.hpp"
#include "obs/critical_path.hpp"
#include "obs/trace.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/series_id.hpp"
#include "telemetry/store.hpp"
#include "telemetry/wal.hpp"

namespace {

using oda::RingBuffer;
using oda::Rng;
using oda::ThreadPool;
using oda::TimePoint;
using oda::telemetry::Aggregation;
using oda::telemetry::IdReading;
using oda::telemetry::Sample;
using oda::telemetry::SeriesId;
using oda::telemetry::SeriesInterner;
using oda::telemetry::SeriesSlice;
using oda::telemetry::TimeSeriesStore;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The pre-shard TimeSeriesStore ingest design, kept here as the comparison
/// baseline: one reader/writer lock over a string-keyed ordered map, one
/// lookup + lock acquisition per sample.
class SingleMutexStore {
 public:
  explicit SingleMutexStore(std::size_t capacity) : capacity_(capacity) {}

  void insert(const std::string& path, Sample sample) {
    std::unique_lock lock(mu_);
    auto it = series_.find(path);
    if (it == series_.end()) {
      it = series_
               .emplace(path,
                        std::make_unique<RingBuffer<Sample>>(capacity_))
               .first;
    }
    it->second->push(sample);
  }

  SeriesSlice query(const std::string& path, TimePoint from,
                    TimePoint to) const {
    std::shared_lock lock(mu_);
    SeriesSlice out;
    const auto it = series_.find(path);
    if (it == series_.end()) return out;
    const auto& buf = *it->second;
    std::size_t lo = 0, hi = buf.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (buf[mid].time < from) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    for (std::size_t i = lo; i < buf.size() && buf[i].time < to; ++i) {
      out.times.push_back(buf[i].time);
      out.values.push_back(buf[i].value);
    }
    return out;
  }

 private:
  std::size_t capacity_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<RingBuffer<Sample>>> series_;
};

std::vector<std::string> make_paths(std::size_t n) {
  std::vector<std::string> paths;
  paths.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "bench/rack%02zu/node%02zu/power", p / 16,
                  p % 16);
    paths.emplace_back(buf);
  }
  return paths;
}

/// Multi-threaded ingest: each thread writes its own stripe of paths (the
/// collector-group pattern), `samples` total across all threads. Returns
/// million samples per second.
template <typename InsertThread>
double timed_msps(std::size_t threads, std::size_t samples,
                  InsertThread&& body) {
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&body, t] { body(t); });
  }
  for (auto& w : workers) w.join();
  return static_cast<double>(samples) / seconds_since(start) / 1e6;
}

struct InsertNumbers {
  double sharded_st = 0, sharded_mt = 0, legacy_st = 0, legacy_mt = 0;
};

InsertNumbers bench_inserts(std::size_t n_paths, std::size_t per_thread,
                            std::size_t threads, std::size_t batch) {
  const std::vector<std::string> paths = make_paths(n_paths);
  std::vector<SeriesId> ids;
  ids.reserve(n_paths);
  for (const auto& p : paths) ids.push_back(SeriesInterner::global().intern(p));

  InsertNumbers out;
  const auto sharded_writer = [&](TimeSeriesStore& store, std::size_t t,
                                  std::size_t nthreads) {
    // Stripe the path set across threads; batch like a collector pass.
    std::vector<IdReading> buf;
    buf.reserve(batch);
    TimePoint now = 0;
    for (std::size_t i = 0; i < per_thread; ++i) {
      const std::size_t p = (t + i * nthreads) % n_paths;
      buf.push_back({ids[p], {now, static_cast<double>(i)}});
      if (buf.size() == batch) {
        store.insert_batch(std::span<const IdReading>(buf));
        buf.clear();
        ++now;
      }
    }
    if (!buf.empty()) store.insert_batch(std::span<const IdReading>(buf));
  };
  const auto legacy_writer = [&](SingleMutexStore& store, std::size_t t,
                                 std::size_t nthreads) {
    TimePoint now = 0;
    for (std::size_t i = 0; i < per_thread; ++i) {
      const std::size_t p = (t + i * nthreads) % n_paths;
      store.insert(paths[p], {now, static_cast<double>(i)});
      if (i % batch == batch - 1) ++now;
    }
  };

  {
    TimeSeriesStore store(1 << 12);
    out.sharded_st =
        timed_msps(1, per_thread, [&](std::size_t t) { sharded_writer(store, t, 1); });
  }
  {
    TimeSeriesStore store(1 << 12);
    out.sharded_mt = timed_msps(threads, per_thread * threads, [&](std::size_t t) {
      sharded_writer(store, t, threads);
    });
  }
  {
    SingleMutexStore store(1 << 12);
    out.legacy_st =
        timed_msps(1, per_thread, [&](std::size_t t) { legacy_writer(store, t, 1); });
  }
  {
    SingleMutexStore store(1 << 12);
    out.legacy_mt = timed_msps(threads, per_thread * threads, [&](std::size_t t) {
      legacy_writer(store, t, threads);
    });
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  oda::bench::BenchReport report("bench_store", argc, argv);

  const std::size_t threads =
      std::max<std::size_t>(2, std::min<std::size_t>(
                                   8, std::thread::hardware_concurrency()));
  const std::size_t n_paths = 256;
  const std::size_t per_thread = quick ? 100'000 : 1'000'000;
  const std::size_t batch = 256;

  // ------------------------------------------------------------- ingest
  const InsertNumbers ins = bench_inserts(n_paths, per_thread, threads, batch);
  const double mt_speedup = ins.sharded_mt / ins.legacy_mt;
  std::printf("insert throughput (%zu paths, batch %zu):\n", n_paths, batch);
  std::printf("  sharded      1 thread  %8.2f Msamples/s\n", ins.sharded_st);
  std::printf("  sharded     %2zu threads %8.2f Msamples/s\n", threads,
              ins.sharded_mt);
  std::printf("  single-mutex 1 thread  %8.2f Msamples/s\n", ins.legacy_st);
  std::printf("  single-mutex%2zu threads %8.2f Msamples/s\n", threads,
              ins.legacy_mt);
  std::printf("  multi-thread speedup vs single-mutex: x%.2f\n\n", mt_speedup);
  report.add("insert_sharded_1t_msps", ins.sharded_st, "Msamples/s");
  report.add("insert_sharded_mt_msps", ins.sharded_mt, "Msamples/s");
  report.add("insert_single_mutex_1t_msps", ins.legacy_st, "Msamples/s");
  report.add("insert_single_mutex_mt_msps", ins.legacy_mt, "Msamples/s");
  report.add("insert_mt_speedup_vs_single_mutex", mt_speedup, "x");
  report.add("insert_threads", static_cast<double>(threads), "");

  // ------------------------------------------------------------- queries
  const std::size_t q_samples = quick ? 20'000 : 200'000;
  TimeSeriesStore store(q_samples + 1);
  SingleMutexStore legacy(q_samples + 1);
  const std::vector<std::string> qpaths = make_paths(16);
  for (const auto& p : qpaths) {
    for (std::size_t i = 0; i < q_samples; ++i) {
      const Sample s{static_cast<TimePoint>(i),
                     static_cast<double>(i % 997) * 0.5};
      store.insert(p, s);
      legacy.insert(p, s);
    }
  }
  const auto to = static_cast<TimePoint>(q_samples);
  const int q_reps = quick ? 20 : 100;

  auto start = std::chrono::steady_clock::now();
  std::size_t sink = 0;
  for (int r = 0; r < q_reps; ++r) {
    sink += store.query(qpaths[r % qpaths.size()], to / 4, 3 * to / 4).size();
  }
  const double query_us = seconds_since(start) / q_reps * 1e6;

  start = std::chrono::steady_clock::now();
  for (int r = 0; r < q_reps; ++r) {
    sink += legacy.query(qpaths[r % qpaths.size()], to / 4, 3 * to / 4).size();
  }
  const double legacy_query_us = seconds_since(start) / q_reps * 1e6;

  start = std::chrono::steady_clock::now();
  for (int r = 0; r < q_reps; ++r) {
    sink += store
                .query_aggregated(qpaths[r % qpaths.size()], 0, to, 60,
                                  Aggregation::kStdDev)
                .size();
  }
  const double agg_us = seconds_since(start) / q_reps * 1e6;

  const int f_reps = quick ? 5 : 20;
  start = std::chrono::steady_clock::now();
  for (int r = 0; r < f_reps; ++r) {
    sink += store.frame(qpaths, 0, to, 60, Aggregation::kMean).rows();
  }
  const double frame_ms = seconds_since(start) / f_reps * 1e3;

  ThreadPool pool;
  store.set_pool(&pool);
  start = std::chrono::steady_clock::now();
  for (int r = 0; r < f_reps; ++r) {
    sink += store.frame(qpaths, 0, to, 60, Aggregation::kMean).rows();
  }
  const double frame_parallel_ms = seconds_since(start) / f_reps * 1e3;
  store.set_pool(nullptr);

  std::printf("query latency (%zu samples/series):\n", q_samples);
  std::printf("  query half-range        %10.1f us   (single-mutex %10.1f us)\n",
              query_us, legacy_query_us);
  std::printf("  query_aggregated stddev %10.1f us\n", agg_us);
  std::printf("  frame 16 cols serial    %10.2f ms, pooled %10.2f ms (x%.2f)\n\n",
              frame_ms, frame_parallel_ms, frame_ms / frame_parallel_ms);
  report.add("query_us", query_us, "us");
  report.add("query_single_mutex_us", legacy_query_us, "us");
  report.add("query_aggregated_stddev_us", agg_us, "us");
  report.add("frame_serial_ms", frame_ms, "ms");
  report.add("frame_parallel_ms", frame_parallel_ms, "ms");
  report.add("frame_parallel_speedup", frame_ms / frame_parallel_ms, "x");

  // ------------------------------------------- column-scaling curve
  // Pooled frame() latency as frames widen (64 -> 1024 sensors): the CI
  // smoke gate plots this to catch per-column fan-out overhead creeping
  // back (the chunked parallel_for exists so that 1024 cheap columns do
  // not pay 1024 task submissions).
  {
    const std::size_t cs_samples = quick ? 500 : 2000;
    TimeSeriesStore wide_store(cs_samples + 1);
    const std::vector<std::string> wide_paths = make_paths(1024);
    std::vector<IdReading> seed_batch;
    seed_batch.reserve(wide_paths.size());
    std::vector<SeriesId> wide_ids;
    wide_ids.reserve(wide_paths.size());
    for (const auto& p : wide_paths) {
      wide_ids.push_back(SeriesInterner::global().intern(p));
    }
    for (std::size_t t = 0; t < cs_samples; ++t) {
      seed_batch.clear();
      for (const SeriesId id : wide_ids) {
        seed_batch.push_back(
            {id, {static_cast<TimePoint>(t), static_cast<double>(t % 101)}});
      }
      wide_store.insert_batch(std::span<const IdReading>(seed_batch));
    }
    wide_store.set_pool(&pool);
    const auto wide_to = static_cast<TimePoint>(cs_samples);
    std::printf("frame width scaling (%zu samples/series, pooled):\n",
                cs_samples);
    for (const std::size_t cols : {std::size_t{64}, std::size_t{256},
                                   std::size_t{1024}}) {
      const std::vector<std::string> subset(wide_paths.begin(),
                                            wide_paths.begin() +
                                                static_cast<std::ptrdiff_t>(cols));
      const int reps = quick ? 3 : 10;
      const auto cs_start = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) {
        sink += wide_store.frame(subset, 0, wide_to, 20, Aggregation::kMean)
                    .rows();
      }
      const double cols_ms = seconds_since(cs_start) / reps * 1e3;
      std::printf("  %4zu cols %10.2f ms\n", cols, cols_ms);
      report.add("frame_cols_" + std::to_string(cols) + "_ms", cols_ms, "ms");
    }
    wide_store.set_pool(nullptr);
  }

  // ---------------------------------------- trace-derived critical path
  // One pooled frame() runs under the tracer; the critical-path analyzer
  // (obs/critical_path.hpp) turns the span tree into the path length and a
  // parallelism coefficient (total busy / root duration). Structural
  // metrics from span nesting, not a wall-clock re-timing — so they also
  // explain *why* the pooled frame is faster, not just that it is.
#if ODA_TRACING_ENABLED
  {
    oda::obs::Tracer& tracer = oda::obs::Tracer::global();
    tracer.clear();
    tracer.set_capacity(1 << 16);
    tracer.set_enabled(true);
    store.set_pool(&pool);
    sink += store.frame(qpaths, 0, to, 60, Aggregation::kMean).rows();
    store.set_pool(nullptr);
    tracer.set_enabled(false);
    const auto reports = oda::obs::analyze_critical_path(tracer.events());
    tracer.clear();
    for (const auto& r : reports) {
      if (r.root_name != "store.frame") continue;
      std::printf("frame critical path: %.2f ms over %zu spans, "
                  "parallelism x%.2f\n",
                  r.critical_path_us / 1e3, r.span_count, r.parallelism);
      report.add("frame_critical_path_ms", r.critical_path_us / 1e3, "ms");
      report.add("frame_parallelism", r.parallelism, "x");
      break;
    }
  }
#endif

  // ------------------------------------------------- collector pass time
  // Serial vs. pool-fanned sensor reads (the fault overlay no longer
  // serializes the parallel path). Same cluster/workload either way.
  std::size_t sensor_count = 0;
  const auto collector_pass_seconds = [&](bool parallel) {
    oda::sim::ClusterParams params;
    params.racks = 8;
    params.nodes_per_rack = 32;
    oda::sim::ClusterSimulation cluster(params);
    sensor_count = cluster.sensors().size();
    for (std::size_t i = 0; i < cluster.sensors().size(); i += 7) {
      cluster.faults().schedule({oda::sim::FaultKind::kSensorNoise,
                                 cluster.sensors()[i].path, 0, 1 << 20, 0.5});
    }
    TimeSeriesStore cstore(1 << 10);
    ThreadPool cpool;
    oda::telemetry::Collector collector(cluster, &cstore, nullptr,
                                        parallel ? &cpool : nullptr);
    collector.add_all_sensors(params.dt);
    const int passes = quick ? 5 : 40;
    cluster.step();
    collector.collect();  // warm-up: intern + create series
    const auto c_start = std::chrono::steady_clock::now();
    for (int pass = 0; pass < passes; ++pass) {
      cluster.step();
      collector.collect();
    }
    return seconds_since(c_start) / passes;
  };
  const double serial_pass = collector_pass_seconds(false);
  const double parallel_pass = collector_pass_seconds(true);
  std::printf("collector pass (8x32 nodes, %zu sensors):\n  serial %8.2f ms, "
              "parallel %8.2f ms -> x%.2f\n",
              sensor_count, serial_pass * 1e3, parallel_pass * 1e3,
              serial_pass / parallel_pass);
  report.add("collector_serial_pass_ms", serial_pass * 1e3, "ms");
  report.add("collector_parallel_pass_ms", parallel_pass * 1e3, "ms");
  report.add("collector_parallel_speedup", serial_pass / parallel_pass, "x");

  // One traced parallel collect() pass, same structural analysis as the
  // frame above: how much of the pass the pool actually overlaps.
#if ODA_TRACING_ENABLED
  {
    oda::sim::ClusterParams params;
    params.racks = 4;
    params.nodes_per_rack = 16;
    oda::sim::ClusterSimulation cluster(params);
    TimeSeriesStore cstore(1 << 10);
    ThreadPool cpool;
    oda::telemetry::Collector collector(cluster, &cstore, nullptr, &cpool);
    collector.add_all_sensors(params.dt);
    cluster.step();
    collector.collect();  // warm-up: intern + create series
    oda::obs::Tracer& tracer = oda::obs::Tracer::global();
    tracer.clear();
    tracer.set_capacity(1 << 16);
    tracer.set_enabled(true);
    cluster.step();
    collector.collect();
    tracer.set_enabled(false);
    const auto reports = oda::obs::analyze_critical_path(tracer.events());
    tracer.clear();
    for (const auto& r : reports) {
      if (r.root_name != "collector.collect") continue;
      std::printf("collect critical path: %.2f ms over %zu spans, "
                  "parallelism x%.2f\n",
                  r.critical_path_us / 1e3, r.span_count, r.parallelism);
      report.add("collect_critical_path_ms", r.critical_path_us / 1e3, "ms");
      report.add("collect_parallelism", r.parallelism, "x");
      break;
    }
  }
#endif

  // ------------------------------------------------------------------ WAL
  // Durable-tier cost: batch ingest with the write-ahead log attached
  // (group commit + fsync per flush) vs. the bare store, and how long
  // recovery takes to replay the segments into a fresh store.
  if (oda::telemetry::wal_enabled()) {
    const std::string wal_dir = "/tmp/oda_bench_wal";
    const std::string scrub = "rm -rf " + wal_dir;
    (void)std::system(scrub.c_str());

    const std::size_t wal_samples = quick ? 100'000 : 1'000'000;
    const std::size_t wal_batch = 256;
    std::vector<SeriesId> wal_ids;
    for (std::size_t i = 0; i < n_paths; ++i) {
      wal_ids.push_back(
          SeriesInterner::global().intern("bwal/s" + std::to_string(i)));
    }
    std::vector<IdReading> wbatch(wal_batch);
    const auto fill = [&](std::size_t base) {
      for (std::size_t j = 0; j < wal_batch; ++j) {
        const std::size_t g = base + j;
        wbatch[j] = IdReading{wal_ids[g % n_paths],
                              {static_cast<TimePoint>(g / n_paths),
                               static_cast<double>(g % 997) * 0.25}};
      }
    };

    const auto ingest_seconds = [&](oda::telemetry::Wal* wal) {
      TimeSeriesStore wstore(1 << 12);
      if (wal != nullptr) wstore.set_wal(wal);
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t base = 0; base + wal_batch <= wal_samples;
           base += wal_batch) {
        fill(base);
        wstore.insert_batch(std::span<const IdReading>(wbatch));
      }
      if (wal != nullptr) wal->flush();
      return seconds_since(t0);
    };

    const double bare_s = ingest_seconds(nullptr);
    double wal_s = 0;
    {
      oda::telemetry::Wal wal(oda::telemetry::WalOptions{.dir = wal_dir});
      std::vector<IdReading> rec;
      wal.recover(rec);
      if (!wal.start()) {
        std::printf("wal bench: start() failed, skipping\n");
      } else {
        wal_s = ingest_seconds(&wal);
      }
      wal.stop();
    }
    if (wal_s > 0) {
      double replay_ms = 0;
      {
        TimeSeriesStore replayed(1 << 12);
        oda::telemetry::Wal wal(oda::telemetry::WalOptions{.dir = wal_dir});
        const auto t0 = std::chrono::steady_clock::now();
        const auto stats = wal.recover_into(replayed);
        replay_ms = seconds_since(t0) * 1e3;
        std::printf("wal: ingest %8.2f Msamples/s bare, %8.2f with WAL "
                    "(overhead x%.2f)\n     replay %.2f ms for %llu samples\n",
                    wal_samples / bare_s / 1e6, wal_samples / wal_s / 1e6,
                    wal_s / bare_s,
                    replay_ms,
                    static_cast<unsigned long long>(stats.samples_replayed));
      }
      report.add("wal_append_msps", wal_samples / wal_s / 1e6, "Msamples/s");
      report.add("wal_append_overhead", wal_s / bare_s, "x");
      report.add("wal_replay_ms", replay_ms, "ms");
    }
    (void)std::system(scrub.c_str());
  }

  if (sink == 0) std::printf("(empty results?)\n");
  return 0;
}
