// Experiment E1 (DESIGN.md): the building-infrastructure column of Table I
// exercised end-to-end on the simulated facility —
//   descriptive : interval PUE/ERE and the facility dashboard;
//   diagnostic  : pump-degradation + chiller-fouling detection scored
//                 against injected ground truth;
//   predictive  : cooling-power forecasting backtest;
//   prescriptive: supply-setpoint sweep vs the online optimizer.
#include <cstdio>
#include <memory>

#include "analytics/descriptive/dashboard.hpp"
#include "analytics/descriptive/kpi.hpp"
#include "analytics/diagnostic/anomaly.hpp"
#include "analytics/diagnostic/stress_test.hpp"
#include "analytics/predictive/backtest.hpp"
#include "analytics/prescriptive/controller.hpp"
#include "analytics/prescriptive/cooling.hpp"
#include "common/table.hpp"
#include "common/string_util.hpp"
#include "sim/cluster.hpp"
#include "telemetry/collector.hpp"

#include "bench_util.hpp"

namespace {

using namespace oda;

sim::ClusterParams base_params() {
  sim::ClusterParams params;
  params.seed = 7;
  params.dt = 30;
  // Below saturation: utilization (and with it power, cooling demand, PUE)
  // follows the diurnal submission cycle, which is the structure the
  // descriptive and predictive sections exercise.
  params.workload.peak_arrival_rate_per_hour = 5.0;
  params.workload.seed = 7;
  return params;
}

struct Run {
  std::unique_ptr<sim::ClusterSimulation> cluster;
  std::unique_ptr<telemetry::TimeSeriesStore> store;
  std::unique_ptr<telemetry::Collector> collector;

  explicit Run(const sim::ClusterParams& params) {
    cluster = std::make_unique<sim::ClusterSimulation>(params);
    store = std::make_unique<telemetry::TimeSeriesStore>(1 << 17);
    collector =
        std::make_unique<telemetry::Collector>(*cluster, store.get(), nullptr);
    collector->add_all_sensors(60);
  }
  void advance(Duration d, analytics::ControlLoop* loop = nullptr) {
    const TimePoint end = cluster->now() + d;
    while (cluster->now() < end) {
      cluster->step();
      collector->collect();
      if (loop) loop->tick();
    }
  }
};

void descriptive_section() {
  std::printf("=== E1.descriptive: facility KPIs over three simulated days ===\n");
  Run run(base_params());
  run.advance(3 * kDay);
  TextTable table({"day", "PUE", "facility kWh", "IT kWh", "cooling kWh"});
  for (std::size_t c = 1; c <= 4; ++c) table.set_align(c, Align::kRight);
  for (int day = 0; day < 3; ++day) {
    const auto pue =
        analytics::compute_pue(*run.store, day * kDay, (day + 1) * kDay);
    table.add_row({std::to_string(day), format_double(pue.pue, 3),
                   format_double(pue.facility_energy_kwh, 1),
                   format_double(pue.it_energy_kwh, 1),
                   format_double(pue.cooling_energy_kwh, 1)});
  }
  std::printf("%s", table.render().c_str());
  const auto pue = analytics::compute_pue(*run.store, 0, run.cluster->now());
  std::printf("ERE at 30%% heat reuse: %.3f (vs PUE %.3f)\n\n",
              analytics::compute_ere(pue, 0.3), pue.pue);
  std::printf("%s\n",
              analytics::facility_dashboard(*run.store, 2 * kDay, 3 * kDay).c_str());
}

void diagnostic_section() {
  std::printf("=== E1.diagnostic: infrastructure fault detection ===\n");
  // Streaming MAD detectors on pump power and chiller COP; faults injected
  // with known windows let us score the alarms.
  auto params = base_params();
  params.weather.mean_temp_c = 27.0;  // chiller active so fouling is visible
  Run run(params);
  run.advance(12 * kHour);  // healthy baseline
  const TimePoint fault_start = run.cluster->now() + 6 * kHour;
  const TimePoint fault_end = fault_start + 12 * kHour;
  run.cluster->faults().schedule(
      {sim::FaultKind::kPumpDegradation, "facility", fault_start, fault_end, 1.6});
  run.advance(30 * kHour);

  const auto slice = run.store->query("facility/pump_power", 0, run.cluster->now());
  analytics::EwmaDetector detector(0.05, 5.0);
  std::vector<double> scores;
  std::vector<bool> truth;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    detector.observe(slice.values[i]);
    if (slice.times[i] < 6 * kHour) continue;  // warm-up
    scores.push_back(detector.score());
    truth.push_back(slice.times[i] >= fault_start && slice.times[i] < fault_end);
  }
  std::vector<bool> predicted;
  predicted.reserve(scores.size());
  for (double s : scores) predicted.push_back(s >= 1.0);
  const auto metrics = analytics::score_detection(predicted, truth);
  std::printf("pump-degradation via EWMA chart on facility/pump_power:\n");
  std::printf("  AUC=%.3f precision=%.2f recall=%.2f f1=%.2f\n\n",
              analytics::roc_auc(scores, truth), metrics.precision(),
              metrics.recall(), metrics.f1());

  // Active stress testing [39]: the same degradation found by perturbing
  // the plant and timing its response, rather than waiting for passive
  // telemetry to accumulate evidence.
  const auto stress_on = [&](double degradation) {
    auto p = base_params();
    p.workload.peak_arrival_rate_per_hour = 0.0;
    sim::ClusterSimulation c(p);
    c.set_workload_enabled(false);
    if (degradation > 1.0) {
      c.faults().schedule({sim::FaultKind::kPumpDegradation, "facility", 0,
                           100 * kDay, degradation});
    }
    return c;
  };
  auto healthy_plant = stress_on(1.0);
  const auto baseline =
      analytics::run_cooling_stress_test(healthy_plant, 0.0);
  auto degraded_plant = stress_on(1.7);
  const auto verdict = analytics::run_cooling_stress_test(
      degraded_plant, baseline.time_constant_s);
  std::printf("active stress test (setpoint step, fitted loop tau):\n");
  std::printf("  healthy tau=%.0f s (fit rmse %.2f C); degraded plant "
              "tau=%.0f s -> slowdown x%.2f, degraded=%s\n\n",
              baseline.time_constant_s, baseline.residual_rmse_c,
              verdict.time_constant_s, verdict.slowdown_factor,
              verdict.degraded ? "YES" : "no");
}

void predictive_section() {
  std::printf("=== E1.predictive: cooling-power forecasting backtest ===\n");
  // Warm climate: cooling runs on the chiller, so cooling power carries the
  // compounded diurnal structure of IT load and outdoor wet-bulb (in a
  // free-cooled cold climate the cooling power is a flat tower-fan trickle
  // with nothing to forecast).
  auto params = base_params();
  params.weather.mean_temp_c = 27.0;
  params.weather.seasonal_amplitude = 2.0;
  Run run(params);
  run.advance(7 * kDay);
  const auto series =
      run.store->query_aggregated("facility/cooling_power", 0,
                                  run.cluster->now(), 15 * kMinute,
                                  telemetry::Aggregation::kMean);
  // Two horizons: at 2 h ahead a flat forecast from the origin is hard to
  // beat (the diurnal phase barely moves); at 12 h ahead the origin sits on
  // the opposite phase and only the seasonal models survive.
  for (const auto& [label, horizon] :
       std::vector<std::pair<const char*, std::size_t>>{{"2 h ahead", 8},
                                                        {"12 h ahead", 48}}) {
    analytics::BacktestParams bp;
    bp.min_train = 96 * 4;  // four days
    bp.horizon = horizon;
    bp.stride = 16;
    TextTable table({"model", "MAE [W]", "RMSE [W]", "skill vs persistence"});
    table.set_title(label);
    for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, Align::kRight);
    for (const auto& r : analytics::backtest_all(
             analytics::standard_forecaster_specs(96), series.values, bp)) {
      table.add_row({r.model, format_double(r.mae, 0), format_double(r.rmse, 0),
                     format_double(r.skill_vs_persistence, 3)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("finding: on a 64-node machine the cooling-power series is "
              "dominated by persistent per-job noise (one job is several %% "
              "of load), so the flat persistence forecast is unbeaten — "
              "seasonal models pay for structure the signal lacks.\n\n");

  // The weather-driven side of cooling demand is where seasonal forecasting
  // earns its keep ([37],[46]): the wet-bulb temperature that sets chiller
  // COP and free-cooling feasibility.
  const auto wb = run.store->query_aggregated(
      "weather/wetbulb_temp", 0, run.cluster->now(), 15 * kMinute,
      telemetry::Aggregation::kMean);
  analytics::BacktestParams bp;
  bp.min_train = 96 * 4;
  bp.horizon = 48;  // 12 h ahead
  bp.stride = 16;
  TextTable table({"model", "MAE [degC]", "skill vs persistence"});
  table.set_title("outdoor wet-bulb (the cooling-demand driver), 12 h ahead");
  table.set_align(1, Align::kRight);
  table.set_align(2, Align::kRight);
  for (const auto& r : analytics::backtest_all(
           {"persistence", "ses", "ar", "holt-winters:96"}, wb.values, bp)) {
    table.add_row({r.model, format_double(r.mae, 2),
                   format_double(r.skill_vs_persistence, 3)});
  }
  std::printf("%s\n", table.render().c_str());
}

void prescriptive_section() {
  std::printf("=== E1.prescriptive: supply-setpoint sweep vs online optimizer ===\n");
  std::printf("(warm climate, 26 C mean: low setpoints need the chiller, high "
              "setpoints cost node leakage/fan power -> interior optimum.\n"
              " Commissioning-style steady load: on live workloads the "
              "setpoint signal, ~0.2%%/K, is buried under day-to-day job-mix "
              "variance of several %% — sites therefore tune during "
              "controlled burn-in runs, which is what we reproduce.)\n");
  TextTable table({"policy", "setpoint [C]", "facility energy [kWh]",
                   "PUE", "max CPU temp [C]"});
  for (std::size_t c = 1; c <= 4; ++c) table.set_align(c, Align::kRight);

  const auto warm_params = [] {
    auto params = base_params();
    // Held-constant warm weather: a probing optimizer compares power
    // between adjacent windows, so outdoor variability (chiller COP moves
    // ~300 W over a day, twice the per-move setpoint signal) must be
    // controlled for — commissioning experiments do exactly this by
    // comparing like-for-like outdoor conditions.
    params.weather.mean_temp_c = 26.0;
    params.weather.seasonal_amplitude = 0.0;
    params.weather.diurnal_amplitude = 0.0;
    params.weather.front_stddev = 0.0;
    params.workload.peak_arrival_rate_per_hour = 0.0;
    return params;
  };
  const auto apply_steady_load = [](Run& run) {
    run.cluster->set_workload_enabled(false);
    for (std::size_t i = 0; i < run.cluster->node_count(); ++i) {
      sim::JobSpec spec;
      spec.id = 7000 + i;
      spec.user = "burnin";
      spec.nodes_requested = 1;
      sim::JobPhase phase;
      phase.nominal_duration = 400 * kHour;
      phase.cpu_util = 0.9;
      phase.mem_bw_util = 0.3;
      phase.mem_boundedness = 0.2;
      spec.phases = {phase};
      spec.walltime_requested = 800 * kHour;
      run.cluster->scheduler().submit(spec);
    }
  };

  const auto run_fixed = [&](double setpoint) {
    auto params = warm_params();
    params.facility.supply_setpoint_c = setpoint;
    Run run(params);
    apply_steady_load(run);
    run.advance(36 * kHour);
    double max_temp = 0.0;
    for (std::size_t i = 0; i < run.cluster->node_count(); ++i) {
      max_temp = std::max(max_temp, run.cluster->node(i).cpu_temp_c());
    }
    // Score the settled half of the run.
    const auto pue =
        analytics::compute_pue(*run.store, 18 * kHour, 36 * kHour);
    table.add_row({"fixed", format_double(setpoint, 1),
                   format_double(pue.facility_energy_kwh, 1),
                   format_double(pue.pue, 3), format_double(max_temp, 1)});
    return pue.facility_energy_kwh;
  };

  double best_fixed = 1e18;
  for (double sp : {20.0, 25.0, 30.0, 35.0, 40.0}) {
    best_fixed = std::min(best_fixed, run_fixed(sp));
  }

  // The online optimizer starting from a poor (cold) setpoint.
  auto params = warm_params();
  params.facility.supply_setpoint_c = 20.0;
  Run run(params);
  apply_steady_load(run);
  analytics::ControlLoop loop(*run.cluster, *run.store);
  analytics::CoolingSetpointOptimizer::Params op;
  op.period = 2 * kHour;
  loop.add(std::make_shared<analytics::CoolingSetpointOptimizer>(op));
  run.advance(4 * kDay, &loop);
  // Compare on the same footing: an 18-hour settled window.
  const auto pue = analytics::compute_pue(
      *run.store, run.cluster->now() - 18 * kHour, run.cluster->now());
  table.add_row({"optimizer, settled (from 20 C)",
                 format_double(run.cluster->knobs().get("facility/supply_setpoint"), 1),
                 format_double(pue.facility_energy_kwh, 1),
                 format_double(pue.pue, 3), "-"});
  std::printf("%s", table.render().c_str());
  std::printf("best fixed setpoint energy: %.1f kWh per 18 h window; the "
              "optimizer walks from 20 C toward the interior optimum and its "
              "settled window should approach that figure.\n",
              best_fixed);
}

}  // namespace

int main(int argc, char** argv) {
  oda::bench::BenchReport oda_report("bench_infrastructure", argc, argv);
  descriptive_section();
  diagnostic_section();
  predictive_section();
  prescriptive_section();
  return 0;
}
