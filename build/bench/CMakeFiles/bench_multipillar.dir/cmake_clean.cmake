file(REMOVE_RECURSE
  "CMakeFiles/bench_multipillar.dir/bench_multipillar.cpp.o"
  "CMakeFiles/bench_multipillar.dir/bench_multipillar.cpp.o.d"
  "bench_multipillar"
  "bench_multipillar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multipillar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
