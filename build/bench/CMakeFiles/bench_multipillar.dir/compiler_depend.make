# Empty compiler generated dependencies file for bench_multipillar.
# This may be replaced when dependencies are built.
