file(REMOVE_RECURSE
  "CMakeFiles/bench_hardware.dir/bench_hardware.cpp.o"
  "CMakeFiles/bench_hardware.dir/bench_hardware.cpp.o.d"
  "bench_hardware"
  "bench_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
