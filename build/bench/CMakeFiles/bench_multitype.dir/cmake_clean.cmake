file(REMOVE_RECURSE
  "CMakeFiles/bench_multitype.dir/bench_multitype.cpp.o"
  "CMakeFiles/bench_multitype.dir/bench_multitype.cpp.o.d"
  "bench_multitype"
  "bench_multitype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multitype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
