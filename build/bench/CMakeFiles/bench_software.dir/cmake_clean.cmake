file(REMOVE_RECURSE
  "CMakeFiles/bench_software.dir/bench_software.cpp.o"
  "CMakeFiles/bench_software.dir/bench_software.cpp.o.d"
  "bench_software"
  "bench_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
