# Empty dependencies file for bench_software.
# This may be replaced when dependencies are built.
