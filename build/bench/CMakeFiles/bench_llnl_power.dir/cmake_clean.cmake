file(REMOVE_RECURSE
  "CMakeFiles/bench_llnl_power.dir/bench_llnl_power.cpp.o"
  "CMakeFiles/bench_llnl_power.dir/bench_llnl_power.cpp.o.d"
  "bench_llnl_power"
  "bench_llnl_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_llnl_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
