file(REMOVE_RECURSE
  "CMakeFiles/bench_infrastructure.dir/bench_infrastructure.cpp.o"
  "CMakeFiles/bench_infrastructure.dir/bench_infrastructure.cpp.o.d"
  "bench_infrastructure"
  "bench_infrastructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_infrastructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
