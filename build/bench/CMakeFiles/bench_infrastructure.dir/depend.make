# Empty dependencies file for bench_infrastructure.
# This may be replaced when dependencies are built.
