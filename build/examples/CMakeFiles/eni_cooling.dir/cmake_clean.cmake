file(REMOVE_RECURSE
  "CMakeFiles/eni_cooling.dir/eni_cooling.cpp.o"
  "CMakeFiles/eni_cooling.dir/eni_cooling.cpp.o.d"
  "eni_cooling"
  "eni_cooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eni_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
