# Empty dependencies file for eni_cooling.
# This may be replaced when dependencies are built.
