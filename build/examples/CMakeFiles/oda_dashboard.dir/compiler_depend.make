# Empty compiler generated dependencies file for oda_dashboard.
# This may be replaced when dependencies are built.
