file(REMOVE_RECURSE
  "CMakeFiles/oda_dashboard.dir/oda_dashboard.cpp.o"
  "CMakeFiles/oda_dashboard.dir/oda_dashboard.cpp.o.d"
  "oda_dashboard"
  "oda_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oda_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
