# Empty dependencies file for llnl_notify.
# This may be replaced when dependencies are built.
