file(REMOVE_RECURSE
  "CMakeFiles/llnl_notify.dir/llnl_notify.cpp.o"
  "CMakeFiles/llnl_notify.dir/llnl_notify.cpp.o.d"
  "llnl_notify"
  "llnl_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llnl_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
