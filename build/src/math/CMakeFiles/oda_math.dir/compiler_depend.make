# Empty compiler generated dependencies file for oda_math.
# This may be replaced when dependencies are built.
