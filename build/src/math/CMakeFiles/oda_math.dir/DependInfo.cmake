
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/ar_model.cpp" "src/math/CMakeFiles/oda_math.dir/ar_model.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/ar_model.cpp.o.d"
  "/root/repo/src/math/decision_tree.cpp" "src/math/CMakeFiles/oda_math.dir/decision_tree.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/decision_tree.cpp.o.d"
  "/root/repo/src/math/distance.cpp" "src/math/CMakeFiles/oda_math.dir/distance.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/distance.cpp.o.d"
  "/root/repo/src/math/entropy.cpp" "src/math/CMakeFiles/oda_math.dir/entropy.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/entropy.cpp.o.d"
  "/root/repo/src/math/fft.cpp" "src/math/CMakeFiles/oda_math.dir/fft.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/fft.cpp.o.d"
  "/root/repo/src/math/isolation_forest.cpp" "src/math/CMakeFiles/oda_math.dir/isolation_forest.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/isolation_forest.cpp.o.d"
  "/root/repo/src/math/kmeans.cpp" "src/math/CMakeFiles/oda_math.dir/kmeans.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/kmeans.cpp.o.d"
  "/root/repo/src/math/knn.cpp" "src/math/CMakeFiles/oda_math.dir/knn.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/knn.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "src/math/CMakeFiles/oda_math.dir/matrix.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/matrix.cpp.o.d"
  "/root/repo/src/math/optimize.cpp" "src/math/CMakeFiles/oda_math.dir/optimize.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/optimize.cpp.o.d"
  "/root/repo/src/math/pca.cpp" "src/math/CMakeFiles/oda_math.dir/pca.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/pca.cpp.o.d"
  "/root/repo/src/math/regression.cpp" "src/math/CMakeFiles/oda_math.dir/regression.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/regression.cpp.o.d"
  "/root/repo/src/math/smoothing.cpp" "src/math/CMakeFiles/oda_math.dir/smoothing.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/smoothing.cpp.o.d"
  "/root/repo/src/math/timeseries.cpp" "src/math/CMakeFiles/oda_math.dir/timeseries.cpp.o" "gcc" "src/math/CMakeFiles/oda_math.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
