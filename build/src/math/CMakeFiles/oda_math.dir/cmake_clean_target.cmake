file(REMOVE_RECURSE
  "liboda_math.a"
)
