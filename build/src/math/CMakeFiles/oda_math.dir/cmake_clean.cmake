file(REMOVE_RECURSE
  "CMakeFiles/oda_math.dir/ar_model.cpp.o"
  "CMakeFiles/oda_math.dir/ar_model.cpp.o.d"
  "CMakeFiles/oda_math.dir/decision_tree.cpp.o"
  "CMakeFiles/oda_math.dir/decision_tree.cpp.o.d"
  "CMakeFiles/oda_math.dir/distance.cpp.o"
  "CMakeFiles/oda_math.dir/distance.cpp.o.d"
  "CMakeFiles/oda_math.dir/entropy.cpp.o"
  "CMakeFiles/oda_math.dir/entropy.cpp.o.d"
  "CMakeFiles/oda_math.dir/fft.cpp.o"
  "CMakeFiles/oda_math.dir/fft.cpp.o.d"
  "CMakeFiles/oda_math.dir/isolation_forest.cpp.o"
  "CMakeFiles/oda_math.dir/isolation_forest.cpp.o.d"
  "CMakeFiles/oda_math.dir/kmeans.cpp.o"
  "CMakeFiles/oda_math.dir/kmeans.cpp.o.d"
  "CMakeFiles/oda_math.dir/knn.cpp.o"
  "CMakeFiles/oda_math.dir/knn.cpp.o.d"
  "CMakeFiles/oda_math.dir/matrix.cpp.o"
  "CMakeFiles/oda_math.dir/matrix.cpp.o.d"
  "CMakeFiles/oda_math.dir/optimize.cpp.o"
  "CMakeFiles/oda_math.dir/optimize.cpp.o.d"
  "CMakeFiles/oda_math.dir/pca.cpp.o"
  "CMakeFiles/oda_math.dir/pca.cpp.o.d"
  "CMakeFiles/oda_math.dir/regression.cpp.o"
  "CMakeFiles/oda_math.dir/regression.cpp.o.d"
  "CMakeFiles/oda_math.dir/smoothing.cpp.o"
  "CMakeFiles/oda_math.dir/smoothing.cpp.o.d"
  "CMakeFiles/oda_math.dir/timeseries.cpp.o"
  "CMakeFiles/oda_math.dir/timeseries.cpp.o.d"
  "liboda_math.a"
  "liboda_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oda_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
