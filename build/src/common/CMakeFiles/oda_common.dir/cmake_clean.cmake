file(REMOVE_RECURSE
  "CMakeFiles/oda_common.dir/config.cpp.o"
  "CMakeFiles/oda_common.dir/config.cpp.o.d"
  "CMakeFiles/oda_common.dir/csv.cpp.o"
  "CMakeFiles/oda_common.dir/csv.cpp.o.d"
  "CMakeFiles/oda_common.dir/log.cpp.o"
  "CMakeFiles/oda_common.dir/log.cpp.o.d"
  "CMakeFiles/oda_common.dir/rng.cpp.o"
  "CMakeFiles/oda_common.dir/rng.cpp.o.d"
  "CMakeFiles/oda_common.dir/stats.cpp.o"
  "CMakeFiles/oda_common.dir/stats.cpp.o.d"
  "CMakeFiles/oda_common.dir/string_util.cpp.o"
  "CMakeFiles/oda_common.dir/string_util.cpp.o.d"
  "CMakeFiles/oda_common.dir/table.cpp.o"
  "CMakeFiles/oda_common.dir/table.cpp.o.d"
  "CMakeFiles/oda_common.dir/thread_pool.cpp.o"
  "CMakeFiles/oda_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/oda_common.dir/types.cpp.o"
  "CMakeFiles/oda_common.dir/types.cpp.o.d"
  "liboda_common.a"
  "liboda_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oda_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
