file(REMOVE_RECURSE
  "liboda_diagnostic.a"
)
