# Empty dependencies file for oda_diagnostic.
# This may be replaced when dependencies are built.
