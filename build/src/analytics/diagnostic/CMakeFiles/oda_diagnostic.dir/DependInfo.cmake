
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/diagnostic/anomaly.cpp" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/anomaly.cpp.o" "gcc" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/anomaly.cpp.o.d"
  "/root/repo/src/analytics/diagnostic/contention.cpp" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/contention.cpp.o" "gcc" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/contention.cpp.o.d"
  "/root/repo/src/analytics/diagnostic/fingerprint.cpp" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/fingerprint.cpp.o" "gcc" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/fingerprint.cpp.o.d"
  "/root/repo/src/analytics/diagnostic/rootcause.cpp" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/rootcause.cpp.o" "gcc" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/rootcause.cpp.o.d"
  "/root/repo/src/analytics/diagnostic/software.cpp" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/software.cpp.o" "gcc" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/software.cpp.o.d"
  "/root/repo/src/analytics/diagnostic/stress_test.cpp" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/stress_test.cpp.o" "gcc" "src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oda_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/oda_math.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/oda_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
