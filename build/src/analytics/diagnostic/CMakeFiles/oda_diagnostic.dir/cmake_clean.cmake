file(REMOVE_RECURSE
  "CMakeFiles/oda_diagnostic.dir/anomaly.cpp.o"
  "CMakeFiles/oda_diagnostic.dir/anomaly.cpp.o.d"
  "CMakeFiles/oda_diagnostic.dir/contention.cpp.o"
  "CMakeFiles/oda_diagnostic.dir/contention.cpp.o.d"
  "CMakeFiles/oda_diagnostic.dir/fingerprint.cpp.o"
  "CMakeFiles/oda_diagnostic.dir/fingerprint.cpp.o.d"
  "CMakeFiles/oda_diagnostic.dir/rootcause.cpp.o"
  "CMakeFiles/oda_diagnostic.dir/rootcause.cpp.o.d"
  "CMakeFiles/oda_diagnostic.dir/software.cpp.o"
  "CMakeFiles/oda_diagnostic.dir/software.cpp.o.d"
  "CMakeFiles/oda_diagnostic.dir/stress_test.cpp.o"
  "CMakeFiles/oda_diagnostic.dir/stress_test.cpp.o.d"
  "liboda_diagnostic.a"
  "liboda_diagnostic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oda_diagnostic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
