file(REMOVE_RECURSE
  "liboda_predictive.a"
)
