
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/predictive/backtest.cpp" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/backtest.cpp.o" "gcc" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/backtest.cpp.o.d"
  "/root/repo/src/analytics/predictive/failure.cpp" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/failure.cpp.o" "gcc" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/failure.cpp.o.d"
  "/root/repo/src/analytics/predictive/forecaster.cpp" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/forecaster.cpp.o" "gcc" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/forecaster.cpp.o.d"
  "/root/repo/src/analytics/predictive/jobs.cpp" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/jobs.cpp.o" "gcc" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/jobs.cpp.o.d"
  "/root/repo/src/analytics/predictive/spectral.cpp" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/spectral.cpp.o" "gcc" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/spectral.cpp.o.d"
  "/root/repo/src/analytics/predictive/whatif.cpp" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/whatif.cpp.o" "gcc" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/whatif.cpp.o.d"
  "/root/repo/src/analytics/predictive/workload_forecast.cpp" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/workload_forecast.cpp.o" "gcc" "src/analytics/predictive/CMakeFiles/oda_predictive.dir/workload_forecast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oda_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/oda_math.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/oda_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/descriptive/CMakeFiles/oda_descriptive.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
