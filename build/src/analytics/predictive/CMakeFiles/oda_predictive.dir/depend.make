# Empty dependencies file for oda_predictive.
# This may be replaced when dependencies are built.
