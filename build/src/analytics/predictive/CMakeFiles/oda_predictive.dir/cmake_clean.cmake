file(REMOVE_RECURSE
  "CMakeFiles/oda_predictive.dir/backtest.cpp.o"
  "CMakeFiles/oda_predictive.dir/backtest.cpp.o.d"
  "CMakeFiles/oda_predictive.dir/failure.cpp.o"
  "CMakeFiles/oda_predictive.dir/failure.cpp.o.d"
  "CMakeFiles/oda_predictive.dir/forecaster.cpp.o"
  "CMakeFiles/oda_predictive.dir/forecaster.cpp.o.d"
  "CMakeFiles/oda_predictive.dir/jobs.cpp.o"
  "CMakeFiles/oda_predictive.dir/jobs.cpp.o.d"
  "CMakeFiles/oda_predictive.dir/spectral.cpp.o"
  "CMakeFiles/oda_predictive.dir/spectral.cpp.o.d"
  "CMakeFiles/oda_predictive.dir/whatif.cpp.o"
  "CMakeFiles/oda_predictive.dir/whatif.cpp.o.d"
  "CMakeFiles/oda_predictive.dir/workload_forecast.cpp.o"
  "CMakeFiles/oda_predictive.dir/workload_forecast.cpp.o.d"
  "liboda_predictive.a"
  "liboda_predictive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oda_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
