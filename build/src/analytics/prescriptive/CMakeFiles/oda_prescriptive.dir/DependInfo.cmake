
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/prescriptive/autotune.cpp" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/autotune.cpp.o" "gcc" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/autotune.cpp.o.d"
  "/root/repo/src/analytics/prescriptive/controller.cpp" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/controller.cpp.o" "gcc" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/controller.cpp.o.d"
  "/root/repo/src/analytics/prescriptive/cooling.cpp" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/cooling.cpp.o" "gcc" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/cooling.cpp.o.d"
  "/root/repo/src/analytics/prescriptive/dvfs.cpp" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/dvfs.cpp.o" "gcc" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/dvfs.cpp.o.d"
  "/root/repo/src/analytics/prescriptive/placement.cpp" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/placement.cpp.o" "gcc" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/placement.cpp.o.d"
  "/root/repo/src/analytics/prescriptive/powercap.cpp" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/powercap.cpp.o" "gcc" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/powercap.cpp.o.d"
  "/root/repo/src/analytics/prescriptive/recommend.cpp" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/recommend.cpp.o" "gcc" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/recommend.cpp.o.d"
  "/root/repo/src/analytics/prescriptive/response.cpp" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/response.cpp.o" "gcc" "src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/response.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oda_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/oda_math.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/oda_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/predictive/CMakeFiles/oda_predictive.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/descriptive/CMakeFiles/oda_descriptive.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
