file(REMOVE_RECURSE
  "CMakeFiles/oda_prescriptive.dir/autotune.cpp.o"
  "CMakeFiles/oda_prescriptive.dir/autotune.cpp.o.d"
  "CMakeFiles/oda_prescriptive.dir/controller.cpp.o"
  "CMakeFiles/oda_prescriptive.dir/controller.cpp.o.d"
  "CMakeFiles/oda_prescriptive.dir/cooling.cpp.o"
  "CMakeFiles/oda_prescriptive.dir/cooling.cpp.o.d"
  "CMakeFiles/oda_prescriptive.dir/dvfs.cpp.o"
  "CMakeFiles/oda_prescriptive.dir/dvfs.cpp.o.d"
  "CMakeFiles/oda_prescriptive.dir/placement.cpp.o"
  "CMakeFiles/oda_prescriptive.dir/placement.cpp.o.d"
  "CMakeFiles/oda_prescriptive.dir/powercap.cpp.o"
  "CMakeFiles/oda_prescriptive.dir/powercap.cpp.o.d"
  "CMakeFiles/oda_prescriptive.dir/recommend.cpp.o"
  "CMakeFiles/oda_prescriptive.dir/recommend.cpp.o.d"
  "CMakeFiles/oda_prescriptive.dir/response.cpp.o"
  "CMakeFiles/oda_prescriptive.dir/response.cpp.o.d"
  "liboda_prescriptive.a"
  "liboda_prescriptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oda_prescriptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
