# Empty dependencies file for oda_prescriptive.
# This may be replaced when dependencies are built.
