file(REMOVE_RECURSE
  "liboda_prescriptive.a"
)
