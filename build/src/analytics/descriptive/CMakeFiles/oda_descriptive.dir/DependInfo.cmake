
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/descriptive/aggregation.cpp" "src/analytics/descriptive/CMakeFiles/oda_descriptive.dir/aggregation.cpp.o" "gcc" "src/analytics/descriptive/CMakeFiles/oda_descriptive.dir/aggregation.cpp.o.d"
  "/root/repo/src/analytics/descriptive/dashboard.cpp" "src/analytics/descriptive/CMakeFiles/oda_descriptive.dir/dashboard.cpp.o" "gcc" "src/analytics/descriptive/CMakeFiles/oda_descriptive.dir/dashboard.cpp.o.d"
  "/root/repo/src/analytics/descriptive/kpi.cpp" "src/analytics/descriptive/CMakeFiles/oda_descriptive.dir/kpi.cpp.o" "gcc" "src/analytics/descriptive/CMakeFiles/oda_descriptive.dir/kpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oda_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/oda_math.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/oda_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
