file(REMOVE_RECURSE
  "liboda_descriptive.a"
)
