file(REMOVE_RECURSE
  "CMakeFiles/oda_descriptive.dir/aggregation.cpp.o"
  "CMakeFiles/oda_descriptive.dir/aggregation.cpp.o.d"
  "CMakeFiles/oda_descriptive.dir/dashboard.cpp.o"
  "CMakeFiles/oda_descriptive.dir/dashboard.cpp.o.d"
  "CMakeFiles/oda_descriptive.dir/kpi.cpp.o"
  "CMakeFiles/oda_descriptive.dir/kpi.cpp.o.d"
  "liboda_descriptive.a"
  "liboda_descriptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oda_descriptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
