# Empty compiler generated dependencies file for oda_descriptive.
# This may be replaced when dependencies are built.
