# Empty compiler generated dependencies file for oda_sim.
# This may be replaced when dependencies are built.
