file(REMOVE_RECURSE
  "CMakeFiles/oda_sim.dir/cluster.cpp.o"
  "CMakeFiles/oda_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/oda_sim.dir/config.cpp.o"
  "CMakeFiles/oda_sim.dir/config.cpp.o.d"
  "CMakeFiles/oda_sim.dir/engine.cpp.o"
  "CMakeFiles/oda_sim.dir/engine.cpp.o.d"
  "CMakeFiles/oda_sim.dir/facility.cpp.o"
  "CMakeFiles/oda_sim.dir/facility.cpp.o.d"
  "CMakeFiles/oda_sim.dir/faults.cpp.o"
  "CMakeFiles/oda_sim.dir/faults.cpp.o.d"
  "CMakeFiles/oda_sim.dir/network.cpp.o"
  "CMakeFiles/oda_sim.dir/network.cpp.o.d"
  "CMakeFiles/oda_sim.dir/node.cpp.o"
  "CMakeFiles/oda_sim.dir/node.cpp.o.d"
  "CMakeFiles/oda_sim.dir/scheduler.cpp.o"
  "CMakeFiles/oda_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/oda_sim.dir/weather.cpp.o"
  "CMakeFiles/oda_sim.dir/weather.cpp.o.d"
  "CMakeFiles/oda_sim.dir/workload.cpp.o"
  "CMakeFiles/oda_sim.dir/workload.cpp.o.d"
  "liboda_sim.a"
  "liboda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
