
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/oda_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/oda_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/oda_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/oda_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/oda_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/oda_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/facility.cpp" "src/sim/CMakeFiles/oda_sim.dir/facility.cpp.o" "gcc" "src/sim/CMakeFiles/oda_sim.dir/facility.cpp.o.d"
  "/root/repo/src/sim/faults.cpp" "src/sim/CMakeFiles/oda_sim.dir/faults.cpp.o" "gcc" "src/sim/CMakeFiles/oda_sim.dir/faults.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/oda_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/oda_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/oda_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/oda_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/oda_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/oda_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/weather.cpp" "src/sim/CMakeFiles/oda_sim.dir/weather.cpp.o" "gcc" "src/sim/CMakeFiles/oda_sim.dir/weather.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/oda_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/oda_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oda_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/oda_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
