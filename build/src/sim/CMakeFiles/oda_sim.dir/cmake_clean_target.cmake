file(REMOVE_RECURSE
  "liboda_sim.a"
)
