file(REMOVE_RECURSE
  "CMakeFiles/oda_core.dir/bindings.cpp.o"
  "CMakeFiles/oda_core.dir/bindings.cpp.o.d"
  "CMakeFiles/oda_core.dir/figures.cpp.o"
  "CMakeFiles/oda_core.dir/figures.cpp.o.d"
  "CMakeFiles/oda_core.dir/grid.cpp.o"
  "CMakeFiles/oda_core.dir/grid.cpp.o.d"
  "CMakeFiles/oda_core.dir/oda_system.cpp.o"
  "CMakeFiles/oda_core.dir/oda_system.cpp.o.d"
  "CMakeFiles/oda_core.dir/pillars.cpp.o"
  "CMakeFiles/oda_core.dir/pillars.cpp.o.d"
  "CMakeFiles/oda_core.dir/survey_catalog.cpp.o"
  "CMakeFiles/oda_core.dir/survey_catalog.cpp.o.d"
  "liboda_core.a"
  "liboda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
