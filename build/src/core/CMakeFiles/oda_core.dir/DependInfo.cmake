
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bindings.cpp" "src/core/CMakeFiles/oda_core.dir/bindings.cpp.o" "gcc" "src/core/CMakeFiles/oda_core.dir/bindings.cpp.o.d"
  "/root/repo/src/core/figures.cpp" "src/core/CMakeFiles/oda_core.dir/figures.cpp.o" "gcc" "src/core/CMakeFiles/oda_core.dir/figures.cpp.o.d"
  "/root/repo/src/core/grid.cpp" "src/core/CMakeFiles/oda_core.dir/grid.cpp.o" "gcc" "src/core/CMakeFiles/oda_core.dir/grid.cpp.o.d"
  "/root/repo/src/core/oda_system.cpp" "src/core/CMakeFiles/oda_core.dir/oda_system.cpp.o" "gcc" "src/core/CMakeFiles/oda_core.dir/oda_system.cpp.o.d"
  "/root/repo/src/core/pillars.cpp" "src/core/CMakeFiles/oda_core.dir/pillars.cpp.o" "gcc" "src/core/CMakeFiles/oda_core.dir/pillars.cpp.o.d"
  "/root/repo/src/core/survey_catalog.cpp" "src/core/CMakeFiles/oda_core.dir/survey_catalog.cpp.o" "gcc" "src/core/CMakeFiles/oda_core.dir/survey_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oda_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/oda_math.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/oda_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/descriptive/CMakeFiles/oda_descriptive.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/predictive/CMakeFiles/oda_predictive.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
