file(REMOVE_RECURSE
  "CMakeFiles/oda_telemetry.dir/alerts.cpp.o"
  "CMakeFiles/oda_telemetry.dir/alerts.cpp.o.d"
  "CMakeFiles/oda_telemetry.dir/bus.cpp.o"
  "CMakeFiles/oda_telemetry.dir/bus.cpp.o.d"
  "CMakeFiles/oda_telemetry.dir/collector.cpp.o"
  "CMakeFiles/oda_telemetry.dir/collector.cpp.o.d"
  "CMakeFiles/oda_telemetry.dir/derived.cpp.o"
  "CMakeFiles/oda_telemetry.dir/derived.cpp.o.d"
  "CMakeFiles/oda_telemetry.dir/sample.cpp.o"
  "CMakeFiles/oda_telemetry.dir/sample.cpp.o.d"
  "CMakeFiles/oda_telemetry.dir/store.cpp.o"
  "CMakeFiles/oda_telemetry.dir/store.cpp.o.d"
  "liboda_telemetry.a"
  "liboda_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oda_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
