
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/alerts.cpp" "src/telemetry/CMakeFiles/oda_telemetry.dir/alerts.cpp.o" "gcc" "src/telemetry/CMakeFiles/oda_telemetry.dir/alerts.cpp.o.d"
  "/root/repo/src/telemetry/bus.cpp" "src/telemetry/CMakeFiles/oda_telemetry.dir/bus.cpp.o" "gcc" "src/telemetry/CMakeFiles/oda_telemetry.dir/bus.cpp.o.d"
  "/root/repo/src/telemetry/collector.cpp" "src/telemetry/CMakeFiles/oda_telemetry.dir/collector.cpp.o" "gcc" "src/telemetry/CMakeFiles/oda_telemetry.dir/collector.cpp.o.d"
  "/root/repo/src/telemetry/derived.cpp" "src/telemetry/CMakeFiles/oda_telemetry.dir/derived.cpp.o" "gcc" "src/telemetry/CMakeFiles/oda_telemetry.dir/derived.cpp.o.d"
  "/root/repo/src/telemetry/sample.cpp" "src/telemetry/CMakeFiles/oda_telemetry.dir/sample.cpp.o" "gcc" "src/telemetry/CMakeFiles/oda_telemetry.dir/sample.cpp.o.d"
  "/root/repo/src/telemetry/store.cpp" "src/telemetry/CMakeFiles/oda_telemetry.dir/store.cpp.o" "gcc" "src/telemetry/CMakeFiles/oda_telemetry.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oda_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/oda_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
