file(REMOVE_RECURSE
  "CMakeFiles/test_prescriptive.dir/test_prescriptive.cpp.o"
  "CMakeFiles/test_prescriptive.dir/test_prescriptive.cpp.o.d"
  "test_prescriptive"
  "test_prescriptive.pdb"
  "test_prescriptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prescriptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
