# Empty dependencies file for test_prescriptive.
# This may be replaced when dependencies are built.
