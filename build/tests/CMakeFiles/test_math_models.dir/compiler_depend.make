# Empty compiler generated dependencies file for test_math_models.
# This may be replaced when dependencies are built.
