file(REMOVE_RECURSE
  "CMakeFiles/test_math_models.dir/test_math_models.cpp.o"
  "CMakeFiles/test_math_models.dir/test_math_models.cpp.o.d"
  "test_math_models"
  "test_math_models.pdb"
  "test_math_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
