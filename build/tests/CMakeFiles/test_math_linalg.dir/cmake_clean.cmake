file(REMOVE_RECURSE
  "CMakeFiles/test_math_linalg.dir/test_math_linalg.cpp.o"
  "CMakeFiles/test_math_linalg.dir/test_math_linalg.cpp.o.d"
  "test_math_linalg"
  "test_math_linalg.pdb"
  "test_math_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
