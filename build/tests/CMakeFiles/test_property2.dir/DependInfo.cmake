
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_property2.cpp" "tests/CMakeFiles/test_property2.dir/test_property2.cpp.o" "gcc" "tests/CMakeFiles/test_property2.dir/test_property2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/prescriptive/CMakeFiles/oda_prescriptive.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/diagnostic/CMakeFiles/oda_diagnostic.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/predictive/CMakeFiles/oda_predictive.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/descriptive/CMakeFiles/oda_descriptive.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/oda_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/oda_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
