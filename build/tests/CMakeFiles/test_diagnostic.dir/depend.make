# Empty dependencies file for test_diagnostic.
# This may be replaced when dependencies are built.
