file(REMOVE_RECURSE
  "CMakeFiles/test_diagnostic.dir/test_diagnostic.cpp.o"
  "CMakeFiles/test_diagnostic.dir/test_diagnostic.cpp.o.d"
  "test_diagnostic"
  "test_diagnostic.pdb"
  "test_diagnostic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diagnostic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
