# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_math_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_math_models[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_descriptive[1]_include.cmake")
include("/root/repo/build/tests/test_diagnostic[1]_include.cmake")
include("/root/repo/build/tests/test_predictive[1]_include.cmake")
include("/root/repo/build/tests/test_prescriptive[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property2[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
