#include "analytics/prescriptive/autotune.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oda::analytics {

const char* tune_strategy_name(TuneStrategy s) {
  switch (s) {
    case TuneStrategy::kGrid: return "grid";
    case TuneStrategy::kRandom: return "random";
    case TuneStrategy::kNelderMead: return "nelder-mead";
    case TuneStrategy::kAnneal: return "anneal";
  }
  return "?";
}

AutoTuner::AutoTuner(std::vector<TunableParam> space, AppEvaluator evaluate,
                     Params params)
    : space_(std::move(space)), evaluate_(std::move(evaluate)), params_(params) {
  ODA_REQUIRE(!space_.empty(), "autotuner needs parameters");
  ODA_REQUIRE(evaluate_ != nullptr, "autotuner needs an evaluator");
  for (const auto& p : space_) {
    ODA_REQUIRE(p.max_value > p.min_value, "parameter range inverted: " + p.name);
  }
}

TuneResult AutoTuner::tune(TuneStrategy strategy) {
  TuneResult result;
  result.strategy = tune_strategy_name(strategy);

  // Baseline: the mid-point default configuration.
  std::vector<double> mid(space_.size());
  std::vector<double> lo(space_.size()), hi(space_.size());
  for (std::size_t d = 0; d < space_.size(); ++d) {
    lo[d] = space_[d].min_value;
    hi[d] = space_[d].max_value;
    mid[d] = (lo[d] + hi[d]) / 2.0;
  }
  result.baseline_cost = evaluate_(mid);

  const auto clamped = [this](std::span<const double> x) {
    std::vector<double> c(x.begin(), x.end());
    for (std::size_t d = 0; d < space_.size(); ++d) {
      c[d] = std::clamp(c[d], space_[d].min_value, space_[d].max_value);
    }
    return c;
  };
  const math::ObjectiveND objective = [&](std::span<const double> x) {
    return evaluate_(clamped(x));
  };

  Rng rng(params_.seed);
  math::OptResultND opt;
  switch (strategy) {
    case TuneStrategy::kGrid: {
      std::vector<std::vector<double>> levels;
      for (const auto& p : space_) {
        if (!p.levels.empty()) {
          levels.push_back(p.levels);
          continue;
        }
        std::vector<double> l;
        for (std::size_t i = 0; i < params_.grid_levels; ++i) {
          l.push_back(p.min_value + (p.max_value - p.min_value) *
                                        static_cast<double>(i) /
                                        static_cast<double>(params_.grid_levels - 1));
        }
        levels.push_back(std::move(l));
      }
      opt = math::grid_search(objective, levels);
      break;
    }
    case TuneStrategy::kRandom:
      opt = math::random_search(objective, lo, hi, params_.budget, rng);
      break;
    case TuneStrategy::kNelderMead: {
      // Start at the default; step a quarter of the smallest range.
      double step = hi[0] - lo[0];
      for (std::size_t d = 0; d < space_.size(); ++d) {
        step = std::min(step, hi[d] - lo[d]);
      }
      opt = math::nelder_mead(objective, mid, step / 4.0, params_.budget);
      break;
    }
    case TuneStrategy::kAnneal: {
      math::AnnealParams ap;
      ap.steps = params_.budget;
      ap.initial_temperature = result.baseline_cost * 0.05;
      opt = math::simulated_annealing(objective, lo, hi, ap, rng);
      break;
    }
  }

  result.best_config = clamped(opt.x);
  result.best_cost = opt.value;
  result.evaluations = opt.evaluations + 1;  // + baseline
  result.improvement = result.baseline_cost > 0.0
                           ? 1.0 - result.best_cost / result.baseline_cost
                           : 0.0;
  return result;
}

std::vector<TuneResult> AutoTuner::tune_all() {
  std::vector<TuneResult> out;
  for (const auto s : {TuneStrategy::kGrid, TuneStrategy::kRandom,
                       TuneStrategy::kNelderMead, TuneStrategy::kAnneal}) {
    out.push_back(tune(s));
  }
  std::sort(out.begin(), out.end(), [](const TuneResult& a, const TuneResult& b) {
    return a.best_cost < b.best_cost;
  });
  return out;
}

AppEvaluator synthetic_app_surface(const std::vector<TunableParam>& space,
                                   double base_runtime_s, std::uint64_t seed,
                                   double noise) {
  ODA_REQUIRE(base_runtime_s > 0.0, "base runtime must be positive");
  // Per-app hidden structure: optimum location, per-dimension curvature,
  // and one pairwise interaction term.
  Rng rng(seed);
  std::vector<double> optimum(space.size());
  std::vector<double> curvature(space.size());
  for (std::size_t d = 0; d < space.size(); ++d) {
    optimum[d] = rng.uniform(space[d].min_value + 0.1 * (space[d].max_value - space[d].min_value),
                             space[d].max_value - 0.1 * (space[d].max_value - space[d].min_value));
    curvature[d] = rng.uniform(0.4, 2.5);
  }
  const std::size_t ia = space.size() > 1 ? 0 : 0;
  const std::size_t ib = space.size() > 1 ? 1 : 0;
  const double interaction = space.size() > 1 ? rng.uniform(-0.4, 0.4) : 0.0;
  // Noise must be deterministic per configuration so repeated evaluation of
  // the same point is consistent: hash the config into a seed.
  return [space, optimum, curvature, ia, ib, interaction, base_runtime_s,
          noise](std::span<const double> x) {
    double penalty = 0.0;
    for (std::size_t d = 0; d < space.size(); ++d) {
      const double range = space[d].max_value - space[d].min_value;
      const double z = (x[d] - optimum[d]) / range;
      penalty += curvature[d] * z * z;
    }
    if (space.size() > 1) {
      const double ra = space[ia].max_value - space[ia].min_value;
      const double rb = space[ib].max_value - space[ib].min_value;
      penalty += interaction * ((x[ia] - optimum[ia]) / ra) *
                 ((x[ib] - optimum[ib]) / rb);
    }
    penalty = std::max(penalty, -0.2);
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (double v : x) {
      const auto bits = static_cast<std::uint64_t>(std::llround(v * 1e6));
      h = (h ^ bits) * 0x100000001B3ULL;
    }
    Rng point_rng(h);
    const double jitter = 1.0 + point_rng.normal(0.0, noise);
    return base_runtime_s * (1.0 + penalty) * std::max(jitter, 0.5);
  };
}

}  // namespace oda::analytics
