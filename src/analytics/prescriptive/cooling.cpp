#include "analytics/prescriptive/cooling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

CoolingSetpointOptimizer::CoolingSetpointOptimizer(Params params)
    : params_(params), step_c_(params.initial_step_c) {
  ODA_REQUIRE(params.initial_step_c > 0.0, "step must be positive");
}

double CoolingSetpointOptimizer::measure_power(
    const telemetry::TimeSeriesStore& store, TimePoint now) const {
  const auto window =
      static_cast<Duration>(static_cast<double>(params_.period) *
                            params_.measure_fraction);
  const auto slice = store.query("facility/total_power", now - window, now);
  return slice.empty() ? -1.0 : mean(slice.values);
}

void CoolingSetpointOptimizer::act(sim::ClusterSimulation& cluster,
                                   const telemetry::TimeSeriesStore& store,
                                   std::vector<Actuation>& log) {
  ::oda::obs::CellScope oda_cell_scope("building-infrastructure", "prescriptive", "presc.setpoint");
  const TimePoint now = cluster.now();

  // Safety: back off immediately if any CPU is near its limit.
  double max_cpu = 0.0;
  for (const auto& snap : store.match("rack*/node*/cpu_temp")) {
    const auto latest = store.latest(snap);
    if (latest) max_cpu = std::max(max_cpu, latest->value);
  }
  const double setpoint = cluster.knobs().get("facility/supply_setpoint");
  if (max_cpu >= params_.cpu_temp_limit_c) {
    actuate(cluster, log, name(), "facility/supply_setpoint",
            setpoint - params_.initial_step_c,
            "cpu temperature near limit; backing off setpoint");
    has_baseline_ = false;  // measurement invalidated
    return;
  }

  const double power = measure_power(store, now);
  if (power < 0.0) return;  // not enough telemetry yet

  if (!has_baseline_) {
    last_power_w_ = power;
    has_baseline_ = true;
    actuate(cluster, log, name(), "facility/supply_setpoint",
            setpoint + direction_ * step_c_, "probe move");
    return;
  }

  // Hill climbing: keep direction while power improves; otherwise reverse
  // and shrink the step (golden-ratio-style decay).
  if (power < last_power_w_) {
    actuate(cluster, log, name(), "facility/supply_setpoint",
            setpoint + direction_ * step_c_,
            "facility power improved; continuing");
  } else {
    direction_ = -direction_;
    step_c_ = std::max(params_.min_step_c, step_c_ * 0.618);
    actuate(cluster, log, name(), "facility/supply_setpoint",
            setpoint + direction_ * step_c_,
            "facility power regressed; reversing with smaller step");
  }
  last_power_w_ = power;
}

CoolingModeSwitcher::CoolingModeSwitcher(Params params) : params_(params) {}

void CoolingModeSwitcher::act(sim::ClusterSimulation& cluster,
                              const telemetry::TimeSeriesStore& store,
                              std::vector<Actuation>& log) {
  const TimePoint now = cluster.now();
  const double setpoint = cluster.knobs().get("facility/supply_setpoint");

  double wetbulb;
  if (params_.proactive) {
    // Forecast the wet-bulb `lead` ahead with Holt-Winters on the stored
    // series; fall back to the current value until enough history exists.
    const auto slice = store.query("weather/wetbulb_temp", now - 3 * kDay, now);
    if (slice.size() >= 64) {
      const Duration sample = (slice.times.back() - slice.times.front()) /
                              static_cast<Duration>(slice.size() - 1);
      const auto period = static_cast<std::size_t>(
          kDay / std::max<Duration>(sample, 1));
      HoltWintersForecaster hw(std::max<std::size_t>(period, 2));
      hw.fit(slice.values);
      const auto steps = static_cast<std::size_t>(
          params_.lead / std::max<Duration>(sample, 1));
      const auto path = hw.forecast(std::max<std::size_t>(steps, 1));
      // Decide on the worst (warmest) forecast point in the lead window so
      // the chiller is engaged before free cooling becomes insufficient.
      wetbulb = *std::max_element(path.begin(), path.end());
    } else {
      const auto latest = store.latest("weather/wetbulb_temp");
      if (!latest) return;
      wetbulb = latest->value;
    }
  } else {
    const auto latest = store.latest("weather/wetbulb_temp");
    if (!latest) return;
    wetbulb = latest->value;
  }

  const bool free_ok =
      wetbulb + params_.tower_approach_k + params_.margin_k <= setpoint;
  const auto desired = free_ok ? sim::CoolingMode::kFreeOnly
                               : sim::CoolingMode::kChillerOnly;
  const auto current = static_cast<sim::CoolingMode>(
      static_cast<int>(cluster.knobs().get("facility/cooling_mode") + 0.5));
  if (desired != current) {
    ++switches_;
    actuate(cluster, log, name(), "facility/cooling_mode",
            static_cast<double>(desired),
            free_ok ? "wet-bulb low enough for free cooling"
                    : "wet-bulb too high; engaging chiller");
  }
}

}  // namespace oda::analytics
