// Application auto-tuning (Table I, prescriptive/applications — Autotune
// [28], Active Harmony [29], PowerStack end-to-end tuning [41]): search a
// job's tunable-parameter space against a measured objective. The tunable
// application is abstracted behind an evaluation callback; for experiments
// we provide a synthetic-but-structured response surface whose optimum and
// curvature are seeded per "application".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "math/optimize.hpp"

namespace oda::analytics {

/// One tunable parameter of an application.
struct TunableParam {
  std::string name;
  double min_value = 0.0;
  double max_value = 1.0;
  /// Levels for grid search; empty = derive `grid_levels` evenly.
  std::vector<double> levels;
};

/// Measured cost of running the application at a configuration (lower is
/// better; typically runtime in seconds or energy in joules).
using AppEvaluator = std::function<double(std::span<const double>)>;

enum class TuneStrategy { kGrid, kRandom, kNelderMead, kAnneal };
const char* tune_strategy_name(TuneStrategy s);

struct TuneResult {
  std::string strategy;
  std::vector<double> best_config;
  double best_cost = 0.0;
  double baseline_cost = 0.0;  // at the mid-point default config
  double improvement = 0.0;    // 1 - best/baseline
  std::size_t evaluations = 0;
};

class AutoTuner {
 public:
  struct Params {
    std::size_t budget = 60;       // max evaluations (approx for NM)
    std::size_t grid_levels = 4;   // per dimension when levels are empty
    std::uint64_t seed = 7;
  };

  AutoTuner(std::vector<TunableParam> space, AppEvaluator evaluate)
      : AutoTuner(std::move(space), std::move(evaluate), Params{}) {}
  AutoTuner(std::vector<TunableParam> space, AppEvaluator evaluate,
            Params params);

  TuneResult tune(TuneStrategy strategy);
  /// Runs every strategy and returns results sorted by best cost.
  std::vector<TuneResult> tune_all();

 private:
  std::vector<TunableParam> space_;
  AppEvaluator evaluate_;
  Params params_;
};

/// Synthetic application response surface: smooth anisotropic bowl with one
/// global optimum inside the box plus mild multiplicative noise — the
/// stand-in for running a real tunable app (see DESIGN.md substitutions).
AppEvaluator synthetic_app_surface(const std::vector<TunableParam>& space,
                                   double base_runtime_s, std::uint64_t seed,
                                   double noise = 0.01);

}  // namespace oda::analytics
