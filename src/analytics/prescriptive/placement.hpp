// Prescriptive job placement (Table I, prescriptive/system-software —
// power/thermal-aware allocation [21],[22],[42]): placement policies that
// plug into the scheduler.
//  * ThermalAwarePlacement spreads load across racks so no rack becomes a
//    hotspot (the rack-inlet coupling makes hotspots cost leakage + fan
//    power — the multi-pillar benefit measured in E6);
//  * PackPlacement deliberately concentrates load (the siloed baseline).
#pragma once

#include <functional>

#include "sim/cluster.hpp"
#include "sim/scheduler.hpp"

namespace oda::analytics {

/// Chooses free nodes from the racks with the lowest current power, keeping
/// a job's nodes as co-located as possible *within* each chosen rack.
class ThermalAwarePlacement : public sim::PlacementPolicy {
 public:
  /// rack_power(r) must return the current rack power; nodes_per_rack maps
  /// node index -> rack.
  ThermalAwarePlacement(std::function<double(std::size_t)> rack_power,
                        std::size_t racks, std::size_t nodes_per_rack);

  std::optional<std::vector<std::size_t>> place(
      const sim::JobSpec& spec, const std::vector<bool>& node_busy) override;
  const char* name() const override { return "thermal-aware"; }

 private:
  std::function<double(std::size_t)> rack_power_;
  std::size_t racks_;
  std::size_t nodes_per_rack_;
};

/// Fills the machine rack by rack (tight packing): fewest racks touched.
class PackPlacement : public sim::PlacementPolicy {
 public:
  explicit PackPlacement(std::size_t nodes_per_rack)
      : nodes_per_rack_(nodes_per_rack) {}

  std::optional<std::vector<std::size_t>> place(
      const sim::JobSpec& spec, const std::vector<bool>& node_busy) override;
  const char* name() const override { return "pack"; }

 private:
  std::size_t nodes_per_rack_;
};

/// Convenience: builds a ThermalAwarePlacement bound to a live cluster.
std::shared_ptr<ThermalAwarePlacement> make_thermal_placement(
    sim::ClusterSimulation& cluster);

}  // namespace oda::analytics
