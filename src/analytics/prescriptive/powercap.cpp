#include "analytics/prescriptive/powercap.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace oda::analytics {

PowerCapGovernor::PowerCapGovernor(Params params) : params_(params) {}

double PowerCapGovernor::anticipated_power(
    const telemetry::TimeSeriesStore& store, TimePoint now) const {
  const auto latest = store.latest("facility/total_power");
  const double current = latest ? latest->value : 0.0;
  if (!params_.plan_based) return current;

  const auto slice = store.query("facility/total_power", now - 6 * kHour, now);
  if (slice.size() < 32) return current;
  const Duration sample = (slice.times.back() - slice.times.front()) /
                          static_cast<Duration>(slice.size() - 1);
  HoltForecaster holt(0.3, 0.1);
  holt.fit(slice.values);
  const auto steps = std::max<std::size_t>(
      1, static_cast<std::size_t>(params_.forecast_lead /
                                  std::max<Duration>(sample, 1)));
  const auto path = holt.forecast(steps);
  return std::max(current, *std::max_element(path.begin(), path.end()));
}

void PowerCapGovernor::act(sim::ClusterSimulation& cluster,
                           const telemetry::TimeSeriesStore& store,
                           std::vector<Actuation>& log) {
  const TimePoint now = cluster.now();
  const auto latest = store.latest("facility/total_power");
  if (latest && latest->value > params_.cap_w) ++violations_;

  const double power = anticipated_power(store, now);
  if (power <= 0.0) return;
  const double trigger = params_.cap_w * params_.guard_band;

  if (power > trigger) {
    // Shed proportionally to the overshoot, hottest (highest-power) nodes
    // first so the perf cost lands where the watts are.
    const double overshoot = (power - trigger) / params_.cap_w;
    std::vector<std::pair<double, std::size_t>> by_power;
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      const auto p = store.latest(cluster.node(i).path() + "/power");
      by_power.push_back({p ? p->value : 0.0, i});
    }
    std::sort(by_power.rbegin(), by_power.rend());
    const auto shed_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(overshoot * 3.0 *
                                    static_cast<double>(cluster.node_count())));
    for (std::size_t k = 0; k < std::min(shed_count, by_power.size()); ++k) {
      const std::size_t i = by_power[k].second;
      const std::string knob = cluster.node(i).path() + "/freq_setpoint";
      const double current_f = cluster.knobs().get(knob);
      const double target =
          std::max(cluster.node(i).params().freq_min_ghz,
                   current_f - params_.step_ghz * (1.0 + 2.0 * overshoot));
      if (target < current_f - 1e-9) {
        actuate(cluster, log, name(), knob, target,
                params_.plan_based ? "forecast power above cap; pre-shedding"
                                   : "power above cap; shedding");
      }
    }
  } else if (power < trigger * 0.95) {
    // Headroom: restore frequency gradually across the fleet.
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      const std::string knob = cluster.node(i).path() + "/freq_setpoint";
      const double current_f = cluster.knobs().get(knob);
      const double nominal = cluster.node(i).params().freq_nominal_ghz;
      if (current_f < nominal - 1e-9) {
        actuate(cluster, log, name(), knob,
                std::min(nominal, current_f + params_.step_ghz),
                "power headroom; restoring frequency");
      }
    }
  }
}

}  // namespace oda::analytics
