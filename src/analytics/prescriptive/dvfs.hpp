// DVFS governors (Table I, prescriptive/system-hardware — GEOPM [11],
// EAR [24], energy-aware scheduling [40]):
//  * energy mode — downclock nodes whose workload is memory-bound (observed
//    mem_bw/cpu ratio), where frequency buys little progress but much power;
//  * thermal-cap mode — keep CPU temperature under a limit. The *reactive*
//    governor reacts to the measured temperature; the *proactive* one acts
//    on a short-horizon forecast, shedding frequency before the limit is
//    hit (the Sec. V-A multi-type claim benchmarked in E5).
#pragma once

#include <map>

#include "analytics/predictive/forecaster.hpp"
#include "analytics/prescriptive/controller.hpp"

namespace oda::analytics {

class DvfsGovernor : public Controller {
 public:
  enum class Mode { kEnergy, kThermalReactive, kThermalProactive };

  struct Params {
    Mode mode = Mode::kEnergy;
    Duration period = 2 * kMinute;
    // Energy mode.
    double membound_ratio = 1.0;   // mem_bw/cpu util ratio marking memory-bound
    double energy_freq_ghz = 1.8;  // frequency for memory-bound nodes
    // Thermal modes.
    double temp_limit_c = 82.0;
    double temp_headroom_c = 3.0;   // start shedding this far below the limit
    Duration forecast_lead = 4 * kMinute;  // proactive look-ahead
    double step_ghz = 0.2;
  };

  DvfsGovernor() : DvfsGovernor(Params{}) {}
  explicit DvfsGovernor(Params params);

  const char* name() const override { return "dvfs-governor"; }
  Duration period() const override { return params_.period; }
  void act(sim::ClusterSimulation& cluster,
           const telemetry::TimeSeriesStore& store,
           std::vector<Actuation>& log) override;

  const Params& params() const { return params_; }

 private:
  void act_energy(sim::ClusterSimulation& cluster,
                  const telemetry::TimeSeriesStore& store,
                  std::vector<Actuation>& log);
  void act_thermal(sim::ClusterSimulation& cluster,
                   const telemetry::TimeSeriesStore& store,
                   std::vector<Actuation>& log);
  /// Temperature the governor should regulate against: measured now, or the
  /// forecast max over the lead window in proactive mode.
  double effective_temp(const telemetry::TimeSeriesStore& store,
                        const std::string& node_prefix, TimePoint now) const;

  Params params_;
};

}  // namespace oda::analytics
