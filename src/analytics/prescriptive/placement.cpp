#include "analytics/prescriptive/placement.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

ThermalAwarePlacement::ThermalAwarePlacement(
    std::function<double(std::size_t)> rack_power, std::size_t racks,
    std::size_t nodes_per_rack)
    : rack_power_(std::move(rack_power)), racks_(racks),
      nodes_per_rack_(nodes_per_rack) {
  ODA_REQUIRE(rack_power_ != nullptr, "rack_power callback required");
  ODA_REQUIRE(racks_ > 0 && nodes_per_rack_ > 0, "bad geometry");
}

namespace {

/// Free node indices of one rack.
std::vector<std::size_t> free_in_rack(const std::vector<bool>& node_busy,
                                      std::size_t rack,
                                      std::size_t nodes_per_rack) {
  std::vector<std::size_t> out;
  for (std::size_t n = 0; n < nodes_per_rack; ++n) {
    const std::size_t idx = rack * nodes_per_rack + n;
    if (idx < node_busy.size() && !node_busy[idx]) out.push_back(idx);
  }
  return out;
}

/// Locality-preserving fill: take whole racks in `rack_order` preference,
/// using a single rack when the job fits (cross-rack splits cost network
/// contention, so both the siloed and the thermal-aware policy avoid them —
/// they differ only in *which* rack they prefer).
std::optional<std::vector<std::size_t>> place_rack_local(
    const sim::JobSpec& spec, const std::vector<bool>& node_busy,
    const std::vector<std::size_t>& rack_order, std::size_t nodes_per_rack) {
  // First choice: the most-preferred rack that fits the whole job.
  for (std::size_t rack : rack_order) {
    auto free_nodes = free_in_rack(node_busy, rack, nodes_per_rack);
    if (free_nodes.size() >= spec.nodes_requested) {
      free_nodes.resize(spec.nodes_requested);
      return free_nodes;
    }
  }
  // Fallback: spill across racks in preference order.
  std::vector<std::size_t> chosen;
  for (std::size_t rack : rack_order) {
    for (std::size_t idx : free_in_rack(node_busy, rack, nodes_per_rack)) {
      chosen.push_back(idx);
      if (chosen.size() == spec.nodes_requested) return chosen;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<std::size_t>> ThermalAwarePlacement::place(
    const sim::JobSpec& spec, const std::vector<bool>& node_busy) {
  ::oda::obs::CellScope oda_cell_scope("system-software", "prescriptive", "presc.placement");
  // Rank racks coolest-first (by power, our hotspot proxy).
  std::vector<std::size_t> rack_order(racks_);
  std::iota(rack_order.begin(), rack_order.end(), 0);
  std::sort(rack_order.begin(), rack_order.end(),
            [&](std::size_t a, std::size_t b) {
              return rack_power_(a) < rack_power_(b);
            });
  return place_rack_local(spec, node_busy, rack_order, nodes_per_rack_);
}

std::optional<std::vector<std::size_t>> PackPlacement::place(
    const sim::JobSpec& spec, const std::vector<bool>& node_busy) {
  // Prefer racks that are already partially used (most-loaded first) so
  // load concentrates — the deliberately siloed baseline. Same rack-local
  // fill as the thermal policy; only the rack preference differs.
  const std::size_t racks = (node_busy.size() + nodes_per_rack_ - 1) / nodes_per_rack_;
  std::vector<std::pair<std::size_t, std::size_t>> usage;  // (busy, rack)
  for (std::size_t r = 0; r < racks; ++r) {
    std::size_t busy = 0;
    for (std::size_t n = 0; n < nodes_per_rack_; ++n) {
      const std::size_t idx = r * nodes_per_rack_ + n;
      if (idx < node_busy.size() && node_busy[idx]) ++busy;
    }
    usage.push_back({busy, r});
  }
  std::sort(usage.begin(), usage.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::size_t> rack_order;
  rack_order.reserve(usage.size());
  for (const auto& [busy, rack] : usage) rack_order.push_back(rack);
  return place_rack_local(spec, node_busy, rack_order, nodes_per_rack_);
}

std::shared_ptr<ThermalAwarePlacement> make_thermal_placement(
    sim::ClusterSimulation& cluster) {
  return std::make_shared<ThermalAwarePlacement>(
      [&cluster](std::size_t rack) { return cluster.rack_power_w(rack); },
      cluster.rack_count(), cluster.params().nodes_per_rack);
}

}  // namespace oda::analytics
