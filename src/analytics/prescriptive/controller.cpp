#include "analytics/prescriptive/controller.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oda::analytics {

void ControlLoop::add(std::shared_ptr<Controller> controller) {
  ODA_REQUIRE(controller != nullptr, "null controller");
  ODA_REQUIRE(controller->period() > 0, "controller period must be positive");
  controllers_.push_back(std::move(controller));
}

void ControlLoop::tick() {
  const TimePoint now = cluster_.now();
  for (auto& c : controllers_) {
    if (now % c->period() == 0) {
      c->act(cluster_, store_, audit_);
    }
  }
}

void actuate(sim::ClusterSimulation& cluster, std::vector<Actuation>& log,
             const std::string& controller, const std::string& knob,
             double value, const std::string& reason) {
  Actuation a;
  a.time = cluster.now();
  a.controller = controller;
  a.knob = knob;
  a.old_value = cluster.knobs().get(knob);
  cluster.knobs().set(knob, value);
  a.new_value = cluster.knobs().get(knob);  // post-clamp value
  a.reason = reason;
  if (std::abs(a.new_value - a.old_value) > 1e-12) log.push_back(std::move(a));
}

}  // namespace oda::analytics
