#include "analytics/prescriptive/response.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace oda::analytics {

void ResponsePolicy::register_handler(const std::string& condition,
                                      Handler handler) {
  ODA_REQUIRE(handler != nullptr, "null response handler");
  handlers_.emplace_back(condition, std::move(handler));
}

ResponseAction ResponsePolicy::respond(const Diagnosis& diagnosis,
                                       sim::ClusterSimulation& cluster,
                                       std::vector<Actuation>& actuation_log) {
  ResponseAction action;
  action.time = cluster.now();
  action.diagnosis = diagnosis;

  const auto it = std::find_if(handlers_.begin(), handlers_.end(),
                               [&](const auto& h) {
                                 return h.first == diagnosis.condition;
                               });
  if (it == handlers_.end()) {
    action.action = "no handler registered; operator attention required";
  } else if (mode_ == ResponseMode::kAutomatic) {
    action.action = it->second(diagnosis, cluster, actuation_log);
    action.executed = true;
  } else {
    // Recommend: describe what the handler would do without actuating.
    std::vector<Actuation> scratch;
    // Handlers must be side-effect-free apart from knob writes, which we
    // cannot dry-run; recommendation mode therefore uses canned text.
    action.action = "recommended: run '" + diagnosis.condition +
                    "' remediation on " + diagnosis.subject;
  }
  actions_.push_back(action);
  return action;
}

ResponsePolicy ResponsePolicy::standard(ResponseMode mode) {
  ResponsePolicy policy(mode);

  policy.register_handler(
      "fan-failure",
      [](const Diagnosis& d, sim::ClusterSimulation& cluster,
         std::vector<Actuation>& log) {
        // Protect the node: drop its frequency to minimum until repaired.
        const std::string knob = d.subject + "/freq_setpoint";
        if (cluster.knobs().contains(knob)) {
          actuate(cluster, log, "response-policy", knob, 0.0,
                  "fan failure: downclock to protect node, schedule drain");
        }
        return "downclocked " + d.subject + " to minimum; drain recommended";
      });

  policy.register_handler(
      "pump-degradation",
      [](const Diagnosis& d, sim::ClusterSimulation& cluster,
         std::vector<Actuation>& log) {
        (void)d;
        // Compensate flow loss with pump speed, at an efficiency cost.
        const double current = cluster.knobs().get("facility/pump_speed");
        actuate(cluster, log, "response-policy", "facility/pump_speed",
                current + 0.15, "pump degradation: raising speed to hold flow");
        return "raised pump speed to compensate degraded pump";
      });

  policy.register_handler(
      "thermal-runaway",
      [](const Diagnosis& d, sim::ClusterSimulation& cluster,
         std::vector<Actuation>& log) {
        (void)d;
        const double setpoint = cluster.knobs().get("facility/supply_setpoint");
        actuate(cluster, log, "response-policy", "facility/supply_setpoint",
                setpoint - 4.0, "thermal runaway: lowering supply setpoint");
        return "lowered supply setpoint by 4 K";
      });

  policy.register_handler(
      "network-contention",
      [](const Diagnosis& d, sim::ClusterSimulation& cluster,
         std::vector<Actuation>& log) {
        (void)cluster;
        (void)log;
        return "flagged aggressor " + d.subject +
               " for migration at next checkpoint (manual step)";
      });

  return policy;
}

}  // namespace oda::analytics
