#include "analytics/prescriptive/dvfs.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

DvfsGovernor::DvfsGovernor(Params params) : params_(params) {}

void DvfsGovernor::act(sim::ClusterSimulation& cluster,
                       const telemetry::TimeSeriesStore& store,
                       std::vector<Actuation>& log) {
  ::oda::obs::CellScope oda_cell_scope("system-hardware", "prescriptive", "presc.dvfs");
  if (params_.mode == Mode::kEnergy) {
    act_energy(cluster, store, log);
  } else {
    act_thermal(cluster, store, log);
  }
}

void DvfsGovernor::act_energy(sim::ClusterSimulation& cluster,
                              const telemetry::TimeSeriesStore& store,
                              std::vector<Actuation>& log) {
  const TimePoint now = cluster.now();
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const std::string& prefix = cluster.node(i).path();
    const auto cpu = store.query(prefix + "/cpu_util", now - params_.period, now);
    const auto mem =
        store.query(prefix + "/mem_bw_util", now - params_.period, now);
    if (cpu.empty() || mem.empty()) continue;
    const double cpu_mean = mean(cpu.values);
    const double mem_mean = mean(mem.values);
    const std::string knob = prefix + "/freq_setpoint";
    const double nominal = cluster.node(i).params().freq_nominal_ghz;

    if (cpu_mean < 0.05) {
      // Idle nodes: race-to-idle is moot here; park at nominal.
      if (cluster.knobs().get(knob) != nominal) {
        actuate(cluster, log, name(), knob, nominal, "node idle; restore nominal");
      }
      continue;
    }
    const bool memory_bound = mem_mean > params_.membound_ratio * cpu_mean ||
                              mem_mean > 0.7;
    const double target = memory_bound ? params_.energy_freq_ghz : nominal;
    if (std::abs(cluster.knobs().get(knob) - target) > 1e-9) {
      actuate(cluster, log, name(), knob, target,
              memory_bound ? "memory-bound phase; downclocking"
                           : "compute-bound phase; nominal frequency");
    }
  }
}

double DvfsGovernor::effective_temp(const telemetry::TimeSeriesStore& store,
                                    const std::string& node_prefix,
                                    TimePoint now) const {
  const auto latest = store.latest(node_prefix + "/cpu_temp");
  if (!latest) return 0.0;
  if (params_.mode != Mode::kThermalProactive) return latest->value;

  // Proactive: Holt forecast of the temperature over the lead window; act
  // on the max of measured and forecast so warming trends are pre-empted.
  const auto slice =
      store.query(node_prefix + "/cpu_temp", now - 30 * kMinute, now);
  if (slice.size() < 8) return latest->value;
  const Duration sample = (slice.times.back() - slice.times.front()) /
                          static_cast<Duration>(slice.size() - 1);
  HoltForecaster holt(0.4, 0.2);
  holt.fit(slice.values);
  const auto steps = std::max<std::size_t>(
      1, static_cast<std::size_t>(params_.forecast_lead /
                                  std::max<Duration>(sample, 1)));
  const auto path = holt.forecast(steps);
  const double forecast_max = *std::max_element(path.begin(), path.end());
  return std::max(latest->value, forecast_max);
}

void DvfsGovernor::act_thermal(sim::ClusterSimulation& cluster,
                               const telemetry::TimeSeriesStore& store,
                               std::vector<Actuation>& log) {
  const TimePoint now = cluster.now();
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const std::string& prefix = cluster.node(i).path();
    const double temp = effective_temp(store, prefix, now);
    if (temp <= 0.0) continue;
    const std::string knob = prefix + "/freq_setpoint";
    const double current = cluster.knobs().get(knob);
    const auto& np = cluster.node(i).params();

    if (temp >= params_.temp_limit_c - params_.temp_headroom_c) {
      // Proportional shed: the deeper into the headroom band, the harder we
      // downclock.
      const double depth =
          (temp - (params_.temp_limit_c - params_.temp_headroom_c)) /
          std::max(params_.temp_headroom_c, 0.5);
      const double target = std::max(
          np.freq_min_ghz, current - params_.step_ghz * (1.0 + 2.0 * depth));
      if (target < current - 1e-9) {
        actuate(cluster, log, name(), knob, target,
                "temperature near limit; shedding frequency");
      }
    } else if (temp < params_.temp_limit_c - 2.0 * params_.temp_headroom_c &&
               current < np.freq_nominal_ghz) {
      // Cool again: recover frequency gradually.
      const double target =
          std::min(np.freq_nominal_ghz, current + params_.step_ghz);
      actuate(cluster, log, name(), knob, target,
              "thermal headroom available; restoring frequency");
    }
  }
}

}  // namespace oda::analytics
