// Cooling prescriptions (Table I, prescriptive/building-infrastructure):
//  * CoolingSetpointOptimizer — online hill climbing of the supply-water
//    setpoint against measured facility power ([18],[37]): higher setpoints
//    buy chiller COP and free-cooling hours but cost node leakage/fan power,
//    so there is a genuine optimum to find;
//  * CoolingModeSwitcher — chiller vs free-cooling selection [12]; the
//    *proactive* variant switches ahead of need using a wet-bulb forecast
//    (a predictive+prescriptive multi-type composition, Sec. V-A).
#pragma once

#include <memory>

#include "analytics/predictive/forecaster.hpp"
#include "analytics/prescriptive/controller.hpp"

namespace oda::analytics {

class CoolingSetpointOptimizer : public Controller {
 public:
  struct Params {
    Duration period = 2 * kHour;   // one optimization move per period
    double initial_step_c = 2.0;
    double min_step_c = 0.25;
    /// Node CPU temperature that must not be exceeded (safety constraint).
    double cpu_temp_limit_c = 85.0;
    /// Settling margin: power is averaged over the trailing fraction of the
    /// period so loop transients do not bias the comparison.
    double measure_fraction = 0.5;
  };

  CoolingSetpointOptimizer() : CoolingSetpointOptimizer(Params{}) {}
  explicit CoolingSetpointOptimizer(Params params);

  const char* name() const override { return "cooling-setpoint-optimizer"; }
  Duration period() const override { return params_.period; }
  void act(sim::ClusterSimulation& cluster,
           const telemetry::TimeSeriesStore& store,
           std::vector<Actuation>& log) override;

  double current_step_c() const { return step_c_; }

 private:
  double measure_power(const telemetry::TimeSeriesStore& store,
                       TimePoint now) const;

  Params params_;
  double step_c_;
  double direction_ = +1.0;
  double last_power_w_ = -1.0;
  bool has_baseline_ = false;
};

class CoolingModeSwitcher : public Controller {
 public:
  struct Params {
    Duration period = 30 * kMinute;
    /// Forecast lead when proactive (0 = reactive, decide on current value).
    Duration lead = 2 * kHour;
    double tower_approach_k = 4.0;
    /// Hysteresis below the setpoint required to engage free cooling.
    double margin_k = 0.5;
    bool proactive = false;
  };

  CoolingModeSwitcher() : CoolingModeSwitcher(Params{}) {}
  explicit CoolingModeSwitcher(Params params);

  const char* name() const override { return "cooling-mode-switcher"; }
  Duration period() const override { return params_.period; }
  void act(sim::ClusterSimulation& cluster,
           const telemetry::TimeSeriesStore& store,
           std::vector<Actuation>& log) override;

  std::size_t switches() const { return switches_; }

 private:
  Params params_;
  std::size_t switches_ = 0;
};

}  // namespace oda::analytics
