// Anomaly response (prescriptive/building-infrastructure — Bodik [38],
// Bortot [39]): maps diagnosed conditions to remedial actions, either as
// recommendations for the operator or as automatic actuations, with a full
// audit trail. This is the "respond" half of the ENI-style
// diagnostic→prescriptive composition shown in Figure 3.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analytics/prescriptive/controller.hpp"
#include "sim/faults.hpp"

namespace oda::analytics {

enum class ResponseMode { kRecommend, kAutomatic };

struct Diagnosis {
  std::string condition;   // e.g. "fan-failure", "pump-degradation"
  std::string subject;     // component path
  double severity = 0.0;   // [0,1]
};

struct ResponseAction {
  TimePoint time = 0;
  Diagnosis diagnosis;
  std::string action;      // human-readable description
  bool executed = false;   // false = recommendation only
};

class ResponsePolicy {
 public:
  using Handler = std::function<std::string(const Diagnosis&,
                                            sim::ClusterSimulation&,
                                            std::vector<Actuation>&)>;

  explicit ResponsePolicy(ResponseMode mode) : mode_(mode) {}

  /// Registers the handler for a condition. The handler performs the
  /// actuation (in automatic mode) and returns its description.
  void register_handler(const std::string& condition, Handler handler);

  /// Processes a diagnosis: executes or records a recommendation.
  ResponseAction respond(const Diagnosis& diagnosis,
                         sim::ClusterSimulation& cluster,
                         std::vector<Actuation>& actuation_log);

  const std::vector<ResponseAction>& actions() const { return actions_; }
  ResponseMode mode() const { return mode_; }

  /// Installs the default handlers for the simulated facility's fault
  /// classes (fan failure -> downclock + drain recommendation; pump
  /// degradation -> raise pump speed; thermal runaway -> lower setpoint...).
  static ResponsePolicy standard(ResponseMode mode);

 private:
  ResponseMode mode_;
  std::vector<std::pair<std::string, Handler>> handlers_;
  std::vector<ResponseAction> actions_;
};

}  // namespace oda::analytics
