#include "analytics/prescriptive/recommend.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

JobProfile profile_job(const telemetry::TimeSeriesStore& store,
                       const sim::JobRecord& record,
                       const std::vector<std::string>& node_prefixes,
                       Duration bucket) {
  ::oda::obs::CellScope oda_cell_scope("applications", "prescriptive", "presc.recommend");
  JobProfile profile;
  std::vector<double> per_node_cpu;
  double cpu = 0.0, mem = 0.0, net = 0.0, io = 0.0;
  std::size_t counted = 0;
  for (std::size_t n : record.nodes) {
    ODA_REQUIRE(n < node_prefixes.size(), "node index out of range");
    const auto read_mean = [&](const char* leaf) {
      const auto slice = store.query_aggregated(
          node_prefixes[n] + "/" + leaf, record.start_time, record.end_time,
          bucket, telemetry::Aggregation::kMean);
      return slice.empty() ? 0.0 : mean(slice.values);
    };
    const double node_cpu = read_mean("cpu_util");
    per_node_cpu.push_back(node_cpu);
    cpu += node_cpu;
    mem += read_mean("mem_bw_util");
    net += read_mean("net_util");
    io += read_mean("io_util");
    ++counted;
  }
  if (counted == 0) return profile;
  const double k = static_cast<double>(counted);
  profile.cpu_util = cpu / k;
  profile.mem_bw_util = mem / k;
  profile.net_util = net / k;
  profile.io_util = io / k;
  profile.cpu_util_stddev = stddev(per_node_cpu);

  const double runtime = std::max<double>(1.0, static_cast<double>(record.run_time()));
  profile.walltime_request_ratio =
      static_cast<double>(record.spec.walltime_requested) / runtime;

  // Reuse the diagnostic boundedness thresholds on the aggregated profile.
  if (profile.cpu_util < 0.1 && profile.mem_bw_util < 0.1 &&
      profile.net_util < 0.1 && profile.io_util < 0.1) {
    profile.boundedness = Boundedness::kIdle;
  } else if (profile.io_util > 0.5 && profile.io_util > profile.mem_bw_util &&
             profile.io_util > profile.net_util) {
    profile.boundedness = Boundedness::kIo;
  } else if (profile.net_util > 0.5 && profile.net_util > profile.mem_bw_util) {
    profile.boundedness = Boundedness::kNetwork;
  } else if (profile.mem_bw_util > 0.6 ||
             (profile.mem_bw_util > 0.4 &&
              profile.mem_bw_util > profile.cpu_util * 0.8)) {
    profile.boundedness = Boundedness::kMemory;
  } else {
    profile.boundedness = Boundedness::kCompute;
  }
  return profile;
}

std::vector<Recommendation> recommend(const JobProfile& p) {
  std::vector<Recommendation> recs;

  switch (p.boundedness) {
    case Boundedness::kMemory:
      recs.push_back({1, "memory",
                      "memory bandwidth " + format_double(p.mem_bw_util, 2) +
                          " vs CPU " + format_double(p.cpu_util, 2) +
                          ": the code stalls on memory",
                      "improve locality (blocking/tiling, structure-of-arrays"
                      "); this job also benefits from a lower CPU frequency "
                      "at negligible slowdown (energy-mode DVFS)"});
      break;
    case Boundedness::kNetwork:
      recs.push_back({1, "network",
                      "network utilization " + format_double(p.net_util, 2) +
                          " dominates: communication-bound",
                      "overlap communication with computation, aggregate "
                      "messages, and request rack-local placement to avoid "
                      "oversubscribed uplinks"});
      break;
    case Boundedness::kIo:
      recs.push_back({1, "io",
                      "I/O utilization " + format_double(p.io_util, 2) +
                          " dominates the runtime",
                      "batch small writes, use collective I/O, and consider "
                      "fewer, larger checkpoints"});
      break;
    case Boundedness::kCompute:
      if (p.cpu_util < 0.7) {
        recs.push_back({2, "compute",
                        "compute-bound but CPU utilization only " +
                            format_double(p.cpu_util, 2),
                        "profile for serialization or load imbalance; vector"
                        "ization headroom is likely"});
      }
      break;
    case Boundedness::kIdle:
      recs.push_back({1, "sizing",
                      "all resource utilizations below 10%",
                      "the allocation is idle most of the time: reduce node "
                      "count or investigate startup/licensing stalls"});
      break;
  }

  if (p.cpu_util_stddev > 0.15 && p.boundedness != Boundedness::kIdle) {
    recs.push_back({1, "imbalance",
                    "per-node CPU utilization spread (stddev " +
                        format_double(p.cpu_util_stddev, 2) +
                        ") indicates load imbalance",
                    "rebalance the domain decomposition or enable work "
                    "stealing; the slowest rank gates every iteration"});
  }

  if (p.walltime_request_ratio > 3.0) {
    recs.push_back({3, "sizing",
                    "walltime request " +
                        format_double(p.walltime_request_ratio, 1) +
                        "x the actual runtime",
                    "tighten the request: shorter requests backfill sooner "
                    "and cut queue waits (see the runtime predictor)"});
  }

  std::sort(recs.begin(), recs.end(),
            [](const Recommendation& a, const Recommendation& b) {
              return a.priority < b.priority;
            });
  return recs;
}

std::vector<Recommendation> recommend_for_job(
    const telemetry::TimeSeriesStore& store, const sim::JobRecord& record,
    const std::vector<std::string>& node_prefixes) {
  return recommend(profile_job(store, record, node_prefixes));
}

std::string render_recommendations(const sim::JobRecord& record,
                                   const std::vector<Recommendation>& recs) {
  TextTable table({"#", "category", "finding", "advice"});
  table.set_title("RECOMMENDATIONS for job " + std::to_string(record.spec.id) +
                  " (" + record.spec.user + ")");
  table.set_max_width(2, 34);
  table.set_max_width(3, 40);
  for (const auto& r : recs) {
    table.add_row({std::to_string(r.priority), r.category, r.finding, r.advice});
  }
  if (recs.empty()) {
    table.add_row({"-", "-", "no inefficiency patterns found", "-"});
  }
  return table.render();
}

}  // namespace oda::analytics
