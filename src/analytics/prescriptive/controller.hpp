// Prescriptive-pillar control plumbing: a Controller senses (store) and
// actuates (cluster knobs) at a fixed period; the ControlLoop multiplexes
// several controllers over the simulation and keeps an audit trail of every
// actuation — operators need to know what the ODA system did and why.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/cluster.hpp"
#include "telemetry/store.hpp"

namespace oda::analytics {

/// One knob change performed by a controller, for the audit log.
struct Actuation {
  TimePoint time = 0;
  std::string controller;
  std::string knob;
  double old_value = 0.0;
  double new_value = 0.0;
  std::string reason;
};

class Controller {
 public:
  virtual ~Controller() = default;
  virtual const char* name() const = 0;
  /// Control period; the loop invokes act() when now % period == 0.
  virtual Duration period() const = 0;
  /// Sense + decide + actuate. Implementations must perform all writes via
  /// cluster.knobs() and report them through `log`.
  virtual void act(sim::ClusterSimulation& cluster,
                   const telemetry::TimeSeriesStore& store,
                   std::vector<Actuation>& log) = 0;
};

class ControlLoop {
 public:
  explicit ControlLoop(sim::ClusterSimulation& cluster,
                       const telemetry::TimeSeriesStore& store)
      : cluster_(cluster), store_(store) {}

  void add(std::shared_ptr<Controller> controller);

  /// Call once per sim step (after collection).
  void tick();

  const std::vector<Actuation>& audit_log() const { return audit_; }
  std::size_t controller_count() const { return controllers_.size(); }

 private:
  sim::ClusterSimulation& cluster_;
  const telemetry::TimeSeriesStore& store_;
  std::vector<std::shared_ptr<Controller>> controllers_;
  std::vector<Actuation> audit_;
};

/// Helper for controllers: set a knob and append to the audit log in one go.
void actuate(sim::ClusterSimulation& cluster, std::vector<Actuation>& log,
             const std::string& controller, const std::string& knob,
             double value, const std::string& reason);

}  // namespace oda::analytics
