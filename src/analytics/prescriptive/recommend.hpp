// Code-improvement recommendations (Table I prescriptive/applications,
// Zhang et al. [44]; code-level diagnosis [15],[27]): turn a job's measured
// telemetry signature — boundedness, utilization balance, phase structure,
// roofline position — into concrete, prioritized advice for the user.
// This is recommendation-based prescriptive ODA: no knob is actuated; the
// "actuator" is the developer.
#pragma once

#include <string>
#include <vector>

#include "analytics/diagnostic/software.hpp"
#include "common/types.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/store.hpp"

namespace oda::analytics {

struct Recommendation {
  int priority = 0;         // 1 = highest
  std::string category;     // "memory", "network", "io", "dvfs", "sizing"...
  std::string finding;      // what the telemetry showed
  std::string advice;       // what to do about it
};

struct JobProfile {
  double cpu_util = 0.0;
  double mem_bw_util = 0.0;
  double net_util = 0.0;
  double io_util = 0.0;
  double cpu_util_stddev = 0.0;    // imbalance across the job's nodes
  double walltime_request_ratio = 0.0;  // requested / actual runtime
  Boundedness boundedness = Boundedness::kIdle;
};

/// Aggregates a completed job's telemetry into the profile the rule base
/// consumes.
JobProfile profile_job(const telemetry::TimeSeriesStore& store,
                       const sim::JobRecord& record,
                       const std::vector<std::string>& node_prefixes,
                       Duration bucket = kMinute);

/// The rule base: deterministic, explainable advice sorted by priority.
std::vector<Recommendation> recommend(const JobProfile& profile);

/// Convenience: profile + recommend in one call.
std::vector<Recommendation> recommend_for_job(
    const telemetry::TimeSeriesStore& store, const sim::JobRecord& record,
    const std::vector<std::string>& node_prefixes);

/// Renders recommendations as a user-facing report.
std::string render_recommendations(const sim::JobRecord& record,
                                   const std::vector<Recommendation>& recs);

}  // namespace oda::analytics
