// Cluster power capping (prescriptive/system-software+hardware — the
// PowerStack [41] composition): keep facility power under a cap by shedding
// node frequency fleet-wide (RAPL-style) and restoring it when headroom
// returns. The plan-based variant uses a facility-power forecast to begin
// shedding *before* the cap is hit (plan-based scheduling [43] flavour).
#pragma once

#include "analytics/predictive/forecaster.hpp"
#include "analytics/prescriptive/controller.hpp"

namespace oda::analytics {

class PowerCapGovernor : public Controller {
 public:
  struct Params {
    double cap_w = 300000.0;
    Duration period = 5 * kMinute;
    /// Start shedding at cap * guard_band (e.g. 0.95).
    double guard_band = 0.97;
    double step_ghz = 0.2;
    bool plan_based = false;   // use forecast to pre-shed
    Duration forecast_lead = 30 * kMinute;
  };

  PowerCapGovernor() : PowerCapGovernor(Params{}) {}
  explicit PowerCapGovernor(Params params);

  const char* name() const override { return "power-cap-governor"; }
  Duration period() const override { return params_.period; }
  void act(sim::ClusterSimulation& cluster,
           const telemetry::TimeSeriesStore& store,
           std::vector<Actuation>& log) override;

  std::size_t cap_violations() const { return violations_; }
  const Params& params() const { return params_; }

 private:
  double anticipated_power(const telemetry::TimeSeriesStore& store,
                           TimePoint now) const;

  Params params_;
  std::size_t violations_ = 0;
};

}  // namespace oda::analytics
