// Predictive-pillar forecaster suite (Table I, predictive row): a common
// interface over persistence/moving-average baselines, exponential-smoothing
// family, AR(p) and linear trend — the sensor-forecasting toolbox of
// PRACTISE [32] / CWS [47] style deployments. A factory builds by name so
// benchmarks and configs can sweep models.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "math/ar_model.hpp"
#include "math/smoothing.hpp"

namespace oda::analytics {

class Forecaster {
 public:
  virtual ~Forecaster() = default;
  /// Fits/refits on the full history (oldest first).
  virtual void fit(std::span<const double> history) = 0;
  /// Forecast h steps past the end of the fitted history.
  virtual std::vector<double> forecast(std::size_t horizon) const = 0;
  virtual const char* name() const = 0;
};

/// Flat forecast at the last observed value — the baseline every other
/// model must beat to be worth deploying.
class PersistenceForecaster : public Forecaster {
 public:
  void fit(std::span<const double> history) override;
  std::vector<double> forecast(std::size_t horizon) const override;
  const char* name() const override { return "persistence"; }

 private:
  double last_ = 0.0;
};

class MovingAverageForecaster : public Forecaster {
 public:
  explicit MovingAverageForecaster(std::size_t window = 16);
  void fit(std::span<const double> history) override;
  std::vector<double> forecast(std::size_t horizon) const override;
  const char* name() const override { return "moving-average"; }

 private:
  std::size_t window_;
  double level_ = 0.0;
};

class SesForecaster : public Forecaster {
 public:
  explicit SesForecaster(double alpha = 0.3);
  void fit(std::span<const double> history) override;
  std::vector<double> forecast(std::size_t horizon) const override;
  const char* name() const override { return "ses"; }

 private:
  double alpha_;
  double level_ = 0.0;
};

class HoltForecaster : public Forecaster {
 public:
  HoltForecaster(double alpha = 0.3, double beta = 0.1);
  void fit(std::span<const double> history) override;
  std::vector<double> forecast(std::size_t horizon) const override;
  const char* name() const override { return "holt"; }

 private:
  double alpha_, beta_;
  double level_ = 0.0, trend_ = 0.0;
};

class HoltWintersForecaster : public Forecaster {
 public:
  /// period = samples per season (e.g. 96 for 15-min samples, daily cycle).
  HoltWintersForecaster(std::size_t period, double alpha = 0.25,
                        double beta = 0.02, double gamma = 0.15);
  void fit(std::span<const double> history) override;
  std::vector<double> forecast(std::size_t horizon) const override;
  const char* name() const override { return "holt-winters"; }

 private:
  std::size_t period_;
  double alpha_, beta_, gamma_;
  std::unique_ptr<math::HoltWinters> model_;
  double fallback_ = 0.0;
};

class ArForecaster : public Forecaster {
 public:
  /// order = 0 selects the order by AIC up to max_order.
  explicit ArForecaster(std::size_t order = 0, std::size_t max_order = 12);
  void fit(std::span<const double> history) override;
  std::vector<double> forecast(std::size_t horizon) const override;
  const char* name() const override { return "ar"; }
  std::size_t fitted_order() const;

 private:
  std::size_t order_, max_order_;
  std::unique_ptr<math::ArModel> model_;
  std::vector<double> tail_;  // history tail the forecast iterates from
  double fallback_ = 0.0;
};

class LinearTrendForecaster : public Forecaster {
 public:
  /// Fits on at most the trailing `window` samples (0 = all).
  explicit LinearTrendForecaster(std::size_t window = 0);
  void fit(std::span<const double> history) override;
  std::vector<double> forecast(std::size_t horizon) const override;
  const char* name() const override { return "linear-trend"; }

 private:
  std::size_t window_;
  double intercept_ = 0.0, slope_ = 0.0;
  std::size_t n_ = 0;
};

/// Builds by name: "persistence", "moving-average", "ses", "holt",
/// "holt-winters:<period>", "ar", "ar:<order>", "linear-trend".
std::unique_ptr<Forecaster> make_forecaster(const std::string& spec);

/// All standard specs for benchmark sweeps (period fills holt-winters).
std::vector<std::string> standard_forecaster_specs(std::size_t season_period);

}  // namespace oda::analytics
