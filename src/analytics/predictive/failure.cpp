#include "analytics/predictive/failure.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "math/regression.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

FailureProjection project_failure(std::span<const double> signal,
                                  double sample_period_s, double threshold,
                                  bool increasing_is_bad) {
  ::oda::obs::CellScope oda_cell_scope("system-hardware", "predictive", "pred.failure");
  ODA_REQUIRE(sample_period_s > 0.0, "sample period must be positive");
  FailureProjection p;
  if (signal.size() < 8) return p;

  const auto trend = math::fit_theil_sen(signal);
  p.slope_per_hour = trend.slope * 3600.0 / sample_period_s;
  const double current = signal.back();
  const bool toward_threshold =
      increasing_is_bad ? (p.slope_per_hour > 0.0 && current < threshold)
                        : (p.slope_per_hour < 0.0 && current > threshold);
  // Require a meaningful rate relative to the remaining headroom.
  if (toward_threshold) {
    const double headroom = std::abs(threshold - current);
    const double hours = headroom / std::abs(p.slope_per_hour);
    if (hours < 24.0 * 365.0) {  // anything beyond a year is noise
      p.degrading = true;
      p.hours_to_threshold = hours;
    }
  }
  // Already across the threshold: failed now.
  if ((increasing_is_bad && current >= threshold) ||
      (!increasing_is_bad && current <= threshold)) {
    p.degrading = true;
    p.hours_to_threshold = 0.0;
  }
  return p;
}

WeibullLifetime WeibullLifetime::fit(std::span<const double> failure_times_h) {
  ODA_REQUIRE(failure_times_h.size() >= 3, "need >= 3 failures to fit Weibull");
  // Median-rank regression: ln(-ln(1-F_i)) = k ln(t_i) - k ln(lambda).
  std::vector<double> times(failure_times_h.begin(), failure_times_h.end());
  std::sort(times.begin(), times.end());
  const std::size_t n = times.size();

  std::vector<double> x, y;
  x.reserve(n);
  y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (times[i] <= 0.0) continue;
    const double f = (static_cast<double>(i) + 0.7) /
                     (static_cast<double>(n) + 0.4);  // Benard's approximation
    x.push_back(std::log(times[i]));
    y.push_back(std::log(-std::log(1.0 - f)));
  }
  ODA_REQUIRE(x.size() >= 3, "need >= 3 positive failure times");

  // Simple least squares y = a + b x.
  const double xm = [&] {
    double s = 0.0;
    for (double v : x) s += v;
    return s / static_cast<double>(x.size());
  }();
  const double ym = [&] {
    double s = 0.0;
    for (double v : y) s += v;
    return s / static_cast<double>(y.size());
  }();
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - xm) * (x[i] - xm);
    sxy += (x[i] - xm) * (y[i] - ym);
  }
  ODA_REQUIRE(sxx > 0.0, "degenerate failure times");
  WeibullLifetime model;
  model.shape_ = std::max(0.05, sxy / sxx);
  model.scale_ = std::exp(xm - ym / model.shape_);
  return model;
}

double WeibullLifetime::cdf(double t_hours) const {
  if (t_hours <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(t_hours / scale_, shape_));
}

double WeibullLifetime::survival(double t_hours) const {
  return 1.0 - cdf(t_hours);
}

double WeibullLifetime::hazard(double t_hours) const {
  if (t_hours <= 0.0) return 0.0;
  return (shape_ / scale_) * std::pow(t_hours / scale_, shape_ - 1.0);
}

double WeibullLifetime::conditional_failure(double t_hours,
                                            double dt_hours) const {
  const double s_now = survival(t_hours);
  if (s_now <= 0.0) return 1.0;
  return 1.0 - survival(t_hours + dt_hours) / s_now;
}

double WeibullLifetime::mean_lifetime() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

}  // namespace oda::analytics
