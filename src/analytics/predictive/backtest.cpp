#include "analytics/predictive/backtest.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace oda::analytics {

namespace {

struct ErrorAccumulator {
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  double ape_sum = 0.0;
  std::size_t ape_count = 0;
  double sape_sum = 0.0;
  std::size_t count = 0;

  void add(double forecast, double truth) {
    const double err = forecast - truth;
    abs_sum += std::abs(err);
    sq_sum += err * err;
    if (std::abs(truth) > 1e-12) {
      ape_sum += std::abs(err) / std::abs(truth);
      ++ape_count;
    }
    const double denom = (std::abs(forecast) + std::abs(truth)) / 2.0;
    if (denom > 1e-12) sape_sum += std::abs(err) / denom;
    ++count;
  }
};

}  // namespace

BacktestResult backtest(const std::string& forecaster_spec,
                        std::span<const double> series,
                        const BacktestParams& params) {
  ODA_REQUIRE(params.horizon > 0 && params.stride > 0, "bad backtest params");
  ODA_REQUIRE(series.size() > params.min_train + params.horizon,
              "series too short for backtest");

  auto model = make_forecaster(forecaster_spec);
  PersistenceForecaster baseline;

  ErrorAccumulator model_err, baseline_err;
  for (std::size_t origin = params.min_train;
       origin + params.horizon <= series.size(); origin += params.stride) {
    const auto train = series.subspan(0, origin);
    model->fit(train);
    baseline.fit(train);
    const auto fc = model->forecast(params.horizon);
    const auto base_fc = baseline.forecast(params.horizon);
    for (std::size_t h = 0; h < params.horizon; ++h) {
      model_err.add(fc[h], series[origin + h]);
      baseline_err.add(base_fc[h], series[origin + h]);
    }
  }

  BacktestResult result;
  result.model = forecaster_spec;
  result.evaluations = model_err.count;
  if (model_err.count == 0) return result;
  const double n = static_cast<double>(model_err.count);
  result.mae = model_err.abs_sum / n;
  result.rmse = std::sqrt(model_err.sq_sum / n);
  result.mape = model_err.ape_count
                    ? model_err.ape_sum / static_cast<double>(model_err.ape_count)
                    : 0.0;
  result.smape = model_err.sape_sum / n;
  const double base_mae = baseline_err.abs_sum / n;
  result.skill_vs_persistence =
      base_mae > 0.0 ? 1.0 - result.mae / base_mae : 0.0;
  return result;
}

std::vector<BacktestResult> backtest_all(
    const std::vector<std::string>& forecaster_specs,
    std::span<const double> series, const BacktestParams& params) {
  std::vector<BacktestResult> out;
  out.reserve(forecaster_specs.size());
  for (const auto& spec : forecaster_specs) {
    out.push_back(backtest(spec, series, params));
  }
  std::sort(out.begin(), out.end(),
            [](const BacktestResult& a, const BacktestResult& b) {
              return a.mae < b.mae;
            });
  return out;
}

}  // namespace oda::analytics
