#include "analytics/predictive/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "math/regression.hpp"
#include "math/timeseries.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

SpectralForecaster::SpectralForecaster(std::size_t components)
    : n_components_(components) {
  ODA_REQUIRE(components >= 1, "spectral forecaster needs components");
}

void SpectralForecaster::fit(std::span<const double> history) {
  history_len_ = history.size();
  components_.clear();
  if (history.size() < 8) {
    intercept_ = history.empty() ? 0.0 : history.back();
    slope_ = 0.0;
    return;
  }
  const auto trend = math::fit_trend(history);
  intercept_ = trend.intercept;
  slope_ = trend.slope;
  const auto detrended = math::detrend(history);
  components_ = math::dominant_components(detrended, n_components_);
}

std::vector<double> SpectralForecaster::forecast(std::size_t horizon) const {
  std::vector<double> out(horizon, 0.0);
  for (std::size_t h = 0; h < horizon; ++h) {
    const double t = static_cast<double>(history_len_ + h);
    double v = intercept_ + slope_ * t;
    for (const auto& c : components_) {
      v += c.amplitude * std::cos(2.0 * M_PI * c.frequency * t + c.phase);
    }
    out[h] = v;
  }
  return out;
}

std::vector<PowerSwingEvent> detect_power_swings(std::span<const double> power,
                                                 const NotificationRule& rule) {
  ::oda::obs::CellScope oda_cell_scope("building-infrastructure", "predictive", "pred.spectral");
  ODA_REQUIRE(rule.sample_period > 0, "sample period must be positive");
  const auto lag = static_cast<std::size_t>(rule.window / rule.sample_period);
  std::vector<PowerSwingEvent> out;
  if (lag == 0 || power.size() <= lag) return out;
  bool in_event = false;
  for (std::size_t i = lag; i < power.size(); ++i) {
    const double delta = power[i] - power[i - lag];
    if (std::abs(delta) > rule.threshold_w) {
      // Report the onset of a violation episode, not every sample in it.
      if (!in_event) {
        out.push_back({i, delta});
        in_event = true;
      }
    } else {
      in_event = false;
    }
  }
  return out;
}

double NotificationScore::precision() const {
  const auto denom = hits + false_alarms;
  return denom ? static_cast<double>(hits) / static_cast<double>(denom) : 0.0;
}

double NotificationScore::recall() const {
  const auto denom = hits + misses;
  return denom ? static_cast<double>(hits) / static_cast<double>(denom) : 0.0;
}

NotificationScore score_notifications(std::span<const PowerSwingEvent> predicted,
                                      std::span<const PowerSwingEvent> actual,
                                      std::size_t tolerance_steps) {
  NotificationScore score;
  score.predicted = predicted.size();
  score.actual = actual.size();
  std::vector<bool> used(predicted.size(), false);
  for (const auto& a : actual) {
    bool hit = false;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      if (used[i]) continue;
      const std::size_t d = a.step > predicted[i].step
                                ? a.step - predicted[i].step
                                : predicted[i].step - a.step;
      const bool same_direction = (a.delta_w > 0) == (predicted[i].delta_w > 0);
      if (d <= tolerance_steps && same_direction) {
        used[i] = true;
        hit = true;
        break;
      }
    }
    if (hit) {
      ++score.hits;
    } else {
      ++score.misses;
    }
  }
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (!used[i]) ++score.false_alarms;
  }
  return score;
}

}  // namespace oda::analytics
