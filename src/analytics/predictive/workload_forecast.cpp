#include "analytics/predictive/workload_forecast.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "math/smoothing.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

WorkloadForecaster::WorkloadForecaster(Duration bucket) : bucket_(bucket) {
  ODA_REQUIRE(bucket > 0, "bucket must be positive");
}

void WorkloadForecaster::observe_arrival(TimePoint submit) {
  ODA_REQUIRE(submit >= 0, "negative submit time");
  const auto idx = static_cast<std::size_t>(submit / bucket_);
  if (counts_.size() <= idx) counts_.resize(idx + 1, 0.0);
  counts_[idx] += 1.0;
  ++total_;
}

void WorkloadForecaster::observe_trace(std::span<const sim::JobSpec> jobs) {
  for (const auto& j : jobs) observe_arrival(j.submit_time);
}

std::vector<double> WorkloadForecaster::arrival_series() const {
  return counts_;
}

std::vector<double> WorkloadForecaster::daily_profile() const {
  const auto per_day = static_cast<std::size_t>(kDay / bucket_);
  std::vector<double> sum(per_day, 0.0);
  std::vector<std::size_t> n(per_day, 0);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    sum[i % per_day] += counts_[i];
    ++n[i % per_day];
  }
  for (std::size_t i = 0; i < per_day; ++i) {
    if (n[i]) sum[i] /= static_cast<double>(n[i]);
  }
  return sum;
}

std::vector<double> WorkloadForecaster::forecast(std::size_t horizon) const {
  ::oda::obs::CellScope oda_cell_scope("system-software", "predictive", "pred.workload");
  const auto per_day = static_cast<std::size_t>(kDay / bucket_);
  std::vector<double> out(horizon, 0.0);
  if (counts_.empty()) return out;

  if (counts_.size() >= 2 * per_day && per_day >= 2) {
    // Holt-Winters with the daily season.
    math::HoltWinters hw(0.2, 0.01, 0.1, per_day);
    hw.fit(counts_);
    auto path = hw.forecast_path(horizon);
    for (std::size_t i = 0; i < horizon; ++i) out[i] = std::max(0.0, path[i]);
    return out;
  }
  // Fallback: daily profile (or overall mean when < 1 day of data).
  const auto profile = daily_profile();
  double overall = 0.0;
  for (double c : counts_) overall += c;
  overall /= static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < horizon; ++i) {
    const std::size_t phase = (counts_.size() + i) % per_day;
    out[i] = counts_.size() >= per_day ? std::max(0.0, profile[phase])
                                       : overall;
  }
  return out;
}

}  // namespace oda::analytics
