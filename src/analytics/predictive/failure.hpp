// Component failure prediction (Sîrbu & Babaoglu [48]): two complementary
// estimators —
//  * degradation extrapolation: robust-fit the trend of a health signal and
//    project when it crosses its failure threshold;
//  * Weibull hazard: fit shape/scale to historical times-to-failure and
//    expose hazard/survival curves for fleet-level planning.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace oda::analytics {

struct FailureProjection {
  bool degrading = false;
  double slope_per_hour = 0.0;
  /// Hours until the signal crosses the threshold at the current trend;
  /// absent when not degrading toward it.
  std::optional<double> hours_to_threshold;
};

/// Projects threshold crossing of a degradation signal. `increasing_is_bad`
/// selects the direction of failure.
FailureProjection project_failure(std::span<const double> signal,
                                  double sample_period_s, double threshold,
                                  bool increasing_is_bad);

/// Weibull lifetime model fit from observed failure times (hours).
class WeibullLifetime {
 public:
  /// Method-of-moments-flavoured fit via median-rank regression.
  static WeibullLifetime fit(std::span<const double> failure_times_h);

  double shape() const { return shape_; }
  double scale() const { return scale_; }
  /// P(failure before t).
  double cdf(double t_hours) const;
  /// Survival S(t) = 1 - F(t).
  double survival(double t_hours) const;
  /// Hazard rate h(t).
  double hazard(double t_hours) const;
  /// P(fail within the next dt | survived to t).
  double conditional_failure(double t_hours, double dt_hours) const;
  double mean_lifetime() const;

 private:
  double shape_ = 1.0;
  double scale_ = 1.0;
};

}  // namespace oda::analytics
