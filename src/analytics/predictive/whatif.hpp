// What-if scheduler simulation ([49]–[51]): replay a job trace against a
// hypothetical machine/policy without the physical cluster model, to rank
// scheduling policies for a site's real workload before deploying them.
// Progress is idealized (1x, no contention/DVFS), which is exactly the
// fidelity class of AccaSim/Batsim-style dispatching studies.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/scheduler.hpp"
#include "sim/workload.hpp"

namespace oda::analytics {

struct WhatIfParams {
  std::size_t node_count = 64;
  sim::QueueDiscipline discipline = sim::QueueDiscipline::kEasyBackfill;
  Duration step = kMinute;
  /// Hard stop (simulated) to bound runaway configurations.
  Duration max_sim_time = 365 * kDay;
};

struct WhatIfResult {
  std::string label;
  double mean_wait_s = 0.0;
  double p95_wait_s = 0.0;
  double mean_slowdown = 0.0;
  double mean_bounded_slowdown = 0.0;
  Duration makespan = 0;
  double mean_utilization = 0.0;
  std::size_t jobs_completed = 0;
  std::vector<sim::JobRecord> records;
};

/// Replays the trace; jobs run exactly their nominal duration.
WhatIfResult simulate_policy(std::span<const sim::JobSpec> trace,
                             const WhatIfParams& params,
                             const std::string& label = "");

/// Runs FCFS vs EASY-backfill on the same trace (the canonical comparison).
std::vector<WhatIfResult> compare_disciplines(
    std::span<const sim::JobSpec> trace, std::size_t node_count);

}  // namespace oda::analytics
