// Spectral power forecasting — the LLNL beyond-the-datacenter use case [72]:
// Fourier-decompose historical facility power, extrapolate the dominant
// periodic components, and check the forecast against the utility
// notification rule ("tell us before power moves more than `threshold_w`
// within `window` seconds").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "analytics/predictive/forecaster.hpp"
#include "common/types.hpp"
#include "math/fft.hpp"

namespace oda::analytics {

/// FFT-based forecaster: linear trend + top-k spectral components of the
/// detrended history, extrapolated past the end.
class SpectralForecaster : public Forecaster {
 public:
  explicit SpectralForecaster(std::size_t components = 6);

  void fit(std::span<const double> history) override;
  std::vector<double> forecast(std::size_t horizon) const override;
  const char* name() const override { return "spectral"; }

  const std::vector<math::SpectralComponent>& components() const {
    return components_;
  }

 private:
  std::size_t n_components_;
  std::vector<math::SpectralComponent> components_;
  double intercept_ = 0.0, slope_ = 0.0;
  std::size_t history_len_ = 0;
};

/// A predicted notification-worthy power swing.
struct PowerSwingEvent {
  std::size_t step = 0;       // steps after the forecast origin
  double delta_w = 0.0;       // signed swing over the rule window
};

struct NotificationRule {
  double threshold_w = 750e3;     // LLNL: 750 kW
  Duration window = 15 * kMinute;  // over 15 minutes
  Duration sample_period = kMinute;  // spacing of the power series
};

/// Scans a power series (forecast or actual) for rule violations: |p(t) -
/// p(t - window)| > threshold.
std::vector<PowerSwingEvent> detect_power_swings(std::span<const double> power,
                                                 const NotificationRule& rule);

/// Forecast-based notifier evaluation: compare predicted swings against the
/// swings that actually happened.
struct NotificationScore {
  std::size_t predicted = 0;
  std::size_t actual = 0;
  std::size_t hits = 0;     // actual swings that were predicted within tolerance
  std::size_t misses = 0;
  std::size_t false_alarms = 0;
  double precision() const;
  double recall() const;
};

/// `tolerance_steps`: a prediction within this many steps of an actual swing
/// counts as a hit.
NotificationScore score_notifications(std::span<const PowerSwingEvent> predicted,
                                      std::span<const PowerSwingEvent> actual,
                                      std::size_t tolerance_steps);

}  // namespace oda::analytics
