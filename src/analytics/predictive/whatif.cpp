#include "analytics/predictive/whatif.hpp"

#include <algorithm>

#include "analytics/descriptive/kpi.hpp"
#include "common/error.hpp"

namespace oda::analytics {

WhatIfResult simulate_policy(std::span<const sim::JobSpec> trace,
                             const WhatIfParams& params,
                             const std::string& label) {
  ODA_REQUIRE(!trace.empty(), "what-if needs a trace");
  ODA_REQUIRE(params.node_count > 0, "what-if needs nodes");

  std::vector<sim::JobSpec> pending(trace.begin(), trace.end());
  std::sort(pending.begin(), pending.end(),
            [](const sim::JobSpec& a, const sim::JobSpec& b) {
              return a.submit_time < b.submit_time;
            });

  sim::SchedulerParams sp;
  sp.discipline = params.discipline;
  sim::Scheduler scheduler(params.node_count, sp);

  std::size_t next = 0;
  TimePoint now = pending.front().submit_time;
  double busy_node_seconds = 0.0;
  const TimePoint start = now;

  while ((next < pending.size() || !scheduler.running().empty() ||
          !scheduler.queue().empty()) &&
         now - start < params.max_sim_time) {
    while (next < pending.size() && pending[next].submit_time <= now) {
      scheduler.submit(pending[next++]);
    }
    scheduler.schedule(now);

    const Duration dt = params.step;
    // Idealized progress: one nominal second per wall second per job.
    for (const auto& job : scheduler.running()) {
      scheduler.advance_job(job.spec.id, static_cast<double>(dt), 0.0);
      busy_node_seconds +=
          static_cast<double>(job.nodes.size()) * static_cast<double>(dt);
    }
    now += dt;
    // Memory capacity is irrelevant in the idealized replay.
    scheduler.reap(now, 1e18);
  }

  WhatIfResult result;
  result.label = label.empty()
                     ? (params.discipline == sim::QueueDiscipline::kFcfs
                            ? "fcfs"
                            : "easy-backfill")
                     : label;
  result.records = scheduler.completed();
  result.jobs_completed = result.records.size();
  result.makespan = now - start;
  const auto sd = compute_slowdown(result.records);
  result.mean_wait_s = sd.mean_wait_s;
  result.p95_wait_s = sd.p95_wait_s;
  result.mean_slowdown = sd.mean_slowdown;
  result.mean_bounded_slowdown = sd.mean_bounded_slowdown;
  result.mean_utilization =
      busy_node_seconds / (static_cast<double>(params.node_count) *
                           static_cast<double>(std::max<Duration>(result.makespan, 1)));
  return result;
}

std::vector<WhatIfResult> compare_disciplines(
    std::span<const sim::JobSpec> trace, std::size_t node_count) {
  std::vector<WhatIfResult> out;
  for (const auto discipline :
       {sim::QueueDiscipline::kFcfs, sim::QueueDiscipline::kEasyBackfill}) {
    WhatIfParams p;
    p.node_count = node_count;
    p.discipline = discipline;
    out.push_back(simulate_policy(trace, p));
  }
  return out;
}

}  // namespace oda::analytics
