#include "analytics/predictive/jobs.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "common/stats.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

std::vector<double> submission_features(const sim::JobSpec& spec) {
  // Stable user hash folded to a modest range; queue one-hot collapsed to an
  // ordinal; hour of day as a cyclic pair.
  const double user_code = static_cast<double>(
      std::hash<std::string>{}(spec.user) % 1024);
  const double queue_code = spec.queue == "small"    ? 0.0
                            : spec.queue == "medium" ? 1.0
                                                     : 2.0;
  const double hour = static_cast<double>((spec.submit_time % kDay)) /
                      static_cast<double>(kHour);
  return {
      user_code / 1024.0,
      static_cast<double>(spec.nodes_requested),
      std::log(static_cast<double>(std::max<Duration>(spec.walltime_requested, 1))),
      queue_code,
      std::sin(2.0 * M_PI * hour / 24.0),
      std::cos(2.0 * M_PI * hour / 24.0),
  };
}

JobRuntimePredictor::JobRuntimePredictor(Params params) : params_(params) {
  ODA_REQUIRE(params.quantile > 0.0 && params.quantile < 1.0,
              "quantile must be in (0,1)");
}

void JobRuntimePredictor::observe(const sim::JobRecord& record) {
  const double runtime = static_cast<double>(record.run_time());
  auto& hist = user_runtimes_[record.spec.user];
  hist.push_back(runtime);
  if (hist.size() > params_.user_history) hist.erase(hist.begin());
  knn_.add(submission_features(record.spec), runtime);
  ++observed_;
}

JobRuntimePredictor::Estimate JobRuntimePredictor::predict(
    const sim::JobSpec& spec) const {
  ::oda::obs::CellScope oda_cell_scope("applications", "predictive", "pred.runtime");
  Estimate est;
  const double cap = static_cast<double>(spec.walltime_requested);
  const auto it = user_runtimes_.find(spec.user);
  if (it != user_runtimes_.end() && it->second.size() >= 3) {
    est.runtime_s = std::min(quantile(it->second, params_.quantile), cap);
    est.source = "user-history";
    return est;
  }
  if (knn_.size() >= params_.knn_k) {
    est.runtime_s = std::min(
        knn_.predict_quantile(submission_features(spec), params_.knn_k,
                              params_.quantile),
        cap);
    est.source = "knn";
    return est;
  }
  est.runtime_s = cap;
  est.source = "request";
  return est;
}

void JobEnergyPredictor::observe(const sim::JobRecord& record) {
  const double runtime = std::max<double>(1.0, static_cast<double>(record.run_time()));
  const double node_power =
      record.energy_j / runtime / static_cast<double>(std::max<std::size_t>(
                                      record.nodes.size(), 1));
  knn_.add(submission_features(record.spec), node_power);
  ++observed_;
}

double JobEnergyPredictor::predict_node_power_w(const sim::JobSpec& spec) const {
  if (knn_.size() == 0) return 0.0;
  return knn_.predict(submission_features(spec), knn_k_);
}

double JobEnergyPredictor::predict_energy_j(const sim::JobSpec& spec,
                                            double predicted_runtime_s) const {
  return predict_node_power_w(spec) *
         static_cast<double>(spec.nodes_requested) * predicted_runtime_s;
}

PredictionScore evaluate_runtime_predictor(
    std::span<const sim::JobRecord> records, double train_fraction,
    const JobRuntimePredictor::Params& params) {
  ODA_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
              "train fraction in (0,1)");
  PredictionScore score;
  if (records.size() < 10) return score;

  std::vector<sim::JobRecord> ordered(records.begin(), records.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const sim::JobRecord& a, const sim::JobRecord& b) {
              return a.spec.submit_time < b.spec.submit_time;
            });

  const auto split_at =
      static_cast<std::size_t>(train_fraction * static_cast<double>(ordered.size()));
  JobRuntimePredictor predictor(params);
  for (std::size_t i = 0; i < split_at; ++i) predictor.observe(ordered[i]);

  double abs_sum = 0.0, ape_sum = 0.0, request_abs_sum = 0.0;
  std::size_t under = 0, n = 0;
  for (std::size_t i = split_at; i < ordered.size(); ++i) {
    const auto& r = ordered[i];
    const double actual = static_cast<double>(r.run_time());
    if (actual <= 0.0) continue;
    const auto est = predictor.predict(r.spec);
    abs_sum += std::abs(est.runtime_s - actual);
    ape_sum += std::abs(est.runtime_s - actual) / actual;
    request_abs_sum +=
        std::abs(static_cast<double>(r.spec.walltime_requested) - actual);
    if (est.runtime_s < actual) ++under;
    ++n;
    // Online learning: fold the job in once "finished".
    predictor.observe(r);
  }
  if (n == 0) return score;
  score.jobs = n;
  score.mae_s = abs_sum / static_cast<double>(n);
  score.mape = ape_sum / static_cast<double>(n);
  score.underestimate_rate = static_cast<double>(under) / static_cast<double>(n);
  const double request_mae = request_abs_sum / static_cast<double>(n);
  score.improvement_vs_request =
      request_mae > 0.0 ? 1.0 - score.mae_s / request_mae : 0.0;
  return score;
}

}  // namespace oda::analytics
