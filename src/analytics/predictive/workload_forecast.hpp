// Workload forecasting (Fan & Lan [23]-style predictive input for
// schedulers): hourly arrival counts modelled by an hour-of-day profile plus
// Holt–Winters on the residual, with queue-pressure projection.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sim/workload.hpp"

namespace oda::analytics {

class WorkloadForecaster {
 public:
  /// bucket: aggregation width for arrival counts (default one hour).
  explicit WorkloadForecaster(Duration bucket = kHour);

  /// Feeds a submitted job's submit time.
  void observe_arrival(TimePoint submit);
  /// Feeds many (e.g. from a trace).
  void observe_trace(std::span<const sim::JobSpec> jobs);

  /// Arrival counts per bucket so far (dense from the first arrival).
  std::vector<double> arrival_series() const;

  /// Forecast arrivals for the next `horizon` buckets (>= 0 each).
  std::vector<double> forecast(std::size_t horizon) const;

  /// Mean profile by bucket-of-day (24 entries for hourly buckets).
  std::vector<double> daily_profile() const;

  Duration bucket() const { return bucket_; }
  std::size_t arrivals_observed() const { return total_; }

 private:
  Duration bucket_;
  std::vector<double> counts_;  // per bucket since t=0
  TimePoint first_ = -1;
  std::size_t total_ = 0;
};

}  // namespace oda::analytics
