#include "analytics/predictive/forecaster.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "math/regression.hpp"

namespace oda::analytics {

void PersistenceForecaster::fit(std::span<const double> history) {
  last_ = history.empty() ? 0.0 : history.back();
}

std::vector<double> PersistenceForecaster::forecast(std::size_t horizon) const {
  return std::vector<double>(horizon, last_);
}

MovingAverageForecaster::MovingAverageForecaster(std::size_t window)
    : window_(window) {
  ODA_REQUIRE(window > 0, "window must be positive");
}

void MovingAverageForecaster::fit(std::span<const double> history) {
  if (history.empty()) {
    level_ = 0.0;
    return;
  }
  const std::size_t n = std::min(window_, history.size());
  level_ = mean(history.subspan(history.size() - n));
}

std::vector<double> MovingAverageForecaster::forecast(std::size_t horizon) const {
  return std::vector<double>(horizon, level_);
}

SesForecaster::SesForecaster(double alpha) : alpha_(alpha) {}

void SesForecaster::fit(std::span<const double> history) {
  math::SimpleExpSmoother s(alpha_);
  s.fit(history);
  level_ = s.level();
}

std::vector<double> SesForecaster::forecast(std::size_t horizon) const {
  return std::vector<double>(horizon, level_);
}

HoltForecaster::HoltForecaster(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {}

void HoltForecaster::fit(std::span<const double> history) {
  math::HoltSmoother s(alpha_, beta_);
  s.fit(history);
  level_ = s.level();
  trend_ = s.trend();
}

std::vector<double> HoltForecaster::forecast(std::size_t horizon) const {
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    out[h] = level_ + static_cast<double>(h + 1) * trend_;
  }
  return out;
}

HoltWintersForecaster::HoltWintersForecaster(std::size_t period, double alpha,
                                             double beta, double gamma)
    : period_(period), alpha_(alpha), beta_(beta), gamma_(gamma) {
  ODA_REQUIRE(period >= 2, "holt-winters period must be >= 2");
}

void HoltWintersForecaster::fit(std::span<const double> history) {
  model_ = std::make_unique<math::HoltWinters>(alpha_, beta_, gamma_, period_);
  model_->fit(history);
  fallback_ = history.empty() ? 0.0 : history.back();
}

std::vector<double> HoltWintersForecaster::forecast(std::size_t horizon) const {
  if (!model_ || !model_->seasonal_ready()) {
    return std::vector<double>(horizon, fallback_);
  }
  return model_->forecast_path(horizon);
}

ArForecaster::ArForecaster(std::size_t order, std::size_t max_order)
    : order_(order), max_order_(max_order) {
  ODA_REQUIRE(max_order >= 1, "AR max order must be >= 1");
}

void ArForecaster::fit(std::span<const double> history) {
  model_.reset();
  fallback_ = history.empty() ? 0.0 : history.back();
  std::size_t order = order_;
  if (order == 0 && history.size() > 8) {
    order = math::select_ar_order(history, max_order_);
  }
  if (order >= 1 && history.size() > order + 2) {
    model_ = std::make_unique<math::ArModel>(
        math::ArModel::fit_yule_walker(history, order));
    const std::size_t tail = std::min(history.size(), order + 1);
    tail_.assign(history.end() - static_cast<std::ptrdiff_t>(tail), history.end());
  }
}

std::vector<double> ArForecaster::forecast(std::size_t horizon) const {
  if (!model_) return std::vector<double>(horizon, fallback_);
  return model_->forecast(tail_, horizon);
}

std::size_t ArForecaster::fitted_order() const {
  return model_ ? model_->order() : 0;
}

LinearTrendForecaster::LinearTrendForecaster(std::size_t window)
    : window_(window) {}

void LinearTrendForecaster::fit(std::span<const double> history) {
  std::span<const double> used = history;
  if (window_ > 0 && history.size() > window_) {
    used = history.subspan(history.size() - window_);
  }
  const auto trend = math::fit_trend(used);
  intercept_ = trend.intercept;
  slope_ = trend.slope;
  n_ = used.size();
}

std::vector<double> LinearTrendForecaster::forecast(std::size_t horizon) const {
  std::vector<double> out(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    out[h] = intercept_ + slope_ * static_cast<double>(n_ + h);
  }
  return out;
}

std::unique_ptr<Forecaster> make_forecaster(const std::string& spec) {
  const auto parts = split(spec, ':');
  const std::string& kind = parts[0];
  const auto arg = [&](std::size_t fallback) -> std::size_t {
    return parts.size() > 1 ? static_cast<std::size_t>(std::stoul(parts[1]))
                            : fallback;
  };
  if (kind == "persistence") return std::make_unique<PersistenceForecaster>();
  if (kind == "moving-average") {
    return std::make_unique<MovingAverageForecaster>(arg(16));
  }
  if (kind == "ses") return std::make_unique<SesForecaster>();
  if (kind == "holt") return std::make_unique<HoltForecaster>();
  if (kind == "holt-winters") {
    return std::make_unique<HoltWintersForecaster>(arg(96));
  }
  if (kind == "ar") return std::make_unique<ArForecaster>(arg(0));
  if (kind == "linear-trend") {
    return std::make_unique<LinearTrendForecaster>(arg(0));
  }
  throw ContractError("unknown forecaster spec: " + spec);
}

std::vector<std::string> standard_forecaster_specs(std::size_t season_period) {
  return {"persistence",
          "moving-average",
          "ses",
          "holt",
          "holt-winters:" + std::to_string(season_period),
          "ar",
          "linear-trend:64"};
}

}  // namespace oda::analytics
