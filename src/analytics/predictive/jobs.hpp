// Job runtime & resource prediction ([30],[31],[34],[35],[52],[53]): learn
// from completed jobs, predict runtime/energy for newly submitted ones from
// their observable submission features (user, size, requested walltime,
// queue, submit hour — never the hidden ground truth).
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "math/knn.hpp"
#include "sim/scheduler.hpp"
#include "sim/workload.hpp"

namespace oda::analytics {

/// Observable submission features of a job.
std::vector<double> submission_features(const sim::JobSpec& spec);

/// Per-user recent-history heuristic (the classic production baseline:
/// "this user's jobs usually run X") + kNN fallback on features.
class JobRuntimePredictor {
 public:
  struct Params {
    std::size_t user_history = 8;  // recent runtimes kept per user
    std::size_t knn_k = 7;
    /// Quantile of history used (high = conservative, fewer underestimates).
    double quantile = 0.75;
  };
  JobRuntimePredictor() : JobRuntimePredictor(Params{}) {}
  explicit JobRuntimePredictor(Params params);

  /// Learns from a completed job.
  void observe(const sim::JobRecord& record);
  std::size_t observed() const { return observed_; }

  struct Estimate {
    double runtime_s = 0.0;
    const char* source = "";  // "user-history" | "knn" | "request"
  };
  /// Prediction, always capped by the requested walltime.
  Estimate predict(const sim::JobSpec& spec) const;

 private:
  Params params_;
  std::map<std::string, std::vector<double>> user_runtimes_;
  math::KnnRegressor knn_;
  std::size_t observed_ = 0;
};

/// Mean-power / total-energy predictor from the same features.
class JobEnergyPredictor {
 public:
  explicit JobEnergyPredictor(std::size_t knn_k = 7) : knn_k_(knn_k) {}

  void observe(const sim::JobRecord& record);
  /// Predicted mean power per node (W); multiply by nodes and predicted
  /// runtime for an energy estimate.
  double predict_node_power_w(const sim::JobSpec& spec) const;
  double predict_energy_j(const sim::JobSpec& spec,
                          double predicted_runtime_s) const;
  std::size_t observed() const { return observed_; }

 private:
  std::size_t knn_k_;
  math::KnnRegressor knn_;
  std::size_t observed_ = 0;
};

/// Accuracy report for runtime predictions.
struct PredictionScore {
  double mae_s = 0.0;
  double mape = 0.0;
  double underestimate_rate = 0.0;  // predictions below actual (bad for EASY)
  /// Improvement of MAE over using the user's walltime request.
  double improvement_vs_request = 0.0;
  std::size_t jobs = 0;
};

/// Trains on the first `train_fraction` of records (submit-time order) and
/// scores on the rest.
PredictionScore evaluate_runtime_predictor(
    std::span<const sim::JobRecord> records, double train_fraction = 0.6,
    const JobRuntimePredictor::Params& params = {});

}  // namespace oda::analytics
