// Rolling-origin backtesting: the honest way to compare forecasters. The
// model is refit at each origin on data up to that point and scored on the
// next `horizon` truth values; errors are aggregated into MAE/RMSE/MAPE and
// skill vs the persistence baseline.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analytics/predictive/forecaster.hpp"

namespace oda::analytics {

struct BacktestResult {
  std::string model;
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;        // mean |err|/|truth|, truth==0 samples skipped
  double smape = 0.0;       // symmetric MAPE in [0,2]
  /// 1 - mae/mae_persistence; positive = beats persistence.
  double skill_vs_persistence = 0.0;
  std::size_t evaluations = 0;
};

struct BacktestParams {
  std::size_t min_train = 64;    // first origin
  std::size_t horizon = 8;       // steps scored per origin
  std::size_t stride = 8;        // origin spacing
};

/// Backtests one forecaster spec over the series.
BacktestResult backtest(const std::string& forecaster_spec,
                        std::span<const double> series,
                        const BacktestParams& params);

/// Backtests several specs and returns results sorted by MAE.
std::vector<BacktestResult> backtest_all(
    const std::vector<std::string>& forecaster_specs,
    std::span<const double> series, const BacktestParams& params);

}  // namespace oda::analytics
