#include "analytics/diagnostic/contention.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace oda::analytics {

ContentionReport diagnose_contention(
    const telemetry::TimeSeriesStore& store,
    const std::vector<sim::RunningJob>& running,
    const std::vector<std::string>& node_prefixes, TimePoint now,
    const ContentionParams& params) {
  ContentionReport report;
  const TimePoint from = now - params.window;

  // 1. Find saturated uplinks from telemetry.
  std::vector<std::size_t> hot_racks;
  for (const auto& path : store.match("network/rack*/uplink_util")) {
    const auto slice = store.query(path, from, now);
    if (slice.empty()) continue;
    const double util = mean(slice.values);
    if (util >= params.hot_threshold) {
      std::size_t rack = 0;
      std::sscanf(path.c_str(), "network/rack%zu/", &rack);
      report.hot_links.push_back({rack, util});
      hot_racks.push_back(rack);
    }
  }
  if (hot_racks.empty()) return report;

  // 2. Attribute offered load per job per hot rack from node telemetry.
  for (const auto& rack : hot_racks) {
    std::vector<ContentionReport::JobRole> roles;
    for (const auto& job : running) {
      // Count the job's nodes in/outside this rack.
      std::size_t in_rack = 0;
      double net_util_sum = 0.0;
      for (std::size_t n : job.nodes) {
        const std::size_t node_rack = n / params.nodes_per_rack;
        if (node_rack != rack) continue;
        ++in_rack;
        ODA_REQUIRE(n < node_prefixes.size(), "node index out of range");
        const auto slice =
            store.query(node_prefixes[n] + "/net_util", from, now);
        if (!slice.empty()) net_util_sum += mean(slice.values);
      }
      if (in_rack == 0 || job.nodes.size() == in_rack) continue;  // not crossing
      const double remote_fraction =
          static_cast<double>(job.nodes.size() - in_rack) /
          std::max<double>(static_cast<double>(job.nodes.size()) - 1.0, 1.0);
      ContentionReport::JobRole role;
      role.job_id = job.spec.id;
      role.user = job.spec.user;
      role.hot_rack = rack;
      role.offered_gbps =
          net_util_sum * params.nic_capacity_gbps * remote_fraction;
      roles.push_back(std::move(role));
    }
    if (roles.empty()) continue;
    // The top contributor is the aggressor; everyone crossing is involved.
    auto top = std::max_element(roles.begin(), roles.end(),
                                [](const auto& a, const auto& b) {
                                  return a.offered_gbps < b.offered_gbps;
                                });
    top->aggressor = true;
    report.involved_jobs.insert(report.involved_jobs.end(), roles.begin(),
                                roles.end());
  }
  return report;
}

}  // namespace oda::analytics
