// Fingerprinting diagnostics:
//  * datacenter crisis fingerprinting (Bodik et al. [38]) — summarize the
//    whole facility's state into a signature vector, cluster known crises,
//    and match new incidents to the nearest known class;
//  * application fingerprinting (Taxonomist [33], DeMasi et al. [36]) —
//    classify a job from the statistical signature of its node telemetry,
//    in particular flagging crypto-miners.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "math/decision_tree.hpp"
#include "math/kmeans.hpp"
#include "math/knn.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/store.hpp"

namespace oda::analytics {

// ---------------------------------------------------------------------------
// Datacenter crisis fingerprinting.
// ---------------------------------------------------------------------------

/// Facility-state signature: quantiles of each metric over an interval.
std::vector<double> crisis_signature(const telemetry::TimeSeriesStore& store,
                                     const std::vector<std::string>& metrics,
                                     TimePoint from, TimePoint to);

class CrisisFingerprinter {
 public:
  /// Registers a labeled incident signature.
  void add_incident(const std::string& label, std::vector<double> signature);
  std::size_t incident_count() const { return labels_.size(); }

  struct Match {
    std::string label;
    double distance = 0.0;
    bool known = false;  // within the match radius of a known incident
  };
  /// Nearest known incident; `known` is false when the distance exceeds
  /// radius_factor times the median intra-class distance.
  Match identify(const std::vector<double>& signature,
                 double radius_factor = 3.0) const;

 private:
  std::vector<std::vector<double>> signatures_;
  std::vector<std::string> labels_;
};

// ---------------------------------------------------------------------------
// Application fingerprinting.
// ---------------------------------------------------------------------------

/// Extracts the telemetry signature of a completed job: statistics of its
/// nodes' cpu/mem/net/io counters over the job's runtime.
std::vector<double> job_signature(const telemetry::TimeSeriesStore& store,
                                  const sim::JobRecord& record,
                                  const std::vector<std::string>& node_prefixes,
                                  Duration bucket = kMinute);

class ApplicationFingerprinter {
 public:
  struct Params {
    std::size_t knn_k = 5;
    std::size_t forest_trees = 40;
  };
  ApplicationFingerprinter() : ApplicationFingerprinter(Params{}) {}
  explicit ApplicationFingerprinter(Params params);

  /// Adds a labeled training job (label = application/class name).
  void add_training(const std::string& label, std::vector<double> signature);
  /// Trains the random-forest backend (kNN needs no training).
  void train(Rng& rng);

  struct Prediction {
    std::string label;
    double confidence = 0.0;
  };
  /// kNN prediction (available immediately).
  Prediction predict_knn(const std::vector<double>& signature) const;
  /// Random-forest prediction (after train()).
  Prediction predict_forest(const std::vector<double>& signature) const;

  std::vector<std::string> labels() const;

 private:
  Params params_;
  math::KnnClassifier knn_;
  std::vector<math::LabeledSample> samples_;
  std::map<std::string, std::size_t> label_index_;
  std::vector<std::string> index_label_;
  std::optional<math::RandomForest> forest_;
};

}  // namespace oda::analytics
