#include "analytics/diagnostic/fingerprint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "math/distance.hpp"

namespace oda::analytics {

std::vector<double> crisis_signature(const telemetry::TimeSeriesStore& store,
                                     const std::vector<std::string>& metrics,
                                     TimePoint from, TimePoint to) {
  std::vector<double> signature;
  signature.reserve(metrics.size() * 3);
  for (const auto& path : metrics) {
    const auto slice = store.query(path, from, to);
    if (slice.empty()) {
      signature.insert(signature.end(), {0.0, 0.0, 0.0});
      continue;
    }
    signature.push_back(quantile(slice.values, 0.5));
    signature.push_back(quantile(slice.values, 0.95));
    signature.push_back(stddev(slice.values));
  }
  return signature;
}

void CrisisFingerprinter::add_incident(const std::string& label,
                                       std::vector<double> signature) {
  ODA_REQUIRE(!signature.empty(), "empty crisis signature");
  if (!signatures_.empty()) {
    ODA_REQUIRE(signature.size() == signatures_[0].size(),
                "signature dimension mismatch");
  }
  signatures_.push_back(std::move(signature));
  labels_.push_back(label);
}

CrisisFingerprinter::Match CrisisFingerprinter::identify(
    const std::vector<double>& signature, double radius_factor) const {
  ODA_REQUIRE(!signatures_.empty(), "no known incidents");
  Match match;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    const double d = math::euclidean_distance(signature, signatures_[i]);
    if (d < best) {
      best = d;
      match.label = labels_[i];
    }
  }
  match.distance = best;

  // Match radius: median pairwise distance among known incidents of the
  // winning class (or overall when the class has a single exemplar).
  std::vector<double> intra;
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    for (std::size_t j = i + 1; j < signatures_.size(); ++j) {
      if (labels_[i] == match.label && labels_[j] == match.label) {
        intra.push_back(math::euclidean_distance(signatures_[i], signatures_[j]));
      }
    }
  }
  if (intra.empty()) {
    for (std::size_t i = 0; i < signatures_.size(); ++i) {
      for (std::size_t j = i + 1; j < signatures_.size(); ++j) {
        intra.push_back(math::euclidean_distance(signatures_[i], signatures_[j]));
      }
    }
  }
  const double radius = intra.empty() ? best : median(intra);
  match.known = best <= radius_factor * std::max(radius, 1e-9);
  return match;
}

std::vector<double> job_signature(const telemetry::TimeSeriesStore& store,
                                  const sim::JobRecord& record,
                                  const std::vector<std::string>& node_prefixes,
                                  Duration bucket) {
  // Pool each counter across the job's nodes, then summarize. The signature
  // is size-independent so jobs of different node counts are comparable.
  static const char* kLeaves[] = {"cpu_util", "mem_bw_util", "net_util",
                                  "io_util", "power"};
  std::vector<double> signature;
  for (const char* leaf : kLeaves) {
    std::vector<double> pooled;
    for (std::size_t n : record.nodes) {
      ODA_REQUIRE(n < node_prefixes.size(), "node index out of range");
      const auto slice =
          store.query_aggregated(node_prefixes[n] + "/" + leaf,
                                 record.start_time, record.end_time, bucket,
                                 telemetry::Aggregation::kMean);
      pooled.insert(pooled.end(), slice.values.begin(), slice.values.end());
    }
    if (pooled.empty()) {
      signature.insert(signature.end(), {0.0, 0.0, 0.0, 0.0});
      continue;
    }
    signature.push_back(mean(pooled));
    signature.push_back(stddev(pooled));
    signature.push_back(quantile(pooled, 0.95));
    // Phase-structure indicator: lag-1 autocorrelation of the pooled trace.
    signature.push_back(autocorrelation(pooled, 1));
  }
  return signature;
}

ApplicationFingerprinter::ApplicationFingerprinter(Params params)
    : params_(params) {}

void ApplicationFingerprinter::add_training(const std::string& label,
                                            std::vector<double> signature) {
  knn_.add(signature, label);
  auto [it, inserted] = label_index_.emplace(label, index_label_.size());
  if (inserted) index_label_.push_back(label);
  samples_.push_back({std::move(signature), it->second});
}

void ApplicationFingerprinter::train(Rng& rng) {
  ODA_REQUIRE(label_index_.size() >= 2, "need at least two labels to train");
  math::RandomForest::Params fp;
  fp.n_trees = params_.forest_trees;
  forest_ = math::RandomForest::fit(samples_, label_index_.size(), fp, rng);
}

ApplicationFingerprinter::Prediction ApplicationFingerprinter::predict_knn(
    const std::vector<double>& signature) const {
  ODA_REQUIRE(knn_.size() > 0, "no training data");
  Prediction p;
  p.label = knn_.predict(signature, params_.knn_k);
  p.confidence = knn_.confidence(signature, params_.knn_k);
  return p;
}

ApplicationFingerprinter::Prediction ApplicationFingerprinter::predict_forest(
    const std::vector<double>& signature) const {
  ODA_REQUIRE(forest_.has_value(), "forest not trained");
  const auto probs = forest_->predict_proba(signature);
  Prediction p;
  std::size_t best = 0;
  for (std::size_t i = 1; i < probs.size(); ++i) {
    if (probs[i] > probs[best]) best = i;
  }
  p.label = index_label_[best];
  p.confidence = probs[best];
  return p;
}

std::vector<std::string> ApplicationFingerprinter::labels() const {
  return index_label_;
}

}  // namespace oda::analytics
