// Diagnostic-pillar anomaly detection (Table I, diagnostic row).
//
// Streaming detectors score a single sensor sample-by-sample; multivariate
// detectors (isolation forest, PCA reconstruction) score feature vectors
// built from sliding windows over many sensors — the setup of Tuncer et
// al. [16] and Borghesi et al. [17]. A NodeAnomalyMonitor sweeps every node
// and produces per-node verdicts, and the evaluation helpers score any
// detector against injected-fault ground truth.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "math/isolation_forest.hpp"
#include "math/pca.hpp"
#include "telemetry/store.hpp"

namespace oda::analytics {

/// Streaming univariate detector: feed samples, read back an anomaly score
/// (0 = normal; >= 1 = at the detection threshold).
class StreamingDetector {
 public:
  virtual ~StreamingDetector() = default;
  virtual void observe(double value) = 0;
  virtual double score() const = 0;
  virtual const char* name() const = 0;
  bool anomalous() const { return score() >= 1.0; }
};

/// |z| of the newest sample against a trailing window, normalized by the
/// detection threshold (z_threshold).
class ZScoreDetector : public StreamingDetector {
 public:
  ZScoreDetector(std::size_t window, double z_threshold = 4.0);
  void observe(double value) override;
  double score() const override { return score_; }
  const char* name() const override { return "zscore"; }

 private:
  RollingWindow window_;
  double z_threshold_;
  double score_ = 0.0;
};

/// Robust variant: median/MAD instead of mean/stddev; immune to the
/// contamination of the window by the anomaly itself.
class MadDetector : public StreamingDetector {
 public:
  MadDetector(std::size_t window, double threshold = 5.0);
  void observe(double value) override;
  double score() const override { return score_; }
  const char* name() const override { return "mad"; }

 private:
  RollingWindow window_;
  double threshold_;
  double score_ = 0.0;
};

/// EWMA control chart: deviation of the EWMA from a long-run baseline in
/// units of the EWMA control limit.
class EwmaDetector : public StreamingDetector {
 public:
  explicit EwmaDetector(double alpha = 0.1, double limit_sigma = 4.0);
  void observe(double value) override;
  double score() const override { return score_; }
  const char* name() const override { return "ewma"; }

 private:
  Ewma fast_;
  RunningStats baseline_;
  double limit_sigma_;
  double score_ = 0.0;
};

/// Stuck-at detector: scores how long the signal has been exactly constant
/// relative to the expected variability.
class StuckSensorDetector : public StreamingDetector {
 public:
  explicit StuckSensorDetector(std::size_t max_constant_run = 20);
  void observe(double value) override;
  double score() const override { return score_; }
  const char* name() const override { return "stuck"; }

 private:
  std::size_t max_run_;
  std::size_t run_ = 0;
  double last_ = 0.0;
  bool has_last_ = false;
  double score_ = 0.0;
};

// ---------------------------------------------------------------------------
// Multivariate window-feature detectors.
// ---------------------------------------------------------------------------

/// Feature vector for one node over one window: per-sensor mean, std, and
/// robust slope — the statistical fingerprint the classifiers consume.
std::vector<double> window_features(const telemetry::Frame& frame);

struct AnomalyVerdict {
  std::string subject;  // e.g. node path
  double score = 0.0;   // detector-specific; >= threshold means anomalous
  bool anomalous = false;
  /// Ensemble member attribution (each normalized so >= 1 fires): density
  /// outliers show in the forest, correlation violations in the PCA
  /// residual. Zero when the monitor has a single member.
  double forest_score = 0.0;
  double pca_score = 0.0;
};

/// Node anomaly monitor: an ensemble of an isolation forest (density
/// outliers) and PCA reconstruction error (correlation violations, e.g.
/// "temperature high while fan speed low") over per-node window features.
///
/// Features are *rack-relative* (each sensor bucket minus the concurrent
/// median of the node's rack peers — the correlation-wise-smoothing idea of
/// Netti et al. [47]): rack-common modes such as inlet-temperature shifts
/// cancel out, so one faulty node does not drag its whole rack over the
/// alarm threshold. Rack-wide anomalies are the root-cause analyzer's job,
/// not this monitor's.
///
/// Both member scores are calibrated on the healthy training windows; the
/// reported score is the ensemble max, normalized so >= 1 means anomalous.
class NodeAnomalyMonitor {
 public:
  struct Params {
    std::vector<std::string> per_node_sensors = {
        "power", "cpu_temp", "cpu_util", "fan_speed", "mem_bw_util"};
    Duration window = 10 * kMinute;
    Duration bucket = kMinute;
    /// Margin over the calibrated healthy quantile before alarming.
    double calibration_margin = 1.15;
    double calibration_quantile = 0.99;
    std::size_t trees = 100;
    double pca_variance_target = 0.9;
  };

  NodeAnomalyMonitor(Params params, std::vector<std::string> node_prefixes);

  /// Learns the healthy baseline from [from, to): one training sample per
  /// node per window.
  void train(const telemetry::TimeSeriesStore& store, TimePoint from,
             TimePoint to, Rng& rng);
  bool trained() const { return forest_ != nullptr; }

  /// Scores every node over the window ending at `now`.
  std::vector<AnomalyVerdict> scan(const telemetry::TimeSeriesStore& store,
                                   TimePoint now) const;

  const Params& params() const { return params_; }

 private:
  /// Rack-relative window features for every monitored node at once.
  std::vector<std::vector<double>> batch_features(
      const telemetry::TimeSeriesStore& store, TimePoint from,
      TimePoint to) const;
  std::vector<double> standardize(std::vector<double> features) const;

  Params params_;
  std::vector<std::string> node_prefixes_;
  std::unique_ptr<math::IsolationForest> forest_;
  std::unique_ptr<math::Pca> pca_;
  // Healthy-calibrated normalizers: member score / threshold.
  double forest_threshold_ = 1.0;
  double pca_threshold_ = 1.0;
  // Per-feature standardization fitted on healthy training windows.
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
};

/// PCA reconstruction-error detector (autoencoder-lite, Borghesi-style [17]).
class PcaAnomalyDetector {
 public:
  /// Fits on healthy feature vectors keeping enough components for
  /// `variance_target` of the variance.
  void train(const std::vector<std::vector<double>>& healthy,
             double variance_target = 0.95);
  bool trained() const { return pca_ != nullptr; }

  /// Reconstruction error normalized by the healthy p99 error
  /// (>= 1 = anomalous).
  double score(std::span<const double> features) const;

 private:
  std::unique_ptr<math::Pca> pca_;
  double error_p99_ = 1.0;
};

// ---------------------------------------------------------------------------
// Evaluation against ground truth.
// ---------------------------------------------------------------------------

struct DetectionMetrics {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  std::size_t true_negatives = 0;

  double precision() const;
  double recall() const;
  double f1() const;
  double accuracy() const;
};

/// Scores point predictions against boolean ground truth. (std::vector<bool>
/// because the bit-packed specialization cannot be viewed as a span.)
DetectionMetrics score_detection(const std::vector<bool>& predicted,
                                 const std::vector<bool>& truth);

/// Area under the ROC curve for continuous scores vs boolean truth.
double roc_auc(std::span<const double> scores, const std::vector<bool>& truth);

}  // namespace oda::analytics
