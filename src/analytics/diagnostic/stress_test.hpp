// Active infrastructure stress testing (Bortot et al. [39], Table I
// diagnostic/building-infrastructure): instead of waiting for anomalies to
// show in passive telemetry, periodically *perturb* the plant and measure
// its response. Here: step the supply-water setpoint and fit the loop's
// first-order response time constant. A degraded pump slows the loop, so a
// time constant well above the healthy baseline is a fault signature that
// passive monitoring would take far longer to accumulate.
#pragma once

#include "common/types.hpp"
#include "sim/cluster.hpp"
#include "telemetry/store.hpp"

namespace oda::analytics {

struct StressTestResult {
  bool completed = false;
  double step_k = 0.0;             // applied setpoint step
  double time_constant_s = 0.0;    // fitted first-order tau
  double residual_rmse_c = 0.0;    // fit quality (deg C)
  /// Verdict relative to the supplied healthy baseline.
  bool degraded = false;
  double slowdown_factor = 1.0;    // tau / baseline tau
};

struct StressTestParams {
  double step_k = -3.0;            // setpoint perturbation
  Duration settle = 30 * kMinute;  // pre-test settling period
  Duration observe = kHour;        // response observation window
  Duration sample = kMinute;
  /// tau above baseline * threshold_factor marks degradation.
  double threshold_factor = 1.4;
};

/// Runs the perturb-observe-restore protocol on the live plant. The
/// simulation is advanced by settle + observe; the setpoint is restored
/// before returning. `baseline_tau_s` <= 0 skips the verdict (use the first
/// commissioning run to establish the baseline).
StressTestResult run_cooling_stress_test(sim::ClusterSimulation& cluster,
                                         double baseline_tau_s,
                                         const StressTestParams& params = {});

/// Fits tau of a first-order step response y(t) = y_inf + (y0-y_inf)e^(-t/tau)
/// from samples (seconds, value). Exposed for testing.
double fit_time_constant(const std::vector<double>& t_s,
                         const std::vector<double>& y, double y0, double y_inf);

}  // namespace oda::analytics
