// Software-oriented diagnostics (system-software & applications pillars):
//  * memory-leak detection — robust positive slope in a job's resident
//    memory (Tuncer et al. [16]);
//  * OS-noise characterization — FWQ (fixed-work-quantum) trace analysis:
//    noise intensity, periodicity, and the dominant interference period
//    (Ferreira et al. [57]);
//  * boundedness classification — is a running job compute-, memory-,
//    network- or IO-bound ([20],[44])?
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/store.hpp"

namespace oda::analytics {

// ---------------------------------------------------------------- mem leaks

struct LeakVerdict {
  std::uint64_t job_id = 0;
  bool leaking = false;
  double slope_gb_per_hour = 0.0;
  double projected_hours_to_oom = 0.0;  // at the current slope
};

struct LeakParams {
  double slope_threshold_gb_per_hour = 1.0;
  Duration window = 30 * kMinute;
  double memory_capacity_gb = 256.0;
};

/// Tests one running job's memory trace for a sustained upward slope.
LeakVerdict detect_memory_leak(const telemetry::TimeSeriesStore& store,
                               const sim::RunningJob& job,
                               const std::vector<std::string>& node_prefixes,
                               TimePoint now, const LeakParams& params);

// ----------------------------------------------------------------- OS noise

struct NoiseReport {
  double noise_fraction = 0.0;   // share of quanta inflated beyond tolerance
  double mean_inflation = 0.0;   // mean relative slowdown of noisy quanta
  double dominant_period_s = 0.0;  // 0 when aperiodic
  bool periodic = false;
};

/// Analyzes a fixed-work-quantum trace: `durations[i]` is the wall time of
/// quantum i, `expected` the noise-free duration, `sample_period_s` the
/// spacing between quanta.
NoiseReport analyze_fwq(std::span<const double> durations, double expected,
                        double sample_period_s, double tolerance = 0.02);

/// Generates a synthetic FWQ trace with periodic interference — the
/// "benchmark run" a noise study would execute on a real node.
std::vector<double> synthesize_fwq(std::size_t quanta, double expected,
                                   double noise_period_s, double noise_cost,
                                   double sample_period_s, std::uint64_t seed);

// -------------------------------------------------------------- boundedness

enum class Boundedness { kCompute, kMemory, kNetwork, kIo, kIdle };
const char* boundedness_name(Boundedness b);

/// Classifies a running job from its mean resource utilizations over the
/// window; thresholds follow the usual counter-based heuristics.
Boundedness classify_boundedness(const telemetry::TimeSeriesStore& store,
                                 const sim::RunningJob& job,
                                 const std::vector<std::string>& node_prefixes,
                                 TimePoint now, Duration window = 10 * kMinute);

}  // namespace oda::analytics
