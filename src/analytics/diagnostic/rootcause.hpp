// Root-cause analysis (AutoDiagn-style [9]): a dependency graph over
// infrastructure components plus symptom propagation logic. Given the set of
// currently anomalous sensors, RCA ranks candidate culprits: a component
// whose *children* are broadly symptomatic is more likely the cause than any
// single child (a hot loop explains many hot nodes; one hot node does not).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace oda::analytics {

struct ComponentNode {
  std::string name;          // e.g. "facility/cooling_loop", "rack00/node03"
  std::string parent;        // empty for the root
  std::vector<std::string> children;
};

struct RootCauseCandidate {
  std::string component;
  double confidence = 0.0;   // [0,1]
  std::size_t symptomatic_descendants = 0;
  std::size_t total_descendants = 0;
  std::string explanation;
};

class DependencyGraph {
 public:
  /// Adds a component under `parent` ("" = root level).
  void add(const std::string& name, const std::string& parent);
  bool contains(const std::string& name) const;
  std::vector<std::string> children_of(const std::string& name) const;
  /// All descendants (children, grandchildren, ...).
  std::vector<std::string> descendants_of(const std::string& name) const;
  std::size_t size() const { return nodes_.size(); }

  /// Builds the standard topology for our simulated cluster:
  /// facility -> cooling loop -> racks -> nodes, facility -> power path.
  static DependencyGraph standard_cluster(std::size_t racks,
                                          std::size_t nodes_per_rack);

  /// Ranks root-cause candidates given the symptomatic leaf components.
  /// A component is blamed when a large fraction of its descendants are
  /// symptomatic and the symptom set is not explained by a deeper component.
  std::vector<RootCauseCandidate> diagnose(
      const std::vector<std::string>& symptomatic,
      double blame_fraction = 0.6) const;

 private:
  std::map<std::string, ComponentNode> nodes_;
  std::vector<std::string> order_;
};

}  // namespace oda::analytics
