#include "analytics/diagnostic/rootcause.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "sim/cluster.hpp"

namespace oda::analytics {

void DependencyGraph::add(const std::string& name, const std::string& parent) {
  ODA_REQUIRE(!name.empty(), "component needs a name");
  ODA_REQUIRE(nodes_.count(name) == 0, "duplicate component: " + name);
  if (!parent.empty()) {
    ODA_REQUIRE(nodes_.count(parent) != 0, "unknown parent: " + parent);
    nodes_[parent].children.push_back(name);
  }
  nodes_[name] = ComponentNode{name, parent, {}};
  order_.push_back(name);
}

bool DependencyGraph::contains(const std::string& name) const {
  return nodes_.count(name) != 0;
}

std::vector<std::string> DependencyGraph::children_of(
    const std::string& name) const {
  const auto it = nodes_.find(name);
  ODA_REQUIRE(it != nodes_.end(), "unknown component: " + name);
  return it->second.children;
}

std::vector<std::string> DependencyGraph::descendants_of(
    const std::string& name) const {
  std::vector<std::string> out;
  std::vector<std::string> stack = children_of(name);
  while (!stack.empty()) {
    std::string current = stack.back();
    stack.pop_back();
    for (const auto& child : children_of(current)) stack.push_back(child);
    out.push_back(std::move(current));
  }
  return out;
}

DependencyGraph DependencyGraph::standard_cluster(std::size_t racks,
                                                  std::size_t nodes_per_rack) {
  DependencyGraph g;
  g.add("facility", "");
  g.add("facility/cooling", "facility");
  g.add("facility/power", "facility");
  g.add("facility/cooling/pump", "facility/cooling");
  g.add("facility/cooling/chiller", "facility/cooling");
  for (std::size_t r = 0; r < racks; ++r) {
    char rack[32];
    std::snprintf(rack, sizeof(rack), "rack%02zu", r);
    g.add(rack, "facility/cooling");
    for (std::size_t n = 0; n < nodes_per_rack; ++n) {
      g.add(sim::node_path(r, n), rack);
    }
  }
  return g;
}

std::vector<RootCauseCandidate> DependencyGraph::diagnose(
    const std::vector<std::string>& symptomatic, double blame_fraction) const {
  const std::set<std::string> symptoms(symptomatic.begin(), symptomatic.end());
  if (symptoms.empty()) return {};

  // Primary candidate: the deepest component whose subtree (itself plus
  // descendants) covers *every* symptom — the minimum covering ancestor. A
  // parent covering all symptoms explains them better than any one child:
  // eight hot nodes across two racks point at the shared cooling loop, not
  // at either rack.
  std::string primary;
  std::size_t primary_subtree = SIZE_MAX;
  std::vector<RootCauseCandidate> secondary;

  for (const auto& name : order_) {
    const auto desc = descendants_of(name);
    std::set<std::string> subtree(desc.begin(), desc.end());
    subtree.insert(name);

    std::size_t covered = 0;
    for (const auto& s : symptoms) covered += subtree.count(s);

    if (covered == symptoms.size() && subtree.size() < primary_subtree) {
      primary = name;
      primary_subtree = subtree.size();
    }

    // Secondary candidates: components most of whose subtree is
    // symptomatic (localized blame even without full coverage).
    RootCauseCandidate c;
    c.component = name;
    c.total_descendants = std::max<std::size_t>(desc.size(), 1);
    for (const auto& d : desc) {
      if (symptoms.count(d)) ++c.symptomatic_descendants;
    }
    if (desc.empty() && symptoms.count(name)) c.symptomatic_descendants = 1;
    const double fraction = static_cast<double>(c.symptomatic_descendants) /
                            static_cast<double>(c.total_descendants);
    if (fraction >= blame_fraction && c.symptomatic_descendants >= 1) {
      c.confidence = fraction;
      c.explanation = std::to_string(c.symptomatic_descendants) + "/" +
                      std::to_string(c.total_descendants) +
                      " of subtree symptomatic";
      secondary.push_back(std::move(c));
    }
  }

  std::sort(secondary.begin(), secondary.end(),
            [](const RootCauseCandidate& a, const RootCauseCandidate& b) {
              if (a.confidence != b.confidence) return a.confidence > b.confidence;
              return a.symptomatic_descendants > b.symptomatic_descendants;
            });

  std::vector<RootCauseCandidate> out;
  if (!primary.empty()) {
    RootCauseCandidate c;
    c.component = primary;
    const auto desc = descendants_of(primary);
    c.total_descendants = std::max<std::size_t>(desc.size(), 1);
    for (const auto& d : desc) {
      if (symptoms.count(d)) ++c.symptomatic_descendants;
    }
    if (desc.empty()) c.symptomatic_descendants = 1;
    c.confidence = static_cast<double>(c.symptomatic_descendants) /
                   static_cast<double>(c.total_descendants);
    c.explanation = "deepest component covering all " +
                    std::to_string(symptoms.size()) + " symptoms";
    out.push_back(std::move(c));
  }
  for (auto& c : secondary) {
    if (c.component != primary) out.push_back(std::move(c));
  }
  return out;
}

}  // namespace oda::analytics
