// Network-contention diagnosis (Grant et al. [19], Jha et al. [55]): from
// per-rack uplink counters and the placement of running jobs, identify which
// links are saturated, which jobs are the likely aggressors (largest
// offered load on the hot link) and which are victims (cross-rack jobs
// traversing it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/store.hpp"

namespace oda::analytics {

struct ContentionReport {
  struct HotLink {
    std::size_t rack = 0;
    double utilization = 0.0;  // mean over the analysis window
  };
  struct JobRole {
    std::uint64_t job_id = 0;
    std::string user;
    std::size_t hot_rack = 0;
    double offered_gbps = 0.0;  // estimated uplink demand
    bool aggressor = false;     // top contributor on the hot link
  };

  std::vector<HotLink> hot_links;
  std::vector<JobRole> involved_jobs;
  bool contention_detected() const { return !hot_links.empty(); }
};

struct ContentionParams {
  double hot_threshold = 0.95;  // mean uplink utilization marking saturation
  Duration window = 5 * kMinute;
  double nic_capacity_gbps = 100.0;
  std::size_t nodes_per_rack = 16;
};

/// Analyzes the window ending at `now`. Running-job placement and per-node
/// net_util telemetry provide the offered-load estimates.
ContentionReport diagnose_contention(
    const telemetry::TimeSeriesStore& store,
    const std::vector<sim::RunningJob>& running,
    const std::vector<std::string>& node_prefixes, TimePoint now,
    const ContentionParams& params);

}  // namespace oda::analytics
