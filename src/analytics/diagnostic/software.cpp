#include "analytics/diagnostic/software.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "math/fft.hpp"
#include "math/regression.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

LeakVerdict detect_memory_leak(const telemetry::TimeSeriesStore& store,
                               const sim::RunningJob& job,
                               const std::vector<std::string>& node_prefixes,
                               TimePoint now, const LeakParams& params) {
  LeakVerdict verdict;
  verdict.job_id = job.spec.id;
  if (job.nodes.empty()) return verdict;
  // Memory is replicated per node for our job model; one node suffices.
  const std::size_t n = job.nodes.front();
  ODA_REQUIRE(n < node_prefixes.size(), "node index out of range");
  const auto slice = store.query(node_prefixes[n] + "/mem_used",
                                 std::max(now - params.window, job.start_time),
                                 now);
  if (slice.size() < 8) return verdict;

  const auto trend = math::fit_theil_sen(slice.values);
  // Samples are not necessarily 1s apart; convert per-sample slope to per
  // hour using the mean sample spacing.
  const double span_s =
      static_cast<double>(slice.times.back() - slice.times.front());
  const double spacing =
      span_s / std::max<double>(1.0, static_cast<double>(slice.size() - 1));
  verdict.slope_gb_per_hour = trend.slope * 3600.0 / std::max(spacing, 1e-9);
  verdict.leaking =
      verdict.slope_gb_per_hour >= params.slope_threshold_gb_per_hour;
  if (verdict.leaking) {
    const double headroom = params.memory_capacity_gb - slice.values.back();
    verdict.projected_hours_to_oom =
        std::max(0.0, headroom / verdict.slope_gb_per_hour);
  }
  return verdict;
}

NoiseReport analyze_fwq(std::span<const double> durations, double expected,
                        double sample_period_s, double tolerance) {
  ::oda::obs::CellScope oda_cell_scope("system-software", "diagnostic", "diag.noise");
  ODA_REQUIRE(expected > 0.0, "expected quantum must be positive");
  ODA_REQUIRE(sample_period_s > 0.0, "sample period must be positive");
  NoiseReport report;
  if (durations.empty()) return report;

  std::size_t noisy = 0;
  double inflation_sum = 0.0;
  std::vector<double> excess(durations.size());
  for (std::size_t i = 0; i < durations.size(); ++i) {
    const double rel = (durations[i] - expected) / expected;
    excess[i] = std::max(0.0, rel);
    if (rel > tolerance) {
      ++noisy;
      inflation_sum += rel;
    }
  }
  report.noise_fraction =
      static_cast<double>(noisy) / static_cast<double>(durations.size());
  report.mean_inflation = noisy ? inflation_sum / static_cast<double>(noisy) : 0.0;

  // Periodicity: dominant spectral component of the excess-time series.
  if (durations.size() >= 16) {
    const auto comps = math::dominant_components(excess, 1);
    if (!comps.empty() && comps[0].frequency > 0.0) {
      // Significant only when the component carries real energy relative to
      // the signal's variance.
      const double sd = stddev(excess);
      if (sd > 0.0 && comps[0].amplitude > 0.5 * sd) {
        report.periodic = true;
        report.dominant_period_s = sample_period_s / comps[0].frequency;
      }
    }
  }
  return report;
}

std::vector<double> synthesize_fwq(std::size_t quanta, double expected,
                                   double noise_period_s, double noise_cost,
                                   double sample_period_s, std::uint64_t seed) {
  ODA_REQUIRE(noise_period_s > 0.0, "noise period must be positive");
  Rng rng(seed);
  std::vector<double> out(quanta, expected);
  double next_noise = noise_period_s * rng.uniform();
  double t = 0.0;
  for (std::size_t i = 0; i < quanta; ++i) {
    out[i] += std::abs(rng.normal(0.0, expected * 0.002));  // jitter floor
    // Each interference event landing in this quantum adds its cost.
    const double t_end = t + sample_period_s;
    while (next_noise < t_end) {
      out[i] += noise_cost;
      next_noise += noise_period_s;
    }
    t = t_end;
  }
  return out;
}

const char* boundedness_name(Boundedness b) {
  switch (b) {
    case Boundedness::kCompute: return "compute-bound";
    case Boundedness::kMemory: return "memory-bound";
    case Boundedness::kNetwork: return "network-bound";
    case Boundedness::kIo: return "io-bound";
    case Boundedness::kIdle: return "idle";
  }
  return "?";
}

Boundedness classify_boundedness(const telemetry::TimeSeriesStore& store,
                                 const sim::RunningJob& job,
                                 const std::vector<std::string>& node_prefixes,
                                 TimePoint now, Duration window) {
  ::oda::obs::CellScope oda_cell_scope("applications", "diagnostic", "diag.bound");
  const TimePoint from = std::max(now - window, job.start_time);
  double cpu = 0.0, mem = 0.0, net = 0.0, io = 0.0;
  std::size_t counted = 0;
  for (std::size_t n : job.nodes) {
    ODA_REQUIRE(n < node_prefixes.size(), "node index out of range");
    const auto read = [&](const char* leaf) {
      const auto slice = store.query(node_prefixes[n] + "/" + leaf, from, now);
      return slice.empty() ? 0.0 : mean(slice.values);
    };
    cpu += read("cpu_util");
    mem += read("mem_bw_util");
    net += read("net_util");
    io += read("io_util");
    ++counted;
  }
  if (counted == 0) return Boundedness::kIdle;
  const double k = static_cast<double>(counted);
  cpu /= k;
  mem /= k;
  net /= k;
  io /= k;

  if (cpu < 0.1 && mem < 0.1 && net < 0.1 && io < 0.1) return Boundedness::kIdle;
  if (io > 0.5 && io > mem && io > net) return Boundedness::kIo;
  if (net > 0.5 && net > mem) return Boundedness::kNetwork;
  if (mem > 0.6 || (mem > 0.4 && mem > cpu * 0.8)) return Boundedness::kMemory;
  return Boundedness::kCompute;
}

}  // namespace oda::analytics
