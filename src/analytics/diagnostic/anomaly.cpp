#include "analytics/diagnostic/anomaly.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "math/regression.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

// ------------------------------------------------------------ ZScoreDetector

ZScoreDetector::ZScoreDetector(std::size_t window, double z_threshold)
    : window_(window), z_threshold_(z_threshold) {
  ODA_REQUIRE(z_threshold > 0.0, "z threshold must be positive");
}

void ZScoreDetector::observe(double value) {
  if (window_.size() >= 8) {
    const double sd = window_.stddev();
    // Floor the scale so constant baselines do not divide by ~zero.
    const double scale = std::max(sd, 1e-6 + 0.001 * std::abs(window_.mean()));
    score_ = std::abs(value - window_.mean()) / (scale * z_threshold_);
  } else {
    score_ = 0.0;
  }
  window_.add(value);
}

// --------------------------------------------------------------- MadDetector

MadDetector::MadDetector(std::size_t window, double threshold)
    : window_(window), threshold_(threshold) {
  ODA_REQUIRE(threshold > 0.0, "MAD threshold must be positive");
}

void MadDetector::observe(double value) {
  if (window_.size() >= 8) {
    const auto vals = window_.to_vector();
    const double med = median(vals);
    const double scale =
        std::max(mad(vals), 1e-6 + 0.001 * std::abs(med));
    score_ = std::abs(value - med) / (scale * threshold_);
  } else {
    score_ = 0.0;
  }
  window_.add(value);
}

// -------------------------------------------------------------- EwmaDetector

EwmaDetector::EwmaDetector(double alpha, double limit_sigma)
    : fast_(alpha), limit_sigma_(limit_sigma) {
  ODA_REQUIRE(limit_sigma > 0.0, "EWMA limit must be positive");
}

void EwmaDetector::observe(double value) {
  fast_.add(value);
  baseline_.add(value);
  if (baseline_.count() >= 16 && baseline_.stddev() > 0.0) {
    // EWMA control limit: sigma * sqrt(alpha / (2 - alpha)).
    const double limit = limit_sigma_ * baseline_.stddev() *
                         std::sqrt(fast_.alpha() / (2.0 - fast_.alpha()));
    score_ = std::abs(fast_.mean() - baseline_.mean()) / std::max(limit, 1e-12);
  } else {
    score_ = 0.0;
  }
}

// ------------------------------------------------------- StuckSensorDetector

StuckSensorDetector::StuckSensorDetector(std::size_t max_constant_run)
    : max_run_(max_constant_run) {
  ODA_REQUIRE(max_constant_run > 0, "stuck run must be positive");
}

void StuckSensorDetector::observe(double value) {
  if (has_last_ && value == last_) {
    ++run_;
  } else {
    run_ = 0;
  }
  last_ = value;
  has_last_ = true;
  score_ = static_cast<double>(run_) / static_cast<double>(max_run_);
}

// ----------------------------------------------------------- window features

std::vector<double> window_features(const telemetry::Frame& frame) {
  std::vector<double> features;
  features.reserve(frame.cols() * 3);
  for (std::size_t c = 0; c < frame.cols(); ++c) {
    std::vector<double> col;
    col.reserve(frame.rows());
    for (double v : frame.column_values(c)) {
      if (!std::isnan(v)) col.push_back(v);
    }
    if (col.empty()) {
      features.insert(features.end(), {0.0, 0.0, 0.0});
      continue;
    }
    features.push_back(mean(col));
    features.push_back(stddev(col));
    features.push_back(math::fit_theil_sen(col).slope);
  }
  return features;
}

// --------------------------------------------------------- NodeAnomalyMonitor

NodeAnomalyMonitor::NodeAnomalyMonitor(Params params,
                                       std::vector<std::string> node_prefixes)
    : params_(std::move(params)), node_prefixes_(std::move(node_prefixes)) {
  ODA_REQUIRE(!node_prefixes_.empty(), "monitor needs nodes");
  ODA_REQUIRE(!params_.per_node_sensors.empty(), "monitor needs sensors");
}

std::vector<std::vector<double>> NodeAnomalyMonitor::batch_features(
    const telemetry::TimeSeriesStore& store, TimePoint from,
    TimePoint to) const {
  const std::size_t n_nodes = node_prefixes_.size();
  // Rack membership from the first path component.
  std::vector<std::string> rack_of(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    rack_of[i] = split(node_prefixes_[i], '/').front();
  }

  // Raw window features per node first...
  std::vector<std::vector<double>> features(n_nodes);
  for (const auto& leaf : params_.per_node_sensors) {
    std::vector<std::string> paths;
    paths.reserve(n_nodes);
    for (const auto& prefix : node_prefixes_) paths.push_back(prefix + "/" + leaf);
    const auto frame = store.frame(paths, from, to, params_.bucket);
    for (std::size_t c = 0; c < n_nodes; ++c) {
      std::vector<double> series;
      series.reserve(frame.rows());
      for (double v : frame.column_values(c)) {
        if (!std::isnan(v)) series.push_back(v);
      }
      if (series.empty()) {
        features[c].insert(features[c].end(), {0.0, 0.0, 0.0});
        continue;
      }
      features[c].push_back(mean(series));
      features[c].push_back(stddev(series));
      features[c].push_back(math::fit_theil_sen(series).slope);
    }
  }

  // ...then make each feature rack-relative by subtracting the rack's
  // 25%-trimmed mean of that feature. Working in *feature space* keeps a
  // faulty peer's oscillations in its own features only (a per-bucket
  // reference would jitter with every swing of a throttling neighbour),
  // while rack-common modes (inlet-temperature shifts) still cancel.
  const auto trimmed_mean = [](std::vector<double> vals) {
    std::sort(vals.begin(), vals.end());
    const std::size_t trim = vals.size() / 4;
    double sum = 0.0;
    for (std::size_t i = trim; i < vals.size() - trim; ++i) sum += vals[i];
    return sum / static_cast<double>(vals.size() - 2 * trim);
  };
  const std::size_t dim = features.empty() ? 0 : features[0].size();
  std::map<std::string, std::vector<std::size_t>> rack_members;
  for (std::size_t c = 0; c < n_nodes; ++c) rack_members[rack_of[c]].push_back(c);
  for (std::size_t d = 0; d < dim; ++d) {
    for (const auto& [rack, members] : rack_members) {
      std::vector<double> vals;
      vals.reserve(members.size());
      for (std::size_t c : members) vals.push_back(features[c][d]);
      const double reference = trimmed_mean(vals);
      for (std::size_t c : members) features[c][d] -= reference;
    }
  }
  return features;
}

std::vector<double> NodeAnomalyMonitor::standardize(
    std::vector<double> features) const {
  ODA_REQUIRE(features.size() == feature_mean_.size(),
              "feature dimension changed between train and scan");
  for (std::size_t d = 0; d < features.size(); ++d) {
    features[d] = (features[d] - feature_mean_[d]) / feature_std_[d];
  }
  return features;
}

void NodeAnomalyMonitor::train(const telemetry::TimeSeriesStore& store,
                               TimePoint from, TimePoint to, Rng& rng) {
  std::vector<std::vector<double>> samples;
  for (TimePoint t = from + params_.window; t <= to; t += params_.window) {
    for (auto& f : batch_features(store, t - params_.window, t)) {
      if (!f.empty()) samples.push_back(std::move(f));
    }
  }
  ODA_REQUIRE(samples.size() >= 16, "not enough healthy windows to train");

  // Fit the standardization on the healthy windows, then standardize them.
  const std::size_t dim = samples[0].size();
  feature_mean_.assign(dim, 0.0);
  feature_std_.assign(dim, 0.0);
  for (const auto& s : samples) {
    for (std::size_t d = 0; d < dim; ++d) feature_mean_[d] += s[d];
  }
  for (double& m : feature_mean_) m /= static_cast<double>(samples.size());
  for (const auto& s : samples) {
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = s[d] - feature_mean_[d];
      feature_std_[d] += diff * diff;
    }
  }
  for (double& v : feature_std_) {
    v = std::sqrt(v / static_cast<double>(samples.size() - 1));
  }

  // Floor each feature's standardization scale at a fraction of the
  // sensor's natural fleet-wide variability. Under a very steady training
  // workload the healthy feature variance collapses toward zero, and
  // without the floor any physically insignificant ripple (a faulty peer
  // warming the shared rack inlet by tenths of a degree) scores as tens of
  // sigma on every node in the rack.
  constexpr double kScaleFloorFraction = 0.05;
  for (std::size_t s_idx = 0; s_idx < params_.per_node_sensors.size(); ++s_idx) {
    std::vector<std::string> paths;
    for (const auto& prefix : node_prefixes_) {
      paths.push_back(prefix + "/" + params_.per_node_sensors[s_idx]);
    }
    RunningStats fleet;
    const auto fleet_frame = store.frame(paths, from, to, params_.window);
    for (std::size_t c = 0; c < fleet_frame.cols(); ++c) {
      for (double v : fleet_frame.column_values(c)) {
        if (!std::isnan(v)) fleet.add(v);
      }
    }
    const double scale =
        std::max(kScaleFloorFraction * fleet.stddev(),
                 1e-3 * std::abs(fleet.mean()) + 1e-9);
    const std::size_t base = s_idx * 3;  // mean, std, slope per sensor
    const double window_buckets =
        static_cast<double>(params_.window / params_.bucket);
    feature_std_[base + 0] = std::max(feature_std_[base + 0], scale);
    feature_std_[base + 1] = std::max(feature_std_[base + 1], scale);
    feature_std_[base + 2] =
        std::max(feature_std_[base + 2], scale / std::max(window_buckets, 1.0));
  }
  for (double& v : feature_std_) {
    if (v < 1e-9) v = 1.0;
  }
  for (auto& s : samples) s = standardize(std::move(s));

  math::IsolationForest::Params fp;
  fp.n_trees = params_.trees;
  forest_ = std::make_unique<math::IsolationForest>(
      math::IsolationForest::fit(samples, fp, rng));
  pca_ = std::make_unique<math::Pca>(math::Pca::fit(
      math::Matrix::from_rows(samples), 0, /*scale=*/false));
  // Keep components explaining the variance target; residual dimensions
  // carry the correlation structure whose violation flags faults.
  std::size_t keep = 1;
  double cum = 0.0, total = 0.0;
  for (double v : pca_->explained_variance()) total += v;
  for (std::size_t i = 0; i < pca_->explained_variance().size(); ++i) {
    cum += pca_->explained_variance()[i];
    keep = i + 1;
    if (total > 0.0 && cum / total >= params_.pca_variance_target) break;
  }
  // Keep at most 3/4 of the dimensions: with a near-complete basis the
  // healthy reconstruction error is numerical noise and the calibrated
  // threshold collapses, turning any rack-wide ripple into an astronomic
  // score.
  keep = std::min(keep, std::max<std::size_t>(1, dim * 3 / 4));
  pca_ = std::make_unique<math::Pca>(math::Pca::fit(
      math::Matrix::from_rows(samples), keep, /*scale=*/false));

  // Calibrate both members on the healthy score distribution: a fixed
  // global cut-off cannot serve heterogeneous fleets, and a high quantile
  // (not the max) keeps a handful of warm-up windows from dominating.
  std::vector<double> forest_scores, pca_errors;
  forest_scores.reserve(samples.size());
  pca_errors.reserve(samples.size());
  for (const auto& s : samples) {
    forest_scores.push_back(forest_->score(s));
    pca_errors.push_back(pca_->reconstruction_error(s));
  }
  forest_threshold_ = std::max(
      quantile(forest_scores, params_.calibration_quantile) *
          params_.calibration_margin,
      1e-6);
  // Features are standardized, so the floor is in z-units: healthy fleets
  // drift a few tenths of a sigma between training and scan as job phases
  // evolve, and faults land one to four orders of magnitude higher, so a
  // floor below ~0.75 only converts that benign drift into alarms.
  pca_threshold_ = std::max(
      quantile(pca_errors, params_.calibration_quantile) *
          params_.calibration_margin,
      0.75);
}

std::vector<AnomalyVerdict> NodeAnomalyMonitor::scan(
    const telemetry::TimeSeriesStore& store, TimePoint now) const {
  ::oda::obs::CellScope oda_cell_scope("system-hardware", "diagnostic", "diag.node");
  ODA_REQUIRE(trained(), "scan before train");
  std::vector<AnomalyVerdict> out;
  out.reserve(node_prefixes_.size());
  const auto batch = batch_features(store, now - params_.window, now);
  for (std::size_t i = 0; i < node_prefixes_.size(); ++i) {
    const auto f = standardize(batch[i]);
    AnomalyVerdict v;
    v.subject = node_prefixes_[i];
    v.forest_score = forest_->score(f) / forest_threshold_;
    v.pca_score = pca_->reconstruction_error(f) / pca_threshold_;
    v.score = std::max(v.forest_score, v.pca_score);
    v.anomalous = v.score >= 1.0;
    out.push_back(std::move(v));
  }
  return out;
}

// -------------------------------------------------------- PcaAnomalyDetector

void PcaAnomalyDetector::train(const std::vector<std::vector<double>>& healthy,
                               double variance_target) {
  ODA_REQUIRE(healthy.size() >= 8, "not enough healthy samples for PCA");
  ODA_REQUIRE(variance_target > 0.0 && variance_target <= 1.0,
              "variance target in (0,1]");
  const auto data = math::Matrix::from_rows(healthy);
  // Fit full PCA, then keep the leading components reaching the target.
  const auto full = math::Pca::fit(data, 0, /*scale=*/true);
  double total = 0.0;
  for (double v : full.explained_variance()) total += v;
  std::size_t keep = 1;
  double cum = 0.0;
  for (std::size_t i = 0; i < full.explained_variance().size(); ++i) {
    cum += full.explained_variance()[i];
    if (total > 0.0 && cum / total >= variance_target) {
      keep = i + 1;
      break;
    }
    keep = i + 1;
  }
  // Keep at least one dimension of residual so errors are informative.
  keep = std::min(keep, healthy[0].size() > 1 ? healthy[0].size() - 1
                                              : healthy[0].size());
  pca_ = std::make_unique<math::Pca>(math::Pca::fit(data, keep, /*scale=*/true));

  std::vector<double> errors;
  errors.reserve(healthy.size());
  for (const auto& s : healthy) errors.push_back(pca_->reconstruction_error(s));
  error_p99_ = std::max(quantile(errors, 0.99), 1e-9);
}

double PcaAnomalyDetector::score(std::span<const double> features) const {
  ODA_REQUIRE(trained(), "score before train");
  return pca_->reconstruction_error(features) / error_p99_;
}

// ------------------------------------------------------------------- scoring

double DetectionMetrics::precision() const {
  const auto d = true_positives + false_positives;
  return d ? static_cast<double>(true_positives) / static_cast<double>(d) : 0.0;
}
double DetectionMetrics::recall() const {
  const auto d = true_positives + false_negatives;
  return d ? static_cast<double>(true_positives) / static_cast<double>(d) : 0.0;
}
double DetectionMetrics::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}
double DetectionMetrics::accuracy() const {
  const auto total =
      true_positives + false_positives + false_negatives + true_negatives;
  return total ? static_cast<double>(true_positives + true_negatives) /
                     static_cast<double>(total)
               : 0.0;
}

DetectionMetrics score_detection(const std::vector<bool>& predicted,
                                 const std::vector<bool>& truth) {
  ODA_REQUIRE(predicted.size() == truth.size(), "detection size mismatch");
  DetectionMetrics m;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] && truth[i]) ++m.true_positives;
    else if (predicted[i] && !truth[i]) ++m.false_positives;
    else if (!predicted[i] && truth[i]) ++m.false_negatives;
    else ++m.true_negatives;
  }
  return m;
}

double roc_auc(std::span<const double> scores, const std::vector<bool>& truth) {
  ODA_REQUIRE(scores.size() == truth.size(), "auc size mismatch");
  // Rank-sum (Mann-Whitney) formulation with tie handling via average ranks.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> ranks(scores.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t k = 0; k < truth.size(); ++k) {
    if (truth[k]) {
      pos_rank_sum += ranks[k];
      ++n_pos;
    }
  }
  const std::size_t n_neg = truth.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = pos_rank_sum - static_cast<double>(n_pos) *
                                      (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

}  // namespace oda::analytics
