#include "analytics/diagnostic/stress_test.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "math/regression.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

double fit_time_constant(const std::vector<double>& t_s,
                         const std::vector<double>& y, double y0,
                         double y_inf) {
  ODA_REQUIRE(t_s.size() == y.size(), "stress-test sample size mismatch");
  ODA_REQUIRE(t_s.size() >= 4, "too few samples to fit a time constant");
  const double span = y0 - y_inf;
  ODA_REQUIRE(std::abs(span) > 1e-9, "degenerate step (no response span)");

  // Linearize: ln((y - y_inf)/span) = -t / tau; fit by least squares over
  // the samples still meaningfully away from the asymptote.
  std::vector<double> xs, zs;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double frac = (y[i] - y_inf) / span;
    if (frac < 0.02 || frac > 0.98) continue;  // asymptote / pre-step noise
    xs.push_back(t_s[i]);
    zs.push_back(std::log(frac));
  }
  ODA_REQUIRE(xs.size() >= 3, "step response left too few usable samples");
  double sx = 0.0, sz = 0.0, sxx = 0.0, sxz = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sz += zs[i];
    sxx += xs[i] * xs[i];
    sxz += xs[i] * zs[i];
  }
  const double n = static_cast<double>(xs.size());
  const double slope = (n * sxz - sx * sz) / std::max(n * sxx - sx * sx, 1e-12);
  ODA_REQUIRE(slope < 0.0, "response is not decaying toward the target");
  return -1.0 / slope;
}

StressTestResult run_cooling_stress_test(sim::ClusterSimulation& cluster,
                                         double baseline_tau_s,
                                         const StressTestParams& params) {
  ::oda::obs::CellScope oda_cell_scope("building-infrastructure", "diagnostic", "diag.stress");
  ODA_REQUIRE(std::abs(params.step_k) >= 0.5, "step too small to measure");
  StressTestResult result;
  result.step_k = params.step_k;

  // Settle at the current operating point.
  cluster.run_for(params.settle);
  const double setpoint = cluster.knobs().get("facility/supply_setpoint");
  const double y0 = cluster.facility().supply_temp_c();

  // Perturb and record the response.
  cluster.knobs().set("facility/supply_setpoint", setpoint + params.step_k);
  const double target = cluster.knobs().get("facility/supply_setpoint");
  std::vector<double> t_s, y;
  const TimePoint start = cluster.now();
  while (cluster.now() - start < params.observe) {
    cluster.run_for(params.sample);
    t_s.push_back(static_cast<double>(cluster.now() - start));
    y.push_back(cluster.facility().supply_temp_c());
  }
  // Restore the original operating point before any analysis can throw.
  cluster.knobs().set("facility/supply_setpoint", setpoint);

  result.time_constant_s = fit_time_constant(t_s, y, y0, target);

  double sq = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double model =
        target + (y0 - target) * std::exp(-t_s[i] / result.time_constant_s);
    sq += (y[i] - model) * (y[i] - model);
  }
  result.residual_rmse_c = std::sqrt(sq / static_cast<double>(y.size()));
  result.completed = true;

  if (baseline_tau_s > 0.0) {
    result.slowdown_factor = result.time_constant_s / baseline_tau_s;
    result.degraded = result.slowdown_factor > params.threshold_factor;
  }
  return result;
}

}  // namespace oda::analytics
