// Descriptive-pillar KPI calculators (Table I, descriptive row):
//   * PUE  — Power Usage Effectiveness [4]
//   * ITUE/TUE — IT-internal overhead efficiency [59]
//   * ERE  — Energy Reuse Effectiveness
//   * job slowdown / bounded slowdown [60]
//   * utilization and queue statistics
//   * SIE — System Information Entropy over state transitions [14]
//   * roofline operating point [63]
// Everything is computed from the telemetry store and scheduler records —
// the same interfaces a production deployment would expose.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/store.hpp"

namespace oda::telemetry {
class SensorHealthTracker;
}  // namespace oda::telemetry

namespace oda::analytics {

/// Interval KPI computed by integrating power sensors over [from, to).
struct PueReport {
  double pue = 0.0;               // facility energy / IT energy
  double facility_energy_kwh = 0.0;
  double it_energy_kwh = 0.0;
  double cooling_energy_kwh = 0.0;
  double loss_energy_kwh = 0.0;   // PDU/UPS conversion losses
  /// Fraction of the input sensors the health tracker deemed usable (1.0
  /// without a tracker). A pue of 0 with coverage < 1 means "inputs
  /// quarantined", not "free cooling".
  double coverage = 1.0;
};

/// PUE over an interval from the standard facility sensors
/// ("facility/total_power", "cluster/it_power", "facility/cooling_power",
/// "facility/pdu_loss"). When `health` is given, quarantined inputs are
/// skipped (their energy term becomes 0) and reported through `coverage`
/// instead of silently averaging poisoned data.
PueReport compute_pue(const telemetry::TimeSeriesStore& store, TimePoint from,
                      TimePoint to,
                      const telemetry::SensorHealthTracker* health = nullptr);

/// ITUE = total IT energy / "useful" IT energy (total minus node fans and
/// estimated PSU overhead). fan_power_per_node_w(speed) converts the
/// "*/fan_speed" sensors to watts; defaults to the simulator's cubic law.
struct ItueReport {
  double itue = 1.0;
  double tue = 1.0;  // TUE = ITUE * PUE
  double fan_energy_kwh = 0.0;
  double it_energy_kwh = 0.0;
};
ItueReport compute_itue(const telemetry::TimeSeriesStore& store, TimePoint from,
                        TimePoint to, double fan_max_power_w = 30.0,
                        double psu_overhead_fraction = 0.05);

/// ERE = (facility energy - reused energy) / IT energy. Reuse fraction is a
/// parameter (our simulated site reuses return-loop heat for offices).
double compute_ere(const PueReport& pue, double reuse_fraction);

/// Scheduler quality-of-service metrics from completed jobs [60].
struct SlowdownReport {
  double mean_slowdown = 0.0;
  double mean_bounded_slowdown = 0.0;  // runtime floor tau
  double median_wait_s = 0.0;
  double p95_wait_s = 0.0;
  double mean_wait_s = 0.0;
  std::size_t jobs = 0;
};
SlowdownReport compute_slowdown(std::span<const sim::JobRecord> records,
                                Duration tau = 10 * kMinute);

/// Node utilization over an interval: mean of "scheduler/utilization".
/// With a health tracker, a quarantined utilization sensor yields NaN
/// (no trustworthy data) rather than a misleading mean.
double compute_utilization(const telemetry::TimeSeriesStore& store,
                           TimePoint from, TimePoint to,
                           const telemetry::SensorHealthTracker* health = nullptr);

/// System Information Entropy: discretizes a set of sensors into state
/// symbols per time bucket and measures transition entropy [14]. Low entropy
/// = a system settled into regular behaviour; spikes indicate regime change.
struct SieReport {
  double entropy_bits = 0.0;
  std::size_t distinct_states = 0;
  std::size_t transitions = 0;
  /// Sensors actually used / usable fraction (quality overlay; see
  /// PueReport::coverage).
  std::size_t sensors_used = 0;
  double coverage = 1.0;
};
/// Quarantined sensors are dropped from the state symbol when `health` is
/// given (strict overlay: null tracker == previous behaviour).
SieReport compute_sie(const telemetry::TimeSeriesStore& store,
                      const std::vector<std::string>& sensors, TimePoint from,
                      TimePoint to, Duration bucket, std::size_t levels = 4,
                      const telemetry::SensorHealthTracker* health = nullptr);

/// Roofline operating point [63]: where a measured kernel sits against a
/// machine's compute and bandwidth ceilings.
struct RooflinePoint {
  double arithmetic_intensity = 0.0;  // flop/byte
  double attainable_gflops = 0.0;     // min(peak, AI * bw)
  double achieved_gflops = 0.0;
  bool memory_bound = false;
  double efficiency = 0.0;  // achieved / attainable
};
RooflinePoint roofline(double peak_gflops, double peak_bw_gbs,
                       double achieved_gflops, double bytes_per_flop);

}  // namespace oda::analytics
