#include "analytics/descriptive/aggregation.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "obs/trace.hpp"
#include "telemetry/health.hpp"

namespace oda::analytics {

std::vector<QuantileSummary> quantile_transport(
    const telemetry::TimeSeriesStore& store, const std::string& sensor_pattern,
    TimePoint from, TimePoint to, std::size_t group_depth,
    const telemetry::SensorHealthTracker* health) {
  struct GroupPool {
    std::size_t count = 0;
    std::size_t skipped = 0;
    std::vector<double> pooled;
  };
  std::map<std::string, GroupPool> groups;
  for (const auto& path : store.match(sensor_pattern)) {
    const auto parts = split(path, '/');
    std::string group;
    for (std::size_t i = 0; i < std::min(group_depth, parts.size()); ++i) {
      if (i) group += '/';
      group += parts[i];
    }
    GroupPool& pool = groups[group];
    if (health != nullptr && !health->usable(path)) {
      ODA_TRACE_INSTANT_CAT("analytics.quarantine_skip", "analytics");
      ++pool.skipped;
      continue;
    }
    const auto slice = store.query(path, from, to);
    ++pool.count;
    pool.pooled.insert(pool.pooled.end(), slice.values.begin(),
                       slice.values.end());
  }

  std::vector<QuantileSummary> out;
  for (auto& [group, entry] : groups) {
    auto& [count, skipped, pooled] = entry;
    QuantileSummary s;
    s.group = group;
    s.sensors = count;
    s.samples = pooled.size();
    s.skipped = skipped;
    s.coverage = count + skipped > 0
                     ? static_cast<double>(count) /
                           static_cast<double>(count + skipped)
                     : 1.0;
    if (!pooled.empty()) {
      std::sort(pooled.begin(), pooled.end());
      const auto q = [&](double p) {
        const double pos = p * static_cast<double>(pooled.size() - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, pooled.size() - 1);
        return pooled[lo] + (pos - static_cast<double>(lo)) * (pooled[hi] - pooled[lo]);
      };
      s.q10 = q(0.10);
      s.q25 = q(0.25);
      s.q50 = q(0.50);
      s.q75 = q(0.75);
      s.q90 = q(0.90);
      s.min = pooled.front();
      s.max = pooled.back();
      s.mean = mean(pooled);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<double> remove_outliers_iqr(const std::vector<double>& values,
                                        double k) {
  if (values.size() < 4) return values;
  const double q1 = quantile(values, 0.25);
  const double q3 = quantile(values, 0.75);
  const double iqr = q3 - q1;
  const double lo = q1 - k * iqr;
  const double hi = q3 + k * iqr;
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    if (v >= lo && v <= hi) out.push_back(v);
  }
  return out;
}

std::vector<SensorSnapshot> snapshot_sensors(
    const telemetry::TimeSeriesStore& store, const std::string& pattern,
    TimePoint from, TimePoint to,
    const telemetry::SensorHealthTracker* health) {
  std::vector<SensorSnapshot> out;
  for (const auto& path : store.match(pattern)) {
    if (health != nullptr && !health->usable(path)) {
      ODA_TRACE_INSTANT_CAT("analytics.quarantine_skip", "analytics");
      continue;
    }
    const auto slice = store.query(path, from, to);
    if (slice.empty()) continue;
    SensorSnapshot s;
    s.path = path;
    s.latest = slice.values.back();
    s.mean = mean(slice.values);
    s.p95 = quantile(slice.values, 0.95);
    const double sd = stddev(slice.values);
    s.zscore = sd > 0.0 ? (s.latest - s.mean) / sd : 0.0;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace oda::analytics
