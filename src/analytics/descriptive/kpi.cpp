#include "analytics/descriptive/kpi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "math/entropy.hpp"
#include "telemetry/health.hpp"

#include "obs/cell.hpp"

namespace oda::analytics {

namespace {

/// Integrates a power sensor (W) over [from, to) by trapezoid-free step
/// integration (samples are step-held), returning kWh.
double integrate_kwh(const telemetry::TimeSeriesStore& store,
                     const std::string& path, TimePoint from, TimePoint to) {
  const auto slice = store.query(path, from, to);
  if (slice.empty()) return 0.0;
  double joules = 0.0;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    const TimePoint t_next = i + 1 < slice.size() ? slice.times[i + 1] : to;
    joules += slice.values[i] * static_cast<double>(t_next - slice.times[i]);
  }
  return joules / units::kJoulesPerKilowattHour;
}

}  // namespace

PueReport compute_pue(const telemetry::TimeSeriesStore& store, TimePoint from,
                      TimePoint to,
                      const telemetry::SensorHealthTracker* health) {
  ::oda::obs::CellScope oda_cell_scope("building-infrastructure", "descriptive", "kpi.pue");
  PueReport report;
  std::size_t usable = 0;
  const auto usable_kwh = [&](const std::string& path) {
    if (health != nullptr && !health->usable(path)) {
      ODA_TRACE_INSTANT_CAT("analytics.quarantine_skip", "analytics");
      return 0.0;
    }
    ++usable;
    return integrate_kwh(store, path, from, to);
  };
  report.facility_energy_kwh = usable_kwh("facility/total_power");
  report.it_energy_kwh = usable_kwh("cluster/it_power");
  report.cooling_energy_kwh = usable_kwh("facility/cooling_power");
  report.loss_energy_kwh = usable_kwh("facility/pdu_loss");
  report.coverage = static_cast<double>(usable) / 4.0;
  report.pue = report.it_energy_kwh > 0.0
                   ? report.facility_energy_kwh / report.it_energy_kwh
                   : 0.0;
  return report;
}

ItueReport compute_itue(const telemetry::TimeSeriesStore& store, TimePoint from,
                        TimePoint to, double fan_max_power_w,
                        double psu_overhead_fraction) {
  ::oda::obs::CellScope oda_cell_scope("system-hardware", "descriptive", "kpi.itue");
  ItueReport report;
  report.it_energy_kwh = integrate_kwh(store, "cluster/it_power", from, to);

  // Fan energy: cubic law applied to each node's fan_speed series.
  double fan_kwh = 0.0;
  for (const auto& path : store.match("rack*/node*/fan_speed")) {
    const auto slice = store.query(path, from, to);
    double joules = 0.0;
    for (std::size_t i = 0; i < slice.size(); ++i) {
      const TimePoint t_next = i + 1 < slice.size() ? slice.times[i + 1] : to;
      const double s = slice.values[i];
      joules += fan_max_power_w * s * s * s * static_cast<double>(t_next - slice.times[i]);
    }
    fan_kwh += joules / units::kJoulesPerKilowattHour;
  }
  report.fan_energy_kwh = fan_kwh;

  const double overhead_kwh =
      fan_kwh + psu_overhead_fraction * report.it_energy_kwh;
  const double useful = report.it_energy_kwh - overhead_kwh;
  report.itue = useful > 0.0 ? report.it_energy_kwh / useful : 1.0;

  const PueReport pue = compute_pue(store, from, to);
  report.tue = report.itue * (pue.pue > 0.0 ? pue.pue : 1.0);
  return report;
}

double compute_ere(const PueReport& pue, double reuse_fraction) {
  ODA_REQUIRE(reuse_fraction >= 0.0 && reuse_fraction <= 1.0,
              "reuse fraction must be in [0,1]");
  if (pue.it_energy_kwh <= 0.0) return 0.0;
  const double reused = reuse_fraction * pue.it_energy_kwh;
  return (pue.facility_energy_kwh - reused) / pue.it_energy_kwh;
}

SlowdownReport compute_slowdown(std::span<const sim::JobRecord> records,
                                Duration tau) {
  ::oda::obs::CellScope oda_cell_scope("system-software", "descriptive", "kpi.slowdown");
  SlowdownReport report;
  if (records.empty()) return report;
  std::vector<double> waits;
  double slowdown_sum = 0.0, bounded_sum = 0.0;
  for (const auto& r : records) {
    const double wait = static_cast<double>(r.wait_time());
    const double run = std::max<double>(1.0, static_cast<double>(r.run_time()));
    waits.push_back(wait);
    slowdown_sum += (wait + run) / run;
    bounded_sum += std::max(1.0, (wait + run) /
                                     std::max(run, static_cast<double>(tau)));
  }
  report.jobs = records.size();
  report.mean_slowdown = slowdown_sum / static_cast<double>(records.size());
  report.mean_bounded_slowdown = bounded_sum / static_cast<double>(records.size());
  report.mean_wait_s = mean(waits);
  report.median_wait_s = median(waits);
  report.p95_wait_s = quantile(waits, 0.95);
  return report;
}

double compute_utilization(const telemetry::TimeSeriesStore& store,
                           TimePoint from, TimePoint to,
                           const telemetry::SensorHealthTracker* health) {
  if (health != nullptr && !health->usable("scheduler/utilization")) {
    ODA_TRACE_INSTANT_CAT("analytics.quarantine_skip", "analytics");
    return std::numeric_limits<double>::quiet_NaN();
  }
  const auto slice = store.query("scheduler/utilization", from, to);
  return slice.empty() ? 0.0 : mean(slice.values);
}

SieReport compute_sie(const telemetry::TimeSeriesStore& store,
                      const std::vector<std::string>& sensors, TimePoint from,
                      TimePoint to, Duration bucket, std::size_t levels,
                      const telemetry::SensorHealthTracker* health) {
  ODA_REQUIRE(levels >= 2, "SIE needs at least two levels");
  SieReport report;
  std::vector<std::string> used;
  used.reserve(sensors.size());
  for (const auto& path : sensors) {
    if (health != nullptr && !health->usable(path)) {
      ODA_TRACE_INSTANT_CAT("analytics.quarantine_skip", "analytics");
      continue;
    }
    used.push_back(path);
  }
  report.sensors_used = used.size();
  report.coverage = sensors.empty() ? 1.0
                                    : static_cast<double>(used.size()) /
                                          static_cast<double>(sensors.size());
  if (used.empty()) return report;
  const auto frame = store.frame(used, from, to, bucket);
  if (frame.rows() < 2) return report;

  // Per-column min/max for level quantization: one contiguous stripe scan
  // per column in the columnar layout.
  std::vector<double> lo(frame.cols(), std::numeric_limits<double>::infinity());
  std::vector<double> hi(frame.cols(), -std::numeric_limits<double>::infinity());
  for (std::size_t c = 0; c < frame.cols(); ++c) {
    for (double v : frame.column_values(c)) {
      if (std::isnan(v)) continue;
      lo[c] = std::min(lo[c], v);
      hi[c] = std::max(hi[c], v);
    }
  }

  math::TransitionEntropy te;
  std::set<std::string> states;
  for (std::size_t r = 0; r < frame.rows(); ++r) {
    std::string symbol;
    for (std::size_t c = 0; c < frame.cols(); ++c) {
      const double v = frame.at(r, c);
      std::size_t level = 0;
      if (!std::isnan(v) && hi[c] > lo[c]) {
        level = static_cast<std::size_t>((v - lo[c]) / (hi[c] - lo[c]) *
                                         static_cast<double>(levels));
        level = std::min(level, levels - 1);
      }
      symbol += static_cast<char>('a' + level);
    }
    states.insert(symbol);
    te.observe(symbol);
  }
  report.entropy_bits = te.entropy();
  report.distinct_states = states.size();
  report.transitions = te.transition_count();
  return report;
}

RooflinePoint roofline(double peak_gflops, double peak_bw_gbs,
                       double achieved_gflops, double bytes_per_flop) {
  ::oda::obs::CellScope oda_cell_scope("applications", "descriptive", "kpi.roofline");
  ODA_REQUIRE(peak_gflops > 0.0 && peak_bw_gbs > 0.0, "roofline ceilings must be positive");
  ODA_REQUIRE(bytes_per_flop > 0.0, "bytes_per_flop must be positive");
  RooflinePoint p;
  p.arithmetic_intensity = 1.0 / bytes_per_flop;
  p.attainable_gflops =
      std::min(peak_gflops, p.arithmetic_intensity * peak_bw_gbs);
  p.achieved_gflops = achieved_gflops;
  p.memory_bound = p.arithmetic_intensity * peak_bw_gbs < peak_gflops;
  p.efficiency = p.attainable_gflops > 0.0 ? achieved_gflops / p.attainable_gflops : 0.0;
  return p;
}

}  // namespace oda::analytics
