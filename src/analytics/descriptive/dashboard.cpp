#include "analytics/descriptive/dashboard.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analytics/descriptive/aggregation.hpp"
#include "analytics/descriptive/kpi.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace oda::analytics {

std::string sparkline(std::span<const double> values, std::size_t width) {
  static constexpr char kLevels[] = " .:-=+*#%@";
  constexpr std::size_t kLevelCount = sizeof(kLevels) - 2;  // max index
  if (values.empty()) return std::string(width, ' ');
  // Downsample/stretch to width via piecewise means.
  std::string out;
  out.reserve(width);
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (std::size_t w = 0; w < width; ++w) {
    const std::size_t a = w * values.size() / width;
    const std::size_t b = std::max(a + 1, (w + 1) * values.size() / width);
    double sum = 0.0;
    for (std::size_t i = a; i < b && i < values.size(); ++i) sum += values[i];
    const double v = sum / static_cast<double>(std::min(b, values.size()) - a);
    std::size_t level = 0;
    if (hi > lo) {
      level = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                       static_cast<double>(kLevelCount));
      level = std::min(level, kLevelCount);
    }
    out += kLevels[level];
  }
  return out;
}

namespace {

std::string series_cell(const telemetry::TimeSeriesStore& store,
                        const std::string& path, TimePoint from, TimePoint to,
                        int precision = 1) {
  const auto slice = store.query(path, from, to);
  if (slice.empty()) return "n/a";
  return format_double(slice.values.back(), precision) + "  [" +
         sparkline(slice.values, 24) + "]";
}

}  // namespace

std::string facility_dashboard(const telemetry::TimeSeriesStore& store,
                               TimePoint from, TimePoint to) {
  TextTable table({"metric", "latest [trend]", "interval mean"});
  table.set_title("FACILITY DASHBOARD  (" + format_time(from) + " .. " +
                  format_time(to) + ")");
  const auto add_row = [&](const std::string& label, const std::string& path,
                           int precision = 1) {
    const auto slice = store.query(path, from, to);
    table.add_row({label, series_cell(store, path, from, to, precision),
                   slice.empty() ? "n/a" : format_double(mean(slice.values), precision)});
  };
  add_row("IT power [W]", "cluster/it_power", 0);
  add_row("facility power [W]", "facility/total_power", 0);
  add_row("cooling power [W]", "facility/cooling_power", 0);
  add_row("chiller power [W]", "facility/chiller_power", 0);
  add_row("PDU loss [W]", "facility/pdu_loss", 0);
  add_row("PUE", "facility/pue", 3);
  add_row("supply temp [C]", "facility/supply_temp");
  add_row("return temp [C]", "facility/return_temp");
  add_row("free cooling", "facility/free_cooling", 0);
  add_row("outdoor drybulb [C]", "weather/drybulb_temp");
  add_row("outdoor wetbulb [C]", "weather/wetbulb_temp");

  const PueReport pue = compute_pue(store, from, to);
  table.add_separator();
  table.add_row({"interval PUE", format_double(pue.pue, 3),
                 format_double(pue.facility_energy_kwh, 1) + " kWh total"});
  return table.render();
}

std::string system_dashboard(const telemetry::TimeSeriesStore& store,
                             TimePoint from, TimePoint to) {
  std::ostringstream out;
  for (const auto& [label, pattern] :
       std::vector<std::pair<std::string, std::string>>{
           {"node power [W]", "rack*/node*/power"},
           {"CPU temp [C]", "rack*/node*/cpu_temp"},
           {"CPU util", "rack*/node*/cpu_util"}}) {
    TextTable table({"rack", "q10", "q25", "median", "q75", "q90", "max"});
    table.set_title("SYSTEM: " + label);
    for (std::size_t c = 1; c <= 6; ++c) table.set_align(c, Align::kRight);
    for (const auto& s : quantile_transport(store, pattern, from, to, 1)) {
      table.add_row({s.group, format_double(s.q10, 1), format_double(s.q25, 1),
                     format_double(s.q50, 1), format_double(s.q75, 1),
                     format_double(s.q90, 1), format_double(s.max, 1)});
    }
    out << table.render() << "\n";
  }
  return out.str();
}

std::string scheduler_dashboard(const telemetry::TimeSeriesStore& store,
                                std::span<const sim::JobRecord> completed,
                                TimePoint from, TimePoint to) {
  TextTable table({"metric", "value"});
  table.set_title("SCHEDULER DASHBOARD");
  table.add_row({"queue length [trend]",
                 series_cell(store, "scheduler/queue_length", from, to, 0)});
  table.add_row({"utilization [trend]",
                 series_cell(store, "scheduler/utilization", from, to, 2)});
  table.add_row({"running jobs [trend]",
                 series_cell(store, "scheduler/running_jobs", from, to, 0)});

  const SlowdownReport sd = compute_slowdown(completed);
  std::size_t finished = 0, killed = 0, oom = 0;
  for (const auto& r : completed) {
    switch (r.outcome) {
      case sim::JobOutcome::kFinished: ++finished; break;
      case sim::JobOutcome::kKilledWalltime: ++killed; break;
      case sim::JobOutcome::kFailedOom: ++oom; break;
    }
  }
  table.add_separator();
  table.add_row({"completed jobs", std::to_string(completed.size())});
  table.add_row({"finished / walltime-killed / OOM",
                 std::to_string(finished) + " / " + std::to_string(killed) +
                     " / " + std::to_string(oom)});
  table.add_row({"mean slowdown", format_double(sd.mean_slowdown, 2)});
  table.add_row({"mean bounded slowdown", format_double(sd.mean_bounded_slowdown, 2)});
  table.add_row({"median wait", format_duration(static_cast<Duration>(sd.median_wait_s))});
  table.add_row({"p95 wait", format_duration(static_cast<Duration>(sd.p95_wait_s))});
  return table.render();
}

std::string job_dashboard(std::span<const sim::JobRecord> completed,
                          std::size_t max_rows) {
  TextTable table({"job", "user", "class", "nodes", "wait", "runtime",
                   "req walltime", "energy [kWh]", "outcome"});
  table.set_title("JOB DASHBOARD (most recent jobs)");
  table.set_align(3, Align::kRight);
  table.set_align(7, Align::kRight);
  const std::size_t start =
      completed.size() > max_rows ? completed.size() - max_rows : 0;
  for (std::size_t i = start; i < completed.size(); ++i) {
    const auto& r = completed[i];
    const char* outcome = r.outcome == sim::JobOutcome::kFinished ? "ok"
                          : r.outcome == sim::JobOutcome::kKilledWalltime
                              ? "walltime"
                              : "oom";
    table.add_row({std::to_string(r.spec.id), r.spec.user,
                   sim::job_class_name(r.spec.job_class),
                   std::to_string(r.spec.nodes_requested),
                   format_duration(r.wait_time()), format_duration(r.run_time()),
                   format_duration(r.spec.walltime_requested),
                   format_double(r.energy_j / units::kJoulesPerKilowattHour, 2),
                   outcome});
  }
  return table.render();
}

std::string alert_dashboard(const telemetry::AlertEngine& alerts) {
  TextTable table({"rule", "sensor", "severity", "raised", "value"});
  table.set_title("ACTIVE ALERTS");
  for (const auto& a : alerts.active()) {
    table.add_row({a.rule, a.sensor, telemetry::alert_severity_name(a.severity),
                   format_time(a.raised_at), format_double(a.value, 2)});
  }
  if (table.row_count() == 0) table.add_row({"(none)", "", "", "", ""});
  return table.render();
}

}  // namespace oda::analytics
