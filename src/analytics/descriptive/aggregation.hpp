// Descriptive aggregation pipelines: PerSyst-style [6] quantile transport
// (summarize thousands of node sensors into per-group quantile vectors) and
// IQR-based outlier removal — the "no complex knowledge extraction" data
// conditioning the descriptive row of the framework allows.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "telemetry/store.hpp"

namespace oda::telemetry {
class SensorHealthTracker;
}  // namespace oda::telemetry

namespace oda::analytics {

/// Quantile summary of one sensor group over an interval.
struct QuantileSummary {
  std::string group;
  std::size_t sensors = 0;
  std::size_t samples = 0;
  double q10 = 0.0, q25 = 0.0, q50 = 0.0, q75 = 0.0, q90 = 0.0;
  double min = 0.0, max = 0.0, mean = 0.0;
  /// Quality overlay (docs/RESILIENCE.md): sensors skipped because the
  /// health tracker quarantined them, and the usable fraction. Without a
  /// tracker: skipped == 0 and coverage == 1 (results unchanged).
  std::size_t skipped = 0;
  double coverage = 1.0;
};

/// Groups sensors by a path prefix of `depth` components ("rack00/node01/x"
/// at depth 1 groups by rack) and summarizes each group's pooled samples.
/// When `health` is given, quarantined series are excluded from the pooled
/// statistics and reported through skipped/coverage instead of silently
/// poisoning the quantiles; a null tracker is a strict no-op overlay.
std::vector<QuantileSummary> quantile_transport(
    const telemetry::TimeSeriesStore& store, const std::string& sensor_pattern,
    TimePoint from, TimePoint to, std::size_t group_depth,
    const telemetry::SensorHealthTracker* health = nullptr);

/// Removes IQR outliers: values outside [q1 - k*IQR, q3 + k*IQR].
std::vector<double> remove_outliers_iqr(const std::vector<double>& values,
                                        double k = 1.5);

/// Per-sensor health snapshot used by dashboards: latest value plus how it
/// compares to the interval's distribution.
struct SensorSnapshot {
  std::string path;
  double latest = 0.0;
  double mean = 0.0;
  double p95 = 0.0;
  double zscore = 0.0;  // latest vs interval distribution
};
/// Quarantined sensors are omitted when `health` is given (strict overlay:
/// null tracker == previous behaviour).
std::vector<SensorSnapshot> snapshot_sensors(
    const telemetry::TimeSeriesStore& store, const std::string& pattern,
    TimePoint from, TimePoint to,
    const telemetry::SensorHealthTracker* health = nullptr);

}  // namespace oda::analytics
