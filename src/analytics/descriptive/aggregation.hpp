// Descriptive aggregation pipelines: PerSyst-style [6] quantile transport
// (summarize thousands of node sensors into per-group quantile vectors) and
// IQR-based outlier removal — the "no complex knowledge extraction" data
// conditioning the descriptive row of the framework allows.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "telemetry/store.hpp"

namespace oda::analytics {

/// Quantile summary of one sensor group over an interval.
struct QuantileSummary {
  std::string group;
  std::size_t sensors = 0;
  std::size_t samples = 0;
  double q10 = 0.0, q25 = 0.0, q50 = 0.0, q75 = 0.0, q90 = 0.0;
  double min = 0.0, max = 0.0, mean = 0.0;
};

/// Groups sensors by a path prefix of `depth` components ("rack00/node01/x"
/// at depth 1 groups by rack) and summarizes each group's pooled samples.
std::vector<QuantileSummary> quantile_transport(
    const telemetry::TimeSeriesStore& store, const std::string& sensor_pattern,
    TimePoint from, TimePoint to, std::size_t group_depth);

/// Removes IQR outliers: values outside [q1 - k*IQR, q3 + k*IQR].
std::vector<double> remove_outliers_iqr(const std::vector<double>& values,
                                        double k = 1.5);

/// Per-sensor health snapshot used by dashboards: latest value plus how it
/// compares to the interval's distribution.
struct SensorSnapshot {
  std::string path;
  double latest = 0.0;
  double mean = 0.0;
  double p95 = 0.0;
  double zscore = 0.0;  // latest vs interval distribution
};
std::vector<SensorSnapshot> snapshot_sensors(
    const telemetry::TimeSeriesStore& store, const std::string& pattern,
    TimePoint from, TimePoint to);

}  // namespace oda::analytics
