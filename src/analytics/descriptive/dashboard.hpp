// Text dashboards — the visualization endpoints of the descriptive row
// (ClusterCockpit [5] / NERSC OMNI [7] / Grafana-style [61] views rendered
// as terminal tables): facility, system, scheduler, and per-job dashboards,
// plus ASCII sparklines for inline trend display.
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/store.hpp"

namespace oda::analytics {

/// Renders values as a fixed-height ASCII sparkline (" .:-=+*#%@").
std::string sparkline(std::span<const double> values, std::size_t width = 40);

/// Facility dashboard: PUE, power breakdown, cooling state, weather.
std::string facility_dashboard(const telemetry::TimeSeriesStore& store,
                               TimePoint from, TimePoint to);

/// System-hardware dashboard: per-rack quantile transport of power/temps.
std::string system_dashboard(const telemetry::TimeSeriesStore& store,
                             TimePoint from, TimePoint to);

/// Scheduler dashboard: queue/utilization trends + job outcome counts.
std::string scheduler_dashboard(const telemetry::TimeSeriesStore& store,
                                std::span<const sim::JobRecord> completed,
                                TimePoint from, TimePoint to);

/// Per-job dashboard: one row per completed job with runtime/wait/energy.
std::string job_dashboard(std::span<const sim::JobRecord> completed,
                          std::size_t max_rows = 20);

/// Active-alert table.
std::string alert_dashboard(const telemetry::AlertEngine& alerts);

}  // namespace oda::analytics
