#include "telemetry/health.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/string_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oda::telemetry {

const char* sensor_state_name(SensorState s) {
  switch (s) {
    case SensorState::kHealthy: return "healthy";
    case SensorState::kFlaky: return "flaky";
    case SensorState::kQuarantined: return "quarantined";
  }
  return "?";
}

const char* read_outcome_name(ReadOutcome o) {
  switch (o) {
    case ReadOutcome::kOk: return "ok";
    case ReadOutcome::kDropout: return "dropout";
    case ReadOutcome::kDeadline: return "deadline";
    case ReadOutcome::kBreakerOpen: return "breaker_open";
  }
  return "?";
}

SensorHealthTracker::SensorHealthTracker(HealthPolicy policy, MessageBus* bus)
    : policy_(policy), bus_(bus) {
  policy_.window = std::min<std::size_t>(policy_.window, 64);
  auto& registry = obs::MetricsRegistry::global();
  for (int s = 0; s < 3; ++s) {
    const char* name = sensor_state_name(static_cast<SensorState>(s));
    transition_counters_[s] = &registry.counter(
        "oda_health_transitions_total",
        "Sensor-health state transitions by destination state",
        {{"to", name}});
    state_gauges_[s] = &registry.gauge(
        "oda_health_sensors", "Tracked sensors per health state",
        {{"state", name}});
  }
}

void SensorHealthTracker::set_range(const std::string& pattern, double lo,
                                    double hi) {
  MutexLock lock(mu_);
  ranges_.push_back({pattern, lo, hi});
  // Ranges registered after a series was first seen should still apply.
  for (auto& [id, s] : series_) s.range_resolved = false;
}

SensorHealthTracker::SeriesHealth& SensorHealthTracker::series_locked(
    SeriesId id, const std::string& path) {
  SeriesHealth& s = series_[id.value];
  if (s.path.empty()) s.path = path;
  if (!s.range_resolved) {
    s.range_resolved = true;
    s.has_range = false;
    for (const auto& rule : ranges_) {
      if (glob_match(rule.pattern, s.path)) {
        s.has_range = true;
        s.range_lo = rule.lo;
        s.range_hi = rule.hi;
        break;
      }
    }
  }
  return s;
}

void SensorHealthTracker::push_outcome_locked(SeriesHealth& s, bool failure) {
  const std::size_t w = policy_.window;
  if (s.window_fill == w) {
    // Drop the oldest outcome (bit w-1).
    const std::uint64_t oldest = (s.window_bits >> (w - 1)) & 1ULL;
    s.window_failures -= static_cast<std::size_t>(oldest);
  } else {
    ++s.window_fill;
  }
  s.window_bits = (s.window_bits << 1) | (failure ? 1ULL : 0ULL);
  if (w < 64) s.window_bits &= (1ULL << w) - 1ULL;
  if (failure) ++s.window_failures;
}

double SensorHealthTracker::failure_rate_locked(const SeriesHealth& s) const {
  if (s.window_fill == 0) return 0.0;
  return static_cast<double>(s.window_failures) /
         static_cast<double>(s.window_fill);
}

void SensorHealthTracker::record_success(SeriesId id, const std::string& path,
                                         TimePoint now, double value) {
  std::vector<Reading> pending;
  {
    MutexLock lock(mu_);
    SeriesHealth& s = series_locked(id, path);
    push_outcome_locked(s, /*failure=*/false);
    s.last_success = now;

    const bool in_range =
        !s.has_range || (value >= s.range_lo && value <= s.range_hi);
    if (in_range) {
      s.oor_run = 0;
    } else {
      ++s.oor_run;
    }

    if (s.has_value) {
      if (value == s.last_value) {
        ++s.flat_run;
      } else {
        s.has_varied = true;
        s.flat_run = 0;
      }
    }
    s.last_value = value;
    s.has_value = true;

    const bool flat_suspect = policy_.flatline_run > 0 && s.has_varied &&
                              s.flat_run >= policy_.flatline_run;
    if (in_range && !flat_suspect) {
      ++s.clean_run;
    } else {
      s.clean_run = 0;
    }

    reevaluate_locked(s, now);
    pending.swap(pending_publish_);
  }
  flush_publishes(pending);
}

void SensorHealthTracker::record_failure(SeriesId id, const std::string& path,
                                         TimePoint now, ReadOutcome reason) {
  (void)reason;  // per-reason accounting lives in the collector's metrics
  std::vector<Reading> pending;
  {
    MutexLock lock(mu_);
    SeriesHealth& s = series_locked(id, path);
    push_outcome_locked(s, /*failure=*/true);
    s.clean_run = 0;
    reevaluate_locked(s, now);
    pending.swap(pending_publish_);
  }
  flush_publishes(pending);
}

void SensorHealthTracker::reevaluate_locked(SeriesHealth& s, TimePoint now) {
  const double rate = failure_rate_locked(s);
  const bool rates_trusted = s.window_fill >= policy_.min_observations;
  const bool flat_quarantine = policy_.flatline_run > 0 && s.has_varied &&
                               s.flat_run >= policy_.flatline_run;
  const bool oor_quarantine =
      policy_.out_of_range_run > 0 && s.oor_run >= policy_.out_of_range_run;
  const bool stale =
      policy_.staleness > 0 && s.last_success != kTimeMin &&
      now - s.last_success > policy_.staleness;

  if (s.state == SensorState::kQuarantined) {
    // Leave quarantine only on sustained clean evidence; reset the outcome
    // window so the old failure burst cannot immediately re-quarantine.
    if (s.clean_run >= policy_.recovery_successes && !flat_quarantine &&
        !oor_quarantine && !stale) {
      s.window_bits = 0;
      s.window_fill = 0;
      s.window_failures = 0;
      transition_locked(s, SensorState::kHealthy, now);
    }
    return;
  }

  if ((rates_trusted && rate >= policy_.quarantine_failure_rate) ||
      flat_quarantine || oor_quarantine || stale) {
    transition_locked(s, SensorState::kQuarantined, now);
    return;
  }

  const bool flaky_evidence =
      (rates_trusted && rate >= policy_.flaky_failure_rate) || s.oor_run > 0;
  if (s.state == SensorState::kHealthy) {
    if (flaky_evidence) transition_locked(s, SensorState::kFlaky, now);
  } else if (s.state == SensorState::kFlaky) {
    if (!flaky_evidence && s.clean_run >= policy_.recovery_successes) {
      transition_locked(s, SensorState::kHealthy, now);
    }
  }
}

void SensorHealthTracker::transition_locked(SeriesHealth& s, SensorState to,
                                            TimePoint now) {
  if (s.state == to) return;
  const SensorState from = s.state;
  s.state = to;
  ++transitions_;
  transition_counters_[static_cast<int>(to)]->inc();
  update_gauges_locked();
  if (to == SensorState::kQuarantined) {
    // Instant under whichever span noticed the evidence (collector pass or
    // direct record_* caller) — quarantine onset lands in the causal trace.
    ODA_TRACE_INSTANT_CAT("health.quarantine", "telemetry");
    ODA_LOG_WARN << "sensor quarantined: " << s.path << " (was "
                 << sensor_state_name(from) << ")";
  } else if (from == SensorState::kQuarantined) {
    ODA_TRACE_INSTANT_CAT("health.recover", "telemetry");
    ODA_LOG_INFO << "sensor recovered from quarantine: " << s.path;
  }
  if (bus_ != nullptr &&
      (to == SensorState::kQuarantined || from == SensorState::kQuarantined)) {
    // Queued, not published: bus_->publish() under mu_ would invert the
    // bus -> health lock order, and a subscriber querying this tracker from
    // its callback would self-deadlock on the non-recursive mutex. The
    // public entry points drain the queue once mu_ is released.
    pending_publish_.push_back(
        Reading{"_health/" + s.path,
                {now, static_cast<double>(static_cast<int>(to))}});
  }
}

void SensorHealthTracker::flush_publishes(std::vector<Reading>& pending) {
  for (const Reading& r : pending) bus_->publish(r);
  pending.clear();
}

void SensorHealthTracker::update_gauges_locked() {
  std::size_t by_state[3] = {0, 0, 0};
  for (const auto& [id, s] : series_) {
    ++by_state[static_cast<int>(s.state)];
  }
  for (int i = 0; i < 3; ++i) {
    state_gauges_[i]->set(static_cast<double>(by_state[i]));
  }
}

void SensorHealthTracker::step(TimePoint now) {
  if (policy_.staleness <= 0) return;
  std::vector<Reading> pending;
  {
    MutexLock lock(mu_);
    for (auto& [id, s] : series_) {
      if (s.state != SensorState::kQuarantined && s.last_success != kTimeMin &&
          now - s.last_success > policy_.staleness) {
        transition_locked(s, SensorState::kQuarantined, now);
      }
    }
    pending.swap(pending_publish_);
  }
  flush_publishes(pending);
}

SensorState SensorHealthTracker::state(SeriesId id) const {
  MutexLock lock(mu_);
  const auto it = series_.find(id.value);
  return it == series_.end() ? SensorState::kHealthy : it->second.state;
}

SensorState SensorHealthTracker::state(const std::string& path) const {
  const auto id = SeriesInterner::global().lookup(path);
  if (!id.has_value()) return SensorState::kHealthy;
  return state(*id);
}

bool SensorHealthTracker::usable(SeriesId id) const {
  return state(id) != SensorState::kQuarantined;
}

bool SensorHealthTracker::usable(const std::string& path) const {
  return state(path) != SensorState::kQuarantined;
}

std::vector<std::string> SensorHealthTracker::quarantined() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [id, s] : series_) {
    if (s.state == SensorState::kQuarantined) out.push_back(s.path);
  }
  std::sort(out.begin(), out.end());
  return out;
}

SensorHealthTracker::Counts SensorHealthTracker::counts() const {
  MutexLock lock(mu_);
  Counts c;
  for (const auto& [id, s] : series_) {
    switch (s.state) {
      case SensorState::kHealthy: ++c.healthy; break;
      case SensorState::kFlaky: ++c.flaky; break;
      case SensorState::kQuarantined: ++c.quarantined; break;
    }
  }
  c.tracked = series_.size();
  return c;
}

std::uint64_t SensorHealthTracker::transitions() const {
  MutexLock lock(mu_);
  return transitions_;
}

}  // namespace oda::telemetry
