// Telemetry primitives: a timestamped reading and the catalog describing
// the sensors a monitoring deployment knows about.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace oda::telemetry {

struct Sample {
  TimePoint time = 0;
  double value = 0.0;
};

struct Reading {
  std::string path;
  Sample sample;
};

struct SensorInfo {
  std::string path;
  std::string unit;
};

/// Registry of known sensors, queryable by glob pattern.
class SensorCatalog {
 public:
  void add(SensorInfo info);
  bool contains(const std::string& path) const;
  std::optional<SensorInfo> find(const std::string& path) const;
  /// Paths matching a glob pattern ('*' and '?'), in insertion order.
  std::vector<std::string> match(const std::string& pattern) const;
  std::size_t size() const { return order_.size(); }
  const std::vector<std::string>& paths() const { return order_; }

 private:
  std::map<std::string, SensorInfo> sensors_;
  std::vector<std::string> order_;
};

}  // namespace oda::telemetry
