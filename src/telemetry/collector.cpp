#include "telemetry/collector.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <tuple>

#include "common/log.hpp"
#include "common/string_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oda::telemetry {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

double retry_backoff_s(const RetryPolicy& policy, int retry_index, Rng& rng) {
  double backoff = policy.base_backoff_s;
  for (int i = 0; i < retry_index; ++i) backoff *= policy.backoff_multiplier;
  if (policy.jitter_fraction > 0.0) {
    backoff *= 1.0 + policy.jitter_fraction * rng.uniform(-1.0, 1.0);
  }
  return backoff;
}

Collector::Collector(sim::ClusterSimulation& cluster, TimeSeriesStore* store,
                     MessageBus* bus, ThreadPool* pool)
    : cluster_(cluster),
      store_(store),
      bus_(bus),
      pool_(pool),
      overlay_rng_(cluster.params().seed ^ 0x0DAC0113C708ULL),
      serial_backoff_rng_(cluster.params().seed ^ 0x0DABACC0FFULL) {
  for (const auto& s : cluster.sensors()) {
    catalog_.add({s.path, s.unit});
  }
  auto& registry = obs::MetricsRegistry::global();
  for (int s = 0; s < 3; ++s) {
    breaker_transitions_[s] = &registry.counter(
        "oda_collector_breaker_transitions_total",
        "Circuit-breaker state transitions by destination state",
        {{"to", breaker_state_name(static_cast<BreakerState>(s))}});
  }
  open_breakers_gauge_ = &registry.gauge(
      "oda_collector_breakers_open", "Sensors whose circuit breaker is open");
  empty_groups_gauge_ = &registry.gauge(
      "oda_collector_empty_groups",
      "Sampling groups whose glob pattern matched zero sensors");
}

std::size_t Collector::add_group(CollectorGroup group) {
  Group g;
  g.def = std::move(group);
  g.sensor_paths = catalog_.match(g.def.pattern);
  g.sensor_ids.reserve(g.sensor_paths.size());
  for (const auto& path : g.sensor_paths) {
    const SeriesId id = SeriesInterner::global().intern(path);
    g.sensor_ids.push_back(id);
    // piecewise: Breaker holds an atomic, so it is neither copyable nor
    // movable — construct it in place.
    breakers_.emplace(std::piecewise_construct,
                      std::forward_as_tuple(id.value), std::forward_as_tuple());
  }
  auto& registry = obs::MetricsRegistry::global();
  g.samples = &registry.counter("oda_collector_samples_total",
                                "Samples collected per sampling group",
                                {{"group", g.def.name}});
  g.retries = &registry.counter("oda_collector_read_retries_total",
                                "Read retry attempts per sampling group",
                                {{"group", g.def.name}});
  static constexpr ReadOutcome kGapReasons[3] = {
      ReadOutcome::kDropout, ReadOutcome::kDeadline, ReadOutcome::kBreakerOpen};
  for (int i = 0; i < 3; ++i) {
    g.gaps[i] = &registry.counter(
        "oda_collector_gaps_total",
        "Samples lost to failed or skipped reads, by reason",
        {{"group", g.def.name}, {"reason", read_outcome_name(kGapReasons[i])}});
  }
  const std::size_t matched = g.sensor_paths.size();
  if (matched == 0) {
    ODA_LOG_WARN << "collector group '" << g.def.name << "' pattern '"
                 << g.def.pattern << "' matched no sensors";
    ++empty_groups_;
    empty_groups_gauge_->set(static_cast<double>(empty_groups_));
  }
  groups_.push_back(std::move(g));
  return matched;
}

std::size_t Collector::add_all_sensors(Duration period) {
  return add_group({"all", "*", period});
}

void Collector::transition_breaker(Breaker& breaker, BreakerState to,
                                   TimePoint now) {
  // relaxed (all breaker.state accesses in this file): one pass-thread owns
  // each breaker's mutations (see the Breaker declaration); the atomic only
  // keeps cross-thread breaker_state() observers tear-free, and a late-
  // observed state there is harmless.
  const BreakerState from = breaker.state.load(std::memory_order_relaxed);
  if (from == to) return;
  if (to == BreakerState::kOpen) {
    breaker.opened_at = now;
    breaker.probe_successes = 0;
    // relaxed: statistics gauge (see open_breakers()).
    open_breakers_.fetch_add(1, std::memory_order_relaxed);
  } else if (from == BreakerState::kOpen) {
    // relaxed: statistics gauge (see open_breakers()).
    open_breakers_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (to == BreakerState::kClosed) {
    breaker.consecutive_failures = 0;
    breaker.probe_successes = 0;
  }
  // relaxed: see above — single mutating thread per breaker.
  breaker.state.store(to, std::memory_order_relaxed);
  breaker_transitions_[static_cast<int>(to)]->inc();
  // Zero-duration marks inside the owning read span: breaker state flips
  // show up exactly where they happened in the causal trace.
  switch (to) {
    case BreakerState::kOpen:
      ODA_TRACE_INSTANT_CAT("collector.breaker_open", "collector");
      break;
    case BreakerState::kHalfOpen:
      ODA_TRACE_INSTANT_CAT("collector.breaker_half_open", "collector");
      break;
    case BreakerState::kClosed:
      ODA_TRACE_INSTANT_CAT("collector.breaker_close", "collector");
      break;
  }
}

void Collector::on_read_success(Breaker& breaker, TimePoint now) {
  // relaxed: see transition_breaker — single mutating thread per breaker.
  if (breaker.state.load(std::memory_order_relaxed) ==
      BreakerState::kHalfOpen) {
    ++breaker.probe_successes;
    if (breaker.probe_successes >= breaker_.half_open_successes) {
      transition_breaker(breaker, BreakerState::kClosed, now);
    }
  } else {
    breaker.consecutive_failures = 0;
  }
}

void Collector::on_read_failure(Breaker& breaker, TimePoint now) {
  // relaxed: see transition_breaker — single mutating thread per breaker.
  if (breaker.state.load(std::memory_order_relaxed) ==
      BreakerState::kHalfOpen) {
    // A failed probe re-opens immediately and restarts the cooldown.
    transition_breaker(breaker, BreakerState::kOpen, now);
    return;
  }
  ++breaker.consecutive_failures;
  // relaxed: see transition_breaker — single mutating thread per breaker.
  if (breaker.state.load(std::memory_order_relaxed) ==
          BreakerState::kClosed &&
      breaker.consecutive_failures >= breaker_.failure_threshold) {
    transition_breaker(breaker, BreakerState::kOpen, now);
  }
}

Collector::SlotResult Collector::attempt_read(const std::string& path,
                                              SeriesId id, TimePoint now,
                                              Rng* value_rng, Rng& aux_rng) {
  ODA_TRACE_SPAN_CAT("collector.read_sensor", "collector");
  SlotResult slot;
  Breaker& breaker = breakers_.find(id.value)->second;

  // relaxed: see transition_breaker — single mutating thread per breaker.
  if (breaker.state.load(std::memory_order_relaxed) == BreakerState::kOpen) {
    if (now - breaker.opened_at < breaker_.open_cooldown) {
      ODA_TRACE_INSTANT_CAT("collector.breaker_skip", "collector");
      slot.outcome = ReadOutcome::kBreakerOpen;
      return slot;
    }
    transition_breaker(breaker, BreakerState::kHalfOpen, now);
  }

  double cost_s = 0.0;
  for (int attempt = 0;; ++attempt) {
    const sim::SensorReadResult r = value_rng != nullptr
                                        ? cluster_.try_read_sensor(path, *value_rng)
                                        : cluster_.try_read_sensor(path);
    cost_s += r.latency_s;
    if (cost_s > retry_.read_deadline_s) {
      // The attempt chain blew its latency budget: give up now, whatever
      // the attempt returned — the collector never blocks past the
      // deadline on a stalled sensor.
      slot.outcome = ReadOutcome::kDeadline;
      break;
    }
    if (r.ok) {
      slot.value = r.value;
      slot.outcome = ReadOutcome::kOk;
      on_read_success(breaker, now);
      return slot;
    }
    slot.outcome = ReadOutcome::kDropout;
    // relaxed: see transition_breaker — single mutating thread per breaker.
    if (breaker.state.load(std::memory_order_relaxed) ==
        BreakerState::kHalfOpen) {
      break;  // failed probe
    }
    if (attempt + 1 >= retry_.max_attempts) break;
    cost_s += retry_backoff_s(retry_, attempt, aux_rng);
    if (cost_s > retry_.read_deadline_s) {
      slot.outcome = ReadOutcome::kDeadline;
      break;
    }
    ++slot.retries;
    ODA_TRACE_INSTANT_CAT("collector.retry", "collector");
  }
  on_read_failure(breaker, now);
  return slot;
}

void Collector::read_group(const Group& group, TimePoint now,
                           std::vector<SlotResult>& slots) {
  // Child of the collect() pass root; chunk spans below nest under this one
  // across the pool boundary via the context captured by submit().
  ODA_TRACE_SPAN_CAT("collector.read_group", "collector");
  const std::size_t n = group.sensor_paths.size();
  if (pool_ != nullptr && n >= 64) {
    // Genuinely parallel reads: overlay_rng_ advances exactly once per
    // group (serially, here), and each chunk derives its own stream from
    // that draw keyed by its first index — deterministic no matter which
    // thread claims the chunk, and no shared generator state is touched
    // inside the fan-out. No lock serializes the fault overlay. Reads are
    // const over a quiescent simulator (collect() runs between step()s);
    // the lazily captured stuck-fault state is locked inside
    // FaultInjector, and each sensor's breaker entry belongs to exactly
    // one chunk. Per-read overlay ordering is not promised, so the stream
    // reshuffle is fine. parallel_for_chunks claims chunks from a shared
    // cursor — helpers plus this thread — so a slow sensor (retry backoff
    // ladder) no longer holds the whole statically-assigned chunk
    // schedule hostage.
    const std::uint64_t overlay_draw = overlay_rng_.next();
    pool_->parallel_for_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
      ODA_TRACE_SPAN_CAT("collector.read_chunk", "collector");
      auto rng = Rng::from_draw(overlay_draw, lo);
      for (std::size_t i = lo; i < hi; ++i) {
        slots[i] = attempt_read(group.sensor_paths[i], group.sensor_ids[i],
                                now, &rng, rng);
      }
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      slots[i] = attempt_read(group.sensor_paths[i], group.sensor_ids[i], now,
                              nullptr, serial_backoff_rng_);
    }
  }
}

void Collector::collect() {
  ODA_TRACE_SPAN_CAT("collector.collect", "collector");
  static obs::Histogram& pass_seconds = obs::MetricsRegistry::global().histogram(
      "oda_collector_pass_seconds", "Duration of one collect() pass");
  const auto pass_start = std::chrono::steady_clock::now();

  const TimePoint now = cluster_.now();
  std::vector<IdReading> readings;
  for (const auto& group : groups_) {
    if (group.def.period <= 0 || now % group.def.period != 0) continue;

    const std::size_t n = group.sensor_ids.size();
    std::vector<SlotResult> slots(n);
    read_group(group, now, slots);

    // Serial post-pass: compact successful reads into one batch, account
    // every gap, and feed the health tracker. Exact conservation:
    // n == ingested + gaps for every due group pass.
    readings.clear();
    readings.reserve(n);
    std::uint64_t pass_retries = 0;
    std::uint64_t gap_counts[3] = {0, 0, 0};
    for (std::size_t i = 0; i < n; ++i) {
      const SlotResult& slot = slots[i];
      pass_retries += slot.retries;
      if (slot.outcome == ReadOutcome::kOk) {
        readings.push_back(IdReading{group.sensor_ids[i], {now, slot.value}});
        if (health_ != nullptr) {
          health_->record_success(group.sensor_ids[i], group.sensor_paths[i],
                                  now, slot.value);
        }
      } else {
        ++gap_counts[static_cast<int>(slot.outcome) - 1];
        if (health_ != nullptr) {
          health_->record_failure(group.sensor_ids[i], group.sensor_paths[i],
                                  now, slot.outcome);
        }
      }
    }

    // One batch insert per group: the store groups by shard and takes each
    // shard lock once, instead of one map lookup + lock per sample.
    if (store_ != nullptr && !readings.empty()) store_->insert_batch(readings);
    if (bus_ != nullptr) {
      for (const auto& r : readings) {
        bus_->publish(
            Reading{SeriesInterner::global().path(r.id), r.sample});
      }
    }

    const std::uint64_t gaps = gap_counts[0] + gap_counts[1] + gap_counts[2];
    // relaxed (all counters below): monotonic statistics (see accessors).
    samples_expected_.fetch_add(n, std::memory_order_relaxed);
    samples_collected_.fetch_add(readings.size(), std::memory_order_relaxed);
    gaps_total_.fetch_add(gaps, std::memory_order_relaxed);
    retries_total_.fetch_add(pass_retries, std::memory_order_relaxed);
    group.samples->inc(readings.size());
    if (pass_retries > 0) group.retries->inc(pass_retries);
    for (int i = 0; i < 3; ++i) {
      if (gap_counts[i] > 0) group.gaps[i]->inc(gap_counts[i]);
    }
  }
  open_breakers_gauge_->set(static_cast<double>(open_breakers()));
  if (health_ != nullptr) health_->step(now);

  pass_seconds.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pass_start)
          .count());
}

BreakerState Collector::breaker_state(const std::string& path) const {
  const auto id = SeriesInterner::global().lookup(path);
  if (!id.has_value()) return BreakerState::kClosed;
  const auto it = breakers_.find(id->value);
  if (it == breakers_.end()) return BreakerState::kClosed;
  // relaxed: tear-free observation of a state another thread may be
  // transitioning mid-pass; any recent value is an acceptable answer.
  return it->second.state.load(std::memory_order_relaxed);
}

}  // namespace oda::telemetry
