#include "telemetry/collector.hpp"

#include <chrono>
#include <mutex>

#include "common/string_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oda::telemetry {

Collector::Collector(sim::ClusterSimulation& cluster, TimeSeriesStore* store,
                     MessageBus* bus, ThreadPool* pool)
    : cluster_(cluster), store_(store), bus_(bus), pool_(pool) {
  for (const auto& s : cluster.sensors()) {
    catalog_.add({s.path, s.unit});
  }
}

std::size_t Collector::add_group(CollectorGroup group) {
  Group g;
  g.def = std::move(group);
  g.sensor_paths = catalog_.match(g.def.pattern);
  g.samples = &obs::MetricsRegistry::global().counter(
      "oda_collector_samples_total", "Samples collected per sampling group",
      {{"group", g.def.name}});
  const std::size_t matched = g.sensor_paths.size();
  groups_.push_back(std::move(g));
  return matched;
}

std::size_t Collector::add_all_sensors(Duration period) {
  return add_group({"all", "*", period});
}

void Collector::collect() {
  ODA_TRACE_SPAN_CAT("collector.collect", "collector");
  static obs::Histogram& pass_seconds = obs::MetricsRegistry::global().histogram(
      "oda_collector_pass_seconds", "Duration of one collect() pass");
  const auto pass_start = std::chrono::steady_clock::now();

  const TimePoint now = cluster_.now();
  for (const auto& group : groups_) {
    if (group.def.period <= 0 || now % group.def.period != 0) continue;

    std::vector<Reading> readings(group.sensor_paths.size());
    if (pool_ != nullptr && group.sensor_paths.size() >= 64) {
      // Note: ClusterSimulation::read_sensor applies the fault overlay with
      // its own RNG; parallel reads are safe because the overlay RNG is only
      // consulted for spike/noise faults, whose per-read ordering we do not
      // promise. Reads themselves are const over a quiescent simulator.
      std::mutex mu;  // guards the shared fault-overlay RNG inside cluster
      pool_->parallel_for(0, group.sensor_paths.size(), [&](std::size_t i) {
        const std::string& path = group.sensor_paths[i];
        double value;
        {
          std::lock_guard lock(mu);
          value = cluster_.read_sensor(path);
        }
        readings[i] = Reading{path, {now, value}};
      });
    } else {
      for (std::size_t i = 0; i < group.sensor_paths.size(); ++i) {
        const std::string& path = group.sensor_paths[i];
        readings[i] = Reading{path, {now, cluster_.read_sensor(path)}};
      }
    }

    for (const auto& r : readings) {
      if (store_ != nullptr) store_->insert(r);
      if (bus_ != nullptr) bus_->publish(r);
      // relaxed: monotonic statistics counter (see samples_collected()).
      samples_collected_.fetch_add(1, std::memory_order_relaxed);
    }
    group.samples->inc(readings.size());
  }

  pass_seconds.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pass_start)
          .count());
}

}  // namespace oda::telemetry
