#include "telemetry/collector.hpp"

#include <chrono>
#include <future>

#include "common/string_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oda::telemetry {

Collector::Collector(sim::ClusterSimulation& cluster, TimeSeriesStore* store,
                     MessageBus* bus, ThreadPool* pool)
    : cluster_(cluster),
      store_(store),
      bus_(bus),
      pool_(pool),
      overlay_rng_(cluster.params().seed ^ 0x0DAC0113C708ULL) {
  for (const auto& s : cluster.sensors()) {
    catalog_.add({s.path, s.unit});
  }
}

std::size_t Collector::add_group(CollectorGroup group) {
  Group g;
  g.def = std::move(group);
  g.sensor_paths = catalog_.match(g.def.pattern);
  g.sensor_ids.reserve(g.sensor_paths.size());
  for (const auto& path : g.sensor_paths) {
    g.sensor_ids.push_back(SeriesInterner::global().intern(path));
  }
  g.samples = &obs::MetricsRegistry::global().counter(
      "oda_collector_samples_total", "Samples collected per sampling group",
      {{"group", g.def.name}});
  const std::size_t matched = g.sensor_paths.size();
  groups_.push_back(std::move(g));
  return matched;
}

std::size_t Collector::add_all_sensors(Duration period) {
  return add_group({"all", "*", period});
}

void Collector::read_group(const Group& group, TimePoint now,
                           std::vector<IdReading>& readings) {
  const std::size_t n = group.sensor_paths.size();
  if (pool_ != nullptr && n >= 64) {
    // Genuinely parallel reads: each chunk owns a split of overlay_rng_, so
    // no lock serializes the fault overlay. Reads are const over a quiescent
    // simulator (collect() runs between step()s); the lazily captured
    // stuck-fault state is locked inside FaultInjector. Per-read overlay
    // ordering is not promised, so the stream reshuffle is fine.
    const std::size_t chunks = std::min(n, pool_->thread_count() * 4);
    const std::size_t chunk = (n + chunks - 1) / chunks;
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t lo = 0; lo < n; lo += chunk) {
      const std::size_t hi = std::min(lo + chunk, n);
      futures.push_back(pool_->submit(
          [this, &group, &readings, lo, hi, now,
           rng = overlay_rng_.split(lo)]() mutable {
            for (std::size_t i = lo; i < hi; ++i) {
              readings[i] = IdReading{
                  group.sensor_ids[i],
                  {now, cluster_.read_sensor(group.sensor_paths[i], rng)}};
            }
          }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      readings[i] = IdReading{
          group.sensor_ids[i],
          {now, cluster_.read_sensor(group.sensor_paths[i])}};
    }
  }
}

void Collector::collect() {
  ODA_TRACE_SPAN_CAT("collector.collect", "collector");
  static obs::Histogram& pass_seconds = obs::MetricsRegistry::global().histogram(
      "oda_collector_pass_seconds", "Duration of one collect() pass");
  const auto pass_start = std::chrono::steady_clock::now();

  const TimePoint now = cluster_.now();
  for (const auto& group : groups_) {
    if (group.def.period <= 0 || now % group.def.period != 0) continue;

    std::vector<IdReading> readings(group.sensor_ids.size());
    read_group(group, now, readings);

    // One batch insert per group: the store groups by shard and takes each
    // shard lock once, instead of one map lookup + lock per sample.
    if (store_ != nullptr) store_->insert_batch(readings);
    if (bus_ != nullptr) {
      for (std::size_t i = 0; i < readings.size(); ++i) {
        bus_->publish(Reading{group.sensor_paths[i], readings[i].sample});
      }
    }
    // relaxed: monotonic statistics counter (see samples_collected()).
    samples_collected_.fetch_add(readings.size(), std::memory_order_relaxed);
    group.samples->inc(readings.size());
  }

  pass_seconds.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pass_start)
          .count());
}

}  // namespace oda::telemetry
