#include "telemetry/series_id.hpp"

#include "common/error.hpp"

namespace oda::telemetry {

SeriesInterner& SeriesInterner::global() {
  static SeriesInterner interner;
  return interner;
}

SeriesId SeriesInterner::intern(const std::string& path) {
  {
    ReaderLock lock(mu_);
    const auto it = ids_.find(path);
    if (it != ids_.end()) return SeriesId{it->second};
  }
  WriterLock lock(mu_);
  const auto it = ids_.find(path);  // racing interner may have won
  if (it != ids_.end()) return SeriesId{it->second};
  ODA_REQUIRE(paths_.size() < SeriesId::kInvalid, "series interner exhausted");
  const auto id = static_cast<std::uint32_t>(paths_.size());
  paths_.push_back(path);
  ids_.emplace(path, id);
  return SeriesId{id};
}

std::optional<SeriesId> SeriesInterner::lookup(const std::string& path) const {
  ReaderLock lock(mu_);
  const auto it = ids_.find(path);
  if (it == ids_.end()) return std::nullopt;
  return SeriesId{it->second};
}

const std::string& SeriesInterner::path(SeriesId id) const {
  ReaderLock lock(mu_);
  ODA_REQUIRE(id.valid() && id.value < paths_.size(),
              "unknown series id: " + std::to_string(id.value));
  return paths_[id.value];
}

std::size_t SeriesInterner::size() const {
  ReaderLock lock(mu_);
  return paths_.size();
}

}  // namespace oda::telemetry
