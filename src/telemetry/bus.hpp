// Topic-based publish/subscribe message bus — the transport layer of the
// monitoring pipeline (the role MQTT plays in DCDB or AMQP in ExaMon).
// Subscriptions take glob patterns over sensor paths; publishing is
// thread-safe and delivers synchronously on the publisher's thread.
//
// Self-instrumentation: publish() feeds the global obs registry
// (oda_bus_publish_seconds, oda_bus_published_total, oda_bus_delivered_total,
// oda_bus_subscriber_deliveries_total{pattern=...}) and flags subscribers
// whose callback exceeds the slow threshold (oda_bus_slow_deliveries_total,
// plus a warn-once log line) — a synchronous bus is only as fast as its
// slowest subscriber.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "telemetry/sample.hpp"

namespace oda::obs {
class Counter;
}  // namespace oda::obs

namespace oda::telemetry {

/// Per-subscription delivery statistics snapshot (see subscriber_stats()).
struct SubscriberStats {
  std::string pattern;
  std::uint64_t deliveries = 0;
  std::uint64_t slow_deliveries = 0;
  double busy_seconds = 0.0;  // total wall time spent inside the callback
};

class MessageBus {
 public:
  using Callback = std::function<void(const Reading&)>;
  using SubscriptionId = std::uint64_t;

  /// Subscribes to all paths matching the glob pattern.
  SubscriptionId subscribe(std::string pattern, Callback callback)
      ODA_EXCLUDES(mu_);
  void unsubscribe(SubscriptionId id) ODA_EXCLUDES(mu_);

  /// Delivers the reading to every matching subscriber. Callbacks run
  /// outside the bus lock, so they may publish or (un)subscribe
  /// re-entrantly.
  void publish(const Reading& reading) ODA_EXCLUDES(mu_);
  void publish(const std::string& path, TimePoint time, double value)
      ODA_EXCLUDES(mu_);

  std::size_t subscriber_count() const ODA_EXCLUDES(mu_);
  // relaxed: published_/delivered_ are monotonic statistics counters; they
  // synchronize nothing and no other data is published through them.
  std::uint64_t published_count() const {
    return published_.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered_count() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  /// Publishes that matched zero subscribers — "data nobody consumed".
  /// Counted (oda_bus_unrouted_total) and warn-logged once per top-level
  /// path prefix, so chaos runs can tell silent drops from real gaps.
  std::uint64_t unrouted_count() const {
    // relaxed: monotonic statistics counter, like published_/delivered_.
    return unrouted_.load(std::memory_order_relaxed);
  }

  /// A delivery slower than this is counted as slow and warned about once
  /// per subscription. Default 1ms — generous for an in-process callback.
  void set_slow_threshold(double seconds) {
    // relaxed: an independent tuning knob; a late-observed change only
    // mis-classifies deliveries racing with the setter.
    slow_threshold_s_.store(seconds, std::memory_order_relaxed);
  }
  double slow_threshold() const {
    return slow_threshold_s_.load(std::memory_order_relaxed);
  }

  /// Per-subscription delivery statistics, in subscription order.
  std::vector<SubscriberStats> subscriber_stats() const ODA_EXCLUDES(mu_);

 private:
  /// Shared with in-flight publishes so neither unsubscribe() nor a
  /// subscribe() that reallocates subs_ invalidates the callback or stats a
  /// concurrent delivery is using. `pattern` and `callback` are immutable
  /// after construction; the counters are atomics.
  struct SubStats {
    std::string pattern;
    Callback callback;
    std::atomic<std::uint64_t> deliveries{0};
    std::atomic<std::uint64_t> slow{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<bool> warned{false};
    obs::Counter* per_pattern = nullptr;  // owned by the global registry
  };

  struct Subscription {
    SubscriptionId id;
    std::shared_ptr<SubStats> stats;
  };

  /// Outermost data-plane lock: publish() nests store/metrics/log work
  /// under the snapshot taken here (via subscribers), never the reverse.
  mutable Mutex mu_ ODA_ACQUIRED_AFTER(lock_order::bus)
      ODA_ACQUIRED_BEFORE(lock_order::health){LockRankId::kBus};
  std::vector<Subscription> subs_ ODA_GUARDED_BY(mu_);
  SubscriptionId next_id_ ODA_GUARDED_BY(mu_) = 1;
  /// Top-level path prefixes already warned about as unrouted (bounded by
  /// the number of distinct prefixes).
  std::vector<std::string> unrouted_warned_ ODA_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> unrouted_{0};
  std::atomic<double> slow_threshold_s_{1e-3};
};

}  // namespace oda::telemetry
