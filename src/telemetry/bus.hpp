// Topic-based publish/subscribe message bus — the transport layer of the
// monitoring pipeline (the role MQTT plays in DCDB or AMQP in ExaMon).
// Subscriptions take glob patterns over sensor paths; publishing is
// thread-safe and delivers synchronously on the publisher's thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/sample.hpp"

namespace oda::telemetry {

class MessageBus {
 public:
  using Callback = std::function<void(const Reading&)>;
  using SubscriptionId = std::uint64_t;

  /// Subscribes to all paths matching the glob pattern.
  SubscriptionId subscribe(std::string pattern, Callback callback);
  void unsubscribe(SubscriptionId id);

  /// Delivers the reading to every matching subscriber.
  void publish(const Reading& reading);
  void publish(const std::string& path, TimePoint time, double value);

  std::size_t subscriber_count() const;
  // relaxed: published_/delivered_ are monotonic statistics counters; they
  // synchronize nothing and no other data is published through them.
  std::uint64_t published_count() const {
    return published_.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered_count() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  struct Subscription {
    SubscriptionId id;
    std::string pattern;
    Callback callback;
  };

  mutable std::mutex mu_;
  std::vector<Subscription> subs_;
  SubscriptionId next_id_ = 1;
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> delivered_{0};
};

}  // namespace oda::telemetry
