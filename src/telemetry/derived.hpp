// Virtual sensors computed from stored series — the "operational derived
// metrics" of monitoring stacks (e.g. DCDB's virtual sensors): arithmetic
// over the latest values of input sensors, republished as first-class
// readings so downstream analytics need not special-case them.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "telemetry/sample.hpp"
#include "telemetry/series_id.hpp"
#include "telemetry/store.hpp"

namespace oda::telemetry {

class DerivedSensors {
 public:
  using Formula = std::function<double(const std::vector<double>&)>;

  explicit DerivedSensors(TimeSeriesStore& store) : store_(store) {}

  /// Registers `path` computed from the latest values of `inputs`. The
  /// formula receives input values in registration order.
  void define(std::string path, std::vector<std::string> inputs, Formula f);

  /// Common shorthands.
  void define_sum(const std::string& path, const std::string& input_pattern);
  void define_mean(const std::string& path, const std::string& input_pattern);
  void define_ratio(const std::string& path, const std::string& numerator,
                    const std::string& denominator);

  /// Evaluates every derived sensor at `now` and inserts into the store.
  /// Sensors whose inputs are missing are skipped.
  void evaluate(TimePoint now);

  std::vector<std::string> paths() const;

 private:
  struct Derived {
    std::string path;
    SeriesId id;                       // interned output handle
    std::vector<std::string> inputs;   // resolved sensor paths
    std::vector<SeriesId> input_ids;   // interned once at define()
    Formula formula;
  };

  TimeSeriesStore& store_;
  std::vector<Derived> derived_;
};

}  // namespace oda::telemetry
