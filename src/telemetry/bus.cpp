#include "telemetry/bus.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"
#include "common/string_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oda::telemetry {

namespace {

/// Process-wide bus metrics, registered once on first use. Counters
/// aggregate over every MessageBus instance (Prometheus semantics); the
/// per-instance published_count()/delivered_count() accessors remain exact
/// per bus.
struct BusMetrics {
  obs::Counter& published;
  obs::Counter& delivered;
  obs::Counter& slow;
  obs::Counter& unrouted;
  obs::Histogram& publish_seconds;

  static BusMetrics& get() {
    static BusMetrics m{
        obs::MetricsRegistry::global().counter(
            "oda_bus_published_total", "Readings published on any bus"),
        obs::MetricsRegistry::global().counter(
            "oda_bus_delivered_total", "Subscriber callback invocations"),
        obs::MetricsRegistry::global().counter(
            "oda_bus_slow_deliveries_total",
            "Deliveries exceeding the bus slow threshold"),
        obs::MetricsRegistry::global().counter(
            "oda_bus_unrouted_total",
            "Publishes that matched zero subscribers"),
        obs::MetricsRegistry::global().histogram(
            "oda_bus_publish_seconds",
            "End-to-end publish latency (all matching subscribers)"),
    };
    return m;
  }
};

}  // namespace

MessageBus::SubscriptionId MessageBus::subscribe(std::string pattern,
                                                 Callback callback) {
  auto stats = std::make_shared<SubStats>();
  stats->pattern = std::move(pattern);
  stats->callback = std::move(callback);
  stats->per_pattern = &obs::MetricsRegistry::global().counter(
      "oda_bus_subscriber_deliveries_total",
      "Deliveries per subscription pattern", {{"pattern", stats->pattern}});
  MutexLock lock(mu_);
  const SubscriptionId id = next_id_++;
  subs_.push_back({id, std::move(stats)});
  return id;
}

void MessageBus::unsubscribe(SubscriptionId id) {
  MutexLock lock(mu_);
  subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                             [id](const Subscription& s) { return s.id == id; }),
              subs_.end());
}

void MessageBus::publish(const Reading& reading) {
  ODA_TRACE_SPAN_CAT("bus.publish", "bus");
  BusMetrics& metrics = BusMetrics::get();
  // relaxed (here and for delivered_ below): pure statistics counters — they
  // guard no data and order nothing; readers only need eventual counts.
  published_.fetch_add(1, std::memory_order_relaxed);
  metrics.published.inc();
  // Snapshot matching subscribers under the lock, call outside it so a
  // subscriber may publish (or subscribe) re-entrantly without deadlock.
  // Holding the shared block (not a pointer into subs_, which a concurrent
  // subscribe may reallocate) keeps the callback and its accounting valid
  // even if the subscription is removed mid-delivery.
  std::vector<std::shared_ptr<SubStats>> targets;
  bool warn_unrouted = false;
  {
    MutexLock lock(mu_);
    for (const auto& s : subs_) {
      if (glob_match(s.stats->pattern, reading.path)) {
        targets.push_back(s.stats);
      }
    }
    if (targets.empty()) {
      // Silent-drop visibility: nobody consumed this reading. Warn once per
      // top-level path prefix so a misrouted family surfaces without a log
      // line per sample.
      const std::string prefix =
          reading.path.substr(0, reading.path.find('/'));
      if (std::find(unrouted_warned_.begin(), unrouted_warned_.end(),
                    prefix) == unrouted_warned_.end()) {
        unrouted_warned_.push_back(prefix);
        warn_unrouted = true;
      }
    }
  }
  if (targets.empty()) {
    // relaxed: statistics counter, like published_ above.
    unrouted_.fetch_add(1, std::memory_order_relaxed);
    metrics.unrouted.inc();
    if (warn_unrouted) {
      ODA_LOG_WARN << "bus publish matched no subscribers (path '"
                   << reading.path << "'); counting under prefix '"
                   << reading.path.substr(0, reading.path.find('/')) << "'";
    }
  }
  using Clock = std::chrono::steady_clock;
  const double slow_threshold = slow_threshold_s_.load(std::memory_order_relaxed);
  double publish_seconds = 0.0;
  for (const auto& t : targets) {
    // Child of the publish span (same-thread nesting), so each subscriber's
    // work hangs off the publish in the causal trace.
    ODA_TRACE_SPAN_CAT("bus.deliver", "bus");
    const Clock::time_point t0 = Clock::now();
    t->callback(reading);
    const auto elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
    const double elapsed_s = static_cast<double>(elapsed_ns) * 1e-9;
    publish_seconds += elapsed_s;
    delivered_.fetch_add(1, std::memory_order_relaxed);
    metrics.delivered.inc();
    t->per_pattern->inc();
    // relaxed (all SubStats fields): standalone statistics; they synchronize
    // nothing and subscriber_stats() only needs eventually-consistent sums.
    t->deliveries.fetch_add(1, std::memory_order_relaxed);
    t->busy_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
    if (elapsed_s > slow_threshold) {
      metrics.slow.inc();
      t->slow.fetch_add(1, std::memory_order_relaxed);
      // relaxed exchange: warned is a best-effort once-flag for log noise
      // control; a duplicate warning under a rare race would be harmless.
      if (!t->warned.exchange(true, std::memory_order_relaxed)) {
        ODA_LOG_WARN << "slow bus subscriber (pattern '" << t->pattern
                     << "'): delivery took " << elapsed_s * 1e3
                     << " ms (threshold " << slow_threshold * 1e3 << " ms)";
      }
    }
  }
  metrics.publish_seconds.observe(publish_seconds);
}

void MessageBus::publish(const std::string& path, TimePoint time, double value) {
  publish(Reading{path, {time, value}});
}

std::size_t MessageBus::subscriber_count() const {
  MutexLock lock(mu_);
  return subs_.size();
}

std::vector<SubscriberStats> MessageBus::subscriber_stats() const {
  MutexLock lock(mu_);
  std::vector<SubscriberStats> out;
  out.reserve(subs_.size());
  for (const auto& s : subs_) {
    SubscriberStats stats;
    stats.pattern = s.stats->pattern;
    // relaxed: statistics snapshot; see the publish() comment.
    stats.deliveries = s.stats->deliveries.load(std::memory_order_relaxed);
    stats.slow_deliveries = s.stats->slow.load(std::memory_order_relaxed);
    stats.busy_seconds =
        static_cast<double>(s.stats->busy_ns.load(std::memory_order_relaxed)) *
        1e-9;
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace oda::telemetry
