#include "telemetry/bus.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace oda::telemetry {

MessageBus::SubscriptionId MessageBus::subscribe(std::string pattern,
                                                 Callback callback) {
  std::lock_guard lock(mu_);
  const SubscriptionId id = next_id_++;
  subs_.push_back({id, std::move(pattern), std::move(callback)});
  return id;
}

void MessageBus::unsubscribe(SubscriptionId id) {
  std::lock_guard lock(mu_);
  subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                             [id](const Subscription& s) { return s.id == id; }),
              subs_.end());
}

void MessageBus::publish(const Reading& reading) {
  // relaxed (here and for delivered_ below): pure statistics counters — they
  // guard no data and order nothing; readers only need eventual counts.
  published_.fetch_add(1, std::memory_order_relaxed);
  // Snapshot matching callbacks under the lock, call outside it so a
  // subscriber may publish (or subscribe) re-entrantly without deadlock.
  std::vector<Callback> targets;
  {
    std::lock_guard lock(mu_);
    for (const auto& s : subs_) {
      if (glob_match(s.pattern, reading.path)) targets.push_back(s.callback);
    }
  }
  for (const auto& cb : targets) {
    cb(reading);
    delivered_.fetch_add(1, std::memory_order_relaxed);
  }
}

void MessageBus::publish(const std::string& path, TimePoint time, double value) {
  publish(Reading{path, {time, value}});
}

std::size_t MessageBus::subscriber_count() const {
  std::lock_guard lock(mu_);
  return subs_.size();
}

}  // namespace oda::telemetry
