#include "telemetry/derived.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oda::telemetry {

void DerivedSensors::define(std::string path, std::vector<std::string> inputs,
                            Formula f) {
  ODA_REQUIRE(!path.empty(), "derived sensor needs a path");
  ODA_REQUIRE(f != nullptr, "derived sensor needs a formula");
  derived_.push_back({std::move(path), std::move(inputs), std::move(f)});
}

void DerivedSensors::define_sum(const std::string& path,
                                const std::string& input_pattern) {
  define(path, store_.match(input_pattern), [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s;
  });
}

void DerivedSensors::define_mean(const std::string& path,
                                 const std::string& input_pattern) {
  define(path, store_.match(input_pattern), [](const std::vector<double>& v) {
    if (v.empty()) return std::nan("");
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  });
}

void DerivedSensors::define_ratio(const std::string& path,
                                  const std::string& numerator,
                                  const std::string& denominator) {
  define(path, {numerator, denominator}, [](const std::vector<double>& v) {
    return v[1] != 0.0 ? v[0] / v[1] : std::nan("");
  });
}

void DerivedSensors::evaluate(TimePoint now) {
  for (const auto& d : derived_) {
    std::vector<double> inputs;
    inputs.reserve(d.inputs.size());
    bool complete = true;
    for (const auto& in : d.inputs) {
      const auto latest = store_.latest(in);
      if (!latest) {
        complete = false;
        break;
      }
      inputs.push_back(latest->value);
    }
    if (!complete) continue;
    const double value = d.formula(inputs);
    if (std::isfinite(value)) store_.insert(d.path, {now, value});
  }
}

std::vector<std::string> DerivedSensors::paths() const {
  std::vector<std::string> out;
  out.reserve(derived_.size());
  for (const auto& d : derived_) out.push_back(d.path);
  return out;
}

}  // namespace oda::telemetry
