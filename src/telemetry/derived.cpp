#include "telemetry/derived.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oda::telemetry {

void DerivedSensors::define(std::string path, std::vector<std::string> inputs,
                            Formula f) {
  ODA_REQUIRE(!path.empty(), "derived sensor needs a path");
  ODA_REQUIRE(f != nullptr, "derived sensor needs a formula");
  // Intern the output and every input once, so evaluate() — which runs every
  // sim step — carries integer handles instead of re-hashing path strings.
  SeriesInterner& interner = SeriesInterner::global();
  const SeriesId id = interner.intern(path);
  std::vector<SeriesId> input_ids;
  input_ids.reserve(inputs.size());
  for (const auto& in : inputs) input_ids.push_back(interner.intern(in));
  derived_.push_back({std::move(path), id, std::move(inputs),
                      std::move(input_ids), std::move(f)});
}

void DerivedSensors::define_sum(const std::string& path,
                                const std::string& input_pattern) {
  define(path, store_.match(input_pattern), [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s;
  });
}

void DerivedSensors::define_mean(const std::string& path,
                                 const std::string& input_pattern) {
  define(path, store_.match(input_pattern), [](const std::vector<double>& v) {
    if (v.empty()) return std::nan("");
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  });
}

void DerivedSensors::define_ratio(const std::string& path,
                                  const std::string& numerator,
                                  const std::string& denominator) {
  define(path, {numerator, denominator}, [](const std::vector<double>& v) {
    return v[1] != 0.0 ? v[0] / v[1] : std::nan("");
  });
}

void DerivedSensors::evaluate(TimePoint now) {
  for (const auto& d : derived_) {
    std::vector<double> inputs;
    inputs.reserve(d.input_ids.size());
    bool complete = true;
    for (const SeriesId in : d.input_ids) {
      const auto latest = store_.latest(in);
      if (!latest) {
        complete = false;
        break;
      }
      inputs.push_back(latest->value);
    }
    if (!complete) continue;
    const double value = d.formula(inputs);
    if (std::isfinite(value)) store_.insert(d.id, {now, value});
  }
}

std::vector<std::string> DerivedSensors::paths() const {
  std::vector<std::string> out;
  out.reserve(derived_.size());
  for (const auto& d : derived_) out.push_back(d.path);
  return out;
}

}  // namespace oda::telemetry
