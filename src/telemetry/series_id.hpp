// Interned series handles. Sensor paths are strings at the edges of the
// system (config, bus patterns, dashboards) but the hot data plane —
// collector passes, store shards, derived-sensor evaluation — should not
// re-hash and re-compare strings on every sample. A SeriesInterner assigns
// each path a dense 32-bit SeriesId exactly once; hot paths resolve their
// paths up front and carry integer handles from then on.
//
// The interner is process-wide (SeriesInterner::global()): an id names a
// path, not a store, so every TimeSeriesStore shares the same handle space
// and ids can travel between subsystems. Entries are never removed, which
// makes reverse lookups (`path(id)`) stable references for the process
// lifetime.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/sync.hpp"
#include "telemetry/sample.hpp"

namespace oda::telemetry {

/// Dense handle for an interned sensor path. Value-type, trivially copyable;
/// the default-constructed id is invalid.
struct SeriesId {
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  std::uint32_t value = kInvalid;

  constexpr bool valid() const { return value != kInvalid; }

  friend constexpr bool operator==(SeriesId a, SeriesId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(SeriesId a, SeriesId b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(SeriesId a, SeriesId b) {
    return a.value < b.value;
  }
};

/// A reading already resolved to its interned handle — the batch-ingest
/// currency (see TimeSeriesStore::insert_batch).
struct IdReading {
  SeriesId id;
  Sample sample;
};

/// Thread-safe path <-> SeriesId bijection. Interning takes the writer lock
/// only on first sight of a path; lookups are shared-lock reads.
class SeriesInterner {
 public:
  /// The process-wide interner used by the telemetry data plane.
  static SeriesInterner& global();

  /// Returns the id for `path`, assigning the next dense id on first use.
  SeriesId intern(const std::string& path) ODA_EXCLUDES(mu_);

  /// Returns the id for `path` if it was ever interned (never assigns).
  std::optional<SeriesId> lookup(const std::string& path) const
      ODA_EXCLUDES(mu_);

  /// Reverse lookup. The returned reference is stable for the process
  /// lifetime (entries are never removed). Throws ContractError on an
  /// unknown or invalid id.
  const std::string& path(SeriesId id) const ODA_EXCLUDES(mu_);

  /// Number of interned paths.
  std::size_t size() const ODA_EXCLUDES(mu_);

 private:
  /// Store shards hold their lock across path(id) lookups, so the interner
  /// sits between the shard and metrics levels.
  mutable SharedMutex mu_ ODA_ACQUIRED_AFTER(lock_order::interner)
      ODA_ACQUIRED_BEFORE(lock_order::metrics){LockRankId::kInterner};
  std::unordered_map<std::string, std::uint32_t> ids_ ODA_GUARDED_BY(mu_);
  // Deque so path(id) references stay valid while intern() appends.
  std::deque<std::string> paths_ ODA_GUARDED_BY(mu_);
};

}  // namespace oda::telemetry
