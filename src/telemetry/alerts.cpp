#include "telemetry/alerts.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace oda::telemetry {

const char* alert_severity_name(AlertSeverity s) {
  switch (s) {
    case AlertSeverity::kInfo: return "info";
    case AlertSeverity::kWarning: return "warning";
    case AlertSeverity::kCritical: return "critical";
  }
  return "?";
}

void AlertEngine::add_rule(AlertRule rule) {
  ODA_REQUIRE(!rule.name.empty(), "alert rule needs a name");
  rules_.push_back(std::move(rule));
}

bool AlertEngine::violates(const AlertRule& rule, double value) {
  return rule.comparison == AlertComparison::kAbove ? value > rule.threshold
                                                    : value < rule.threshold;
}

bool AlertEngine::cleared(const AlertRule& rule, double value) {
  return rule.comparison == AlertComparison::kAbove
             ? value < rule.threshold - rule.hysteresis
             : value > rule.threshold + rule.hysteresis;
}

void AlertEngine::observe(const Reading& reading) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    if (!glob_match(rule.sensor_pattern, reading.path)) continue;
    RuleState& st = state_[{i, reading.path}];
    const double value = reading.sample.value;
    const TimePoint now = reading.sample.time;

    if (!st.alert_active) {
      if (violates(rule, value)) {
        if (st.violation_start == kTimeMin) st.violation_start = now;
        if (now - st.violation_start >= rule.hold) {
          st.alert_active = true;
          Alert alert;
          alert.rule = rule.name;
          alert.sensor = reading.path;
          alert.severity = rule.severity;
          alert.raised_at = now;
          alert.value = value;
          st.history_index = history_.size();
          history_.push_back(alert);
          if (callback_) callback_(alert);
        }
      } else {
        st.violation_start = kTimeMin;
      }
    } else if (cleared(rule, value)) {
      st.alert_active = false;
      st.violation_start = kTimeMin;
      Alert& alert = history_[st.history_index];
      alert.cleared = true;
      alert.cleared_at = now;
      if (callback_) callback_(alert);
    }
  }
}

void AlertEngine::attach(MessageBus& bus) {
  for (const auto& rule : rules_) {
    bus.subscribe(rule.sensor_pattern,
                  [this](const Reading& r) { observe(r); });
  }
}

std::vector<Alert> AlertEngine::active() const {
  std::vector<Alert> out;
  for (const auto& [key, st] : state_) {
    if (st.alert_active) out.push_back(history_[st.history_index]);
  }
  return out;
}

std::size_t AlertEngine::active_count() const {
  std::size_t n = 0;
  for (const auto& [key, st] : state_) {
    if (st.alert_active) ++n;
  }
  return n;
}

}  // namespace oda::telemetry
