#include "telemetry/alerts.hpp"

#include <unordered_map>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "obs/metrics.hpp"

namespace oda::telemetry {

const char* alert_severity_name(AlertSeverity s) {
  switch (s) {
    case AlertSeverity::kInfo: return "info";
    case AlertSeverity::kWarning: return "warning";
    case AlertSeverity::kCritical: return "critical";
  }
  return "?";
}

void AlertEngine::add_rule(AlertRule rule) {
  ODA_REQUIRE(!rule.name.empty(), "alert rule needs a name");
  rules_.push_back(std::move(rule));
}

void AlertEngine::set_history_limit(std::size_t limit) {
  ODA_REQUIRE(limit > 0, "alert history limit must be positive");
  history_limit_ = limit;
  if (history_.size() > history_limit_) evict_history();
}

void AlertEngine::evict_history() {
  // Pin entries still referenced by an active state: their records are
  // updated in place when the alert clears.
  std::vector<bool> pinned(history_.size(), false);
  for (const auto& [key, st] : state_) {
    if (st.alert_active) pinned[st.history_index] = true;
  }
  // Evict oldest unpinned entries down to 3/4 of the cap, so eviction runs
  // in amortized batches rather than on every subsequent alert.
  const std::size_t target = history_limit_ - history_limit_ / 4;
  std::size_t to_drop = history_.size() > target ? history_.size() - target : 0;
  std::vector<Alert> kept;
  kept.reserve(history_.size());
  std::unordered_map<std::size_t, std::size_t> remap;
  remap.reserve(history_.size());
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < history_.size(); ++i) {
    if (to_drop > 0 && !pinned[i]) {
      --to_drop;
      ++dropped;
      continue;
    }
    remap[i] = kept.size();
    kept.push_back(std::move(history_[i]));
  }
  if (dropped == 0) return;  // everything pinned: history may exceed the cap
  history_ = std::move(kept);
  for (auto& [key, st] : state_) {
    const auto it = remap.find(st.history_index);
    // Only active states dereference history_index; their entries are
    // pinned, so this lookup always succeeds for them.
    st.history_index = it != remap.end() ? it->second : 0;
  }
  evicted_ += dropped;
  obs::MetricsRegistry::global()
      .counter("oda_alerts_history_evicted_total",
               "Alerts evicted from the bounded history")
      .inc(dropped);
}

bool AlertEngine::violates(const AlertRule& rule, double value) {
  return rule.comparison == AlertComparison::kAbove ? value > rule.threshold
                                                    : value < rule.threshold;
}

bool AlertEngine::cleared(const AlertRule& rule, double value) {
  return rule.comparison == AlertComparison::kAbove
             ? value < rule.threshold - rule.hysteresis
             : value > rule.threshold + rule.hysteresis;
}

void AlertEngine::observe(const Reading& reading) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    if (!glob_match(rule.sensor_pattern, reading.path)) continue;
    RuleState& st = state_[{i, reading.path}];
    const double value = reading.sample.value;
    const TimePoint now = reading.sample.time;

    if (!st.alert_active) {
      if (violates(rule, value)) {
        if (st.violation_start == kTimeMin) st.violation_start = now;
        if (now - st.violation_start >= rule.hold) {
          st.alert_active = true;
          Alert alert;
          alert.rule = rule.name;
          alert.sensor = reading.path;
          alert.severity = rule.severity;
          alert.raised_at = now;
          alert.value = value;
          st.history_index = history_.size();
          history_.push_back(alert);
          if (history_.size() > history_limit_) evict_history();
          if (callback_) callback_(alert);
        }
      } else {
        st.violation_start = kTimeMin;
      }
    } else if (cleared(rule, value)) {
      st.alert_active = false;
      st.violation_start = kTimeMin;
      Alert& alert = history_[st.history_index];
      alert.cleared = true;
      alert.cleared_at = now;
      if (callback_) callback_(alert);
    }
  }
}

void AlertEngine::attach(MessageBus& bus) {
  for (const auto& rule : rules_) {
    bus.subscribe(rule.sensor_pattern,
                  [this](const Reading& r) { observe(r); });
  }
}

std::vector<Alert> AlertEngine::active() const {
  std::vector<Alert> out;
  for (const auto& [key, st] : state_) {
    if (st.alert_active) out.push_back(history_[st.history_index]);
  }
  return out;
}

std::size_t AlertEngine::active_count() const {
  std::size_t n = 0;
  for (const auto& [key, st] : state_) {
    if (st.alert_active) ++n;
  }
  return n;
}

}  // namespace oda::telemetry
