#include "telemetry/agg_kernels.hpp"

#include <algorithm>
#include <cmath>

// Samples are interleaved {time, value} pairs, but each bucket run is reduced
// with a single-purpose loop over non-overlapping spans; telling the
// optimizer the two runs never alias keeps the strided value loads
// vectorizable.
#if defined(__GNUC__) || defined(__clang__)
#define ODA_RESTRICT __restrict__
#else
#define ODA_RESTRICT
#endif

namespace oda::telemetry {

namespace {

/// Reduce policies: each reduces one bucket's samples — the concatenation of
/// runs (p1, n1) and (p2, n2), n1 + n2 >= 1 — exactly as AggAccumulator
/// would fold them. Only the state that aggregation needs is carried.
struct SumReduce {
  static double reduce(const Sample* ODA_RESTRICT p1, std::size_t n1,
                       const Sample* ODA_RESTRICT p2, std::size_t n2) {
    // Strict left-fold in sample order: FP addition is non-associative, and
    // bit-identity with AggAccumulator::sum forbids reassociation.
    double s = 0.0;
    for (std::size_t i = 0; i < n1; ++i) s += p1[i].value;
    for (std::size_t i = 0; i < n2; ++i) s += p2[i].value;
    return s;
  }
};

struct MeanReduce {
  static double reduce(const Sample* ODA_RESTRICT p1, std::size_t n1,
                       const Sample* ODA_RESTRICT p2, std::size_t n2) {
    // AggAccumulator::result(kMean) is sum / count (not the Welford mean).
    return SumReduce::reduce(p1, n1, p2, n2) /
           static_cast<double>(n1 + n2);
  }
};

struct MinReduce {
  static double reduce(const Sample* ODA_RESTRICT p1, std::size_t n1,
                       const Sample* ODA_RESTRICT p2, std::size_t n2) {
    // Seed with the first sample, then apply the exact `if (v < min)` fold:
    // a NaN first sample is sticky (every later compare is false) and later
    // NaNs are skipped — std::min_element semantics, matching the
    // accumulator bit-for-bit including the -0.0/+0.0 first-seen order.
    double m = n1 != 0 ? p1[0].value : p2[0].value;
    for (std::size_t i = 1; i < n1; ++i) {
      if (p1[i].value < m) m = p1[i].value;
    }
    for (std::size_t i = n1 != 0 ? 0 : 1; i < n2; ++i) {
      if (p2[i].value < m) m = p2[i].value;
    }
    return m;
  }
};

struct MaxReduce {
  static double reduce(const Sample* ODA_RESTRICT p1, std::size_t n1,
                       const Sample* ODA_RESTRICT p2, std::size_t n2) {
    double m = n1 != 0 ? p1[0].value : p2[0].value;
    for (std::size_t i = 1; i < n1; ++i) {
      if (m < p1[i].value) m = p1[i].value;
    }
    for (std::size_t i = n1 != 0 ? 0 : 1; i < n2; ++i) {
      if (m < p2[i].value) m = p2[i].value;
    }
    return m;
  }
};

struct LastReduce {
  static double reduce(const Sample* ODA_RESTRICT p1, std::size_t n1,
                       const Sample* ODA_RESTRICT p2, std::size_t n2) {
    // O(1): the run is time-ordered, so "last" is the final sample.
    return n2 != 0 ? p2[n2 - 1].value : p1[n1 - 1].value;
  }
};

struct CountReduce {
  static double reduce(const Sample* ODA_RESTRICT, std::size_t n1,
                       const Sample* ODA_RESTRICT, std::size_t n2) {
    // Pure index arithmetic — the run length is the count; no value reads.
    return static_cast<double>(n1 + n2);
  }
};

struct StdDevReduce {
  static double reduce(const Sample* ODA_RESTRICT p1, std::size_t n1,
                       const Sample* ODA_RESTRICT p2, std::size_t n2) {
    // Welford's update, replicated verbatim from AggAccumulator::add so the
    // division/multiplication order (and therefore every rounding step)
    // matches bit-for-bit. Inherently sequential; not vectorizable.
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    const auto feed = [&](const Sample* ODA_RESTRICT p, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        const double v = p[i].value;
        ++count;
        const double delta = v - mean;
        mean += delta / static_cast<double>(count);
        m2 += delta * (v - mean);
      }
    };
    feed(p1, n1);
    feed(p2, n2);
    // Sample stddev (n-1), 0 for a single sample — AggAccumulator::result.
    return count < 2 ? 0.0 : std::sqrt(m2 / static_cast<double>(count - 1));
  }
};

/// Walks the logical sample sequence (span `a` then span `b`, ascending
/// time, every sample >= from) bucket by bucket. For each non-empty bucket
/// it finds the contiguous run [i, j) with one time compare per sample —
/// empty buckets between runs are skipped by the direct (t - from) / bucket
/// index computation, not a per-sample `while` ladder — and emits the run
/// as up to two pieces (the bucket can straddle the ring's wrap point).
template <typename Emit>
void walk_buckets(std::span<const Sample> a, std::span<const Sample> b,
                  TimePoint from, Duration bucket, Emit&& emit) {
  const Sample* ODA_RESTRICT pa = a.data();
  const Sample* ODA_RESTRICT pb = b.data();
  const std::size_t na = a.size();
  const std::size_t n = na + b.size();
  const auto time_at = [&](std::size_t idx) {
    return idx < na ? pa[idx].time : pb[idx - na].time;
  };
  std::size_t i = 0;
  while (i < n) {
    const auto k =
        static_cast<std::size_t>((time_at(i) - from) / bucket);
    const TimePoint bucket_end =
        from + (static_cast<TimePoint>(k) + 1) * static_cast<TimePoint>(bucket);
    std::size_t j = i + 1;
    while (j < n && time_at(j) < bucket_end) ++j;
    if (i < na) {
      const std::size_t mid = std::min(j, na);
      emit(k, pa + i, mid - i, pb, j > na ? j - na : 0);
    } else {
      emit(k, pb + (i - na), j - i, pb, std::size_t{0});
    }
    i = j;
  }
}

}  // namespace

void bucket_aggregate_dense(std::span<const Sample> a, std::span<const Sample> b,
                            TimePoint from, Duration bucket, Aggregation agg,
                            std::size_t n_buckets, double* out) {
  // Dispatch once per call, not per sample: each instantiation inlines its
  // reduce policy into the bucket walk.
  const auto run = [&](auto reduce_tag) {
    using Reduce = decltype(reduce_tag);
    walk_buckets(a, b, from, bucket,
                 [&](std::size_t k, const Sample* p1, std::size_t n1,
                     const Sample* p2, std::size_t n2) {
                   if (k < n_buckets) out[k] = Reduce::reduce(p1, n1, p2, n2);
                 });
  };
  switch (agg) {
    case Aggregation::kMean:
      return run(MeanReduce{});
    case Aggregation::kMin:
      return run(MinReduce{});
    case Aggregation::kMax:
      return run(MaxReduce{});
    case Aggregation::kSum:
      return run(SumReduce{});
    case Aggregation::kLast:
      return run(LastReduce{});
    case Aggregation::kCount:
      return run(CountReduce{});
    case Aggregation::kStdDev:
      return run(StdDevReduce{});
  }
}

void bucket_aggregate_sparse(std::span<const Sample> a,
                             std::span<const Sample> b, TimePoint from,
                             Duration bucket, Aggregation agg,
                             std::vector<TimePoint>& out_times,
                             std::vector<double>& out_values) {
  const auto run = [&](auto reduce_tag) {
    using Reduce = decltype(reduce_tag);
    walk_buckets(a, b, from, bucket,
                 [&](std::size_t k, const Sample* p1, std::size_t n1,
                     const Sample* p2, std::size_t n2) {
                   out_times.push_back(from + static_cast<TimePoint>(k) *
                                                  static_cast<TimePoint>(bucket));
                   out_values.push_back(Reduce::reduce(p1, n1, p2, n2));
                 });
  };
  switch (agg) {
    case Aggregation::kMean:
      return run(MeanReduce{});
    case Aggregation::kMin:
      return run(MinReduce{});
    case Aggregation::kMax:
      return run(MaxReduce{});
    case Aggregation::kSum:
      return run(SumReduce{});
    case Aggregation::kLast:
      return run(LastReduce{});
    case Aggregation::kCount:
      return run(CountReduce{});
    case Aggregation::kStdDev:
      return run(StdDevReduce{});
  }
}

}  // namespace oda::telemetry
