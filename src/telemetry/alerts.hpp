// Threshold alerting — the automated-alert feature of descriptive dashboards
// (Table I, descriptive row). Rules fire when a sensor violates a bound for
// a sustained hold time, and clear with hysteresis.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "telemetry/bus.hpp"
#include "telemetry/sample.hpp"

namespace oda::telemetry {

enum class AlertSeverity { kInfo, kWarning, kCritical };
enum class AlertComparison { kAbove, kBelow };

const char* alert_severity_name(AlertSeverity s);

struct AlertRule {
  std::string name;
  std::string sensor_pattern;  // glob
  AlertComparison comparison = AlertComparison::kAbove;
  double threshold = 0.0;
  /// Violation must persist this long before the alert fires.
  Duration hold = 0;
  /// Value must re-cross threshold ± hysteresis before the alert clears.
  double hysteresis = 0.0;
  AlertSeverity severity = AlertSeverity::kWarning;
};

struct Alert {
  std::string rule;
  std::string sensor;
  AlertSeverity severity = AlertSeverity::kWarning;
  TimePoint raised_at = 0;
  double value = 0.0;
  bool cleared = false;
  TimePoint cleared_at = 0;
};

/// Feed readings (directly or via a bus subscription); active/fired alerts
/// come out. Deterministic and single-threaded by design — wire it behind
/// the bus if concurrent delivery is needed.
class AlertEngine {
 public:
  using AlertCallback = std::function<void(const Alert&)>;

  void add_rule(AlertRule rule);
  const std::vector<AlertRule>& rules() const { return rules_; }

  /// Processes one reading; fires/clears alerts as needed.
  void observe(const Reading& reading);
  /// Convenience: subscribes to the bus for each rule's pattern.
  void attach(MessageBus& bus);

  void set_callback(AlertCallback cb) { callback_ = std::move(cb); }

  /// Caps retained history (default 4096). When the cap is exceeded the
  /// oldest *cleared* alerts are evicted (active alerts are pinned — their
  /// records are still being updated); long runs therefore hold bounded
  /// memory instead of growing forever.
  void set_history_limit(std::size_t limit);
  std::size_t history_limit() const { return history_limit_; }
  /// Alerts evicted from history so far.
  std::uint64_t history_evicted() const { return evicted_; }

  std::vector<Alert> active() const;
  const std::vector<Alert>& history() const { return history_; }
  std::size_t active_count() const;

 private:
  struct RuleState {
    TimePoint violation_start = kTimeMin;  // kTimeMin = not violating
    bool alert_active = false;
    std::size_t history_index = 0;
  };

  static bool violates(const AlertRule& rule, double value);
  static bool cleared(const AlertRule& rule, double value);
  /// Evicts oldest cleared alerts until history fits the cap, remapping
  /// every RuleState::history_index so active alerts stay valid.
  void evict_history();

  std::vector<AlertRule> rules_;
  // State per (rule index, sensor path).
  std::map<std::pair<std::size_t, std::string>, RuleState> state_;
  std::vector<Alert> history_;
  std::size_t history_limit_ = 4096;
  std::uint64_t evicted_ = 0;
  AlertCallback callback_;
};

}  // namespace oda::telemetry
