#include "telemetry/sample.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace oda::telemetry {

void SensorCatalog::add(SensorInfo info) {
  ODA_REQUIRE(!info.path.empty(), "sensor path must be non-empty");
  const auto [it, inserted] = sensors_.emplace(info.path, info);
  if (inserted) {
    order_.push_back(info.path);
  } else {
    it->second = std::move(info);
  }
}

bool SensorCatalog::contains(const std::string& path) const {
  return sensors_.count(path) != 0;
}

std::optional<SensorInfo> SensorCatalog::find(const std::string& path) const {
  const auto it = sensors_.find(path);
  if (it == sensors_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> SensorCatalog::match(const std::string& pattern) const {
  std::vector<std::string> out;
  for (const auto& path : order_) {
    if (glob_match(pattern, path)) out.push_back(path);
  }
  return out;
}

}  // namespace oda::telemetry
