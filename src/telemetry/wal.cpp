#include "telemetry/wal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "telemetry/store.hpp"

namespace oda::telemetry {

bool wal_enabled() noexcept {
#if defined(ODA_WAL_ENABLED) && ODA_WAL_ENABLED
  return true;
#else
  return false;
#endif
}

// ------------------------------------------------------------------- crc32c

namespace {

struct Crc32cTable {
  std::uint32_t entries[256];
  Crc32cTable() {
    // Castagnoli polynomial, reflected.
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

const Crc32cTable& crc_table() {
  static Crc32cTable table;
  return table;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n,
                     std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  const Crc32cTable& t = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = t.entries[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// -------------------------------------------------------------------- codec

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Bounds-checked LEB128 decode; false on overrun or >10-byte varint.
bool get_varint(const char* p, std::size_t n, std::size_t& pos,
                std::uint64_t& out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos < n && shift < 64) {
    const auto byte = static_cast<unsigned char>(p[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

std::uint64_t zigzag_encode(std::uint64_t delta) {
  // Interpret the wrapping uint64 delta as signed and fold the sign bit
  // down, so small forward and backward steps both encode in one byte.
  return (delta << 1) ^
         (0u - (delta >> 63));
}

std::uint64_t zigzag_decode(std::uint64_t v) {
  return (v >> 1) ^ (0u - (v & 1u));
}

/// Record header + payload appended to `out`: the crc covers header bytes
/// [0, 8) (len/type/pad, with the crc field excluded) plus the payload.
void put_record(std::string& out, std::uint8_t type,
                const std::string& payload) {
  const std::size_t header_at = out.size();
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.push_back(static_cast<char>(type));
  out.push_back('\0');
  out.push_back('\0');
  out.push_back('\0');
  std::uint32_t crc = crc32c(out.data() + header_at, 8);
  crc = crc32c(payload.data(), payload.size(), crc);
  put_u32(out, crc);
  out.append(payload);
}

struct WalMetrics {
  obs::Counter& appended;
  obs::Counter& committed;
  obs::Counter& commits;
  obs::Counter& bytes_written;
  obs::Counter& segments;
  obs::Counter& lost;
  obs::Counter& replayed;
  obs::Counter& truncated_bytes;
  obs::Gauge& degraded;
  obs::Gauge& queue_depth;
  obs::Histogram& commit_seconds;

  static WalMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static WalMetrics m{
        reg.counter("oda_wal_appended_samples_total",
                    "Samples offered to the WAL (accepted or refused)"),
        reg.counter("oda_wal_committed_samples_total",
                    "Samples durably written (and fsynced) to WAL segments"),
        reg.counter("oda_wal_commits_total", "Group commits written"),
        reg.counter("oda_wal_bytes_written_total",
                    "Bytes appended to WAL segments"),
        reg.counter("oda_wal_segments_created_total",
                    "WAL segment files opened (rotation included)"),
        reg.counter("oda_wal_lost_samples_total",
                    "Samples not durably logged (degraded mode or failed "
                    "commits); exact, mirrors collector gap accounting"),
        reg.counter("oda_wal_replayed_samples_total",
                    "Samples replayed from WAL segments at recovery"),
        reg.counter("oda_wal_truncated_bytes_total",
                    "Bytes discarded at recovery from the first invalid "
                    "record onward"),
        reg.gauge("oda_wal_degraded",
                  "1 once the WAL fell back to in-memory-only mode after a "
                  "storage fault (ENOSPC, torn write, fsync failure)"),
        reg.gauge("oda_wal_queue_depth", "Batches waiting for group commit"),
        reg.histogram("oda_wal_commit_seconds",
                      "Group-commit latency (encode + write + fsync)"),
    };
    return m;
  }
};

}  // namespace

// -------------------------------------------------------------- WalOptions

WalOptions WalOptions::from_config(const Config& cfg) {
  WalOptions opts;
  opts.dir = cfg.get_string_or("wal.dir", opts.dir);
  opts.segment_max_bytes = static_cast<std::size_t>(cfg.get_int_or(
      "wal.segment_max_bytes",
      static_cast<std::int64_t>(opts.segment_max_bytes)));
  opts.queue_capacity = static_cast<std::size_t>(cfg.get_int_or(
      "wal.queue_capacity", static_cast<std::int64_t>(opts.queue_capacity)));
  opts.fsync_each_commit = cfg.get_bool_or("wal.fsync", opts.fsync_each_commit);
  return opts;
}

// ---------------------------------------------------------------- PosixWalFs

bool PosixWalFs::mkdirs(const std::string& dir) {
  std::string partial;
  partial.reserve(dir.size());
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      partial.push_back(dir[i]);
      continue;
    }
    if (i < dir.size()) partial.push_back('/');
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  return true;
}

std::vector<std::string> PosixWalFs::list(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  return names;
}

std::int64_t PosixWalFs::file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<std::int64_t>(st.st_size);
}

bool PosixWalFs::read_file(const std::string& path, std::string& out) {
  out.clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  char buf[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (got == 0) break;
    out.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return true;
}

WalFs::AppendResult PosixWalFs::append(const std::string& path,
                                       const void* data, std::size_t n,
                                       bool sync) {
  AppendResult res;
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    res.err = errno;
    res.synced = false;
    return res;
  }
  const auto* p = static_cast<const char*>(data);
  while (res.written < n) {
    const ssize_t wrote = ::write(fd, p + res.written, n - res.written);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      res.err = errno;
      break;
    }
    res.written += static_cast<std::size_t>(wrote);
  }
  if (sync && res.err == 0) {
    res.synced = ::fsync(fd) == 0;
  } else if (sync) {
    res.synced = false;
  }
  ::close(fd);
  return res;
}

bool PosixWalFs::truncate_file(const std::string& path, std::uint64_t size) {
  return ::truncate(path.c_str(), static_cast<off_t>(size)) == 0;
}

bool PosixWalFs::remove_file(const std::string& path) {
  return ::unlink(path.c_str()) == 0;
}

// ------------------------------------------------------------------ FaultFs

void FaultFs::fail_next_append_after(std::size_t bytes) {
  MutexLock lock(mu_);
  torn_after_ = static_cast<std::int64_t>(bytes);
}

void FaultFs::corrupt_next_append(std::size_t offset, std::uint8_t mask) {
  MutexLock lock(mu_);
  corrupt_offset_ = static_cast<std::int64_t>(offset);
  corrupt_mask_ = mask;
}

void FaultFs::set_space_budget(std::int64_t bytes) {
  MutexLock lock(mu_);
  space_budget_ = bytes;
}

void FaultFs::fail_fsync(int count) {
  MutexLock lock(mu_);
  fsync_failures_ = count;
}

void FaultFs::set_short_read(std::int64_t bytes) {
  MutexLock lock(mu_);
  short_read_ = bytes;
}

void FaultFs::fail_truncate(int count) {
  MutexLock lock(mu_);
  truncate_failures_ = count;
}

std::uint64_t FaultFs::appends_failed() const {
  MutexLock lock(mu_);
  return appends_failed_;
}

std::uint64_t FaultFs::fsyncs_failed() const {
  MutexLock lock(mu_);
  return fsyncs_failed_;
}

bool FaultFs::mkdirs(const std::string& dir) { return base_.mkdirs(dir); }

std::vector<std::string> FaultFs::list(const std::string& dir) {
  return base_.list(dir);
}

std::int64_t FaultFs::file_size(const std::string& path) {
  return base_.file_size(path);
}

bool FaultFs::read_file(const std::string& path, std::string& out) {
  if (!base_.read_file(path, out)) return false;
  MutexLock lock(mu_);
  if (short_read_ >= 0 &&
      out.size() > static_cast<std::size_t>(short_read_)) {
    out.resize(static_cast<std::size_t>(short_read_));
  }
  return true;
}

WalFs::AppendResult FaultFs::append(const std::string& path, const void* data,
                                    std::size_t n, bool sync) {
  std::string mutated;
  std::size_t effective = n;
  int forced_err = 0;
  bool sink_sync = sync;
  bool report_sync_fail = false;
  {
    MutexLock lock(mu_);
    if (corrupt_offset_ >= 0) {
      mutated.assign(static_cast<const char*>(data), n);
      if (static_cast<std::size_t>(corrupt_offset_) < n) {
        mutated[static_cast<std::size_t>(corrupt_offset_)] =
            static_cast<char>(mutated[static_cast<std::size_t>(
                                  corrupt_offset_)] ^
                              corrupt_mask_);
      }
      corrupt_offset_ = -1;
    }
    if (torn_after_ >= 0) {
      if (static_cast<std::size_t>(torn_after_) < effective) {
        effective = static_cast<std::size_t>(torn_after_);
        forced_err = EIO;
      }
      torn_after_ = -1;
    }
    if (space_budget_ >= 0) {
      if (static_cast<std::size_t>(space_budget_) < effective) {
        effective = static_cast<std::size_t>(space_budget_);
        forced_err = ENOSPC;
      }
      space_budget_ -= static_cast<std::int64_t>(effective);
    }
    if (sync && fsync_failures_ > 0) {
      --fsync_failures_;
      ++fsyncs_failed_;
      sink_sync = false;
      report_sync_fail = true;
    }
    if (forced_err != 0) ++appends_failed_;
  }
  const void* src = mutated.empty() ? data : mutated.data();
  AppendResult res = base_.append(path, src, effective, sink_sync);
  if (forced_err != 0 && res.err == 0) res.err = forced_err;
  if (report_sync_fail) res.synced = false;
  return res;
}

bool FaultFs::truncate_file(const std::string& path, std::uint64_t size) {
  {
    MutexLock lock(mu_);
    if (truncate_failures_ > 0) {
      --truncate_failures_;
      return false;
    }
  }
  return base_.truncate_file(path, size);
}

bool FaultFs::remove_file(const std::string& path) {
  return base_.remove_file(path);
}

// ---------------------------------------------------------------------- Wal

namespace {

PosixWalFs& default_fs() {
  static PosixWalFs fs;
  return fs;
}

}  // namespace

Wal::Wal(WalOptions opts, WalFs* fs)
    : opts_(std::move(opts)), fs_(fs != nullptr ? fs : &default_fs()) {
  ODA_REQUIRE(!opts_.dir.empty(), "WalOptions.dir must be set");
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
}

Wal::~Wal() { stop(); }

std::string Wal::segment_path(std::uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llx.log",
                static_cast<unsigned long long>(seq));
  return opts_.dir + "/" + name;
}

WalRecoveryStats Wal::recover(std::vector<IdReading>& out) {
  ODA_REQUIRE(!writer_.joinable(), "Wal::recover after start()");
  recovered_ = true;
  if (!wal_enabled()) return recovery_stats_;

  WalRecoveryStats stats;
  // Collect segments as (seq, filename), ordered by sequence number.
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  for (const std::string& name : fs_->list(opts_.dir)) {
    if (name.size() < 9 || name.compare(0, 4, "wal-") != 0 ||
        name.compare(name.size() - 4, 4, ".log") != 0) {
      continue;
    }
    const std::string hex = name.substr(4, name.size() - 8);
    std::uint64_t seq = 0;
    bool valid = !hex.empty();
    for (char c : hex) {
      const bool digit = (c >= '0' && c <= '9');
      const bool lower = (c >= 'a' && c <= 'f');
      if (!digit && !lower) {
        valid = false;
        break;
      }
      seq = (seq << 4) |
            static_cast<std::uint64_t>(digit ? c - '0' : c - 'a' + 10);
    }
    if (valid) segments.emplace_back(seq, opts_.dir + "/" + name);
  }
  std::sort(segments.begin(), segments.end());

  std::vector<SeriesId> wal_sid;  // wal_id -> process SeriesId
  std::uint64_t running_time = 0;  // uint64-wrapped TimePoint delta base
  bool stopped = false;

  for (const auto& [seq, path] : segments) {
    if (stopped) {
      // Everything after the first invalid record is discarded — a later
      // segment cannot be trusted once the stream's prefix broke.
      const std::int64_t sz = fs_->file_size(path);
      if (sz > 0) stats.truncated_bytes += static_cast<std::uint64_t>(sz);
      ++stats.truncated_segments;
      if (!fs_->remove_file(path)) {
        ODA_LOG_WARN << "wal: failed to remove invalid segment " << path;
      }
      continue;
    }
    ++stats.segments_scanned;
    std::string data;
    const char* reason = nullptr;
    std::size_t offset = 0;
    if (!fs_->read_file(path, data)) {
      reason = "io_error";
    } else if (data.size() < walfmt::kMagicBytes ||
               std::memcmp(data.data(), walfmt::kMagic,
                           walfmt::kMagicBytes) != 0) {
      reason = "bad_magic";
    } else {
      offset = walfmt::kMagicBytes;
      while (offset < data.size()) {
        if (data.size() - offset < walfmt::kRecordHeaderBytes) {
          reason = "short_record";
          break;
        }
        const std::uint32_t len = get_u32(data.data() + offset);
        const auto type = static_cast<std::uint8_t>(data[offset + 4]);
        const std::uint32_t stored_crc = get_u32(data.data() + offset + 8);
        if (len > walfmt::kMaxRecordPayload ||
            (type != walfmt::kRecordIntern && type != walfmt::kRecordBatch)) {
          reason = "bad_header";
          break;
        }
        if (data.size() - offset - walfmt::kRecordHeaderBytes < len) {
          reason = "short_record";
          break;
        }
        const char* payload = data.data() + offset + walfmt::kRecordHeaderBytes;
        std::uint32_t crc = crc32c(data.data() + offset, 8);
        crc = crc32c(payload, len, crc);
        if (crc != stored_crc) {
          reason = "crc_mismatch";
          break;
        }
        // Record-atomic decode: roll back `out` and the delta base on any
        // mid-record failure so a bad record never half-applies.
        const std::size_t out_before = out.size();
        const std::uint64_t time_before = running_time;
        if (type == walfmt::kRecordIntern) {
          if (len < 8) {
            reason = "decode_error";
            break;
          }
          const std::uint32_t wal_id = get_u32(payload);
          const std::uint32_t path_len = get_u32(payload + 4);
          if (path_len != len - 8 || wal_id != wal_sid.size()) {
            reason = "decode_error";
            break;
          }
          wal_sid.push_back(
              SeriesInterner::global().intern(std::string(payload + 8,
                                                          path_len)));
        } else {
          if (len < 4) {
            reason = "decode_error";
            break;
          }
          const std::uint32_t count = get_u32(payload);
          std::size_t pos = 4;
          const char* batch_reason = nullptr;
          for (std::uint32_t i = 0; i < count; ++i) {
            std::uint64_t wal_id = 0;
            std::uint64_t zz = 0;
            if (!get_varint(payload, len, pos, wal_id) ||
                !get_varint(payload, len, pos, zz) || len - pos < 8) {
              batch_reason = "decode_error";
              break;
            }
            if (wal_id >= wal_sid.size()) {
              batch_reason = "unknown_series";
              break;
            }
            running_time += zigzag_decode(zz);
            double value = 0.0;
            std::memcpy(&value, payload + pos, 8);
            pos += 8;
            out.push_back(IdReading{wal_sid[wal_id],
                                    Sample{static_cast<TimePoint>(running_time),
                                           value}});
          }
          if (batch_reason == nullptr && pos != len) {
            batch_reason = "decode_error";
          }
          if (batch_reason != nullptr) {
            out.resize(out_before);
            running_time = time_before;
            reason = batch_reason;
            break;
          }
          stats.samples_replayed += count;
        }
        ++stats.records_replayed;
        offset += walfmt::kRecordHeaderBytes + len;
      }
    }
    if (reason != nullptr) {
      stats.tail_truncated = true;
      stats.truncate_reason = reason;
      const std::int64_t on_disk = fs_->file_size(path);
      const std::uint64_t total =
          on_disk >= 0 ? static_cast<std::uint64_t>(on_disk) : data.size();
      if (total > offset) stats.truncated_bytes += total - offset;
      if (offset <= walfmt::kMagicBytes) {
        // Nothing valid in this segment: drop the whole file.
        if (!fs_->remove_file(path)) {
          ODA_LOG_WARN << "wal: failed to remove invalid segment " << path;
        }
      } else if (!fs_->truncate_file(path, offset)) {
        ODA_LOG_WARN << "wal: failed to truncate " << path << " at "
                     << offset;
      }
      ODA_LOG_WARN << "wal: recovery truncated " << path << " at byte "
                   << offset << " (" << reason << ")";
      stopped = true;
    }
  }

  // Prime the writer so a subsequent start() continues this WAL: same
  // wal-id space, same delta base, a fresh segment after the last one seen
  // (recovered segments are never appended to again).
  next_wal_id_ = static_cast<std::uint32_t>(wal_sid.size());
  for (std::uint32_t wal_id = 0; wal_id < wal_sid.size(); ++wal_id) {
    const std::uint32_t sid = wal_sid[wal_id].value;
    if (sid >= wal_id_of_.size()) wal_id_of_.resize(sid + 1, 0);
    wal_id_of_[sid] = wal_id + 1;
  }
  last_time_ = static_cast<TimePoint>(running_time);
  segment_seq_ = segments.empty() ? 0 : segments.back().first + 1;
  segment_bytes_ = 0;

  WalMetrics& m = WalMetrics::get();
  m.replayed.inc(stats.samples_replayed);
  m.truncated_bytes.inc(stats.truncated_bytes);
  recovery_stats_ = stats;
  return recovery_stats_;
}

WalRecoveryStats Wal::recover_into(TimeSeriesStore& store) {
  ODA_REQUIRE(store.wal() != this,
              "Wal::recover_into a store this Wal is attached to");
  std::vector<IdReading> readings;
  WalRecoveryStats stats = recover(readings);
  if (!readings.empty()) {
    store.insert_batch(std::span<const IdReading>(readings));
  }
  return stats;
}

bool Wal::start() {
  if (!wal_enabled()) return false;
  if (!recovered_) {
    std::vector<IdReading> discard;
    recover(discard);
  }
  {
    MutexLock lock(mu_);
    if (started_) return true;
  }
  if (!fs_->mkdirs(opts_.dir)) {
    enter_degraded("mkdir", errno);
    return false;
  }
  {
    MutexLock lock(mu_);
    stopping_ = false;
    started_ = true;
  }
  writer_ = std::thread([this] { writer_loop(); });
  return true;
}

void Wal::stop() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    stopping_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
  MutexLock lock(mu_);
  started_ = false;
}

bool Wal::append(std::span<const IdReading> readings) {
  if (!wal_enabled()) return false;
  if (readings.empty()) return !degraded();
  WalMetrics& m = WalMetrics::get();
  m.appended.inc(readings.size());
  accepted_samples_.fetch_add(readings.size(), std::memory_order_relaxed);
  if (degraded()) {
    lost_samples_.fetch_add(readings.size(), std::memory_order_relaxed);
    m.lost.inc(readings.size());
    return false;
  }
  {
    MutexLock lock(mu_);
    while (started_ && !stopping_ && !degraded() &&
           pending_.size() >= opts_.queue_capacity) {
      not_full_.wait(mu_);
    }
    if (started_ && !stopping_ && !degraded()) {
      PendingBatch batch;
      batch.seq = ++appended_seq_;
      batch.readings.assign(readings.begin(), readings.end());
      pending_.push_back(std::move(batch));
      m.queue_depth.set(static_cast<double>(pending_.size()));
      not_empty_.notify_one();
      return true;
    }
  }
  lost_samples_.fetch_add(readings.size(), std::memory_order_relaxed);
  m.lost.inc(readings.size());
  return false;
}

bool Wal::flush() {
  if (!wal_enabled()) return false;
  MutexLock lock(mu_);
  if (committed_seq_ >= appended_seq_ && pending_.empty()) {
    return !degraded();
  }
  if (!started_) return false;
  // Ride a sync marker through the queue so the writer fsyncs even with
  // fsync_each_commit off, then wait for its sequence number to commit.
  PendingBatch marker;
  marker.seq = ++appended_seq_;
  marker.sync = true;
  const std::uint64_t target = marker.seq;
  pending_.push_back(std::move(marker));
  not_empty_.notify_one();
  while (committed_seq_ < target && !degraded()) {
    committed_cv_.wait(mu_);
  }
  return !degraded();
}

void Wal::writer_loop() {
  std::vector<PendingBatch> group;
  for (;;) {
    group.clear();
    {
      MutexLock lock(mu_);
      while (pending_.empty() && !stopping_) {
        not_empty_.wait(mu_);
      }
      if (pending_.empty()) return;  // stopping and fully drained
      group.assign(std::make_move_iterator(pending_.begin()),
                   std::make_move_iterator(pending_.end()));
      pending_.clear();
      WalMetrics::get().queue_depth.set(0.0);
      not_full_.notify_all();
    }
    const std::uint64_t last_seq = group.back().seq;
    std::size_t nsamples = 0;
    for (const PendingBatch& b : group) nsamples += b.readings.size();
    bool ok;
    if (degraded()) {
      ok = false;
    } else {
      ok = commit_group(group);
    }
    if (!ok && nsamples > 0) {
      lost_samples_.fetch_add(nsamples, std::memory_order_relaxed);
      WalMetrics::get().lost.inc(nsamples);
    }
    {
      MutexLock lock(mu_);
      committed_seq_ = std::max(committed_seq_, last_seq);
      committed_cv_.notify_all();
      // A degradation mid-commit may strand producers in the not-full
      // wait; wake them so they count their batches lost and move on.
      if (degraded()) not_full_.notify_all();
    }
  }
}

bool Wal::commit_group(std::vector<PendingBatch>& group) {
  encode_buf_.clear();
  std::string payload;
  std::size_t nsamples = 0;
  bool want_sync = opts_.fsync_each_commit;
  for (const PendingBatch& batch : group) {
    if (batch.sync) want_sync = true;
    if (batch.readings.empty()) continue;
    // Intern records for series this WAL has never written, before the
    // batch record that references them.
    for (const IdReading& r : batch.readings) {
      const std::uint32_t sid = r.id.value;
      if (sid >= wal_id_of_.size()) wal_id_of_.resize(sid + 1, 0);
      if (wal_id_of_[sid] != 0) continue;
      const std::uint32_t wal_id = next_wal_id_++;
      wal_id_of_[sid] = wal_id + 1;
      const std::string& path = SeriesInterner::global().path(r.id);
      payload.clear();
      put_u32(payload, wal_id);
      put_u32(payload, static_cast<std::uint32_t>(path.size()));
      payload.append(path);
      put_record(encode_buf_, walfmt::kRecordIntern, payload);
    }
    payload.clear();
    put_u32(payload, static_cast<std::uint32_t>(batch.readings.size()));
    for (const IdReading& r : batch.readings) {
      put_varint(payload, wal_id_of_[r.id.value] - 1);
      const std::uint64_t now = static_cast<std::uint64_t>(r.sample.time);
      const std::uint64_t delta =
          now - static_cast<std::uint64_t>(last_time_);
      put_varint(payload, zigzag_encode(delta));
      last_time_ = r.sample.time;
      char raw[8];
      std::memcpy(raw, &r.sample.value, 8);
      payload.append(raw, 8);
    }
    put_record(encode_buf_, walfmt::kRecordBatch, payload);
    nsamples += batch.readings.size();
  }
  if (encode_buf_.empty()) {
    // Only flush markers: sync the current segment if it has content.
    if (want_sync && segment_bytes_ > 0) {
      const WalFs::AppendResult res =
          fs_->append(segment_path(segment_seq_), nullptr, 0, true);
      if (!res.synced) {
        enter_degraded("fsync", res.err);
        return false;
      }
    }
    return true;
  }

  WalMetrics& m = WalMetrics::get();
  if (segment_bytes_ >= opts_.segment_max_bytes) {
    ++segment_seq_;
    segment_bytes_ = 0;
  }
  const bool fresh_segment = segment_bytes_ == 0;
  if (fresh_segment) {
    encode_buf_.insert(0, walfmt::kMagic, walfmt::kMagicBytes);
  }
  const std::string path = segment_path(segment_seq_);
  const std::uint64_t offset_before = segment_bytes_;
  const auto commit_start = std::chrono::steady_clock::now();
  const WalFs::AppendResult res =
      fs_->append(path, encode_buf_.data(), encode_buf_.size(), want_sync);
  m.commit_seconds.observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - commit_start)
                               .count());
  if (res.written < encode_buf_.size() || res.err != 0) {
    // Roll the torn tail back so the surviving prefix stays clean; if the
    // truncate fails too, recovery's first-invalid-record rule covers it.
    if (res.written > 0 && !fs_->truncate_file(path, offset_before)) {
      ODA_LOG_WARN << "wal: could not roll back torn commit in " << path;
    }
    enter_degraded("append", res.err);
    return false;
  }
  if (want_sync && !res.synced) {
    enter_degraded("fsync", res.err);
    return false;
  }
  if (fresh_segment) m.segments.inc();
  segment_bytes_ += encode_buf_.size();
  committed_samples_.fetch_add(nsamples, std::memory_order_relaxed);
  m.committed.inc(nsamples);
  m.commits.inc();
  m.bytes_written.inc(encode_buf_.size());
  return true;
}

void Wal::enter_degraded(const char* what, int err) {
  // relaxed: the flag is advisory (producers re-check under mu_); the
  // exchange only dedups the one-time log line and gauge flip.
  if (degraded_.exchange(true, std::memory_order_relaxed)) {
    return;
  }
  WalMetrics::get().degraded.set(1.0);
  ODA_LOG_ERROR << "wal: storage fault (" << what
                << (err != 0 ? std::string(": ") + std::strerror(err) : "")
                << ") — degrading to in-memory-only mode; ingest continues, "
                   "samples are no longer durable (oda_wal_degraded=1)";
}

}  // namespace oda::telemetry
