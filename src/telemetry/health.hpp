// Sensor-health tracking: classifies every collected series as healthy,
// flaky, or quarantined from two evidence streams — read outcomes reported
// by the collector (dropouts, deadline misses, breaker skips) and value
// heuristics over the successful readings (flatline after variation,
// out-of-plausible-range, staleness). Quarantine transitions are published
// on the bus ("_health/<sensor-path>") and exported through the obs
// registry, and the per-series quality flag is queryable so descriptive
// analytics can skip poisoned series and report a coverage fraction instead
// of silently averaging them (docs/RESILIENCE.md).
//
// The tracker is a strict overlay: a series it has never seen is reported
// healthy/usable, and a fault-free pipeline never changes state.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "common/types.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/series_id.hpp"

namespace oda::obs {
class Counter;
class Gauge;
}  // namespace oda::obs

namespace oda::telemetry {

enum class SensorState : std::uint8_t { kHealthy = 0, kFlaky, kQuarantined };
const char* sensor_state_name(SensorState s);

/// What one collector read attempt chain ultimately produced.
enum class ReadOutcome : std::uint8_t {
  kOk = 0,       // a value was ingested
  kDropout,      // every attempt returned no value
  kDeadline,     // accumulated latency exceeded the per-read deadline
  kBreakerOpen,  // the read was skipped: this sensor's breaker is open
};
const char* read_outcome_name(ReadOutcome o);

struct HealthPolicy {
  /// Sliding read-outcome window per series (capped at 64).
  std::size_t window = 32;
  /// Outcomes required before failure rates are trusted.
  std::size_t min_observations = 4;
  /// Window failure fraction at which a series turns flaky / quarantined.
  double flaky_failure_rate = 0.125;
  double quarantine_failure_rate = 0.5;
  /// Identical consecutive successful values (after the series has varied
  /// at least once) that quarantine it as stuck. 0 disables the heuristic.
  /// Deliberately long by default: utilization-style sensors sit flat at
  /// 0 or 1 for many minutes during normal operation (240 samples at a
  /// 15 s period is an hour of bit-identical readings).
  std::size_t flatline_run = 240;
  /// Consecutive out-of-range successes that quarantine it. 0 disables.
  std::size_t out_of_range_run = 4;
  /// No successful read for this long => quarantined (step() sweep).
  /// 0 disables the heuristic.
  Duration staleness = 30 * kMinute;
  /// Consecutive clean (in-range, non-flat) successes that return a
  /// quarantined or flaky series to healthy.
  std::size_t recovery_successes = 8;
};

class SensorHealthTracker {
 public:
  /// `bus` may be null; when set, quarantine enter/leave transitions are
  /// published as Readings on "_health/<sensor-path>" with the new state
  /// encoded as a value (0 healthy / 1 flaky / 2 quarantined).
  explicit SensorHealthTracker(HealthPolicy policy = {},
                               MessageBus* bus = nullptr);

  /// Registers a plausible-range heuristic for sensors matching the glob
  /// pattern (first matching pattern wins, in registration order).
  void set_range(const std::string& pattern, double lo, double hi)
      ODA_EXCLUDES(mu_);

  /// Feed one read outcome. The collector calls these once per sensor per
  /// sampling pass; thread-safe (internally locked). Bus publishes for any
  /// resulting quarantine transition happen after the tracker lock is
  /// released, so a subscriber may query this tracker re-entrantly.
  void record_success(SeriesId id, const std::string& path, TimePoint now,
                      double value) ODA_EXCLUDES(mu_);
  void record_failure(SeriesId id, const std::string& path, TimePoint now,
                      ReadOutcome reason) ODA_EXCLUDES(mu_);

  /// Staleness sweep — call occasionally (the collector does, once per
  /// collect pass).
  void step(TimePoint now) ODA_EXCLUDES(mu_);

  // -- quality queries ---------------------------------------------------------
  /// Unknown series report healthy: the tracker is a strict overlay.
  SensorState state(SeriesId id) const ODA_EXCLUDES(mu_);
  SensorState state(const std::string& path) const ODA_EXCLUDES(mu_);
  /// True unless the series is quarantined.
  bool usable(SeriesId id) const ODA_EXCLUDES(mu_);
  bool usable(const std::string& path) const ODA_EXCLUDES(mu_);

  /// Paths currently quarantined, sorted.
  std::vector<std::string> quarantined() const ODA_EXCLUDES(mu_);

  struct Counts {
    std::size_t healthy = 0;
    std::size_t flaky = 0;
    std::size_t quarantined = 0;
    std::size_t tracked = 0;
  };
  Counts counts() const ODA_EXCLUDES(mu_);

  /// Total state transitions observed (for tests/dashboards).
  std::uint64_t transitions() const ODA_EXCLUDES(mu_);

  const HealthPolicy& policy() const { return policy_; }

 private:
  struct RangeRule {
    std::string pattern;
    double lo = 0.0;
    double hi = 0.0;
  };

  struct SeriesHealth {
    std::string path;
    SensorState state = SensorState::kHealthy;
    // Sliding outcome window: bit 0 = newest outcome, 1 = failure.
    std::uint64_t window_bits = 0;
    std::size_t window_fill = 0;
    std::size_t window_failures = 0;
    double last_value = 0.0;
    bool has_value = false;
    bool has_varied = false;       // saw at least two distinct values
    std::size_t flat_run = 0;      // identical consecutive successes
    std::size_t oor_run = 0;       // consecutive out-of-range successes
    std::size_t clean_run = 0;     // consecutive clean successes
    TimePoint last_success = kTimeMin;
    bool range_resolved = false;
    bool has_range = false;
    double range_lo = 0.0;
    double range_hi = 0.0;
  };

  SeriesHealth& series_locked(SeriesId id, const std::string& path)
      ODA_REQUIRES(mu_);
  void push_outcome_locked(SeriesHealth& s, bool failure) ODA_REQUIRES(mu_);
  double failure_rate_locked(const SeriesHealth& s) const ODA_REQUIRES(mu_);
  void reevaluate_locked(SeriesHealth& s, TimePoint now) ODA_REQUIRES(mu_);
  void transition_locked(SeriesHealth& s, SensorState to, TimePoint now)
      ODA_REQUIRES(mu_);
  void update_gauges_locked() ODA_REQUIRES(mu_);
  /// Drains pending_publish_ into the bus. Must be called with mu_
  /// released: publishing under the tracker lock would invert the
  /// bus -> health order and deadlock any subscriber that queries the
  /// tracker from its callback.
  void flush_publishes(std::vector<Reading>& pending) ODA_EXCLUDES(mu_);

  HealthPolicy policy_;
  MessageBus* bus_;
  mutable Mutex mu_ ODA_ACQUIRED_AFTER(lock_order::health)
      ODA_ACQUIRED_BEFORE(lock_order::store_shard){LockRankId::kHealth};
  std::unordered_map<std::uint32_t, SeriesHealth> series_ ODA_GUARDED_BY(mu_);
  std::vector<RangeRule> ranges_ ODA_GUARDED_BY(mu_);
  std::uint64_t transitions_ ODA_GUARDED_BY(mu_) = 0;
  /// Quarantine transitions queued by transition_locked(); drained by the
  /// public entry points after releasing mu_ (see flush_publishes).
  std::vector<Reading> pending_publish_ ODA_GUARDED_BY(mu_);
  // Owned by the global registry (aggregate across trackers, like the bus).
  obs::Counter* transition_counters_[3] = {nullptr, nullptr, nullptr};
  obs::Gauge* state_gauges_[3] = {nullptr, nullptr, nullptr};
};

}  // namespace oda::telemetry
