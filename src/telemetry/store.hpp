// In-memory time-series store: bounded per-sensor ring storage with
// time-range queries, bucketed downsampling, and aligned multi-sensor frames
// (the tabular input the ML-flavoured analytics consume).
//
// Built for ingest/query throughput (docs/STORE.md):
//  * series are keyed by interned SeriesId handles (series_id.hpp) and
//    spread over N lock-striped shards, so writers on different sensors do
//    not contend and no hot path re-hashes path strings;
//  * insert_batch() groups a whole collector pass by shard and takes each
//    shard lock once, replacing per-sample lock acquisitions;
//  * queries walk the ring's contiguous spans and aggregate in one
//    streaming pass (Welford for stddev) without materializing per-bucket
//    value vectors;
//  * frame() fans independent columns out over an optional ThreadPool.
// The string-keyed API is retained as a thin wrapper over the id API, with
// query semantics identical to the original single-map store.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/sample.hpp"
#include "telemetry/series_id.hpp"

namespace oda::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace oda::obs

namespace oda::telemetry {

class Wal;

enum class Aggregation { kMean, kMin, kMax, kSum, kLast, kCount, kStdDev };

struct SeriesSlice {
  std::vector<TimePoint> times;
  std::vector<double> values;

  std::size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }
};

/// An aligned multi-sensor table: rows are time buckets, columns sensors.
/// Storage is one flat column-major buffer: column c occupies the contiguous
/// stripe values_[base_ + c * stride_ .. + rows()), with the stride rounded
/// up to a whole cache line (8 doubles) and column 0 aligned to a 64-byte
/// boundary, so parallel per-column writers never share a cache line.
/// Missing data is NaN.
struct Frame {
  std::vector<std::string> columns;
  std::vector<TimePoint> times;

  std::size_t rows() const { return times.size(); }
  std::size_t cols() const { return columns.size(); }

  /// Sizes the buffer for rows x cols and fills every cell with NaN.
  /// `times`/`columns` stay the caller's to populate (frame() sets them so
  /// rows() == rows and cols() == cols afterwards).
  void allocate(std::size_t rows, std::size_t cols);

  /// Cell accessors (unchecked: the row/col must be in range).
  double at(std::size_t row, std::size_t col) const {
    return values_[base_ + col * stride_ + row];
  }
  double& at(std::size_t row, std::size_t col) {
    return values_[base_ + col * stride_ + row];
  }

  /// Column c's cells as one contiguous stripe of rows() doubles — the
  /// fast path for per-sensor scans (no per-row indirection).
  std::span<const double> column_values(std::size_t col) const {
    return {values_.data() + base_ + col * stride_, rows_};
  }
  std::span<double> column_values(std::size_t col) {
    return {values_.data() + base_ + col * stride_, rows_};
  }

  /// Copy of the named column; throws ContractError when absent.
  std::vector<double> column(const std::string& name) const;

 private:
  // Copies keep base_ as-is: the slack allocated for alignment travels with
  // the buffer, so stale offsets stay in range — a copy merely loses the
  // 64-byte guarantee (a perf nicety, never a correctness requirement).
  std::vector<double> values_;
  std::size_t rows_ = 0;    // row count fixed at allocate() time
  std::size_t stride_ = 0;  // doubles between column starts (>= rows_)
  std::size_t base_ = 0;    // leading pad aligning column 0 to 64 bytes
};

/// Streaming aggregation state: one pass over the values yields every
/// Aggregation result. Shared by the store's bucket walk and the aggregate()
/// helper so both produce bit-identical numbers. Min/max update with the
/// exact std::min_element/std::max_element comparison order so NaN handling
/// matches a materialized std::vector pass.
struct AggAccumulator {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
  double mean = 0.0;  // Welford running mean
  double m2 = 0.0;    // Welford sum of squared deviations

  void add(double v) {
    if (count == 0) {
      min = v;
      max = v;
    } else {
      if (v < min) min = v;
      if (max < v) max = v;
    }
    sum += v;
    last = v;
    ++count;
    const double delta = v - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (v - mean);
  }

  void reset() { *this = AggAccumulator{}; }

  /// The aggregate over everything add()ed so far; NaN when empty.
  double result(Aggregation agg) const;
};

class TimeSeriesStore {
 public:
  /// capacity_per_sensor bounds retained samples per path; `shards` is
  /// rounded up to a power of two (0 selects the default of 16).
  explicit TimeSeriesStore(std::size_t capacity_per_sensor = 1 << 16,
                           std::size_t shards = 0);

  // -- ingest -----------------------------------------------------------------
  void insert(const std::string& path, Sample sample);
  void insert(const Reading& reading);
  /// Id-handle fast path; `id` must come from SeriesInterner::global().
  void insert(SeriesId id, Sample sample);
  /// Batch ingest: groups readings by shard (stable, so per-series order is
  /// preserved) and takes each shard lock once per batch.
  void insert_batch(std::span<const IdReading> readings);
  /// String-keyed convenience wrapper: interns, then batch-inserts.
  void insert_batch(std::span<const Reading> readings);

  /// Optional pool used by frame() to assemble columns in parallel. The pool
  /// must outlive the store (or be reset to nullptr first).
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Optional durable write-ahead log (telemetry/wal.hpp): when attached,
  /// every ingest path appends to it *before* taking any shard lock, so
  /// durability rides the normal batching and never extends lock hold
  /// times. Attach only after Wal::recover_into() has replayed into this
  /// store (a store with the Wal already attached would re-log its own
  /// replay); the Wal must outlive the store or be detached first.
  void set_wal(Wal* wal) { wal_ = wal; }
  Wal* wal() const { return wal_; }

  // -- catalog ----------------------------------------------------------------
  bool contains(const std::string& path) const;
  bool contains(SeriesId id) const;
  /// All stored paths, sorted (the original std::map iteration order).
  std::vector<std::string> paths() const;
  std::vector<std::string> match(const std::string& pattern) const;
  std::size_t sample_count(const std::string& path) const;
  std::size_t sample_count(SeriesId id) const;
  std::uint64_t total_inserted() const {
    // relaxed: monotonic statistics counter; synchronizes nothing (matches
    // Collector::samples_collected_).
    return total_inserted_.load(std::memory_order_relaxed);
  }
  std::size_t shard_count() const { return shards_.size(); }

  // -- queries ----------------------------------------------------------------
  std::optional<Sample> latest(const std::string& path) const;
  std::optional<Sample> latest(SeriesId id) const;
  /// Samples with time in [from, to).
  SeriesSlice query(const std::string& path, TimePoint from, TimePoint to) const;
  SeriesSlice query(SeriesId id, TimePoint from, TimePoint to) const;
  /// All retained samples.
  SeriesSlice query_all(const std::string& path) const;

  /// Downsamples [from, to) into fixed buckets of `bucket` seconds.
  SeriesSlice query_aggregated(const std::string& path, TimePoint from,
                               TimePoint to, Duration bucket,
                               Aggregation agg) const;
  SeriesSlice query_aggregated(SeriesId id, TimePoint from, TimePoint to,
                               Duration bucket, Aggregation agg) const;

  /// Aligned frame over several sensors with a shared bucket grid. Columns
  /// are independent and are computed on the pool set via set_pool(), when
  /// there is one.
  Frame frame(const std::vector<std::string>& sensor_paths, TimePoint from,
              TimePoint to, Duration bucket,
              Aggregation agg = Aggregation::kMean) const;

 private:
  struct Series {
    RingBuffer<Sample> samples;
    explicit Series(std::size_t cap) : samples(cap) {}
  };

  /// One lock stripe: its own reader/writer lock and id-keyed series map.
  /// The shard lock is held across interner path lookups and (first-use)
  /// metric registration in series_locked, hence the BEFORE(interner) edge.
  struct Shard {
    mutable SharedMutex mu ODA_ACQUIRED_AFTER(lock_order::store_shard)
        ODA_ACQUIRED_BEFORE(lock_order::interner){LockRankId::kStoreShard};
    std::unordered_map<std::uint32_t, std::unique_ptr<Series>> series
        ODA_GUARDED_BY(mu);
  };

  Shard& shard_of(SeriesId id) const {
    return *shards_[id.value & shard_mask_];
  }
  /// Creates the series for `id` if absent; caller holds the shard lock.
  Series& series_locked(Shard& shard, SeriesId id) ODA_REQUIRES(shard.mu);
  void fill_column(Frame& f, std::size_t col, SeriesId id, TimePoint from,
                   TimePoint to, Duration bucket, Aggregation agg) const;

  std::size_t capacity_;
  std::size_t shard_mask_ = 0;  // shards_.size() - 1 (power of two)
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> total_inserted_{0};
  ThreadPool* pool_ = nullptr;
  Wal* wal_ = nullptr;
  // Per-shard instruments, owned by the global registry and shared across
  // stores with the same shard index (aggregate semantics, like the
  // process-wide insert/query counters). Lock-wait attribution lives in the
  // uniform oda_lock_wait_seconds{rank="store_shard"} contention table.
  std::vector<obs::Gauge*> shard_series_;
};

/// Aggregates a value list (helper shared with dashboards). Implemented on
/// AggAccumulator, so it matches query_aggregated() bit-for-bit.
double aggregate(const std::vector<double>& values, Aggregation agg);

}  // namespace oda::telemetry
