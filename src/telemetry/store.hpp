// In-memory time-series store: bounded per-sensor ring storage with
// time-range queries, bucketed downsampling, and aligned multi-sensor frames
// (the tabular input the ML-flavoured analytics consume). Thread-safe via a
// reader/writer lock per store.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/ring_buffer.hpp"
#include "telemetry/sample.hpp"

namespace oda::telemetry {

enum class Aggregation { kMean, kMin, kMax, kSum, kLast, kCount, kStdDev };

struct SeriesSlice {
  std::vector<TimePoint> times;
  std::vector<double> values;

  std::size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }
};

/// An aligned multi-sensor table: rows are time buckets, columns sensors.
struct Frame {
  std::vector<std::string> columns;
  std::vector<TimePoint> times;
  /// values[row][col]; missing data is NaN.
  std::vector<std::vector<double>> values;

  std::size_t rows() const { return times.size(); }
  std::size_t cols() const { return columns.size(); }
  std::vector<double> column(const std::string& name) const;
};

class TimeSeriesStore {
 public:
  /// capacity_per_sensor bounds retained samples per path.
  explicit TimeSeriesStore(std::size_t capacity_per_sensor = 1 << 16);

  void insert(const std::string& path, Sample sample);
  void insert(const Reading& reading);

  bool contains(const std::string& path) const;
  std::vector<std::string> paths() const;
  std::vector<std::string> match(const std::string& pattern) const;
  std::size_t sample_count(const std::string& path) const;
  std::uint64_t total_inserted() const;

  std::optional<Sample> latest(const std::string& path) const;
  /// Samples with time in [from, to).
  SeriesSlice query(const std::string& path, TimePoint from, TimePoint to) const;
  /// All retained samples.
  SeriesSlice query_all(const std::string& path) const;

  /// Downsamples [from, to) into fixed buckets of `bucket` seconds.
  SeriesSlice query_aggregated(const std::string& path, TimePoint from,
                               TimePoint to, Duration bucket,
                               Aggregation agg) const;

  /// Aligned frame over several sensors with a shared bucket grid.
  Frame frame(const std::vector<std::string>& sensor_paths, TimePoint from,
              TimePoint to, Duration bucket,
              Aggregation agg = Aggregation::kMean) const;

 private:
  struct Series {
    RingBuffer<Sample> samples;
    explicit Series(std::size_t cap) : samples(cap) {}
  };

  const Series* find_series(const std::string& path) const;

  std::size_t capacity_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Series>> series_;
  std::uint64_t total_inserted_ = 0;
};

/// Aggregates a value list (helper shared with dashboards).
double aggregate(const std::vector<double>& values, Aggregation agg);

}  // namespace oda::telemetry
