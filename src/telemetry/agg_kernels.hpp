// Single-pass bucket aggregation kernels over a ring buffer's two contiguous
// spans. These are the read hot path behind query_aggregated() and frame():
// instead of folding every sample through the full AggAccumulator state
// machine (min+max+sum+last+Welford, ~10 ops/sample) and flushing through a
// per-sample `while` bucket ladder, the walk first finds each bucket's
// contiguous sample run (one time compare per sample, a direct index jump
// over empty-bucket gaps) and then reduces the run with a tight
// per-Aggregation loop that touches only the state that aggregation needs —
// 0 value reads for kCount, 1 for kLast, a vectorizable add/compare stream
// for kSum/kMean/kMin/kMax.
//
// Contract: results are bit-identical to folding the same samples through
// AggAccumulator (enforced by tests/test_agg_kernels.cpp and the
// test_store_equiv randomized model). That pins down the floating-point
// details: sums and Welford stddev are strict left-folds in sample order
// (no reassociation), and min/max replicate the exact `if (v < min)`
// comparison order, so a leading NaN is sticky and later NaNs are skipped,
// matching std::min_element semantics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "telemetry/sample.hpp"
#include "telemetry/store.hpp"

namespace oda::telemetry {

/// Dense driver (frame fill): aggregates `a` then `b` (ascending time, all
/// samples in [from, from + n_buckets * bucket)) into fixed buckets of
/// `bucket` seconds starting at `from`, writing out[(t - from) / bucket] for
/// every non-empty bucket. Empty buckets are left untouched, so callers
/// pre-fill `out` with NaN. `out` must hold n_buckets doubles.
void bucket_aggregate_dense(std::span<const Sample> a, std::span<const Sample> b,
                            TimePoint from, Duration bucket, Aggregation agg,
                            std::size_t n_buckets, double* out);

/// Sparse driver (query_aggregated): same walk, but appends one
/// (bucket_start, aggregate) pair per non-empty bucket — bucket indices are
/// unbounded here (the caller's [from, to) range can be astronomically wide),
/// so no dense output array is materialized.
void bucket_aggregate_sparse(std::span<const Sample> a,
                             std::span<const Sample> b, TimePoint from,
                             Duration bucket, Aggregation agg,
                             std::vector<TimePoint>& out_times,
                             std::vector<double>& out_values);

}  // namespace oda::telemetry
