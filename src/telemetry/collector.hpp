// Collector: samples the simulated facility's sensors into the store and
// onto the bus — the LDMS/DCDB "sampler plugin" role. Sampling is organized
// in groups, each with its own glob filter and period (facility sensors are
// typically slower than node sensors), and the sensor reads of a pass can be
// spread across a thread pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "sim/cluster.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/sample.hpp"
#include "telemetry/series_id.hpp"
#include "telemetry/store.hpp"

namespace oda::obs {
class Counter;
}  // namespace oda::obs

namespace oda::telemetry {

struct CollectorGroup {
  std::string name;
  std::string pattern;   // glob over sensor paths
  Duration period = 15;  // sampling period (multiple of sim dt recommended)
};

class Collector {
 public:
  /// Store and bus may be null if unused; pool may be null for serial reads.
  Collector(sim::ClusterSimulation& cluster, TimeSeriesStore* store,
            MessageBus* bus, ThreadPool* pool = nullptr);

  /// Adds a sampling group; returns the number of sensors it matched.
  std::size_t add_group(CollectorGroup group);
  /// Convenience: one group covering every sensor at the given period.
  std::size_t add_all_sensors(Duration period);

  /// Samples every group whose period divides the current sim time. Call
  /// once per sim step (after cluster.step()).
  void collect();

  /// Catalog of all sensors known to the collector's cluster.
  const SensorCatalog& catalog() const { return catalog_; }
  /// Total samples fanned out across all groups. Atomic so dashboards may
  /// poll it while collect() runs on the pipeline thread.
  std::uint64_t samples_collected() const {
    // relaxed: monotonic statistics counter; synchronizes nothing.
    return samples_collected_.load(std::memory_order_relaxed);
  }

 private:
  struct Group {
    CollectorGroup def;
    std::vector<std::string> sensor_paths;
    std::vector<SeriesId> sensor_ids;  // interned once at add_group()
    obs::Counter* samples = nullptr;   // owned by the global registry
  };

  void read_group(const Group& group, TimePoint now,
                  std::vector<IdReading>& readings);

  sim::ClusterSimulation& cluster_;
  TimeSeriesStore* store_;
  MessageBus* bus_;
  ThreadPool* pool_;
  SensorCatalog catalog_;
  std::vector<Group> groups_;
  std::atomic<std::uint64_t> samples_collected_{0};
  /// Root stream for the parallel read path's per-chunk fault-overlay Rngs.
  /// Parallel passes draw overlay randomness from split children instead of
  /// the simulation stream, so sensor reads run genuinely concurrently; the
  /// serial path keeps using the cluster's own Rng.
  Rng overlay_rng_;
};

}  // namespace oda::telemetry
