// Collector: samples the simulated facility's sensors into the store and
// onto the bus — the LDMS/DCDB "sampler plugin" role. Sampling is organized
// in groups, each with its own glob filter and period (facility sensors are
// typically slower than node sensors), and the sensor reads of a pass can be
// spread across a thread pool.
//
// The read path is failure-aware (docs/RESILIENCE.md): every sensor read
// goes through a bounded retry loop with deterministic exponential backoff
// and a per-read simulated-latency deadline, behind a per-sensor three-state
// circuit breaker (closed -> open after N consecutive failures -> half-open
// probe). A failed or skipped read becomes an accounted gap — never a hang
// and never a silent hole: samples_expected() == samples_collected() +
// gaps_total() holds exactly. Outcomes feed an optional SensorHealthTracker.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "sim/cluster.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/health.hpp"
#include "telemetry/sample.hpp"
#include "telemetry/series_id.hpp"
#include "telemetry/store.hpp"

namespace oda::obs {
class Counter;
class Gauge;
}  // namespace oda::obs

namespace oda::telemetry {

struct CollectorGroup {
  std::string name;
  std::string pattern;   // glob over sensor paths
  Duration period = 15;  // sampling period (multiple of sim dt recommended)
};

/// Bounded-retry policy for one sensor read. All durations are *simulated*
/// seconds: backoff and stall latency are charged against the deadline, so a
/// stalled sensor costs its budget and nothing more.
struct RetryPolicy {
  int max_attempts = 3;          // total attempts (1 = no retry)
  double base_backoff_s = 0.25;  // delay before the first retry
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.25;  // ± fraction, drawn from the read's Rng
  double read_deadline_s = 5.0;   // latency budget for the whole chain
};

/// Backoff before retry `retry_index` (0-based), jittered from `rng`.
/// Deterministic for a given policy, index, and Rng state.
double retry_backoff_s(const RetryPolicy& policy, int retry_index, Rng& rng);

/// Per-sensor circuit-breaker policy. Cooldown is simulated time.
struct BreakerPolicy {
  int failure_threshold = 5;     // consecutive failed reads to open
  Duration open_cooldown = 120;  // sim seconds before a half-open probe
  int half_open_successes = 2;   // probe successes required to close
};

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };
const char* breaker_state_name(BreakerState s);

class Collector {
 public:
  /// Store and bus may be null if unused; pool may be null for serial reads.
  Collector(sim::ClusterSimulation& cluster, TimeSeriesStore* store,
            MessageBus* bus, ThreadPool* pool = nullptr);

  /// Adds a sampling group; returns the number of sensors it matched.
  /// A pattern matching zero sensors is almost always a config bug: it is
  /// warned about and exported as oda_collector_empty_groups.
  std::size_t add_group(CollectorGroup group);
  /// Convenience: one group covering every sensor at the given period.
  std::size_t add_all_sensors(Duration period);

  /// Samples every group whose period divides the current sim time. Call
  /// once per sim step (after cluster.step()).
  void collect();

  // -- resilience configuration ------------------------------------------------
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }
  void set_breaker_policy(const BreakerPolicy& policy) { breaker_ = policy; }
  const BreakerPolicy& breaker_policy() const { return breaker_; }
  /// Optional health tracker fed with every read outcome (may be null).
  /// Must outlive the collector or be reset to null first.
  void set_health_tracker(SensorHealthTracker* tracker) { health_ = tracker; }

  /// Breaker state for one sensor (kClosed if the path is unknown).
  BreakerState breaker_state(const std::string& path) const;
  /// Sensors whose breaker is currently open.
  std::size_t open_breakers() const {
    // relaxed: statistics gauge; synchronizes nothing.
    return static_cast<std::size_t>(
        open_breakers_.load(std::memory_order_relaxed));
  }

  // -- accounting --------------------------------------------------------------
  /// Catalog of all sensors known to the collector's cluster.
  const SensorCatalog& catalog() const { return catalog_; }
  /// Successfully read samples fanned out across all groups. Atomic so
  /// dashboards may poll it while collect() runs on the pipeline thread.
  std::uint64_t samples_collected() const {
    // relaxed: monotonic statistics counter; synchronizes nothing.
    return samples_collected_.load(std::memory_order_relaxed);
  }
  /// Samples every due group *should* have produced (matched sensors per
  /// pass). Invariant: samples_expected() == samples_collected() +
  /// gaps_total().
  std::uint64_t samples_expected() const {
    // relaxed: monotonic statistics counter; synchronizes nothing.
    return samples_expected_.load(std::memory_order_relaxed);
  }
  /// Reads that produced no sample (dropout, deadline, breaker open).
  std::uint64_t gaps_total() const {
    // relaxed: monotonic statistics counter; synchronizes nothing.
    return gaps_total_.load(std::memory_order_relaxed);
  }
  /// Retry attempts taken beyond first attempts.
  std::uint64_t retries_total() const {
    // relaxed: monotonic statistics counter; synchronizes nothing.
    return retries_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Group {
    CollectorGroup def;
    std::vector<std::string> sensor_paths;
    std::vector<SeriesId> sensor_ids;  // interned once at add_group()
    obs::Counter* samples = nullptr;   // owned by the global registry
    obs::Counter* retries = nullptr;
    // Gap counters indexed by ReadOutcome (kDropout/kDeadline/kBreakerOpen).
    obs::Counter* gaps[3] = {nullptr, nullptr, nullptr};
  };

  /// Per-sensor breaker. Entries are created in add_group() and the map is
  /// never mutated during collect(); each sensor belongs to exactly one
  /// chunk of one group pass, so its entry is only mutated by one thread at
  /// a time (pass boundaries synchronize via the pool's futures). `state`
  /// is additionally atomic because breaker_state() observes it from
  /// arbitrary threads while a parallel pass is transitioning it.
  struct Breaker {
    std::atomic<BreakerState> state{BreakerState::kClosed};
    int consecutive_failures = 0;
    int probe_successes = 0;
    TimePoint opened_at = 0;
  };

  /// Outcome of the full retry chain for one sensor slot in a pass.
  struct SlotResult {
    double value = 0.0;
    std::uint32_t retries = 0;
    ReadOutcome outcome = ReadOutcome::kOk;
  };

  /// Runs the breaker gate + retry loop for one sensor. `value_rng` draws
  /// the fault-overlay randomness (null = the simulation's own stream, the
  /// serial path); `aux_rng` draws backoff jitter. May run on pool threads.
  SlotResult attempt_read(const std::string& path, SeriesId id, TimePoint now,
                          Rng* value_rng, Rng& aux_rng);
  void transition_breaker(Breaker& breaker, BreakerState to, TimePoint now);
  void on_read_success(Breaker& breaker, TimePoint now);
  void on_read_failure(Breaker& breaker, TimePoint now);

  void read_group(const Group& group, TimePoint now,
                  std::vector<SlotResult>& slots);

  sim::ClusterSimulation& cluster_;
  TimeSeriesStore* store_;
  MessageBus* bus_;
  ThreadPool* pool_;
  SensorCatalog catalog_;
  std::vector<Group> groups_;
  RetryPolicy retry_;
  BreakerPolicy breaker_;
  SensorHealthTracker* health_ = nullptr;
  std::unordered_map<std::uint32_t, Breaker> breakers_;
  std::atomic<std::uint64_t> samples_collected_{0};
  std::atomic<std::uint64_t> samples_expected_{0};
  std::atomic<std::uint64_t> gaps_total_{0};
  std::atomic<std::uint64_t> retries_total_{0};
  // relaxed counters; open_breakers_ is signed so transient over-decrement
  // bugs would show up as negative rather than wrapping.
  std::atomic<std::int64_t> open_breakers_{0};
  std::size_t empty_groups_ = 0;
  obs::Counter* breaker_transitions_[3] = {nullptr, nullptr, nullptr};
  obs::Gauge* open_breakers_gauge_ = nullptr;
  obs::Gauge* empty_groups_gauge_ = nullptr;
  /// Root stream for the parallel read path's per-chunk fault-overlay Rngs.
  /// Parallel passes draw overlay randomness from split children instead of
  /// the simulation stream, so sensor reads run genuinely concurrently; the
  /// serial path keeps using the cluster's own Rng.
  Rng overlay_rng_;
  /// Backoff-jitter stream for the serial path (the parallel path draws
  /// jitter from its chunk Rng). Only consumed when a read actually retries,
  /// so fault-free runs never touch it.
  Rng serial_backoff_rng_;
};

}  // namespace oda::telemetry
