#include "telemetry/store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "obs/metrics.hpp"

namespace oda::telemetry {

namespace {

/// Process-wide store metrics (aggregate over every TimeSeriesStore — the
/// per-instance total_inserted() accessor remains exact per store). The
/// memory gauge grows by an estimate of each new series' footprint; ring
/// storage is preallocated at full capacity, so the estimate is taken once
/// at series creation. Stores are pipeline-lifetime objects, so the gauge is
/// treated as monotone (no subtraction on store destruction).
struct StoreMetrics {
  obs::Counter& inserts;
  obs::Counter& queries;
  obs::Gauge& memory_bytes;

  static StoreMetrics& get() {
    static StoreMetrics m{
        obs::MetricsRegistry::global().counter("oda_store_inserts_total",
                                               "Samples inserted into any store"),
        obs::MetricsRegistry::global().counter(
            "oda_store_queries_total",
            "Time-range queries served (including aggregated/frame reads)"),
        obs::MetricsRegistry::global().gauge(
            "oda_store_memory_bytes",
            "Approximate bytes retained across all stores"),
    };
    return m;
  }
};

}  // namespace

double aggregate(const std::vector<double>& values, Aggregation agg) {
  if (values.empty()) return std::nan("");
  switch (agg) {
    case Aggregation::kMean:
      return oda::mean(values);
    case Aggregation::kMin:
      return *std::min_element(values.begin(), values.end());
    case Aggregation::kMax:
      return *std::max_element(values.begin(), values.end());
    case Aggregation::kSum: {
      double s = 0.0;
      for (double v : values) s += v;
      return s;
    }
    case Aggregation::kLast:
      return values.back();
    case Aggregation::kCount:
      return static_cast<double>(values.size());
    case Aggregation::kStdDev:
      return oda::stddev(values);
  }
  return std::nan("");
}

std::vector<double> Frame::column(const std::string& name) const {
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c] == name) {
      std::vector<double> out(rows());
      for (std::size_t r = 0; r < rows(); ++r) out[r] = values[r][c];
      return out;
    }
  }
  throw ContractError("frame column not found: " + name);
}

TimeSeriesStore::TimeSeriesStore(std::size_t capacity_per_sensor)
    : capacity_(capacity_per_sensor) {
  ODA_REQUIRE(capacity_per_sensor > 0, "store capacity must be positive");
}

void TimeSeriesStore::insert(const std::string& path, Sample sample) {
  StoreMetrics& metrics = StoreMetrics::get();
  {
    std::unique_lock lock(mu_);
    auto it = series_.find(path);
    if (it == series_.end()) {
      it = series_.emplace(path, std::make_unique<Series>(capacity_)).first;
      // Ring storage is preallocated: capacity slots plus map-node overhead.
      metrics.memory_bytes.add(
          static_cast<double>(capacity_ * sizeof(Sample) + path.size() + 64));
    }
    it->second->samples.push(sample);
    ++total_inserted_;
  }
  metrics.inserts.inc();
}

void TimeSeriesStore::insert(const Reading& reading) {
  insert(reading.path, reading.sample);
}

bool TimeSeriesStore::contains(const std::string& path) const {
  std::shared_lock lock(mu_);
  return series_.count(path) != 0;
}

std::vector<std::string> TimeSeriesStore::paths() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [p, s] : series_) out.push_back(p);
  return out;
}

std::vector<std::string> TimeSeriesStore::match(const std::string& pattern) const {
  std::shared_lock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [p, s] : series_) {
    if (glob_match(pattern, p)) out.push_back(p);
  }
  return out;
}

std::size_t TimeSeriesStore::sample_count(const std::string& path) const {
  std::shared_lock lock(mu_);
  const Series* s = find_series(path);
  return s ? s->samples.size() : 0;
}

std::uint64_t TimeSeriesStore::total_inserted() const {
  std::shared_lock lock(mu_);
  return total_inserted_;
}

const TimeSeriesStore::Series* TimeSeriesStore::find_series(
    const std::string& path) const {
  const auto it = series_.find(path);
  return it == series_.end() ? nullptr : it->second.get();
}

std::optional<Sample> TimeSeriesStore::latest(const std::string& path) const {
  std::shared_lock lock(mu_);
  const Series* s = find_series(path);
  if (!s || s->samples.empty()) return std::nullopt;
  return s->samples.back();
}

SeriesSlice TimeSeriesStore::query(const std::string& path, TimePoint from,
                                   TimePoint to) const {
  StoreMetrics::get().queries.inc();
  std::shared_lock lock(mu_);
  SeriesSlice out;
  const Series* s = find_series(path);
  if (!s) return out;
  // Samples are time-ordered (monotone inserts); binary-search the start.
  const auto& buf = s->samples;
  std::size_t lo = 0, hi = buf.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (buf[mid].time < from) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (std::size_t i = lo; i < buf.size() && buf[i].time < to; ++i) {
    out.times.push_back(buf[i].time);
    out.values.push_back(buf[i].value);
  }
  return out;
}

SeriesSlice TimeSeriesStore::query_all(const std::string& path) const {
  return query(path, kTimeMin, kTimeMax);
}

SeriesSlice TimeSeriesStore::query_aggregated(const std::string& path,
                                              TimePoint from, TimePoint to,
                                              Duration bucket,
                                              Aggregation agg) const {
  ODA_REQUIRE(bucket > 0, "aggregation bucket must be positive");
  const SeriesSlice raw = query(path, from, to);
  SeriesSlice out;
  if (raw.empty()) return out;

  std::vector<double> current;
  TimePoint bucket_start = from + ((raw.times.front() - from) / bucket) * bucket;
  const auto flush = [&] {
    if (!current.empty()) {
      out.times.push_back(bucket_start);
      out.values.push_back(aggregate(current, agg));
      current.clear();
    }
  };
  for (std::size_t i = 0; i < raw.size(); ++i) {
    while (raw.times[i] >= bucket_start + bucket) {
      flush();
      bucket_start += bucket;
    }
    current.push_back(raw.values[i]);
  }
  flush();
  return out;
}

Frame TimeSeriesStore::frame(const std::vector<std::string>& sensor_paths,
                             TimePoint from, TimePoint to, Duration bucket,
                             Aggregation agg) const {
  ODA_REQUIRE(bucket > 0, "frame bucket must be positive");
  Frame f;
  f.columns = sensor_paths;
  const std::size_t n_buckets =
      static_cast<std::size_t>(std::max<TimePoint>(0, (to - from + bucket - 1) / bucket));
  f.times.resize(n_buckets);
  for (std::size_t b = 0; b < n_buckets; ++b) {
    f.times[b] = from + static_cast<Duration>(b) * bucket;
  }
  f.values.assign(n_buckets, std::vector<double>(sensor_paths.size(),
                                                 std::nan("")));
  for (std::size_t c = 0; c < sensor_paths.size(); ++c) {
    const SeriesSlice agg_slice =
        query_aggregated(sensor_paths[c], from, to, bucket, agg);
    for (std::size_t i = 0; i < agg_slice.size(); ++i) {
      const auto b =
          static_cast<std::size_t>((agg_slice.times[i] - from) / bucket);
      if (b < n_buckets) f.values[b][c] = agg_slice.values[i];
    }
  }
  return f;
}

}  // namespace oda::telemetry
